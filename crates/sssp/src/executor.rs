//! The node-relaxation task (Listing 5).

use crate::distances::AtomicDistances;
use priosched_core::{SpawnCtx, TaskExecutor};
use priosched_graph::CsrGraph;
use std::sync::atomic::{AtomicU64, Ordering};

/// One pending node relaxation: "each node that has to be relaxed
/// corresponds to a task in the scheduling system" (§5.1).
///
/// `dist_bits` is the tentative distance the task was spawned with (also its
/// priority key). The task is *dead* when the node's current distance no
/// longer equals it — a better instance has superseded this one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SsspTask {
    /// Node to relax.
    pub node: u32,
    /// Tentative distance (f64 bits) the task was spawned with; doubles as
    /// the priority key.
    pub dist_bits: u64,
}

/// Shared application state + Listing 5's `relaxNode`.
pub struct SsspExecutor<'g> {
    graph: &'g CsrGraph,
    dist: AtomicDistances,
    /// Relaxation parameter passed to every spawn (§2.2; the evaluation uses
    /// one k per run).
    k: usize,
    /// Nodes actually relaxed (edge lists scanned). Greater than the number
    /// of reachable nodes exactly when useless work happened.
    relaxed: AtomicU64,
    /// Tasks that passed the scheduler's dead check but lost the race in
    /// the in-task re-check (Listing 5 lines 2–6).
    late_dead: AtomicU64,
    /// When `false`, the scheduler-side dead check is disabled and every
    /// dead task relies on the in-task re-check alone (ablation: quantifies
    /// what lazy elimination in the data structures buys, §5.1).
    eliminate_dead: bool,
    /// Spawn-batch chunk bound: flush the relaxation batch every this many
    /// children instead of once per node expansion. `0` (the default) keeps
    /// one batch per expansion — the maximally amortized form. Nonzero
    /// values trade amortization for earlier visibility of spawned tasks;
    /// `schedbench` sweeps this axis.
    spawn_chunk: usize,
}

impl<'g> SsspExecutor<'g> {
    /// Prepares a run from `source`; distances start at ∞ except the source.
    pub fn new(graph: &'g CsrGraph, source: u32, k: usize) -> Self {
        Self::with_elimination(graph, source, k, true)
    }

    /// As [`SsspExecutor::new`], optionally disabling the scheduler-side
    /// dead-task elimination (ablation benches).
    pub fn with_elimination(
        graph: &'g CsrGraph,
        source: u32,
        k: usize,
        eliminate_dead: bool,
    ) -> Self {
        let dist = AtomicDistances::new(graph.num_nodes());
        dist.store(source, 0.0);
        SsspExecutor {
            graph,
            dist,
            k,
            relaxed: AtomicU64::new(0),
            late_dead: AtomicU64::new(0),
            eliminate_dead,
            spawn_chunk: 0,
        }
    }

    /// Sets the spawn-batch chunk bound (`0` = one batch per expansion).
    pub fn spawn_chunk(mut self, chunk: usize) -> Self {
        self.spawn_chunk = chunk;
        self
    }

    /// The root task for the source node.
    pub fn root(&self, source: u32) -> (u64, usize, SsspTask) {
        let bits = 0f64.to_bits();
        (
            bits,
            self.k,
            SsspTask {
                node: source,
                dist_bits: bits,
            },
        )
    }

    /// Nodes relaxed so far.
    pub fn relaxed(&self) -> u64 {
        self.relaxed.load(Ordering::Relaxed)
    }

    /// Tasks found dead by the in-task re-check.
    pub fn late_dead(&self) -> u64 {
        self.late_dead.load(Ordering::Relaxed)
    }

    /// The distance array (snapshot after the run).
    pub fn distances(&self) -> &AtomicDistances {
        &self.dist
    }
}

impl<'g> TaskExecutor<SsspTask> for SsspExecutor<'g> {
    /// Lazy dead-task elimination (§5.1): the node's distance moved on.
    fn is_dead(&self, task: &SsspTask) -> bool {
        self.eliminate_dead && self.dist.load_bits(task.node) != task.dist_bits
    }

    /// Listing 5's `relaxNode`, with batched spawning: the whole node
    /// expansion buffers its successful relaxations and stores them with
    /// one [`SpawnCtx::spawn_batch`] — one pending-counter update and one
    /// batched data-structure insertion per *node*, instead of one spawn
    /// per *edge*. The distance CASes still happen edge-by-edge (that is
    /// the algorithm), so correctness and the useless-work characteristics
    /// are unchanged: a scalar run would push the same task multiset at
    /// the same point between pops.
    fn execute(&self, task: SsspTask, ctx: &mut SpawnCtx<'_, SsspTask>) {
        // Re-check under the distance actually stored now; the scheduler's
        // is_dead ran earlier and the value may have improved since.
        let d_bits = self.dist.load_bits(task.node);
        if d_bits != task.dist_bits {
            self.late_dead.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.relaxed.fetch_add(1, Ordering::Relaxed);
        let d = f64::from_bits(d_bits);
        let mut batch = ctx.take_batch_buf();
        for e in self.graph.neighbors(task.node) {
            let new_d = d + e.weight as f64;
            let new_bits = new_d.to_bits();
            // "Check if path through this node is shorter … try to update
            // distance value" — the CAS loop lives in try_decrease.
            if self.dist.try_decrease(e.target, new_bits) {
                batch.push((
                    new_bits, // priority, smaller is better
                    SsspTask {
                        node: e.target,
                        dist_bits: new_bits,
                    },
                ));
                if self.spawn_chunk > 0 && batch.len() >= self.spawn_chunk {
                    ctx.spawn_batch(self.k, &mut batch);
                }
            }
        }
        ctx.spawn_batch(self.k, &mut batch);
        ctx.put_batch_buf(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priosched_core::{PriorityWorkStealing, Scheduler};
    use std::sync::Arc;

    fn diamond() -> CsrGraph {
        // 0 →(1) 1 →(1) 3, and 0 →(3) 2 →(0.5) 3: best 0-3 path costs 2.
        CsrGraph::from_undirected_edges(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 3.0), (2, 3, 0.5)])
    }

    #[test]
    fn executor_relaxes_diamond() {
        let g = diamond();
        let exec = SsspExecutor::new(&g, 0, 4);
        let sched = Scheduler::from_pool_arc(Arc::new(PriorityWorkStealing::new(1)));
        sched.run(&exec, vec![exec.root(0)]);
        let d = exec.distances().snapshot();
        assert_eq!(d, vec![0.0, 1.0, 2.5, 2.0]);
        // Sequential order relaxes each of the 4 nodes exactly once.
        assert_eq!(exec.relaxed(), 4);
    }

    #[test]
    fn dead_task_is_not_relaxed() {
        let g = diamond();
        let exec = SsspExecutor::new(&g, 0, 4);
        // Simulate a superseded task: node 1 currently at 1.0, task at 7.0.
        exec.distances().store(1, 1.0);
        let stale = SsspTask {
            node: 1,
            dist_bits: 7.0f64.to_bits(),
        };
        assert!(exec.is_dead(&stale));
        let live = SsspTask {
            node: 1,
            dist_bits: 1.0f64.to_bits(),
        };
        assert!(!exec.is_dead(&live));
    }

    #[test]
    fn spawn_chunk_does_not_change_results() {
        let g = diamond();
        for chunk in [0usize, 1, 2, 64] {
            let exec = SsspExecutor::new(&g, 0, 4).spawn_chunk(chunk);
            let sched = Scheduler::from_pool_arc(Arc::new(PriorityWorkStealing::new(1)));
            sched.run(&exec, vec![exec.root(0)]);
            assert_eq!(
                exec.distances().snapshot(),
                vec![0.0, 1.0, 2.5, 2.0],
                "chunk={chunk}"
            );
            assert_eq!(exec.relaxed(), 4, "chunk={chunk}");
        }
    }

    #[test]
    fn root_has_zero_priority() {
        let g = diamond();
        let exec = SsspExecutor::new(&g, 0, 9);
        let (prio, k, task) = exec.root(0);
        assert_eq!(prio, 0);
        assert_eq!(k, 9);
        assert_eq!(task.node, 0);
    }
}
