//! Array-backed d-ary min-heap (const-generic arity).
//!
//! §4.1 of the paper leaves the place-local priority queue open ("any
//! sequential implementation of a priority queue can be used"). A d-ary
//! heap with d = 4 or 8 trades a shallower tree (cheaper `pop`
//! sift-downs, the dominant operation in scheduling queues that are
//! popped as often as pushed) for more comparisons per level, and its
//! children sit in one cache line. The ablation bench compares it against
//! [`crate::BinaryHeap`] and [`crate::PairingHeap`].

use crate::SequentialPriorityQueue;

/// Array-backed min-heap with `D` children per node (`D ≥ 2`).
///
/// `data[0]` is the minimum; children of `i` are `D·i + 1 ..= D·i + D`.
#[derive(Clone, Debug)]
pub struct DaryHeap<T, const D: usize> {
    data: Vec<T>,
}

/// Four-ary heap — a good default for scheduling queues.
pub type QuaternaryHeap<T> = DaryHeap<T, 4>;

impl<T, const D: usize> Default for DaryHeap<T, D> {
    fn default() -> Self {
        assert!(D >= 2, "arity must be at least 2");
        DaryHeap { data: Vec::new() }
    }
}

impl<T: Ord, const D: usize> DaryHeap<T, D> {
    /// Creates an empty heap with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(D >= 2, "arity must be at least 2");
        DaryHeap {
            data: Vec::with_capacity(cap),
        }
    }

    /// Builds a heap from a vector in O(n).
    pub fn from_vec(data: Vec<T>) -> Self {
        let mut h = DaryHeap { data };
        h.heapify();
        h
    }

    fn heapify(&mut self) {
        let n = self.data.len();
        if n < 2 {
            return;
        }
        for i in (0..=(n - 2) / D).rev() {
            self.sift_down(i);
        }
    }

    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / D;
            if self.data[idx] < self.data[parent] {
                self.data.swap(idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut idx: usize) {
        let n = self.data.len();
        loop {
            let first = D * idx + 1;
            if first >= n {
                return;
            }
            let last = (first + D).min(n);
            let mut smallest = idx;
            for c in first..last {
                if self.data[c] < self.data[smallest] {
                    smallest = c;
                }
            }
            if smallest == idx {
                return;
            }
            self.data.swap(idx, smallest);
            idx = smallest;
        }
    }

    /// Checks the heap invariant; used by tests.
    pub fn is_valid_heap(&self) -> bool {
        (1..self.data.len()).all(|i| self.data[(i - 1) / D] <= self.data[i])
    }
}

impl<T: Ord, const D: usize> SequentialPriorityQueue<T> for DaryHeap<T, D> {
    fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, item: T) {
        self.data.push(item);
        self.sift_up(self.data.len() - 1);
    }

    fn pop(&mut self) -> Option<T> {
        let n = self.data.len();
        match n {
            0 => None,
            1 => self.data.pop(),
            _ => {
                self.data.swap(0, n - 1);
                let min = self.data.pop();
                self.sift_down(0);
                min
            }
        }
    }

    fn peek(&self) -> Option<&T> {
        self.data.first()
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn clear(&mut self) {
        self.data.clear();
    }

    fn split_half(&mut self) -> Self {
        let n = self.data.len();
        if n <= 1 {
            return DaryHeap {
                data: std::mem::take(&mut self.data),
            };
        }
        let mut stolen = Vec::with_capacity(n / 2 + 1);
        let mut kept = Vec::with_capacity(n - n / 2);
        for (i, x) in std::mem::take(&mut self.data).into_iter().enumerate() {
            if i % 2 == 0 {
                stolen.push(x);
            } else {
                kept.push(x);
            }
        }
        self.data = kept;
        self.heapify();
        DaryHeap::from_vec(stolen)
    }

    fn retain<F: FnMut(&T) -> bool>(&mut self, keep: F) {
        self.data.retain(keep);
        self.heapify();
    }

    fn append(&mut self, other: &mut Self) {
        if other.data.len() > self.data.len() {
            std::mem::swap(&mut self.data, &mut other.data);
        }
        self.data.append(&mut other.data);
        self.heapify();
    }

    fn drain_unordered(&mut self) -> Vec<T> {
        std::mem::take(&mut self.data)
    }

    /// Bulk insertion with a single invariant repair (same policy as
    /// [`crate::BinaryHeap::extend_batch`], shared through
    /// [`crate::bulk_repair_prefers_heapify`]: sift-up for small batches,
    /// Floyd's O(n) heapify once the batch rivals the heap).
    fn extend_batch<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        let old = self.data.len();
        self.data.extend(iter);
        let n = self.data.len();
        if n == old {
            return;
        }
        if crate::bulk_repair_prefers_heapify(old, n - old, n) {
            self.heapify();
        } else {
            for i in old..n {
                self.sift_up(i);
            }
        }
    }
}

impl<T: Ord, const D: usize> FromIterator<T> for DaryHeap<T, D> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn popped<const D: usize>(mut h: DaryHeap<i64, D>) -> Vec<i64> {
        let mut out = Vec::new();
        while let Some(x) = h.pop() {
            out.push(x);
        }
        out
    }

    #[test]
    fn sorted_output_for_each_arity() {
        let items = [9i64, -4, 7, 0, 7, 3, -4, 12, 1];
        let mut expect = items.to_vec();
        expect.sort();
        assert_eq!(popped::<2>(items.into_iter().collect()), expect);
        assert_eq!(popped::<3>(items.into_iter().collect()), expect);
        assert_eq!(popped::<4>(items.into_iter().collect()), expect);
        assert_eq!(popped::<8>(items.into_iter().collect()), expect);
    }

    #[test]
    fn heapify_builds_valid_heap() {
        let h: DaryHeap<i64, 4> = DaryHeap::from_vec((0..100).rev().collect());
        assert!(h.is_valid_heap());
    }

    #[test]
    fn split_half_sizes_and_invariants() {
        for n in 0..50usize {
            let mut h: DaryHeap<usize, 4> = (0..n).collect();
            let stolen = h.split_half();
            assert_eq!(stolen.len(), n.div_ceil(2));
            assert_eq!(h.len(), n / 2);
            assert!(h.is_valid_heap());
            assert!(stolen.is_valid_heap());
        }
    }

    #[test]
    fn retain_and_append() {
        let mut h: DaryHeap<i64, 4> = (0..30).collect();
        h.retain(|x| x % 2 == 0);
        let mut other: DaryHeap<i64, 4> = [1, 3].into_iter().collect();
        h.append(&mut other);
        assert!(other.is_empty());
        assert!(h.is_valid_heap());
        let out = popped(h);
        assert_eq!(out[..4], [0, 1, 2, 3]);
    }

    #[test]
    fn agrees_with_binary_heap() {
        let items: Vec<i64> = (0..500).map(|i| (i * 7919) % 263 - 100).collect();
        let mut a: DaryHeap<i64, 4> = items.iter().copied().collect();
        let mut b: crate::BinaryHeap<i64> = items.iter().copied().collect();
        loop {
            let (x, y) = (a.pop(), b.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn quaternary_alias_works() {
        let mut h: QuaternaryHeap<i64> = QuaternaryHeap::new();
        h.push(2);
        h.push(1);
        assert_eq!(h.pop(), Some(1));
    }
}
