//! Sequential Dijkstra with lazy deletion.
//!
//! This is the sequential baseline of Figure 4 ("Sequential", shown at one
//! thread). Like the paper's parallel variant (§5.1), it avoids decrease-key:
//! when a node's tentative distance improves, the node is *reinserted* into
//! the priority queue and stale entries are discarded when popped. With this
//! scheme Dijkstra relaxes every reachable node exactly once — every pop that
//! survives the staleness check is settled — which is the "only useful work"
//! property the evaluation measures against.

use crate::csr::CsrGraph;
use crate::INFINITY;
use priosched_pq::{BinaryHeap, SequentialPriorityQueue};

/// Outcome of a sequential Dijkstra run.
#[derive(Clone, Debug)]
pub struct DijkstraResult {
    /// `dist[v]` is the shortest-path distance from the source, or
    /// [`INFINITY`] when `v` is unreachable.
    pub dist: Vec<f64>,
    /// Number of node relaxations performed (nodes whose edge list was
    /// scanned). For Dijkstra this equals the number of reachable nodes.
    pub relaxations: usize,
    /// Number of queue entries popped, including stale ones.
    pub pops: usize,
}

/// Priority-queue entry ordered by tentative distance (min first).
#[derive(Clone, Copy, Debug, PartialEq)]
struct QueueEntry {
    dist: f64,
    node: u32,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Weights are positive reals and distances finite sums of them;
        // NaN never occurs, so total order by (dist, node) is sound.
        self.dist
            .partial_cmp(&other.dist)
            .expect("distances are never NaN")
            .then(self.node.cmp(&other.node))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest paths from `source` by Dijkstra's algorithm.
///
/// # Panics
/// Panics if `source` is not a node of `graph`.
pub fn dijkstra(graph: &CsrGraph, source: u32) -> DijkstraResult {
    let n = graph.num_nodes();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![INFINITY; n];
    let mut queue: BinaryHeap<QueueEntry> = BinaryHeap::with_capacity(n);
    dist[source as usize] = 0.0;
    queue.push(QueueEntry {
        dist: 0.0,
        node: source,
    });
    let mut relaxations = 0usize;
    let mut pops = 0usize;
    while let Some(QueueEntry { dist: d, node }) = queue.pop() {
        pops += 1;
        if d != dist[node as usize] {
            // Stale entry: the node was reinserted with a smaller distance
            // and already processed. Lazy deletion, as in §5.1.
            continue;
        }
        relaxations += 1;
        for e in graph.neighbors(node) {
            let nd = d + e.weight as f64;
            let t = e.target as usize;
            if nd < dist[t] {
                dist[t] = nd;
                queue.push(QueueEntry {
                    dist: nd,
                    node: e.target,
                });
            }
        }
    }
    DijkstraResult {
        dist,
        relaxations,
        pops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{erdos_renyi, ErdosRenyiConfig};

    fn line_graph() -> CsrGraph {
        CsrGraph::from_undirected_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
    }

    #[test]
    fn line_graph_distances() {
        let r = dijkstra(&line_graph(), 0);
        assert_eq!(r.dist, vec![0.0, 1.0, 3.0, 6.0]);
    }

    #[test]
    fn source_in_middle() {
        let r = dijkstra(&line_graph(), 2);
        assert_eq!(r.dist, vec![3.0, 2.0, 0.0, 3.0]);
    }

    #[test]
    fn unreachable_nodes_stay_infinite() {
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist[0], 0.0);
        assert_eq!(r.dist[1], 1.0);
        assert!(r.dist[2].is_infinite());
        assert!(r.dist[3].is_infinite());
        // Only the reachable component is relaxed.
        assert_eq!(r.relaxations, 2);
    }

    #[test]
    fn shorter_indirect_path_wins() {
        // 0→2 direct costs 10, 0→1→2 costs 3.
        let g = CsrGraph::from_undirected_edges(3, &[(0, 2, 10.0), (0, 1, 1.0), (1, 2, 2.0)]);
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist[2], 3.0);
    }

    #[test]
    fn relaxations_equal_reachable_nodes_on_connected_graph() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 300,
            p: 0.05,
            seed: 5,
        });
        let r = dijkstra(&g, 0);
        let reachable = r.dist.iter().filter(|d| d.is_finite()).count();
        assert_eq!(r.relaxations, reachable);
        // Lazy deletion means pops >= relaxations.
        assert!(r.pops >= r.relaxations);
    }

    #[test]
    fn triangle_inequality_holds_over_all_edges() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 200,
            p: 0.1,
            seed: 6,
        });
        let r = dijkstra(&g, 0);
        for (u, v, w) in g.undirected_edges() {
            let (du, dv) = (r.dist[u as usize], r.dist[v as usize]);
            if du.is_finite() {
                assert!(dv <= du + w as f64 + 1e-12);
            }
            if dv.is_finite() {
                assert!(du <= dv + w as f64 + 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bad_source_panics() {
        dijkstra(&line_graph(), 99);
    }
}
