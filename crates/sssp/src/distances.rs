//! Shared tentative-distance array with CAS decrease.
//!
//! Listing 5 updates `graph[target].distance` with a CAS retry loop; here the
//! distances live in a dedicated array of `AtomicU64` storing `f64` bit
//! patterns. Non-negative doubles order identically to their bit patterns,
//! so both the CAS and the priority keys work directly on bits.

use std::sync::atomic::{AtomicU64, Ordering};

/// Tentative distances for all nodes, shared by all places.
pub struct AtomicDistances {
    bits: Vec<AtomicU64>,
}

impl AtomicDistances {
    /// All distances start at `+∞` (unreached).
    pub fn new(n: usize) -> Self {
        AtomicDistances {
            bits: (0..n)
                .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
                .collect(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` when the array is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Raw bit pattern of `node`'s tentative distance.
    #[inline]
    pub fn load_bits(&self, node: u32) -> u64 {
        self.bits[node as usize].load(Ordering::Acquire)
    }

    /// `node`'s tentative distance as `f64`.
    #[inline]
    pub fn load(&self, node: u32) -> f64 {
        f64::from_bits(self.load_bits(node))
    }

    /// Sets `node`'s distance unconditionally (used to seed the source).
    pub fn store(&self, node: u32, value: f64) {
        debug_assert!(value >= 0.0);
        self.bits[node as usize].store(value.to_bits(), Ordering::Release);
    }

    /// Listing 5's decrease loop: repeatedly CAS while the stored distance
    /// is larger than `new_bits`. Returns `true` if this call performed the
    /// decrease, `false` when the stored value was already ≤.
    #[inline]
    pub fn try_decrease(&self, node: u32, new_bits: u64) -> bool {
        let cell = &self.bits[node as usize];
        let mut old = cell.load(Ordering::Relaxed);
        // Non-negative f64 bit patterns compare like the floats themselves.
        while old > new_bits {
            match cell.compare_exchange_weak(old, new_bits, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return true,
                Err(cur) => old = cur,
            }
        }
        false
    }

    /// Snapshot as a plain `f64` vector (after the run has quiesced).
    pub fn snapshot(&self) -> Vec<f64> {
        self.bits
            .iter()
            .map(|b| f64::from_bits(b.load(Ordering::Acquire)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_infinity() {
        let d = AtomicDistances::new(3);
        assert!(d.load(0).is_infinite());
        assert!(d.load(2).is_infinite());
    }

    #[test]
    fn decrease_succeeds_then_rejects_worse() {
        let d = AtomicDistances::new(1);
        assert!(d.try_decrease(0, 5.0f64.to_bits()));
        assert_eq!(d.load(0), 5.0);
        assert!(!d.try_decrease(0, 7.0f64.to_bits()), "worse value rejected");
        assert!(d.try_decrease(0, 3.0f64.to_bits()));
        assert_eq!(d.load(0), 3.0);
    }

    #[test]
    fn equal_value_is_not_a_decrease() {
        let d = AtomicDistances::new(1);
        d.store(0, 4.0);
        assert!(!d.try_decrease(0, 4.0f64.to_bits()));
    }

    #[test]
    fn concurrent_decreases_settle_at_minimum() {
        let d = std::sync::Arc::new(AtomicDistances::new(1));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let d = d.clone();
                s.spawn(move || {
                    for i in (0..1000u64).rev() {
                        let v = (t * 1000 + i) as f64 / 7.0 + 1.0;
                        d.try_decrease(0, v.to_bits());
                    }
                });
            }
        });
        // Minimum over all proposed values: t = 0, i = 0 → 1.0.
        assert_eq!(d.load(0), 1.0);
    }

    #[test]
    fn snapshot_reflects_values() {
        let d = AtomicDistances::new(3);
        d.store(1, 2.5);
        let snap = d.snapshot();
        assert!(snap[0].is_infinite());
        assert_eq!(snap[1], 2.5);
        assert!(snap[2].is_infinite());
    }
}
