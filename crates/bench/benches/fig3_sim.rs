//! Figure 3 machinery under criterion: phase-simulator throughput and the
//! cost of evaluating Theorem 5's bound (the full figure lives in the
//! `fig3_simulation` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priosched_graph::{erdos_renyi, ErdosRenyiConfig};
use priosched_sim::{simulate_sssp, SimConfig, TheoryBound};
use std::time::Duration;

fn bench_fig3(c: &mut Criterion) {
    let graph = erdos_renyi(&ErdosRenyiConfig {
        n: 600,
        p: 0.5,
        seed: 1000,
    });
    let mut g = c.benchmark_group("fig3_simulator");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    for (p, rho) in [(16usize, 0usize), (80, 0), (80, 512)] {
        g.bench_with_input(
            BenchmarkId::new("simulate", format!("p{p}_rho{rho}")),
            &(p, rho),
            |b, &(p, rho)| {
                b.iter(|| {
                    criterion::black_box(simulate_sssp(&graph, 0, &SimConfig { p, rho, seed: 3 }))
                })
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("fig3_theory_bound");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    let tb = TheoryBound::new(10_000, 0.5);
    let dists: Vec<f64> = (0..80).map(|i| 0.2 + i as f64 * 1e-4).collect();
    g.bench_function("pairwise_80_nodes", |b| {
        b.iter(|| criterion::black_box(tb.useless_upper_bound(&dists)))
    });
    g.bench_function("hstar_80_nodes", |b| {
        b.iter(|| criterion::black_box(tb.useless_upper_bound_hstar(80.0 * 1e-4, 80)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
