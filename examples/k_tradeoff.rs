//! The ρ-relaxation knob, observed directly (§2.2).
//!
//! One producer place pushes tasks with random priorities while a consumer
//! place pops. For each pop we measure the *rank error*: how many live
//! tasks had strictly better priority than the one returned. The paper's
//! guarantee says those ignored tasks can only be recent — at most k of
//! them for the centralized structure, P·k for the hybrid — so mean rank
//! error should grow with k and stay near zero for k = 1.
//!
//! Run with: `cargo run --release --example k_tradeoff`

use priosched::core::{PoolBuilder, PoolHandle, PoolKind, TaskPool};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Deterministic xorshift for the workload.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Drives one structure with an interleaved push/pop schedule and returns
/// (mean rank error, max rank error) over all consumer pops.
fn measure<P: TaskPool<u64>>(pool: Arc<P>, k: usize, ops: usize) -> (f64, u64) {
    let mut producer = pool.handle(0);
    let mut consumer = pool.handle(1);
    let mut rng = Rng(0xDECAF + k as u64);
    // Live multiset: priority -> count.
    let mut live: BTreeMap<u64, usize> = BTreeMap::new();
    let mut total_err = 0u64;
    let mut max_err = 0u64;
    let mut pops = 0u64;
    let mut pushed = 0usize;
    while pops < ops as u64 {
        let want_push = pushed < ops && (!rng.next().is_multiple_of(3) || live.is_empty());
        if want_push {
            let prio = rng.next() % 100_000;
            producer.push(prio, k, prio);
            *live.entry(prio).or_insert(0) += 1;
            pushed += 1;
        } else if let Some(got) = consumer.pop() {
            // Rank error: live tasks strictly better than `got`.
            let better: usize = live.range(..got).map(|(_, c)| *c).sum();
            total_err += better as u64;
            max_err = max_err.max(better as u64);
            pops += 1;
            let cnt = live.get_mut(&got).expect("popped task must be live");
            *cnt -= 1;
            if *cnt == 0 {
                live.remove(&got);
            }
        } else if pushed >= ops {
            break; // consumer saw everything it will ever see
        }
    }
    (total_err as f64 / pops.max(1) as f64, max_err)
}

fn main() {
    let ops = 20_000;
    println!("rank error of pops vs k (producer/consumer, {ops} tasks)\n");
    println!(
        "{:>8} | {:>24} | {:>24}",
        "k", "Centralized (mean/max)", "Hybrid (mean/max)"
    );
    println!("{:->8}-+-{:->24}-+-{:->24}", "", "", "");
    for k in [1usize, 4, 16, 64, 256, 1024] {
        // kmax = k pins the centralized window to exactly the swept bound
        // (PoolBuilder::k alone would widen it to the paper's 512 floor).
        let centralized = PoolBuilder::new(PoolKind::Centralized)
            .places(2)
            .k(k)
            .kmax(k.max(1) as u32)
            .build::<u64>();
        let (c_mean, c_max) = measure(centralized, k, ops);
        let hybrid = PoolBuilder::new(PoolKind::Hybrid)
            .places(2)
            .k(k)
            .build::<u64>();
        let (h_mean, h_max) = measure(hybrid, k, ops);
        println!(
            "{k:>8} | {:>15.2} / {:>5} | {:>15.2} / {:>5}",
            c_mean, c_max, h_mean, h_max
        );
    }
    println!();
    println!(
        "{} bounds ignored tasks by k; {} by P·k — both grow with k,",
        PoolKind::Centralized,
        PoolKind::Hybrid
    );
    println!("which is the scalability/quality dial the paper proposes.");
}
