//! Quickstart: prioritized task scheduling, open-world first.
//!
//! Headline: start a long-lived pool *service* and submit prioritized
//! tasks into it from outside — the shape a server frontend uses — first
//! from producer threads (blocking submits that park under backpressure),
//! then from async tasks (submit futures that `await` a `Full` lane, the
//! `priosched-serve` connection-actor shape). Then the classic
//! closed-world flow: run a fixed root set over all three of the paper's
//! data structures and compare their statistics — and finally the fifth,
//! *relaxed* structure (the MultiQueue), with its rank-error instrument
//! switched on to show what the relaxation costs in pop quality.
//!
//! Run with: `cargo run --release --example quickstart`

use priosched::core::{
    run_on_kind, PoolBuilder, PoolKind, PoolParams, SpawnCtx, SubmitError, TaskExecutor,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A task is (depth, width-index); executing it spawns `FANOUT` children
/// until `MAX_DEPTH`, preferring shallow tasks (priority = depth).
struct TreeWalk {
    executed: AtomicU64,
}

const FANOUT: u64 = 3;
const MAX_DEPTH: u64 = 8;
const K: usize = 64;

impl TaskExecutor<(u64, u64)> for TreeWalk {
    fn execute(&self, (depth, _i): (u64, u64), ctx: &mut SpawnCtx<'_, (u64, u64)>) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        if depth < MAX_DEPTH {
            for i in 0..FANOUT {
                // Help-first spawn (§2): the child is *stored*, we continue.
                ctx.spawn(depth + 1, K, (depth + 1, i));
            }
        }
    }
}

/// Open-world flow: the pool outlives any one batch of work. External
/// threads submit through cloneable ingest handles; `join` waits for a
/// drain without stopping the workers (they *park* while idle — a
/// quiescent service burns no CPU); `shutdown` waits for quiescence (all
/// handles dropped, nothing queued, nothing pending).
///
/// The lanes here are **bounded** (`lane_capacity`): `try_submit` sheds
/// with a typed error that hands the task back when every lane is full,
/// while the blocking `submit`/`submit_batch` park the producer until a
/// worker drains room — backpressure instead of unbounded queueing.
fn service_demo(places: usize) {
    let exec = Arc::new(TreeWalk {
        executed: AtomicU64::new(0),
    });
    let mut service = PoolBuilder::new(PoolKind::Hybrid)
        .places(places)
        .k(K)
        .lane_capacity(8)
        .service::<(u64, u64), _>(Arc::clone(&exec));

    // Submit from outside the pool — e.g. request handlers. Each producer
    // thread owns its own handle; submissions shard across per-place
    // ingress lanes and are drained by the workers between executions.
    std::thread::scope(|s| {
        for producer in 0..2u64 {
            let mut handle = service.ingest_handle();
            s.spawn(move || {
                // One tree root each: shed on backpressure, then fall back
                // to the blocking path (which parks, not spins).
                match handle.try_submit(0, K, (0u64, producer)) {
                    Ok(()) => {}
                    Err(SubmitError::Full(task)) => {
                        // Lanes full — the task came back; block for room.
                        handle.submit(0, K, task).expect("service is live");
                    }
                    Err(e) => panic!("service rejected the submission: {e}"),
                }
                // Plus a batch of leaf-depth tasks; larger than the lane
                // capacity is fine — the blocking path chunks it.
                let mut batch: Vec<(u64, (u64, u64))> =
                    (0..8).map(|i| (MAX_DEPTH, (MAX_DEPTH, i))).collect();
                handle.submit_batch(K, &mut batch).expect("service is live");
            });
        }
    });

    service.join().expect("no task panics"); // drained — workers still running (parked)
    let after_round_1 = exec.executed.load(Ordering::Relaxed);

    // A second round on the same pool: the submission wakes the workers.
    service.submit(0, K, (0u64, 99)).expect("service is live");
    service.join().expect("no task panics");

    let stats = service.shutdown().expect("clean shutdown");
    let tree: u64 = (0..=MAX_DEPTH).map(|d| FANOUT.pow(d as u32)).sum();
    assert_eq!(stats.executed, 3 * tree + 2 * 8);
    println!(
        "service:       2 producers + 2 rounds -> {:>6} tasks ({} after round 1) on {} workers",
        stats.executed, after_round_1, places
    );
}

/// Async flow: the same service fed through futures. `submit` maps a
/// `Full` lane to `Poll::Pending` — the task's waker is deposited where
/// the blocking path would park a thread, and the next worker drain wakes
/// it — so a connection actor (or any async task) backpressures by
/// *awaiting* instead of blocking a thread. Driven here by the in-tree
/// `futures_executor` shim; any executor works.
fn async_demo(places: usize) {
    let exec = Arc::new(TreeWalk {
        executed: AtomicU64::new(0),
    });
    let service = PoolBuilder::new(PoolKind::Hybrid)
        .places(places)
        .k(K)
        .lane_capacity(4) // tiny: the futures hit Full → await constantly
        .service::<(u64, u64), _>(Arc::clone(&exec));

    // Two async producers multiplexed on ONE reactor thread — no thread
    // per producer, which is the point of the async path.
    let mut pool = futures_executor::LocalPool::new();
    let spawner = pool.spawner();
    for producer in 0..2u64 {
        let mut handle = service.async_ingest_handle();
        spawner.spawn_local(async move {
            // Backpressure is just `.await`: while every lane is full the
            // future pends and the worker drain wakes it.
            handle
                .submit(0, K, (0u64, producer))
                .await
                .expect("service is live");
            // Batches chunk through the capacity-4 lanes transparently.
            let mut batch: Vec<(u64, (u64, u64))> =
                (0..8).map(|i| (MAX_DEPTH, (MAX_DEPTH, i))).collect();
            handle
                .submit_batch(K, &mut batch)
                .await
                .expect("service is live");
        });
    }
    pool.run(); // both producers complete (their handles drop here)
    futures_executor::block_on(service.join_async()).expect("no task panics");

    let stats = service.shutdown().expect("clean shutdown");
    let tree: u64 = (0..=MAX_DEPTH).map(|d| FANOUT.pow(d as u32)).sum();
    assert_eq!(stats.executed, 2 * tree + 2 * 8);
    println!(
        "async:         2 actors on 1 reactor thread -> {:>6} tasks (Full => await, lane cap 4)",
        stats.executed
    );
}

/// Closed-world flow: all roots known up front, one structure per run.
fn run_with(kind: PoolKind, places: usize) {
    let exec = TreeWalk {
        executed: AtomicU64::new(0),
    };
    let roots = vec![(0u64, K, (0u64, 0u64))];
    // One dispatch before the run; the scheduling loop itself is
    // monomorphized per structure (see priosched::core::facade).
    let stats = run_on_kind(kind, places, PoolParams::default(), &exec, roots);
    let expected: u64 = (0..=MAX_DEPTH).map(|d| FANOUT.pow(d as u32)).sum();
    assert_eq!(stats.executed, expected);
    println!(
        "{:<14} executed {:>6} tasks in {:>8.2?}  (pushes {:>6}, steals {:>3}, spies {:>3}, publishes {:>4})",
        kind.label(),
        stats.executed,
        stats.elapsed,
        stats.pool.pushes,
        stats.pool.steals,
        stats.pool.spies,
        stats.pool.publishes,
    );
}

/// The relaxed flow: the paper's structures promise a *hard* per-pop
/// bound on how far from the true minimum a popped task can rank (ρ = k
/// for the centralized structure, ρ = P·k for the hybrid). The
/// MultiQueue (`PoolKind::MultiQueue`) drops that guarantee: c·P plain
/// sequential queues, random push, pop from the better of two randomly
/// probed queues — rank error is O(P) only *in expectation* and
/// unbounded in the worst case, in exchange for contention that falls as
/// c grows. The shadow instrument (`rank_error(true)`; a global exact
/// multiset, so keep it off hot production paths) prices the trade: it
/// reports how many strictly-better tasks were queued at each pop.
fn multiqueue_demo(places: usize) {
    let exec = TreeWalk {
        executed: AtomicU64::new(0),
    };
    let stats = PoolBuilder::new(PoolKind::MultiQueue)
        .places(places)
        .mq_c(2) // 2 queues per place — the usual sweet spot
        .rank_error(true)
        .run(&exec, vec![(0u64, K, (0u64, 0u64))]);
    let expected: u64 = (0..=MAX_DEPTH).map(|d| FANOUT.pow(d as u32)).sum();
    assert_eq!(stats.executed, expected);
    println!(
        "{:<14} executed {:>6} tasks in {:>8.2?}  (rank error: {:.2} mean, {} max over {} pops)",
        PoolKind::MultiQueue.label(),
        stats.executed,
        stats.elapsed,
        stats.pool.rank_mean(),
        stats.pool.rank_max,
        stats.pool.rank_pops,
    );
}

fn main() {
    let places = std::thread::available_parallelism()
        .map(|c| c.get().min(8))
        .unwrap_or(2)
        .max(2);
    println!(
        "priosched {} quickstart: {places} places, fanout {FANOUT}, depth {MAX_DEPTH}\n",
        priosched::VERSION
    );

    // Open-world headline: a pool you submit into while it runs.
    service_demo(places);
    println!();

    // The async frontend shape: futures instead of producer threads.
    async_demo(places);
    println!();

    // Closed-world: the paper's three structures over a fixed root set.
    for kind in PoolKind::PAPER {
        run_with(kind, places);
    }

    // The relaxed fifth structure, instrument on: exact-structure
    // guarantees traded for contention-shedding, with the cost measured.
    multiqueue_demo(places);

    println!("\nAll structures executed every task exactly once.");
    println!("Note how the hybrid structure substitutes spying for stealing,");
    println!("and publishes its local list roughly every k = {K} pushes,");
    println!("while the relaxed MultiQueue reports a measured rank error");
    println!("instead of the exact structures' hard ρ bound.");
}
