//! Hybrid k-priority data structure (§3.3, §4.2, Listings 3–4).
//!
//! Combines work-stealing-style locality with ρ-relaxed global ordering:
//!
//! * each place appends new tasks to a **local list** and to its local
//!   priority queue; no synchronization happens while the per-place
//!   relaxation budget lasts;
//! * once a task's budget is exhausted (`remaining_k` reaches 0 — at most
//!   `k` tasks were added after the task that set the budget), the whole
//!   local list is appended to the **global list** with a single CAS and a
//!   fresh local list is started (Listing 3);
//! * `pop` ingests new global-list entries into the local priority queue and
//!   takes its best reference via a tag CAS; when the queue runs dry it
//!   **spies** a victim's local list — copying references without removing
//!   anything (§4.2.2) — so up to `k` unpublished tasks *per place* may be
//!   missed: ρ = P·k.
//!
//! As in §4.2.3, lists are linked lists of arrays (segments), items are
//! recycled through the shared pool, and taken-ness is a tag CAS rather than
//! a flag so recycling is ABA-safe; tags are derived from per-place indices,
//! made globally unique as `local_index · P + place`.

use crate::item::{Item, ItemCache, ItemPool, ItemRef};
use crate::pool::{PoolHandle, TaskPool};
use crate::stats::PlaceStats;
use crate::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use crate::util::XorShift64;
use crossbeam_utils::CachePadded;
use priosched_pq::{BinaryHeap, SequentialPriorityQueue};
use std::ptr;
use std::sync::Arc;

/// Items per list segment. Local lists hold up to `k` items, so a segment
/// size well below common `k` values (512 in the paper) keeps publishing
/// chains short while bounding per-segment slack.
pub const HSEGMENT_LEN: usize = 256;

/// Marker for "no last victim".
const NO_VICTIM: usize = usize::MAX;

/// Owner id of the global-list sentinel segment.
const SENTINEL_OWNER: u32 = u32::MAX;

/// A segment of a (local or global) task list.
struct HSeg<T> {
    owner: u32,
    /// Handle incarnation of the owner at creation time; a re-created handle
    /// (new incarnation) re-ingests segments of previous incarnations so
    /// their tasks are never orphaned.
    incarnation: u64,
    /// Tag of `slots[0]`; slot `i` carries tag `base_tag + i · P`.
    base_tag: u64,
    /// Published length; slots below it are fully initialized. Frozen once
    /// the segment reaches the global list.
    len: AtomicUsize,
    next: AtomicPtr<HSeg<T>>,
    slots: Box<[AtomicPtr<Item<T>>]>,
}

impl<T> HSeg<T> {
    fn boxed(owner: u32, incarnation: u64, base_tag: u64) -> Box<Self> {
        let slots = (0..HSEGMENT_LEN)
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect();
        Box::new(HSeg {
            owner,
            incarnation,
            base_tag,
            len: AtomicUsize::new(0),
            next: AtomicPtr::new(ptr::null_mut()),
            slots,
        })
    }
}

/// Per-place record readable by every thread.
struct PlaceShared<T> {
    /// Head of the place's current (unpublished) local list; spies start
    /// their walk here.
    local_head: AtomicPtr<HSeg<T>>,
    /// Last place this place successfully spied from (§4.2.3: chased by
    /// other spies when this place has no local work).
    last_victim: AtomicUsize,
    /// Handle incarnation counter.
    incarnation: AtomicU64,
}

/// The shared component of the hybrid structure. Create, wrap in [`Arc`],
/// then create one [`HybridHandle`] per place.
pub struct HybridKPriority<T: Send + 'static> {
    nplaces: usize,
    /// Sentinel head of the global list.
    global_head: AtomicPtr<HSeg<T>>,
    places: Box<[CachePadded<PlaceShared<T>>]>,
    pool: ItemPool<T>,
    handle_live: Box<[AtomicBool]>,
}

impl<T: Send + 'static> HybridKPriority<T> {
    /// Creates a structure for `nplaces` places.
    ///
    /// # Panics
    /// Panics if `nplaces == 0`.
    pub fn new(nplaces: usize) -> Self {
        assert!(nplaces > 0, "need at least one place");
        let sentinel = Box::into_raw(HSeg::boxed(SENTINEL_OWNER, 0, 0));
        HybridKPriority {
            nplaces,
            global_head: AtomicPtr::new(sentinel),
            places: (0..nplaces)
                .map(|_| {
                    CachePadded::new(PlaceShared {
                        local_head: AtomicPtr::new(ptr::null_mut()),
                        last_victim: AtomicUsize::new(NO_VICTIM),
                        incarnation: AtomicU64::new(0),
                    })
                })
                .collect(),
            pool: ItemPool::new(),
            handle_live: (0..nplaces).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Number of segments currently in the global list (diagnostics).
    pub fn global_segments(&self) -> usize {
        let mut n = 0;
        let mut seg = self.global_head.load(Ordering::Acquire);
        while !seg.is_null() {
            n += 1;
            // SAFETY: non-null list node; global segments are never freed
            // outside quiescent `reclaim`, which excludes live readers.
            seg = unsafe { &*seg }.next.load(Ordering::Acquire);
        }
        n - 1 // exclude sentinel
    }

    /// Frees exhausted leading segments of the global list (all published
    /// items taken). Returns the number of segments freed.
    ///
    /// Quiescent-point counterpart of the paper's concurrent reclamation
    /// (§4.2.3 refers to the same scheme as §4.1.3); see DESIGN.md §4.
    /// New handles start reading at the sentinel, so reclaimed prefixes
    /// are never re-visited.
    ///
    /// # Panics
    /// Panics if any place handle is live.
    pub fn reclaim(&self) -> usize {
        assert!(
            self.handle_live.iter().all(|h| !h.load(Ordering::Acquire)),
            "reclaim requires quiescence (no live handles)"
        );
        let sentinel = self.global_head.load(Ordering::Acquire);
        let mut freed = 0usize;
        loop {
            // SAFETY: quiescence; segments are exclusively ours.
            let first = unsafe { &*sentinel }.next.load(Ordering::Acquire);
            if first.is_null() {
                return freed;
            }
            let seg = unsafe { &*first };
            let len = seg.len.load(Ordering::Acquire);
            let nplaces = self.nplaces as u64;
            let all_taken = (0..len).all(|idx| {
                let p = seg.slots[idx].load(Ordering::Acquire);
                let expected = seg.base_tag + idx as u64 * nplaces;
                // A live item still carries the tag this slot assigned it.
                // SAFETY: non-null slots point into the immortal item pool.
                !p.is_null() && unsafe { &*p }.tag.load(Ordering::Acquire) != expected
            });
            if !all_taken {
                return freed;
            }
            let next = seg.next.load(Ordering::Acquire);
            // SAFETY: quiescence (asserted above) — the sentinel is ours.
            unsafe { &*sentinel }.next.store(next, Ordering::Release);
            // SAFETY: unlinked, quiescent — no readers can hold it.
            drop(unsafe { Box::from_raw(first) });
            freed += 1;
        }
    }
}

impl<T: Send + 'static> TaskPool<T> for HybridKPriority<T> {
    type Handle = HybridHandle<T>;

    fn num_places(&self) -> usize {
        self.nplaces
    }

    fn handle(self: &Arc<Self>, place: usize) -> HybridHandle<T> {
        assert!(place < self.nplaces, "place {place} out of range");
        assert!(
            !self.handle_live[place].swap(true, Ordering::AcqRel),
            "place {place} already has a live handle"
        );
        let incarnation = self.places[place]
            .incarnation
            .fetch_add(1, Ordering::AcqRel)
            + 1;
        HybridHandle {
            place: place as u32,
            incarnation,
            chain_head: ptr::null_mut(),
            chain_tail: ptr::null_mut(),
            tail_fill: 0,
            next_local_idx: 0,
            remaining_k: u64::MAX,
            pq: BinaryHeap::with_capacity(256),
            cache: ItemCache::new(),
            g_seg: self.global_head.load(Ordering::Acquire),
            g_idx: 0,
            last_victim: NO_VICTIM,
            rng: XorShift64::new(0x4B1D_0000 ^ place as u64),
            stats: PlaceStats::default(),
            shared: Arc::clone(self),
        }
    }
}

impl<T: Send + 'static> Drop for HybridKPriority<T> {
    fn drop(&mut self) {
        // Free the global chain (including the sentinel) and any leftover
        // local chains. Published chains are unreachable from `local_head`
        // (publish nulls it before the handle returns), so no double free.
        let free_chain = |mut seg: *mut HSeg<T>| {
            while !seg.is_null() {
                // SAFETY: drop has exclusive ownership of every chain.
                let boxed = unsafe { Box::from_raw(seg) };
                seg = boxed.next.load(Ordering::Relaxed);
            }
        };
        // Relaxed loads instead of `get_mut`: `&mut self` already proves
        // exclusivity (the model's atomics have no `get_mut`).
        free_chain(self.global_head.load(Ordering::Relaxed));
        for p in self.places.iter() {
            free_chain(p.local_head.load(Ordering::Relaxed));
        }
    }
}

// SAFETY: shared state is reached only through atomics; items are pool-owned;
// segments are freed only on drop (exclusive access).
unsafe impl<T: Send> Send for HybridKPriority<T> {}
unsafe impl<T: Send> Sync for HybridKPriority<T> {}

/// One place's view of the hybrid structure.
pub struct HybridHandle<T: Send + 'static> {
    shared: Arc<HybridKPriority<T>>,
    place: u32,
    incarnation: u64,
    /// Current unpublished local list (owned chain of segments).
    chain_head: *mut HSeg<T>,
    chain_tail: *mut HSeg<T>,
    /// Fill level of `chain_tail` (owner-side mirror of its `len`).
    tail_fill: usize,
    /// Per-place item counter; tags are `next_local_idx · P + place`.
    next_local_idx: u64,
    /// Publication budget (Listing 3); `u64::MAX` plays the role of ∞.
    remaining_k: u64,
    pq: BinaryHeap<ItemRef<T>>,
    /// Place-local stash of free items; refilled/flushed in batches so
    /// the shared free list is touched once per batch, not per task.
    cache: ItemCache<T>,
    /// Read position in the global list.
    g_seg: *const HSeg<T>,
    g_idx: usize,
    last_victim: usize,
    rng: XorShift64,
    stats: PlaceStats,
}

// SAFETY: as for CentralizedHandle — exclusive local state, Arc-kept shared
// state, pool-owned items, drop-owned segments.
unsafe impl<T: Send + 'static> Send for HybridHandle<T> {}

impl<T: Send + 'static> HybridHandle<T> {
    #[inline]
    fn nplaces(&self) -> u64 {
        self.shared.nplaces as u64
    }

    /// Appends an item to the local list, growing the chain by a segment
    /// when needed. Visible to spies as soon as `len` is published.
    fn append_local(&mut self, item: *const Item<T>, tag: u64) {
        if self.chain_tail.is_null() || self.tail_fill == HSEGMENT_LEN {
            let seg = Box::into_raw(HSeg::boxed(self.place, self.incarnation, tag));
            if self.chain_head.is_null() {
                self.chain_head = seg;
                self.shared.places[self.place as usize]
                    .local_head
                    .store(seg, Ordering::Release);
            } else {
                // SAFETY: chain_tail is owned by this handle until publish.
                unsafe { &*self.chain_tail }
                    .next
                    .store(seg, Ordering::Release);
            }
            self.chain_tail = seg;
            self.tail_fill = 0;
        }
        // SAFETY: owned segment; slot writes precede the len publication.
        let seg = unsafe { &*self.chain_tail };
        seg.slots[self.tail_fill].store(item as *mut Item<T>, Ordering::Release);
        seg.len.store(self.tail_fill + 1, Ordering::Release);
        self.tail_fill += 1;
    }

    /// Appends the local list to the global list (Listing 3 lines 10–17).
    fn publish(&mut self) {
        if self.chain_head.is_null() {
            return;
        }
        loop {
            // Read the entire global list first — required for the push
            // linearization argument (Theorem 3) and it positions `g_seg`
            // at the actual tail.
            self.process_global_list();
            let last = self.g_seg as *mut HSeg<T>;
            // SAFETY: global segments live until structure drop.
            if unsafe { &*last }
                .next
                .compare_exchange(
                    ptr::null_mut(),
                    self.chain_head,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                break;
            }
            // Another place appended first — it made progress; retry.
        }
        self.shared.places[self.place as usize]
            .local_head
            .store(ptr::null_mut(), Ordering::Release);
        self.chain_head = ptr::null_mut();
        self.chain_tail = ptr::null_mut();
        self.tail_fill = 0;
        self.stats.publishes += 1;
    }

    /// Adds references to unread global-list items to the local priority
    /// queue (Listing 3 `processGlobalList`).
    fn process_global_list(&mut self) {
        loop {
            // SAFETY: global segments live until structure drop.
            let seg = unsafe { &*self.g_seg };
            let len = seg.len.load(Ordering::Acquire);
            let own = seg.owner == self.place && seg.incarnation == self.incarnation;
            if !own && seg.owner != SENTINEL_OWNER {
                for idx in self.g_idx..len {
                    let ptr = seg.slots[idx].load(Ordering::Acquire);
                    debug_assert!(!ptr.is_null(), "slot below len must be filled");
                    // SAFETY: pool-owned item.
                    let item = unsafe { &*ptr };
                    let tag = seg.base_tag + idx as u64 * self.nplaces();
                    if item.is_live_at(tag) {
                        self.pq.push(ItemRef {
                            prio: item.prio.load(Ordering::Relaxed),
                            tag,
                            ptr,
                        });
                        self.stats.ingested += 1;
                    }
                }
            }
            self.g_idx = len;
            let next = seg.next.load(Ordering::Acquire);
            if next.is_null() {
                return;
            }
            self.g_seg = next;
            self.g_idx = 0;
        }
    }

    /// Copies references from `victim`'s local list into our queue without
    /// removing anything (§4.2.2 spying). Returns the number of references
    /// gathered.
    fn spy_on(&mut self, victim: usize) -> u64 {
        let mut segp = self.shared.places[victim]
            .local_head
            .load(Ordering::Acquire);
        let mut got = 0u64;
        let mut segments = 0;
        while !segp.is_null() && segments < 64 {
            // SAFETY: segments are freed only at structure drop.
            let seg = unsafe { &*segp };
            if seg.owner as usize != victim {
                // The chain was published and other places' chains were
                // appended after it; stop at the ownership boundary.
                break;
            }
            let len = seg.len.load(Ordering::Acquire);
            for idx in 0..len {
                let ptr = seg.slots[idx].load(Ordering::Acquire);
                debug_assert!(!ptr.is_null());
                // SAFETY: pool-owned item.
                let item = unsafe { &*ptr };
                let tag = seg.base_tag + idx as u64 * self.nplaces();
                if item.place.load(Ordering::Relaxed) != self.place && item.is_live_at(tag) {
                    self.pq.push(ItemRef {
                        prio: item.prio.load(Ordering::Relaxed),
                        tag,
                        ptr,
                    });
                    got += 1;
                }
            }
            segments += 1;
            segp = seg.next.load(Ordering::Acquire);
        }
        got
    }

    /// Creates, tags and appends one task to the local list, charging the
    /// publication budget and publishing when it is exhausted (Listing 3
    /// minus the local-queue insertion, which batch callers defer).
    fn insert_local(&mut self, prio: u64, k: u64, task: T) -> ItemRef<T> {
        let ptr = self.cache.acquire(&self.shared.pool);
        // SAFETY: freshly acquired item, ours until published below.
        let item = unsafe { &*ptr };
        unsafe { item.init(self.place, k as u32, prio, task) };
        let tag = self.next_local_idx * self.nplaces() + self.place as u64;
        self.next_local_idx += 1;
        // Release store publishes the payload to any thread that later
        // observes this tag (spies and global readers revalidate via CAS).
        item.tag.store(tag, Ordering::Release);
        self.append_local(ptr, tag);
        self.remaining_k = self.remaining_k.saturating_sub(1).min(k);
        if self.remaining_k == 0 {
            self.publish();
            self.remaining_k = u64::MAX;
        }
        self.stats.pushes += 1;
        ItemRef { prio, tag, ptr }
    }

    /// Victim selection: last successful victim first, chasing each empty
    /// victim's own `last_victim` (§4.2.3), falling back to random places.
    /// Allowed to fail spuriously.
    fn spy(&mut self) -> bool {
        let p = self.shared.nplaces;
        if p == 1 {
            return false;
        }
        let me = self.place as usize;
        let mut candidate = self.last_victim;
        let attempts = (2 * p).max(4);
        for _ in 0..attempts {
            if candidate >= p || candidate == me {
                candidate = self.rng.below(p as u64) as usize;
                if candidate == me {
                    continue;
                }
            }
            if self.spy_on(candidate) > 0 {
                self.last_victim = candidate;
                self.shared.places[me]
                    .last_victim
                    .store(candidate, Ordering::Relaxed);
                self.stats.spies += 1;
                return true;
            }
            candidate = self.shared.places[candidate]
                .last_victim
                .load(Ordering::Relaxed);
        }
        false
    }
}

impl<T: Send + 'static> PoolHandle<T> for HybridHandle<T> {
    /// Listing 3. `k` bounds how many tasks may be added to the local list
    /// before this task must be made globally visible; `k = 0` publishes
    /// immediately.
    fn push(&mut self, prio: u64, k: usize, task: T) {
        let k = (k as u64).min(u32::MAX as u64);
        let r = self.insert_local(prio, k, task);
        self.pq.push(r);
    }

    /// Listing 4.
    fn pop_entry(&mut self) -> Option<(u64, T)> {
        loop {
            self.process_global_list();
            while let Some(r) = self.pq.pop() {
                // SAFETY: pool-owned item.
                let item = unsafe { &*r.ptr };
                if item.is_live_at(r.tag) {
                    if let Some(task) = item.try_take(r.tag) {
                        // SAFETY: unique take winner returns the item.
                        unsafe { self.cache.release(&self.shared.pool, r.ptr) };
                        self.stats.pops += 1;
                        return Some((r.prio, task));
                    }
                }
                self.stats.stale_refs += 1;
                self.process_global_list();
            }
            // Queue empty after reading the whole global list: spy.
            if !self.spy() {
                self.stats.failed_pops += 1;
                return None;
            }
        }
    }

    /// Batch push (Listing 3 amortized): one item-pool refill for the
    /// batch, the publication budget charged element-wise so the batch
    /// publishes at exactly the points the equivalent scalar pushes would
    /// (preserving ρ = P·k — at most `k` tasks of this place ever sit
    /// unpublished, batch or no batch), and a single bulk repair of the
    /// local queue at the end instead of one sift per task.
    fn push_batch(&mut self, k: usize, batch: &mut Vec<(u64, T)>) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len();
        let k = (k as u64).min(u32::MAX as u64);
        // One shared-free-list refill round for the whole batch.
        self.cache.prefetch(&self.shared.pool, n);
        let mut refs = Vec::with_capacity(n);
        for (prio, task) in batch.drain(..) {
            refs.push(self.insert_local(prio, k, task));
        }
        self.pq.extend_batch(refs);
    }

    /// Batch pop (Listing 4 amortized): one global-list read serves up to
    /// `max` takes; taken items recycle through the place-local cache.
    /// Spying is attempted only when the batch would otherwise be empty —
    /// a partial batch is already progress.
    fn try_pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut got = 0;
        loop {
            self.process_global_list();
            while got < max {
                let Some(r) = self.pq.pop() else { break };
                // SAFETY: pool-owned item.
                let item = unsafe { &*r.ptr };
                if item.is_live_at(r.tag) {
                    if let Some(task) = item.try_take(r.tag) {
                        // SAFETY: unique take winner returns the item.
                        unsafe { self.cache.release(&self.shared.pool, r.ptr) };
                        out.push(task);
                        got += 1;
                        continue;
                    }
                }
                self.stats.stale_refs += 1;
                self.process_global_list();
            }
            if got == 0 && self.spy() {
                continue;
            }
            break;
        }
        if got == 0 {
            self.stats.failed_pops += 1;
        } else {
            self.stats.pops += got as u64;
        }
        got
    }

    fn stats(&self) -> PlaceStats {
        self.stats
    }
}

impl<T: Send + 'static> Drop for HybridHandle<T> {
    fn drop(&mut self) {
        // Make any still-private tasks globally reachable so a future handle
        // (next incarnation) or other places can run them.
        self.publish();
        // Return stashed free items to the shared pool.
        self.cache.drain_to(&self.shared.pool);
        self.shared.handle_live[self.place as usize].store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(nplaces: usize) -> Arc<HybridKPriority<u64>> {
        Arc::new(HybridKPriority::new(nplaces))
    }

    #[test]
    fn single_place_pops_in_priority_order() {
        let p = pool(1);
        let mut h = p.handle(0);
        for &x in &[5u64, 2, 9, 1, 7, 2] {
            h.push(x, 4, x * 10);
        }
        let mut out = Vec::new();
        while let Some(t) = h.pop() {
            out.push(t);
        }
        assert_eq!(out, vec![10, 20, 20, 50, 70, 90]);
    }

    #[test]
    fn publish_triggers_after_k_pushes() {
        let p = pool(2);
        let mut h = p.handle(0);
        for i in 0..3u64 {
            h.push(i, 2, i);
        }
        // k = 2: after the 3rd push the budget of the 1st (set to 2) hits 0.
        assert_eq!(h.stats().publishes, 1);
        assert!(p.global_segments() >= 1);
    }

    #[test]
    fn k_zero_publishes_immediately() {
        let p = pool(2);
        let mut h = p.handle(0);
        h.push(1, 0, 10);
        assert_eq!(h.stats().publishes, 1);
        h.push(2, 0, 20);
        assert_eq!(h.stats().publishes, 2);
    }

    #[test]
    fn mixed_k_uses_strictest_budget() {
        let p = pool(2);
        let mut h = p.handle(0);
        h.push(1, 100, 1); // budget 100
        h.push(2, 3, 2); // budget min(99, 3) = 3
        h.push(3, 100, 3); // 2
        h.push(4, 100, 4); // 1
        assert_eq!(h.stats().publishes, 0);
        h.push(5, 100, 5); // 0 → publish
        assert_eq!(h.stats().publishes, 1);
    }

    #[test]
    fn other_place_reads_published_tasks_in_order() {
        let p = pool(2);
        let mut h0 = p.handle(0);
        let mut h1 = p.handle(1);
        for &x in &[4u64, 1, 3, 2] {
            h0.push(x, 0, x); // publish every push
        }
        let mut out = Vec::new();
        while let Some(t) = h1.pop() {
            out.push(t);
        }
        assert_eq!(out, vec![1, 2, 3, 4], "global list gives full order");
    }

    #[test]
    fn spying_reads_unpublished_tasks_without_removing() {
        let p = pool(2);
        let mut h0 = p.handle(0);
        let mut h1 = p.handle(1);
        // Large k: nothing is ever published.
        for &x in &[7u64, 5, 6] {
            h0.push(x, 1_000_000, x);
        }
        assert_eq!(h0.stats().publishes, 0);
        // Place 1 can still pop everything, via spying.
        let mut got = Vec::new();
        while let Some(t) = h1.pop() {
            got.push(t);
        }
        assert_eq!(got, vec![5, 6, 7]);
        assert!(h1.stats().spies >= 1);
        // The owner's list still physically holds the (taken) items; its own
        // pops must now find nothing.
        assert_eq!(h0.pop(), None);
    }

    #[test]
    fn owner_and_spy_each_get_task_exactly_once() {
        let p = pool(2);
        let mut h0 = p.handle(0);
        let mut h1 = p.handle(1);
        for i in 0..100u64 {
            h0.push(i, 1_000_000, i);
        }
        let mut got = Vec::new();
        loop {
            let a = h0.pop();
            let b = h1.pop();
            if let Some(x) = a {
                got.push(x);
            }
            if let Some(x) = b {
                got.push(x);
            }
            if a.is_none() && b.is_none() {
                break;
            }
        }
        got.sort();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chain_spans_multiple_segments() {
        let p = pool(2);
        let mut h = p.handle(0);
        let n = (HSEGMENT_LEN * 2 + 10) as u64;
        for i in 0..n {
            h.push(i, usize::MAX, i);
        }
        // Publish by dropping the handle; a new incarnation must recover all.
        drop(h);
        let mut h1 = p.handle(1);
        let mut count = 0u64;
        while h1.pop().is_some() {
            count += 1;
        }
        assert_eq!(count, n);
    }

    #[test]
    fn dropped_handle_publishes_remaining_tasks() {
        let p = pool(2);
        {
            let mut h = p.handle(0);
            h.push(1, 1_000_000, 11);
            h.push(2, 1_000_000, 22);
        }
        assert!(p.global_segments() >= 1, "drop must publish");
        let mut h1 = p.handle(1);
        assert_eq!(h1.pop(), Some(11));
        assert_eq!(h1.pop(), Some(22));
        assert_eq!(h1.pop(), None);
    }

    #[test]
    fn recreated_handle_recovers_own_published_tasks() {
        let p = pool(1);
        {
            let mut h = p.handle(0);
            for i in 0..5u64 {
                h.push(i, 0, i); // published immediately
            }
        }
        // Same place, new incarnation: must re-ingest its own old segments.
        let mut h = p.handle(0);
        let mut got = Vec::new();
        while let Some(t) = h.pop() {
            got.push(t);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "already has a live handle")]
    fn duplicate_handle_panics() {
        let p = pool(2);
        let _a = p.handle(1);
        let _b = p.handle(1);
    }

    /// Sequential ρ-relaxation oracle for the hybrid structure: a pop may
    /// only ignore live tasks that are among their pusher's k most recent
    /// pushes (ρ = P·k over all places).
    #[test]
    fn relaxation_bound_oracle_sequential() {
        let k = 4usize;
        let p = pool(2);
        let mut pusher = p.handle(0);
        let mut popper = p.handle(1);
        let mut live: Vec<(u64, u64)> = Vec::new(); // (prio, push_seq)
        let mut seq = 0u64;
        let mut rng = XorShift64::new(5);
        let mut pops = 0;
        while pops < 300 {
            if rng.below(2) == 0 || live.is_empty() {
                let prio = rng.below(1000);
                pusher.push(prio, k, prio);
                live.push((prio, seq));
                seq += 1;
            } else if let Some(got) = popper.pop() {
                pops += 1;
                let idx = live
                    .iter()
                    .position(|&(pr, _)| pr == got)
                    .expect("popped task must be live");
                let (got_prio, _) = live.remove(idx);
                for &(pr, s) in &live {
                    if pr < got_prio {
                        assert!(
                            seq - s <= k as u64 + 1,
                            "ignored task with prio {pr} pushed {} pushes ago (k = {k})",
                            seq - s
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn reclaim_frees_consumed_global_segments() {
        let p = pool(2);
        {
            let mut h0 = p.handle(0);
            let mut h1 = p.handle(1);
            let n = (HSEGMENT_LEN * 3) as u64;
            for i in 0..n {
                h0.push(i, 0, i); // publish immediately
            }
            while h1.pop().is_some() {}
        }
        let before = p.global_segments();
        assert!(before >= 3, "before = {before}");
        let freed = p.reclaim();
        assert!(freed >= 3, "freed = {freed}");
        assert_eq!(p.global_segments(), before - freed);
        // Structure remains usable; new tasks flow end to end.
        let mut h0 = p.handle(0);
        h0.push(5, 0, 55);
        drop(h0);
        let mut h1 = p.handle(1);
        assert_eq!(h1.pop(), Some(55));
    }

    #[test]
    fn reclaim_stops_at_live_items() {
        let p = pool(2);
        {
            let mut h0 = p.handle(0);
            for i in 0..(HSEGMENT_LEN as u64 * 2) {
                h0.push(i, 0, i);
            }
            let mut h1 = p.handle(1);
            // Take only the first segment's worth (pop returns priority
            // order, which equals insertion order here).
            for _ in 0..HSEGMENT_LEN {
                assert!(h1.pop().is_some());
            }
        }
        let freed = p.reclaim();
        assert!(freed >= 1);
        let mut h1 = p.handle(1);
        let mut rest = 0;
        while h1.pop().is_some() {
            rest += 1;
        }
        assert_eq!(rest, HSEGMENT_LEN);
    }

    #[test]
    #[should_panic(expected = "quiescence")]
    fn reclaim_with_live_handle_panics() {
        let p = pool(2);
        let _h = p.handle(0);
        p.reclaim();
    }

    #[test]
    fn concurrent_exactly_once_delivery() {
        let threads = 4usize;
        let per = 3_000u64;
        let p = pool(threads);
        let taken: Vec<std::sync::atomic::AtomicU32> =
            (0..threads as u64 * per).map(|_| 0.into()).collect();
        let taken = Arc::new(taken);
        let total_popped = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for t in 0..threads {
                let p = Arc::clone(&p);
                let taken = Arc::clone(&taken);
                let total_popped = Arc::clone(&total_popped);
                s.spawn(move || {
                    let mut h = p.handle(t);
                    let mut rng = XorShift64::new(t as u64 + 77);
                    let mut pushed = 0u64;
                    loop {
                        if pushed < per && rng.below(2) == 0 {
                            let payload = t as u64 * per + pushed;
                            h.push(rng.below(1 << 20), 8, payload);
                            pushed += 1;
                        } else if let Some(got) = h.pop() {
                            let prev = taken[got as usize].fetch_add(1, Ordering::Relaxed);
                            assert_eq!(prev, 0, "task {got} delivered twice");
                            total_popped.fetch_add(1, Ordering::Relaxed);
                        } else if pushed == per {
                            if total_popped.load(Ordering::Relaxed) == threads as u64 * per {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(total_popped.load(Ordering::Relaxed), threads as u64 * per);
        assert!(taken.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }
}

#[cfg(test)]
mod boundary_tests {
    use super::*;
    use crate::pool::{PoolHandle, TaskPool};
    use std::sync::Arc;

    #[test]
    fn publish_exactly_at_segment_boundary() {
        // k = HSEGMENT_LEN: the publish fires exactly when the local
        // segment is full, exercising the chain-of-one-full-segment path.
        let p = Arc::new(HybridKPriority::new(2));
        let mut h = p.handle(0);
        for i in 0..(HSEGMENT_LEN as u64 + 1) {
            h.push(i, HSEGMENT_LEN, i);
        }
        assert!(h.stats().publishes >= 1);
        drop(h);
        let mut h1 = p.handle(1);
        let mut n = 0;
        while h1.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, HSEGMENT_LEN as u64 + 1);
    }

    #[test]
    fn spy_sees_partially_filled_segment() {
        let p = Arc::new(HybridKPriority::new(2));
        let mut h0 = p.handle(0);
        // 3 items: far below a segment; never published (huge k).
        h0.push(3, usize::MAX, 30);
        h0.push(1, usize::MAX, 10);
        h0.push(2, usize::MAX, 20);
        let mut h1 = p.handle(1);
        assert_eq!(h1.pop(), Some(10), "spy reads the live prefix in order");
        assert_eq!(h1.pop(), Some(20));
        // The owner appends a better task. The spy's queue still holds a
        // live reference (task 30), so the next pop legally ignores the
        // newest task (§2.2 — it is within the last k added) …
        h0.push(0, usize::MAX, 5);
        assert_eq!(h1.pop(), Some(30));
        // … and the re-spy after the queue drains picks it up.
        assert_eq!(h1.pop(), Some(5));
        assert_eq!(h1.pop(), None);
    }

    #[test]
    fn chained_victim_lookup_finds_work() {
        // Place 2 spies place 1 (empty), which chased place 0 earlier.
        let p = Arc::new(HybridKPriority::new(3));
        let mut h0 = p.handle(0);
        for i in 0..10u64 {
            h0.push(i, usize::MAX, i);
        }
        let mut h1 = p.handle(1);
        assert!(h1.pop().is_some(), "place 1 spies place 0");
        let mut h2 = p.handle(2);
        // Whatever victim order place 2 tries, it must find the tasks.
        let mut got = 0;
        while h2.pop().is_some() {
            got += 1;
        }
        assert!(got > 0, "place 2 found work via random or chained victim");
    }

    #[test]
    fn empty_structure_pop_fails_fast() {
        let p = Arc::new(HybridKPriority::<u64>::new(4));
        let mut h = p.handle(2);
        assert_eq!(h.pop(), None);
        assert_eq!(h.stats().failed_pops, 1);
    }
}
