//! Blocked Cholesky factorization as a prioritized task DAG.
//!
//! The paper's introduction motivates priority scheduling with
//! "matrix algorithms-by-blocks" (Quintana-Ortí et al., cited as [16]):
//! such applications "resort to their own centralized scheduling scheme,
//! based on a shared priority queue" — exactly the congestion problem the
//! k-priority structures solve. This example implements tile Cholesky
//! (POTRF/TRSM/SYRK/GEMM tasks over a blocked SPD matrix) on the priosched
//! scheduler:
//!
//! * dependencies are tracked with per-task atomic counters; a task is
//!   spawned when its last input retires (help-first, §2);
//! * priorities follow the critical path: tasks on earlier panels run
//!   first, which keeps the factorization front narrow — the classic
//!   priority function for tile Cholesky;
//! * the result is verified against a sequential unblocked Cholesky and by
//!   reconstructing `L·Lᵀ ≈ A`.
//!
//! Run with: `cargo run --release --example cholesky_blocks`

use priosched::core::{HybridKPriority, Scheduler, SpawnCtx, TaskExecutor};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

const B: usize = 16; // tile edge
const NT: usize = 6; // tiles per dimension -> 96x96 matrix

type Tile = Vec<f64>; // B*B, row-major

/// The four tile kernels of right-looking Cholesky.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Kernel {
    /// Factorize diagonal tile (k, k).
    Potrf { k: usize },
    /// Solve L(i,k) = A(i,k) · L(k,k)^-T for i > k.
    Trsm { k: usize, i: usize },
    /// Update diagonal: A(i,i) -= L(i,k)·L(i,k)ᵀ.
    Syrk { k: usize, i: usize },
    /// Update off-diagonal: A(i,j) -= L(i,k)·L(j,k)ᵀ for k < j < i.
    Gemm { k: usize, i: usize, j: usize },
}

impl Kernel {
    /// Critical-path priority: panel index dominates (earlier panels
    /// unblock everything downstream), then kernel class.
    fn priority(self) -> u64 {
        match self {
            Kernel::Potrf { k } => (k as u64) << 8,
            Kernel::Trsm { k, .. } => ((k as u64) << 8) + 1,
            Kernel::Syrk { k, .. } => ((k as u64) << 8) + 2,
            Kernel::Gemm { k, .. } => ((k as u64) << 8) + 3,
        }
    }
}

struct Cholesky {
    /// Lower-triangular tiles, each behind its own lock (tasks touching the
    /// same tile are serialized by the dependency structure, but Rust wants
    /// the proof).
    tiles: Vec<Mutex<Tile>>,
    /// Remaining input count per kernel, indexed like `deps`.
    remaining: Vec<AtomicU32>,
    k_relax: usize,
}

fn tile_index(i: usize, j: usize) -> usize {
    debug_assert!(j <= i);
    i * (i + 1) / 2 + j
}

/// Dense kernel id for the `remaining` table.
fn kernel_index(kr: Kernel) -> usize {
    // Layout: for each panel k: potrf, then trsm(i), syrk(i), gemm(i,j).
    match kr {
        Kernel::Potrf { k } => k * (1 + 3 * NT * NT),
        Kernel::Trsm { k, i } => k * (1 + 3 * NT * NT) + 1 + i,
        Kernel::Syrk { k, i } => k * (1 + 3 * NT * NT) + 1 + NT + i,
        Kernel::Gemm { k, i, j } => k * (1 + 3 * NT * NT) + 1 + 2 * NT + i * NT + j,
    }
}

impl Cholesky {
    /// Number of inputs each kernel waits for.
    fn input_count(kr: Kernel) -> u32 {
        match kr {
            // potrf(k) waits for all syrk(k', k) with k' < k.
            Kernel::Potrf { k } => k as u32,
            // trsm(k,i) waits for potrf(k) + gemm(k', i, k) for k' < k.
            Kernel::Trsm { k, .. } => 1 + k as u32,
            // syrk(k,i) waits for trsm(k,i).
            Kernel::Syrk { .. } => 1,
            // gemm(k,i,j) waits for trsm(k,i) and trsm(k,j).
            Kernel::Gemm { .. } => 2,
        }
    }

    /// Signals that `kr`'s input retired; spawns it once all inputs are in.
    fn retire_input(&self, kr: Kernel, ctx: &mut SpawnCtx<'_, Kernel>) {
        let idx = kernel_index(kr);
        if self.remaining[idx].fetch_sub(1, Ordering::AcqRel) == 1 {
            ctx.spawn(kr.priority(), self.k_relax, kr);
        }
    }

    fn with_tile<R>(&self, i: usize, j: usize, f: impl FnOnce(&mut Tile) -> R) -> R {
        let mut t = self.tiles[tile_index(i, j)].lock().unwrap();
        f(&mut t)
    }

    fn with_two_tiles<R>(
        &self,
        a: (usize, usize),
        b: (usize, usize),
        f: impl FnOnce(&Tile, &mut Tile) -> R,
    ) -> R {
        let ta = self.tiles[tile_index(a.0, a.1)].lock().unwrap();
        let mut tb = self.tiles[tile_index(b.0, b.1)].lock().unwrap();
        f(&ta, &mut tb)
    }
}

// ---- dense micro-kernels (B×B tiles, row-major) ---------------------------

/// In-place unblocked Cholesky of a tile; returns false on non-SPD input.
fn potrf(a: &mut Tile) -> bool {
    for j in 0..B {
        let mut d = a[j * B + j];
        for t in 0..j {
            d -= a[j * B + t] * a[j * B + t];
        }
        if d <= 0.0 {
            return false;
        }
        let d = d.sqrt();
        a[j * B + j] = d;
        for i in (j + 1)..B {
            let mut s = a[i * B + j];
            for t in 0..j {
                s -= a[i * B + t] * a[j * B + t];
            }
            a[i * B + j] = s / d;
        }
        for t in (j + 1)..B {
            a[j * B + t] = 0.0; // zero the upper triangle
        }
    }
    true
}

/// B := B · A^{-T} with A lower triangular (right solve).
fn trsm(a: &Tile, b: &mut Tile) {
    for r in 0..B {
        for c in 0..B {
            let mut s = b[r * B + c];
            for t in 0..c {
                s -= b[r * B + t] * a[c * B + t];
            }
            b[r * B + c] = s / a[c * B + c];
        }
    }
}

/// C := C − A·Aᵀ (only the lower triangle matters downstream).
fn syrk(a: &Tile, c: &mut Tile) {
    for r in 0..B {
        for cc in 0..B {
            let mut s = 0.0;
            for t in 0..B {
                s += a[r * B + t] * a[cc * B + t];
            }
            c[r * B + cc] -= s;
        }
    }
}

/// C := C − A·Bᵀ.
fn gemm(a: &Tile, b: &Tile, c: &mut Tile) {
    for r in 0..B {
        for cc in 0..B {
            let mut s = 0.0;
            for t in 0..B {
                s += a[r * B + t] * b[cc * B + t];
            }
            c[r * B + cc] -= s;
        }
    }
}

impl TaskExecutor<Kernel> for Cholesky {
    fn execute(&self, kr: Kernel, ctx: &mut SpawnCtx<'_, Kernel>) {
        match kr {
            Kernel::Potrf { k } => {
                let ok = self.with_tile(k, k, potrf);
                assert!(ok, "matrix is not SPD at panel {k}");
                for i in (k + 1)..NT {
                    self.retire_input(Kernel::Trsm { k, i }, ctx);
                }
            }
            Kernel::Trsm { k, i } => {
                self.with_two_tiles((k, k), (i, k), trsm);
                self.retire_input(Kernel::Syrk { k, i }, ctx);
                for j in (k + 1)..NT {
                    if j < i {
                        self.retire_input(Kernel::Gemm { k, i, j }, ctx);
                    } else if j > i {
                        self.retire_input(Kernel::Gemm { k, i: j, j: i }, ctx);
                    }
                }
            }
            Kernel::Syrk { k, i } => {
                self.with_two_tiles((i, k), (i, i), syrk);
                // Each panel contributes one rank-B update to A(i,i);
                // potrf(i) waits for all i of them via its counter.
                self.retire_input(Kernel::Potrf { k: i }, ctx);
            }
            Kernel::Gemm { k, i, j } => {
                // A(i,j) -= L(i,k) · L(j,k)ᵀ, i > j > k.
                let la = self.tiles[tile_index(i, k)].lock().unwrap().clone();
                self.with_two_tiles((j, k), (i, j), |lb, c| gemm(&la, lb, c));
                self.retire_input(Kernel::Trsm { k: j, i }, ctx);
            }
        }
    }
}

// ---- reference + driver ----------------------------------------------------

/// Dense sequential Cholesky of an n×n matrix (row-major, lower output).
fn dense_cholesky(a: &[f64], n: usize) -> Vec<f64> {
    let mut l = vec![0.0; n * n];
    for j in 0..n {
        let mut d = a[j * n + j];
        for t in 0..j {
            d -= l[j * n + t] * l[j * n + t];
        }
        assert!(d > 0.0, "not SPD");
        let d = d.sqrt();
        l[j * n + j] = d;
        for i in (j + 1)..n {
            let mut s = a[i * n + j];
            for t in 0..j {
                s -= l[i * n + t] * l[j * n + t];
            }
            l[i * n + j] = s / d;
        }
    }
    l
}

fn main() {
    let n = B * NT;
    // Build a deterministic SPD matrix: A = M·Mᵀ + n·I.
    let mut state = 0xFEED_FACE_u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let m: Vec<f64> = (0..n * n).map(|_| rnd()).collect();
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for t in 0..n {
                s += m[i * n + t] * m[j * n + t];
            }
            a[i * n + j] = s + if i == j { n as f64 } else { 0.0 };
        }
    }

    // Tile the lower triangle.
    let mut tiles = Vec::new();
    for i in 0..NT {
        for j in 0..=i {
            let mut t = vec![0.0; B * B];
            for r in 0..B {
                for c in 0..B {
                    t[r * B + c] = a[(i * B + r) * n + (j * B + c)];
                }
            }
            tiles.push(Mutex::new(t));
        }
    }

    // Dependency counters.
    let mut remaining = Vec::new();
    remaining.resize_with(NT * (1 + 3 * NT * NT), || AtomicU32::new(0));
    for k in 0..NT {
        remaining[kernel_index(Kernel::Potrf { k })] =
            AtomicU32::new(Cholesky::input_count(Kernel::Potrf { k }).max(1));
        for i in (k + 1)..NT {
            remaining[kernel_index(Kernel::Trsm { k, i })] =
                AtomicU32::new(Cholesky::input_count(Kernel::Trsm { k, i }));
            remaining[kernel_index(Kernel::Syrk { k, i })] =
                AtomicU32::new(Cholesky::input_count(Kernel::Syrk { k, i }));
            for j in (k + 1)..i {
                remaining[kernel_index(Kernel::Gemm { k, i, j })] =
                    AtomicU32::new(Cholesky::input_count(Kernel::Gemm { k, i, j }));
            }
        }
    }
    // potrf(0) has no real inputs; its counter of 1 is released as the root.
    let chol = Cholesky {
        tiles,
        remaining,
        k_relax: 16,
    };

    let places = 4;
    let sched = Scheduler::from_pool(HybridKPriority::new(places));
    let t0 = std::time::Instant::now();
    let stats = sched.run(&chol, vec![(0, 16, Kernel::Potrf { k: 0 })]);
    let elapsed = t0.elapsed();

    // Expected task count: per panel k: 1 potrf + (NT-1-k) trsm + (NT-1-k)
    // syrk + C(NT-1-k, 2) gemm.
    let expect_tasks: u64 = (0..NT)
        .map(|k| {
            let r = (NT - 1 - k) as u64;
            1 + 2 * r + r * (r.saturating_sub(1)) / 2
        })
        .sum();
    assert_eq!(stats.executed, expect_tasks, "task DAG fully executed");

    // Verify against the dense reference, elementwise.
    let l_ref = dense_cholesky(&a, n);
    let mut max_err = 0.0f64;
    for i in 0..NT {
        for j in 0..=i {
            let t = chol.tiles[tile_index(i, j)].lock().unwrap();
            for r in 0..B {
                for c in 0..B {
                    let (gi, gj) = (i * B + r, j * B + c);
                    if gj <= gi {
                        let err = (t[r * B + c] - l_ref[gi * n + gj]).abs();
                        max_err = max_err.max(err);
                    }
                }
            }
        }
    }
    assert!(max_err < 1e-9, "max |L - L_ref| = {max_err}");
    println!(
        "tile Cholesky {n}×{n} ({NT}×{NT} tiles of {B}×{B}): \
         {} tasks on {places} places in {elapsed:.2?}",
        stats.executed
    );
    println!("max deviation from dense reference: {max_err:.2e}");
    println!("\nTasks were prioritized by panel (critical path): the paper's");
    println!("motivating use case [16] for priority task scheduling.");
}
