#![warn(missing_docs)]

//! Sequential priority queues used as place-local components.
//!
//! All three scheduling data structures of Wimmer et al. (PPoPP 2014) keep a
//! *sequential* priority queue per place (thread): the paper notes in §4.1
//! that "any sequential implementation of a priority queue can be used, since
//! each priority queue is only accessed in the context of a single place".
//!
//! This crate provides two such implementations behind a common trait:
//!
//! * [`BinaryHeap`] — array-backed binary min-heap; the default everywhere.
//! * [`PairingHeap`] — pointer-based pairing heap with two-pass melding;
//!   useful as an independent implementation for differential testing and as
//!   a better fit for workloads with heavy `meld`/bulk insertion.
//!
//! Both are **min**-queues: `pop` returns the smallest element, matching the
//! paper's convention for the SSSP evaluation ("priority, smaller is
//! better" in Listing 5).
//!
//! Beyond the textbook operations, the trait carries two operations the
//! scheduler needs:
//!
//! * [`SequentialPriorityQueue::split_half`] — remove roughly half of the
//!   elements (an arbitrary half, *not* the best half) and return them as a
//!   new queue. This implements the steal-half policy of the priority
//!   work-stealing structure (§3.1, citing Hendler & Shavit).
//! * [`SequentialPriorityQueue::retain`] — drop entries that no longer need
//!   to be scheduled. This backs the lazy dead-task elimination described in
//!   §5.1.

pub mod binary_heap;
pub mod dary_heap;
pub mod pairing_heap;

pub use binary_heap::BinaryHeap;
pub use dary_heap::{DaryHeap, QuaternaryHeap};
pub use pairing_heap::PairingHeap;

/// A sequential min-priority queue.
///
/// Implementations are not thread-safe by design: the scheduler guarantees
/// single-threaded access per place (or wraps the queue in a lock for the
/// work-stealing structure).
pub trait SequentialPriorityQueue<T: Ord>: Default {
    /// Creates an empty queue.
    fn new() -> Self;

    /// Inserts an element.
    fn push(&mut self, item: T);

    /// Removes and returns the smallest element, or `None` when empty.
    fn pop(&mut self) -> Option<T>;

    /// Returns a reference to the smallest element without removing it.
    fn peek(&self) -> Option<&T>;

    /// Number of stored elements.
    fn len(&self) -> usize;

    /// `true` when no elements are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all elements.
    fn clear(&mut self);

    /// Removes roughly half of the elements (⌈len/2⌉ of them, an arbitrary
    /// half by priority) and returns them as a new queue of the same type.
    ///
    /// Used by the work-stealing structure: "it chooses a random place and
    /// steals half the tasks from that place's priority queue" (§3.1).
    fn split_half(&mut self) -> Self;

    /// Keeps only the elements for which `keep` returns `true`.
    ///
    /// Backs lazy dead-task elimination (§5.1): entries whose task has become
    /// irrelevant (e.g. an SSSP node whose tentative distance has improved
    /// since the entry was created) can be swept without popping them.
    fn retain<F: FnMut(&T) -> bool>(&mut self, keep: F);

    /// Moves all elements of `other` into `self`, leaving `other` empty.
    fn append(&mut self, other: &mut Self);

    /// Drains the queue in an arbitrary order into a vector.
    ///
    /// Primarily for tests and for rebuilding after bulk operations; callers
    /// that need sorted output should `pop` repeatedly instead.
    fn drain_unordered(&mut self) -> Vec<T>;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn exercise<Q: SequentialPriorityQueue<i64>>() {
        let mut q = Q::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push(5);
        q.push(1);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek(), Some(&1));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(5));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn binary_heap_basics() {
        exercise::<BinaryHeap<i64>>();
    }

    #[test]
    fn pairing_heap_basics() {
        exercise::<PairingHeap<i64>>();
    }
}
