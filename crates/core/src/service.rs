//! A long-lived pool service: workers that outlive any single drain.
//!
//! [`crate::Scheduler::run_stream`] still has a closed lifecycle — it
//! returns at quiescence and the worker threads die with it. A service
//! frontend (async runtime, network ingress) wants the opposite shape:
//! start the workers once, then [`PoolService::submit`] and
//! [`PoolService::join`] repeatedly, paying thread startup never and pool
//! construction once.
//!
//! The trick is that the service *is* a producer: it holds one
//! [`IngestHandle`] of its own, so the producer refcount that gates
//! streamed termination (see [`crate::ingest`]) never reaches zero while
//! the service lives. Workers therefore **park** (see [`crate::park`])
//! through arbitrarily long gaps between submissions — a quiescent
//! service consumes no CPU — and [`PoolService::shutdown`] is nothing but
//! "drop that last handle, then join" — quiescence, the same condition
//! `run_stream` uses, becomes the orderly shutdown protocol.
//!
//! With [`PoolService::start_with_capacity`] (or
//! [`crate::PoolBuilder::lane_capacity`]) the ingress lanes are bounded:
//! [`PoolService::try_submit`] sheds with a typed [`SubmitError`] when
//! every lane is full, while the blocking [`PoolService::submit`] parks
//! the producer until a drain frees room. Either way, **after an abort**
//! (a task panicked under `FaultPolicy::AbortRun` — [`PoolService::join`]
//! returned `Err(PoolAborted)` — or the service was dropped without
//! shutdown) all submission paths fail with [`SubmitError::Aborted`] and
//! hand the task back, instead of silently accepting work that would be
//! discarded at shutdown. Start with [`PoolService::start_with_policy`]
//! and `FaultPolicy::Isolate` to quarantine panicking tasks instead of
//! aborting — see the "Failure handling" section of the crate docs.

use crate::async_ingest::{AsyncIngestHandle, JoinFuture};
use crate::ingest::{IngestHandle, IngressLanes, SubmitError};
use crate::pool::{FaultPolicy, PoolHandle, TaskPool};
use crate::scheduler::{place_loop, FailureReport, FaultCell, PoolAborted, RunStats, TaskExecutor};
use crate::stats::PlaceStats;
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::thread;
use std::sync::Arc;
use std::time::Instant;

/// Error from [`PoolService::shutdown`] when the pool aborted
/// (`FaultPolicy::AbortRun` and a task panicked): the aborting failure
/// plus the statistics accumulated up to the abort — shutdown never
/// resumes the panic on the caller.
#[derive(Debug)]
pub struct ShutdownError {
    /// The failure that raised the abort flag.
    pub failure: FailureReport,
    /// Lifetime statistics up to the abort (`failed`/`failures`
    /// populated).
    pub stats: RunStats,
}

impl std::fmt::Display for ShutdownError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool service aborted: {}", self.failure)
    }
}

impl std::error::Error for ShutdownError {}

/// A running pool with its worker threads, accepting external submissions.
///
/// Built from any [`TaskPool`] + executor pair via [`PoolService::start`],
/// or from a runtime-selected structure via
/// [`crate::PoolBuilder::service`]. See the module docs for the lifecycle.
pub struct PoolService<T: Send + 'static> {
    lanes: IngressLanes<T>,
    /// The service's own producer slot; taken (dropped) at shutdown.
    handle: Option<IngestHandle<T>>,
    pending: Arc<AtomicU64>,
    abort: Arc<AtomicBool>,
    faults: Arc<FaultCell>,
    workers: Vec<thread::JoinHandle<(u64, u64, PlaceStats)>>,
    started: Instant,
}

impl<T: Send + 'static> PoolService<T> {
    /// Starts one worker thread per place of `pool`, all running the
    /// streamed §2 loop against `executor`.
    ///
    /// The workers keep running — through any number of drains — until
    /// [`PoolService::shutdown`] (or drop) releases the service's producer
    /// handle and every external [`IngestHandle`] is gone.
    pub fn start<P, E>(pool: Arc<P>, executor: Arc<E>) -> Self
    where
        P: TaskPool<T>,
        E: TaskExecutor<T> + Send + Sync + 'static,
    {
        Self::start_with_capacity(pool, executor, None)
    }

    /// Like [`PoolService::start`], with a per-lane ingress capacity
    /// (`None` = unbounded): submissions shed ([`PoolService::try_submit`])
    /// or block ([`PoolService::submit`]) once a lane is full, giving the
    /// service real backpressure against producers that outpace the
    /// workers.
    ///
    /// # Panics
    /// Panics if `lane_capacity` is `Some(0)`.
    pub fn start_with_capacity<P, E>(
        pool: Arc<P>,
        executor: Arc<E>,
        lane_capacity: Option<usize>,
    ) -> Self
    where
        P: TaskPool<T>,
        E: TaskExecutor<T> + Send + Sync + 'static,
    {
        Self::start_with_policy(pool, executor, lane_capacity, FaultPolicy::AbortRun)
    }

    /// Like [`PoolService::start_with_capacity`], additionally selecting
    /// what the workers do when a task panics (see [`FaultPolicy`]). Under
    /// `Isolate` a panicking task is quarantined into a [`FailureReport`]
    /// ([`PoolService::failed`]/[`PoolService::shutdown`] stats) and the
    /// service keeps serving.
    ///
    /// # Panics
    /// Panics if `lane_capacity` is `Some(0)`.
    pub fn start_with_policy<P, E>(
        pool: Arc<P>,
        executor: Arc<E>,
        lane_capacity: Option<usize>,
        fault_policy: FaultPolicy,
    ) -> Self
    where
        P: TaskPool<T>,
        E: TaskExecutor<T> + Send + Sync + 'static,
    {
        let nplaces = pool.num_places();
        let lanes = IngressLanes::with_capacity(nplaces, lane_capacity);
        // Mint the service's own handle before any worker can observe the
        // producer count: a worker started against zero producers would
        // terminate immediately.
        let handle = lanes.handle();
        let pending = Arc::new(AtomicU64::new(0));
        let abort = Arc::new(AtomicBool::new(false));
        let faults = Arc::new(FaultCell::new(fault_policy));
        let mut workers = Vec::with_capacity(nplaces);
        for place in 0..nplaces {
            let pool = Arc::clone(&pool);
            let executor = Arc::clone(&executor);
            let pending = Arc::clone(&pending);
            let abort = Arc::clone(&abort);
            let faults = Arc::clone(&faults);
            let shared = Arc::clone(lanes.shared());
            let join = thread::Builder::new()
                .name(format!("priosched-place-{place}"))
                .spawn(move || {
                    let mut handle = pool.handle(place);
                    let (executed, dead) = place_loop(
                        &mut handle,
                        &*executor,
                        &pending,
                        &abort,
                        &faults,
                        Some(&shared),
                        place,
                    );
                    (executed, dead, handle.stats())
                })
                .expect("failed to spawn pool-service worker thread");
            workers.push(join);
        }
        PoolService {
            lanes,
            handle: Some(handle),
            pending,
            abort,
            faults,
            workers,
            started: Instant::now(),
        }
    }

    /// Submits one task with priority `prio` (smaller = higher) and
    /// relaxation bound `k` through the service's own ingest handle,
    /// **blocking** (parking) while every bounded lane is at capacity.
    ///
    /// Fails — handing the task back — once the pool has aborted
    /// ([`SubmitError::Aborted`]: a task panicked, so the workers have
    /// exited and the submission would be silently discarded at shutdown)
    /// or shut down ([`SubmitError::ShutDown`]). A live, unbounded
    /// service always returns `Ok`.
    pub fn submit(&mut self, prio: u64, k: usize, task: T) -> Result<(), SubmitError<T>> {
        self.own_handle().submit(prio, k, task)
    }

    /// Non-blocking [`PoolService::submit`]: sheds with
    /// [`SubmitError::Full`] (task handed back) instead of parking when
    /// every lane is at capacity.
    pub fn try_submit(&mut self, prio: u64, k: usize, task: T) -> Result<(), SubmitError<T>> {
        self.own_handle().try_submit(prio, k, task)
    }

    /// Submits a batch sharing relaxation bound `k` (one lane, one lock;
    /// element-wise `k`/ρ accounting on drain), draining `batch` on
    /// success; blocks while full, chunking batches larger than the lane
    /// capacity. On `Err` the unsubmitted items are handed back in
    /// `batch`. Same abort/shutdown semantics as [`PoolService::submit`].
    pub fn submit_batch(&mut self, k: usize, batch: &mut Vec<(u64, T)>) -> Result<(), SubmitError> {
        self.own_handle().submit_batch(k, batch)
    }

    /// Non-blocking [`PoolService::submit_batch`]: all-or-nothing, with
    /// the whole batch handed back on [`SubmitError::Full`].
    pub fn try_submit_batch(
        &mut self,
        k: usize,
        batch: &mut Vec<(u64, T)>,
    ) -> Result<(), SubmitError> {
        self.own_handle().try_submit_batch(k, batch)
    }

    /// Mints an [`IngestHandle`] for an external producer thread. The
    /// service stays alive until **all** such handles are dropped *and*
    /// [`PoolService::shutdown`] ran.
    pub fn ingest_handle(&self) -> IngestHandle<T> {
        self.lanes.handle()
    }

    /// Mints an [`AsyncIngestHandle`] for an async producer (connection
    /// actor, request handler): same producer lineage and refcount as
    /// [`PoolService::ingest_handle`], but `Full` lanes make the submit
    /// futures `Pending` (waker deposited where the blocking path parks a
    /// thread) instead of blocking. See [`crate::async_ingest`].
    pub fn async_ingest_handle(&self) -> AsyncIngestHandle<T> {
        self.lanes.handle().into_async()
    }

    /// Blocks until everything submitted so far has been executed (lanes
    /// empty, outstanding-task counter zero) — the workers stay running
    /// for the next round of submissions. Returns `Err(PoolAborted)` with
    /// the aborting failure if the pool aborted on a task panic instead
    /// (`FaultPolicy::AbortRun`); under `Isolate` a drain with quarantined
    /// failures is still `Ok` — inspect [`PoolService::failed`].
    ///
    /// Event-driven: the caller parks on the control slot and is woken by
    /// the pending counter reaching zero (the last task of a drain) or by
    /// an abort — no polling. The register → re-check → park protocol
    /// (see [`crate::park`]) closes the race against a drain that
    /// completes between the check and the sleep.
    pub fn join(&self) -> Result<(), PoolAborted> {
        let drained =
            |this: &Self| this.lanes.queued() == 0 && this.pending.load(Ordering::Acquire) == 0;
        let control = self.lanes.shared().parker().control();
        loop {
            if self.abort.load(Ordering::Acquire) {
                return Err(self.aborted());
            }
            if drained(self) {
                // Re-check after observing the drain: a panicking task
                // records its failure and raises the abort flag before
                // releasing its pending count, so a panic-caused drain is
                // visible here.
                if self.abort.load(Ordering::Acquire) {
                    return Err(self.aborted());
                }
                return Ok(());
            }
            let token = control.prepare();
            if self.abort.load(Ordering::Acquire) || drained(self) {
                control.cancel();
                continue; // loop head resolves which of the two it was
            }
            control.park(token);
        }
    }

    /// The typed abort outcome: the first recorded failure. The abort flag
    /// is raised *after* the failure record (see `SpawnCtx::run_one`), so
    /// an observed abort implies a visible report; the fallback covers
    /// only abortive teardown paths that never had a panicking task.
    fn aborted(&self) -> PoolAborted {
        PoolAborted {
            failure: self.faults.first_failure().unwrap_or(FailureReport {
                place: 0,
                prio: 0,
                message: "pool aborted".to_string(),
            }),
        }
    }

    /// Async sibling of [`PoolService::join`]: a future that resolves to
    /// `Ok(())` once everything submitted so far has been executed (lanes
    /// empty, outstanding-task counter zero — the service's quiescence
    /// condition short of dropping producers), or `Err(PoolAborted)` if
    /// the pool aborted on a task panic. The future deposits its waker on
    /// the control slot where the blocking join parks, so it is woken by
    /// the same pending-counter-reaches-zero / abort events, and it
    /// revokes the deposit when dropped before the drain.
    pub fn join_async(&self) -> JoinFuture<'_, T> {
        JoinFuture::new(
            self.lanes.shared(),
            &self.pending,
            &self.abort,
            &self.faults,
        )
    }

    /// Number of task failures recorded so far: quarantined panics under
    /// `FaultPolicy::Isolate`, or the aborting panic under `AbortRun`.
    pub fn failed(&self) -> u64 {
        self.faults.failed()
    }

    /// Total idle-path iterations of the worker loops so far. A healthy
    /// quiescent service **parks**: this counter stops advancing once the
    /// workers have gone idle (the no-busy-wait guarantee, pinned by the
    /// `backpressure` integration tests).
    pub fn idle_iters(&self) -> u64 {
        self.lanes.shared().parker().idle_iters()
    }

    /// The per-lane ingress capacity (`None` = unbounded).
    pub fn lane_capacity(&self) -> Option<usize> {
        self.lanes.capacity()
    }

    /// Number of places (== worker threads == ingress lanes).
    pub fn places(&self) -> usize {
        self.lanes.num_lanes()
    }

    /// Tasks submitted but not yet transferred into the pool.
    pub fn queued(&self) -> u64 {
        self.lanes.queued()
    }

    /// Drops the service's producer handle, waits for quiescence, joins
    /// the workers, and returns the aggregated statistics of the service's
    /// whole lifetime. If the pool aborted on a task panic
    /// (`FaultPolicy::AbortRun`), returns a typed [`ShutdownError`]
    /// carrying the failure and the partial stats — never a resumed
    /// panic. Under `Isolate`, quarantined failures ride along on
    /// `Ok(stats)` (`RunStats::failed`/`failures`).
    ///
    /// Blocks until every external [`IngestHandle`] is dropped — they are
    /// the remaining producers the quiescence protocol waits on.
    // Called once per service lifetime; the fat Err (full RunStats +
    // failure) is worth more to callers than a boxed indirection.
    #[allow(clippy::result_large_err)]
    pub fn shutdown(mut self) -> Result<RunStats, ShutdownError> {
        let per_place = self.shutdown_inner();
        // The payload is intentionally dropped: failures surface as typed
        // results here, not as a resumed panic.
        let _ = self.faults.take_payload();
        let mut stats = RunStats {
            elapsed: self.started.elapsed(),
            failed: self.faults.failed(),
            failures: self.faults.take_failures(),
            per_place_executed: per_place.iter().map(|(e, _, _)| *e).collect(),
            ..RunStats::default()
        };
        for (executed, dead, pool_stats) in per_place {
            stats.executed += executed;
            stats.dead += dead;
            stats.pool.merge(&pool_stats);
        }
        if self.abort.load(Ordering::Acquire) {
            if let Some(failure) = stats.failures.first().cloned() {
                return Err(ShutdownError { failure, stats });
            }
        }
        Ok(stats)
    }

    fn own_handle(&mut self) -> &mut IngestHandle<T> {
        self.handle
            .as_mut()
            .expect("PoolService handle present until shutdown")
    }

    fn shutdown_inner(&mut self) -> Vec<(u64, u64, PlaceStats)> {
        self.handle = None; // release the service's producer slot
        let per_place = self
            .workers
            .drain(..)
            .map(|j| {
                j.join()
                    .expect("pool-service worker thread itself panicked")
            })
            .collect();
        // The workers are gone; nothing will ever drain these lanes again.
        // Mark them so any straggling submission fails with `ShutDown`
        // instead of queueing into the void.
        self.lanes.shared().shut_down_and_wake();
        per_place
    }
}

impl<T: Send + 'static> Drop for PoolService<T> {
    /// Dropping without [`PoolService::shutdown`] is an *abortive* stop:
    /// the abort flag is raised so workers exit after their current task
    /// (not-yet-executed submissions are discarded with the pool), then
    /// the workers are joined. Raising abort is what keeps an implicit
    /// drop — including one during a panic unwind — from hanging forever
    /// on external [`IngestHandle`]s that will never be dropped; only the
    /// explicit `shutdown` waits for full quiescence. No panic payload is
    /// re-raised — dropping is not the place to unwind.
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.abort.store(true, Ordering::Release);
            // Poison the lanes and wake everything: parked workers must
            // observe the abort to exit, and producers blocked on full
            // lanes must fail with `Aborted` rather than sleep forever.
            self.lanes.shared().abort_and_wake();
            let _ = self.shutdown_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::HybridKPriority;
    use crate::scheduler::SpawnCtx;
    use crate::workstealing::PriorityWorkStealing;

    /// Counts executions; spawns a countdown chain below each submitted
    /// value, so submissions transitively create in-pool work.
    struct CountDown(AtomicU64);
    impl TaskExecutor<u64> for CountDown {
        fn execute(&self, task: u64, ctx: &mut SpawnCtx<'_, u64>) {
            self.0.fetch_add(1, Ordering::Relaxed);
            if task > 0 {
                ctx.spawn(task - 1, 8, task - 1);
            }
        }
    }

    #[test]
    fn submit_join_rounds_then_shutdown() {
        let exec = Arc::new(CountDown(AtomicU64::new(0)));
        let pool = Arc::new(HybridKPriority::new(2));
        let mut svc = PoolService::start(pool, Arc::clone(&exec));
        assert_eq!(svc.places(), 2);

        svc.submit(5, 8, 5u64).unwrap(); // 5,4,3,2,1,0 → 6 executions
        svc.join().unwrap();
        assert_eq!(exec.0.load(Ordering::Relaxed), 6);

        // The service survives the drain: a second round reuses the same
        // workers and pool.
        svc.submit(2, 8, 2u64).unwrap();
        svc.submit(1, 8, 1u64).unwrap();
        svc.join().unwrap();
        assert_eq!(exec.0.load(Ordering::Relaxed), 6 + 3 + 2);

        let stats = svc.shutdown().expect("clean shutdown");
        assert_eq!(stats.executed, 11);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.per_place_executed.len(), 2);
    }

    #[test]
    fn external_producers_feed_through_ingest_handles() {
        let exec = Arc::new(CountDown(AtomicU64::new(0)));
        let svc = {
            let pool = Arc::new(PriorityWorkStealing::new(4));
            PoolService::start(pool, Arc::clone(&exec))
        };
        let producers = 4u64;
        let per = 100u64;
        std::thread::scope(|s| {
            for _ in 0..producers {
                let mut h = svc.ingest_handle();
                s.spawn(move || {
                    let mut batch = Vec::new();
                    for i in 0..per {
                        batch.push((i, i));
                        if batch.len() == 16 {
                            h.submit_batch(8, &mut batch).unwrap();
                        }
                    }
                    h.submit_batch(8, &mut batch).unwrap();
                });
            }
        });
        svc.join().unwrap();
        // Every submitted value i runs itself plus its countdown chain:
        // i + 1 executions.
        let expect: u64 = producers * (0..per).map(|i| i + 1).sum::<u64>();
        assert_eq!(exec.0.load(Ordering::Relaxed), expect);
        let stats = svc.shutdown().expect("clean shutdown");
        assert_eq!(stats.executed, expect);
    }

    struct PanicOn13;
    impl TaskExecutor<u64> for PanicOn13 {
        fn execute(&self, t: u64, _ctx: &mut SpawnCtx<'_, u64>) {
            if t == 13 {
                panic!("boom at 13");
            }
        }
    }

    #[test]
    fn task_panic_surfaces_as_typed_results() {
        let pool = Arc::new(PriorityWorkStealing::new(2));
        let mut svc = PoolService::start(pool, Arc::new(PanicOn13));
        svc.submit(13, 0, 13u64).unwrap();
        let aborted = svc.join().expect_err("join must report the abort");
        assert_eq!(aborted.failure.prio, 13);
        assert!(
            aborted.failure.message.contains("boom at 13"),
            "got: {aborted}"
        );
        assert_eq!(svc.failed(), 1);
        let err = svc
            .shutdown()
            .expect_err("shutdown must report the abort as a typed error");
        assert!(err.failure.message.contains("boom at 13"), "got: {err}");
        assert_eq!(err.stats.failed, 1);
        assert_eq!(err.stats.failures[0].prio, 13);
    }

    #[test]
    fn isolate_policy_keeps_service_running_past_panics() {
        let exec = Arc::new(CountDown(AtomicU64::new(0)));
        struct Mixed(Arc<CountDown>);
        impl TaskExecutor<u64> for Mixed {
            fn execute(&self, t: u64, ctx: &mut SpawnCtx<'_, u64>) {
                if t == 13 {
                    panic!("boom at 13");
                }
                self.0.execute(t, ctx);
            }
        }
        let pool = Arc::new(PriorityWorkStealing::new(2));
        let mut svc = PoolService::start_with_policy(
            pool,
            Arc::new(Mixed(Arc::clone(&exec))),
            Some(8),
            FaultPolicy::Isolate,
        );
        svc.submit(13, 0, 13u64).unwrap();
        svc.submit(3, 8, 3u64).unwrap();
        svc.join().expect("isolated failures do not abort");
        assert_eq!(svc.failed(), 1);
        // The service keeps serving after the quarantine.
        svc.submit(2, 8, 2u64).unwrap();
        svc.join().unwrap();
        let stats = svc.shutdown().expect("isolate shuts down cleanly");
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.failures[0].message, "boom at 13");
        // 3,2,1,0 + 2,1,0 executed; the bomb is quarantined, not counted.
        assert_eq!(stats.executed, 7);
    }

    #[test]
    fn idle_service_shuts_down_cleanly() {
        let pool = Arc::new(HybridKPriority::new(3));
        let svc: PoolService<u64> =
            PoolService::start(pool, Arc::new(CountDown(AtomicU64::new(0))));
        svc.join().expect("an idle service is trivially drained");
        let stats = svc.shutdown().expect("clean shutdown");
        assert_eq!(stats.executed, 0);
        assert_eq!(stats.per_place_executed, vec![0, 0, 0]);
    }

    #[test]
    fn dropping_service_with_live_external_handle_does_not_hang() {
        let exec = Arc::new(CountDown(AtomicU64::new(0)));
        let pool = Arc::new(HybridKPriority::new(2));
        let svc: PoolService<u64> = PoolService::start(pool, exec);
        let external = svc.ingest_handle();
        // Implicit drop must abort and join even though `external` still
        // holds a producer slot (quiescence would wait on it forever).
        drop(svc);
        drop(external);
    }

    #[test]
    fn dropping_service_joins_workers() {
        let exec = Arc::new(CountDown(AtomicU64::new(0)));
        {
            let pool = Arc::new(HybridKPriority::new(2));
            let mut svc = PoolService::start(pool, Arc::clone(&exec));
            svc.submit(3, 8, 3u64).unwrap();
            svc.join().unwrap();
            // No shutdown: Drop must still release the producer slot and
            // join the workers without hanging.
        }
        assert_eq!(exec.0.load(Ordering::Relaxed), 4);
    }
}
