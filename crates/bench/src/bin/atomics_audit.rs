//! CI gate: every atomic, lock, and thread primitive in `priosched-core`
//! must route through the `crate::sync` facade.
//!
//! The facade is what lets `--cfg loom` swap the whole crate onto the
//! in-tree loom shim for model checking (see the crate's "Model-checked
//! properties" docs) — a single direct `std::sync::atomic` / `std::thread`
//! / `parking_lot` import silently exempts that code from every
//! interleaving the models explore. This binary walks `crates/core/src`,
//! strips comments and everything at or below the first `#[cfg(test)]`
//! line (test modules run only in non-loom builds and may use std
//! directly), and fails if any forbidden import survives. It also prints a
//! per-module census of `Ordering::` usage by flavor, so ordering-strength
//! creep shows up in CI logs.
//!
//! Usage: `cargo run -p priosched-bench --bin atomics_audit` (run from
//! anywhere inside the workspace; the core source dir is located relative
//! to `CARGO_MANIFEST_DIR`).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Substrings that must not appear outside the facade and test modules.
const FORBIDDEN: &[&str] = &["std::sync::atomic", "std::thread", "parking_lot"];

/// The facade itself is the one legitimate home for direct imports.
const EXEMPT_FILES: &[&str] = &["sync.rs"];

const FLAVORS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn core_src_dir() -> PathBuf {
    // crates/bench -> crates -> workspace root -> crates/core/src
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("bench crate lives under crates/")
        .join("core")
        .join("src")
}

/// The auditable prefix of a source file: comment lines blanked, truncated
/// at the first line that is exactly a `#[cfg(test)]` attribute.
fn auditable_lines(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed == "#[cfg(test)]" {
            break;
        }
        if trimmed.starts_with("//") {
            out.push((idx + 1, String::new()));
        } else {
            out.push((idx + 1, line.to_string()));
        }
    }
    out
}

fn main() -> ExitCode {
    let dir = core_src_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            (path.extension().is_some_and(|x| x == "rs")).then_some(path)
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .rs files under {}", dir.display());

    let mut violations = Vec::new();
    let mut census: BTreeMap<String, BTreeMap<&str, usize>> = BTreeMap::new();

    for path in &files {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let lines = auditable_lines(&text);

        let counts = census.entry(name.clone()).or_default();
        for (_, line) in &lines {
            for flavor in FLAVORS {
                counts.entry(flavor).or_insert(0);
                let pat = format!("Ordering::{flavor}");
                *counts.get_mut(flavor).unwrap() += line.matches(&pat).count();
            }
        }

        if EXEMPT_FILES.contains(&name.as_str()) {
            continue;
        }
        for (lineno, line) in &lines {
            for pat in FORBIDDEN {
                if line.contains(pat) {
                    violations.push(format!("{name}:{lineno}: `{pat}` — {}", line.trim()));
                }
            }
        }
    }

    println!(
        "atomics audit: {} files under {}",
        files.len(),
        dir.display()
    );
    println!(
        "\n{:<18} {:>8} {:>8} {:>8} {:>7} {:>7}",
        "module", "Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"
    );
    for (name, counts) in &census {
        if counts.values().all(|&c| c == 0) {
            continue;
        }
        println!(
            "{:<18} {:>8} {:>8} {:>8} {:>7} {:>7}",
            name,
            counts["Relaxed"],
            counts["Acquire"],
            counts["Release"],
            counts["AcqRel"],
            counts["SeqCst"]
        );
    }

    if violations.is_empty() {
        println!("\nOK: all sync primitives route through crate::sync");
        ExitCode::SUCCESS
    } else {
        println!(
            "\nFAIL: {} direct sync import(s) bypass the crate::sync facade",
            violations.len()
        );
        for v in &violations {
            println!("  {v}");
        }
        println!("route them through crate::sync so loom models cover this code");
        ExitCode::FAILURE
    }
}
