//! Figure 4: total execution time and nodes relaxed for varying P
//! (n = 10000, k = 512, p = 50% in the paper).
//!
//! Series: sequential Dijkstra (shown at one thread) plus the three
//! structures at P ∈ {1, 2, 3, 5, 10, 20, 40, 80} (capped at the host's
//! usable thread budget unless --full).

use priosched_bench::{fig4_place_sweep, mean, write_csv, HarnessConfig};
use priosched_core::PoolKind;
use priosched_graph::dijkstra;
use priosched_sssp::{run_sssp_kind, run_sssp_lockstep_kind, SsspConfig};
use std::time::Instant;

fn main() {
    let cfg = HarnessConfig::from_args();
    cfg.banner("Figure 4: time & nodes relaxed vs P (k = 512)");
    let graphs = cfg.graph_set();
    let places_sweep = fig4_place_sweep(cfg.places);
    let k = 512usize;

    let mut rows = Vec::new();

    // Sequential baseline (P = 1 column of the paper's figure).
    let mut seq_times = Vec::new();
    let mut seq_relaxed = Vec::new();
    for g in &graphs {
        let t0 = Instant::now();
        let r = dijkstra(g, 0);
        seq_times.push(t0.elapsed().as_secs_f64());
        seq_relaxed.push(r.relaxations as f64);
    }
    let seq_t = mean(seq_times.iter().copied());
    let seq_n = mean(seq_relaxed.iter().copied());
    println!(
        "{:<14} {:>3}  time {:>9.4}s  relaxed {:>9.0}",
        "Sequential", 1, seq_t, seq_n
    );
    rows.push(format!("Sequential,1,{seq_t:.6},{seq_n:.1}"));

    // "time" comes from the threaded runner (real wall clock); "relaxed"
    // comes from the lockstep runner, which reproduces the task-granular
    // interleaving of a P-core machine deterministically — on hosts with
    // few cores, OS timeslicing would otherwise hide the ordering effects
    // the figure is about (see priosched_sssp::lockstep docs).
    for kind in PoolKind::PAPER {
        for &places in &places_sweep {
            let mut times = Vec::new();
            let mut relaxed = Vec::new();
            let mut dead = Vec::new();
            for g in &graphs {
                let sssp_cfg = SsspConfig::new(places, k);
                let timed = run_sssp_kind(kind, g, 0, &sssp_cfg);
                times.push(timed.elapsed.as_secs_f64());
                let ordered = run_sssp_lockstep_kind(kind, g, 0, &sssp_cfg);
                relaxed.push(ordered.relaxed as f64);
                dead.push(ordered.dead as f64);
            }
            let t = mean(times.iter().copied());
            let n = mean(relaxed.iter().copied());
            let d = mean(dead.iter().copied());
            println!(
                "{:<14} {:>3}  time {:>9.4}s  relaxed {:>9.0}  dead {:>8.0}",
                kind.label(),
                places,
                t,
                n,
                d
            );
            rows.push(format!("{},{places},{t:.6},{n:.1}", kind.label()));
        }
    }

    let path = write_csv(
        &cfg.out_dir,
        "fig4_time_and_relaxed_vs_places.csv",
        "structure,places,time_s,nodes_relaxed",
        &rows,
    )
    .unwrap();
    println!("\nreference shapes (paper, 80-core Xeon):");
    println!(" - all parallel structures relax ≈ n nodes except Work-Stealing (> 2n)");
    println!(" - times drop below sequential from P ≥ 2, flatten when memory-bound");
    println!("CSV: {}", path.display());
}
