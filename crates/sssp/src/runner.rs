//! Convenience runners tying graph + executor + scheduler together.

use crate::executor::{SsspExecutor, SsspTask};
use priosched_core::stats::PlaceStats;
use priosched_core::{
    CentralizedKPriority, HybridKPriority, PoolKind, PriorityWorkStealing, Scheduler,
    StructuralKPriority, TaskPool,
};
use priosched_graph::CsrGraph;
use std::sync::Arc;
use std::time::Duration;

/// Parameters of a parallel SSSP run.
#[derive(Clone, Copy, Debug)]
pub struct SsspConfig {
    /// Number of places (worker threads), the paper's `P`.
    pub places: usize,
    /// Relaxation parameter `k` passed with every task (§2.2).
    pub k: usize,
    /// `kmax` for the centralized structure (paper: 512).
    pub kmax: u32,
    /// Scheduler-side dead-task elimination (§5.1); `false` only for
    /// ablation runs.
    pub eliminate_dead: bool,
}

impl Default for SsspConfig {
    fn default() -> Self {
        SsspConfig {
            places: 4,
            k: 512,
            kmax: 512,
            eliminate_dead: true,
        }
    }
}

/// Outcome of a parallel SSSP run.
#[derive(Clone, Debug)]
pub struct SsspResult {
    /// Final distances (exactly Dijkstra's values; see crate docs).
    pub dist: Vec<f64>,
    /// Nodes relaxed — the paper's Figures 4–5 metric. Equals the number of
    /// reachable nodes iff no useless work was performed.
    pub relaxed: u64,
    /// Tasks eliminated as dead (scheduler check + in-task re-check).
    pub dead: u64,
    /// Wall-clock time of the scheduled run.
    pub elapsed: Duration,
    /// Aggregated data-structure counters.
    pub pool_stats: PlaceStats,
}

/// Runs parallel SSSP over an explicit task pool.
pub fn run_sssp<P>(pool: Arc<P>, graph: &CsrGraph, source: u32, cfg: &SsspConfig) -> SsspResult
where
    P: TaskPool<SsspTask>,
{
    assert!((source as usize) < graph.num_nodes(), "source out of range");
    let exec = SsspExecutor::with_elimination(graph, source, cfg.k, cfg.eliminate_dead);
    let sched = Scheduler::from_pool_arc(pool);
    let run = sched.run(&exec, vec![exec.root(source)]);
    SsspResult {
        dist: exec.distances().snapshot(),
        relaxed: exec.relaxed(),
        dead: run.dead + exec.late_dead(),
        elapsed: run.elapsed,
        pool_stats: run.pool,
    }
}

/// Runs parallel SSSP with one of the paper's structures selected at
/// runtime (used by the figure harness to sweep structures).
pub fn run_sssp_kind(
    kind: PoolKind,
    graph: &CsrGraph,
    source: u32,
    cfg: &SsspConfig,
) -> SsspResult {
    match kind {
        PoolKind::WorkStealing => run_sssp(
            Arc::new(PriorityWorkStealing::new(cfg.places)),
            graph,
            source,
            cfg,
        ),
        PoolKind::Centralized => run_sssp(
            Arc::new(CentralizedKPriority::new(cfg.places, cfg.kmax)),
            graph,
            source,
            cfg,
        ),
        PoolKind::Hybrid => run_sssp(
            Arc::new(HybridKPriority::new(cfg.places)),
            graph,
            source,
            cfg,
        ),
        PoolKind::Structural => run_sssp(
            Arc::new(StructuralKPriority::new(cfg.places, cfg.k)),
            graph,
            source,
            cfg,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priosched_graph::{dijkstra, erdos_renyi, ErdosRenyiConfig};

    #[test]
    fn runner_produces_dijkstra_distances() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 80,
            p: 0.15,
            seed: 3,
        });
        let cfg = SsspConfig {
            places: 2,
            k: 8,
            kmax: 64,
            ..SsspConfig::default()
        };
        let res = run_sssp(Arc::new(HybridKPriority::new(cfg.places)), &g, 0, &cfg);
        assert_eq!(res.dist, dijkstra(&g, 0).dist);
        assert!(res.relaxed >= 80);
        assert!(res.pool_stats.pushes >= res.relaxed.saturating_sub(1));
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bad_source_panics() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 10,
            p: 0.5,
            seed: 1,
        });
        let cfg = SsspConfig::default();
        run_sssp_kind(PoolKind::Hybrid, &g, 99, &cfg);
    }
}
