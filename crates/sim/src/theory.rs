//! Theorem 5: upper bound on useless work per phase.
//!
//! For Erdős–Rényi graphs `G(n, p)` with `U(0,1]` weights, the expected
//! useless work of a phase that relaxes nodes `a_t(1) … a_t(P)` (sorted by
//! tentative distance `d_t`) satisfies
//!
//! ```text
//! W_t ≤ Σ_{j=1}^{P} [ 1 − Π_{i=1}^{j−1} Π_{L=1}^{n−1}
//!        (1 − (p·h_t(i,j))^L / L!) ^ ((n−2)!/(n−1−L)!) ]
//! ```
//!
//! with `h_t(i,j) = d_t(j) − d_t(i)` (Theorem 5), and a weaker variant using
//! `h*_t = d_t(P) − d_t(1)` everywhere (Remark 1). The exponent
//! `(n−2)!/(n−1−L)! = (n−2)(n−3)…(n−L)` is the number of simple paths of
//! length `L` between two fixed nodes; it reaches ~`n^(L−1)` and must be
//! handled in the log domain.
//!
//! Evaluation strategy: the inner product's logarithm is
//! `S(h) = Σ_L E_L · ln(1 − x_L)` with `x_L = (p·h)^L / L!`. We compute
//! `ln E_L` from a prefix-sum table of `ln m` and each term as
//! `−exp(ln E_L + ln(−ln(1−x_L)))`, clamping to `−∞` when the exponent
//! overflows. Terms rise to a peak near `L ≈ n·p·h` and then die off
//! factorially; iteration stops past the peak once terms drop below 1e−18.

/// Precomputed tables for a fixed `(n, p)` model.
pub struct TheoryBound {
    n: usize,
    p: f64,
    /// `ln_e[L] = ln((n−2)!/(n−1−L)!)` for `L = 1..=n−1` (`ln_e[0]` unused).
    ln_e: Vec<f64>,
}

impl TheoryBound {
    /// Builds the evaluator for `G(n, p)`.
    ///
    /// # Panics
    /// Panics if `n < 2` or `p` outside `(0, 1]`.
    pub fn new(n: usize, p: f64) -> Self {
        assert!(n >= 2, "model needs at least two nodes");
        assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
        // ln E_L = Σ_{m=n−L}^{n−2} ln m  (empty sum for L = 1):
        // E_1 = 1; E_L = E_{L−1} · (n − L) for L ≥ 2.
        let mut ln_e = vec![0.0; n];
        let mut acc = 0.0f64;
        for (l, slot) in ln_e.iter_mut().enumerate().skip(1) {
            if l >= 2 {
                acc += ((n - l) as f64).ln();
            }
            *slot = acc;
        }
        TheoryBound { n, p, ln_e }
    }

    /// `S(h) = Σ_L E_L ln(1 − (p·h)^L / L!) ≤ 0`: the log of the probability
    /// that **no** path of weight < `h` exists between two random nodes
    /// (lower bound; Conjecture 1 + Lemma 1).
    ///
    /// Returns `f64::NEG_INFINITY` when the probability underflows to 0.
    pub fn ln_no_path_probability(&self, h: f64) -> f64 {
        if h <= 0.0 {
            return 0.0; // no positive-weight path can weigh < 0 ⇒ prob 1
        }
        let ph = self.p * h.min(1.0);
        let mut sum = 0.0f64;
        let mut ln_xl = 0.0f64; // ln x_L built incrementally
        let peak = (self.n as f64 * ph).ceil() as usize + 2;
        for l in 1..self.n {
            // x_L = (p·h)^L / L!  ⇒  ln x_L += ln(p·h) − ln L.
            ln_xl += ph.ln() - (l as f64).ln();
            let x = ln_xl.exp();
            // ln(1 − x): exact when x is representable below 1.
            let ln1m = if x >= 1.0 {
                return f64::NEG_INFINITY; // a term is certain ⇒ prob 0
            } else {
                (-x).ln_1p()
            };
            // term = E_L · ln(1 − x) = −exp(ln E_L + ln(−ln1m)).
            let magnitude = self.ln_e[l] + (-ln1m).ln();
            if magnitude > 700.0 {
                return f64::NEG_INFINITY;
            }
            let term = -magnitude.exp();
            sum += term;
            if l > peak && term > -1e-18 {
                break; // factorial decay has taken over
            }
        }
        sum
    }

    /// Theorem 5, exact pairwise form: expected useless-work upper bound for
    /// a phase relaxing nodes with sorted tentative distances `dists`.
    pub fn useless_upper_bound(&self, dists: &[f64]) -> f64 {
        debug_assert!(dists.windows(2).all(|w| w[0] <= w[1]), "must be sorted");
        let mut w = 0.0f64;
        for j in 1..dists.len() {
            let mut ln_q = 0.0f64; // ln Π_{i<j} Pr[no path shorter than h(i,j)]
            for i in 0..j {
                ln_q += self.ln_no_path_probability(dists[j] - dists[i]);
                if ln_q == f64::NEG_INFINITY {
                    break;
                }
            }
            w += 1.0 - ln_q.exp();
        }
        w
    }

    /// Remark 1's simplified form: every pair uses `h* = max − min`.
    /// `relaxed` is the number of nodes relaxed in the phase.
    pub fn useless_upper_bound_hstar(&self, h_star: f64, relaxed: usize) -> f64 {
        if relaxed <= 1 {
            return 0.0;
        }
        let s = self.ln_no_path_probability(h_star);
        let mut w = 0.0f64;
        for j in 1..relaxed {
            // q(j) ≥ exp(j · S): j earlier nodes, each pair bounded via h*.
            w += 1.0 - (j as f64 * s).exp();
        }
        w
    }

    /// Lower bound on settled nodes in a phase (Figure 3, right panel):
    /// `relaxed − W_t`, clamped to `[0, relaxed]`.
    pub fn settled_lower_bound(&self, dists_sorted: &[f64]) -> f64 {
        let w = self.useless_upper_bound(dists_sorted);
        (dists_sorted.len() as f64 - w).clamp(0.0, dists_sorted.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_e_table_matches_direct_products() {
        let tb = TheoryBound::new(10, 0.5);
        // E_1 = 1, E_2 = n−2 = 8, E_3 = (n−2)(n−3) = 56.
        assert!((tb.ln_e[1] - 0.0).abs() < 1e-12);
        assert!((tb.ln_e[2] - 8f64.ln()).abs() < 1e-12);
        assert!((tb.ln_e[3] - 56f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn no_path_probability_boundaries() {
        let tb = TheoryBound::new(100, 0.5);
        // h = 0: no path can be shorter ⇒ probability 1 ⇒ ln = 0.
        assert_eq!(tb.ln_no_path_probability(0.0), 0.0);
        // Larger h ⇒ a short path more likely ⇒ ln prob decreases.
        let a = tb.ln_no_path_probability(0.01);
        let b = tb.ln_no_path_probability(0.05);
        let c = tb.ln_no_path_probability(0.5);
        assert!(a <= 0.0);
        assert!(b <= a);
        assert!(c <= b);
    }

    #[test]
    fn large_h_underflows_to_certainty() {
        // In a dense 1000-node graph a path of weight < 0.9 between two
        // random nodes exists almost surely.
        let tb = TheoryBound::new(1000, 0.5);
        let lnp = tb.ln_no_path_probability(0.9);
        assert!(lnp < -20.0, "ln prob = {lnp}");
    }

    #[test]
    fn useless_bound_zero_when_all_equal() {
        let tb = TheoryBound::new(500, 0.5);
        // All relaxed nodes at the same distance: h = 0 everywhere, no node
        // can invalidate another (weights are strictly positive).
        let dists = vec![0.3; 10];
        assert!(tb.useless_upper_bound(&dists) < 1e-12);
    }

    #[test]
    fn useless_bound_monotone_in_spread() {
        let tb = TheoryBound::new(500, 0.5);
        let tight: Vec<f64> = (0..10).map(|i| 0.3 + i as f64 * 1e-4).collect();
        let wide: Vec<f64> = (0..10).map(|i| 0.3 + i as f64 * 1e-2).collect();
        let a = tb.useless_upper_bound(&tight);
        let b = tb.useless_upper_bound(&wide);
        assert!(a <= b, "tight {a} vs wide {b}");
        assert!((0.0..=10.0).contains(&a));
        assert!((0.0..=10.0).contains(&b));
    }

    #[test]
    fn hstar_form_is_weaker_than_pairwise() {
        let tb = TheoryBound::new(300, 0.5);
        let dists: Vec<f64> = (0..20).map(|i| 0.2 + i as f64 * 2e-3).collect();
        let exact = tb.useless_upper_bound(&dists);
        let h_star = dists.last().unwrap() - dists.first().unwrap();
        let weak = tb.useless_upper_bound_hstar(h_star, dists.len());
        assert!(
            weak >= exact - 1e-9,
            "h* bound {weak} must dominate pairwise {exact}"
        );
    }

    #[test]
    fn settled_bound_within_range() {
        let tb = TheoryBound::new(200, 0.5);
        let dists: Vec<f64> = (0..15).map(|i| 0.1 + i as f64 * 5e-3).collect();
        let s = tb.settled_lower_bound(&dists);
        assert!((0.0..=15.0).contains(&s));
    }

    /// Monte-Carlo validation of the `1/L!` structure behind Lemma 1:
    /// the probability that L iid U(0,h] weights sum below h is 1/L!.
    #[test]
    fn lemma1_simplex_volume_monte_carlo() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12);
        let trials = 200_000;
        for l in 2..=4usize {
            let mut hits = 0u32;
            for _ in 0..trials {
                let s: f64 = (0..l).map(|_| rng.gen::<f64>()).sum();
                if s < 1.0 {
                    hits += 1;
                }
            }
            let measured = hits as f64 / trials as f64;
            let expect = 1.0 / (1..=l).product::<usize>() as f64;
            assert!(
                (measured - expect).abs() < 0.01,
                "L={l}: measured {measured}, expected {expect}"
            );
        }
    }

    /// End-to-end: the theoretical settled lower bound must not exceed the
    /// simulated settled count by more than statistical noise, phase by
    /// phase (this is the Figure 3c comparison).
    #[test]
    fn bound_is_consistent_with_simulation() {
        use crate::simulator::{simulate_sssp, SimConfig};
        use priosched_graph::{erdos_renyi, ErdosRenyiConfig};
        let n = 400;
        let p = 0.5;
        let g = erdos_renyi(&ErdosRenyiConfig { n, p, seed: 17 });
        let res = simulate_sssp(
            &g,
            0,
            &SimConfig {
                p: 16,
                rho: 0,
                seed: 3,
            },
        );
        let tb = TheoryBound::new(n, p);
        let mut violations = 0usize;
        for ph in &res.phases {
            if ph.relaxed < 2 {
                continue;
            }
            // Reconstruct the sorted distance spread via h* (the record does
            // not keep every distance); use the weaker h* bound, which is
            // valid for the same phase.
            let bound = ph.relaxed as f64 - tb.useless_upper_bound_hstar(ph.h_star, ph.relaxed);
            // Lower bound on expected settled; per-phase randomness allows
            // occasional dips below, so count gross violations only.
            if (ph.settled as f64) < bound - 3.0 {
                violations += 1;
            }
        }
        let frac = violations as f64 / res.phases.len().max(1) as f64;
        assert!(
            frac < 0.1,
            "settled fell far below the theoretical lower bound in {frac:.0}% of phases"
        );
    }
}
