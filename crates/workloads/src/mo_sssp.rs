//! Bi-objective shortest paths as a [`Workload`]: parallel label-correcting
//! search computing, per node, the Pareto front of (time, cost) path
//! signatures.
//!
//! The paper's conclusion names "k-relaxed Pareto priority queues … for
//! parallelization of a multi-objective shortest path search" as planned
//! future work. `priosched_core::pareto` prototypes the queue itself; this
//! workload runs the *search* on the ordinary scalar-priority scheduler, so
//! it sweeps across all five structures like every other workload. That is
//! sound because label-correcting with dead-label elimination converges to
//! the exact fronts under **any** pop order — pop order (here: a
//! scalarized priority, the sum of both objectives) only shifts how much
//! superseded work is performed, which is exactly the relaxation-quality
//! signal the harness measures.
//!
//! A spawned label is *dead* once its cost vector has been dominated out of
//! its node's front — the bi-objective analog of a superseded SSSP
//! distance. The oracle is an exhaustive sequential fixpoint iteration.

use crate::Workload;
use parking_lot::Mutex;
use priosched_core::pareto::{dominates, BiPriority};
use priosched_core::{PoolParams, RunStats, SpawnCtx, TaskExecutor};
use priosched_graph::{erdos_renyi, CsrGraph, ErdosRenyiConfig};
use std::sync::atomic::{AtomicU64, Ordering};

/// A search label: reached `node` with accumulated (time, cost).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Label {
    /// Node the label reaches.
    pub node: u32,
    /// Accumulated bi-objective cost.
    pub costs: BiPriority,
}

/// First objective per edge: the stored float weight, scaled to integers.
pub fn first_weight(w: f32) -> u64 {
    1 + (w as f64 * 1000.0) as u64
}

/// Second objective per edge, derived deterministically from the endpoints
/// (the base graph stores one weight; real instances would carry both).
pub fn second_weight(u: u32, v: u32) -> u64 {
    let x = (((u.min(v) as u64) << 32) | u.max(v) as u64).wrapping_mul(0x9E3779B97F4A7C15);
    1 + (x >> 48) % 97
}

/// Scalarized scheduler priority of a cost vector (smaller is better).
/// Any scalarization is correct; the sum biases the search toward labels
/// that are good in both objectives, which keeps superseded work low.
pub fn scalar_priority(costs: BiPriority) -> u64 {
    costs[0].saturating_add(costs[1])
}

/// Inserts `costs` into `front` if non-dominated; prunes dominated entries.
/// Returns false when `costs` was dominated (the label is dead).
pub fn update_front(front: &mut Vec<BiPriority>, costs: BiPriority) -> bool {
    if front.iter().any(|&f| dominates(f, costs) || f == costs) {
        return false;
    }
    front.retain(|&f| !dominates(costs, f));
    front.push(costs);
    true
}

/// Exhaustive oracle: Bellman–Ford-style label correction to fixpoint.
pub fn reference_fronts(graph: &CsrGraph, source: u32) -> Vec<Vec<BiPriority>> {
    let n = graph.num_nodes();
    let mut fronts: Vec<Vec<BiPriority>> = vec![Vec::new(); n];
    fronts[source as usize].push([0, 0]);
    loop {
        let mut changed = false;
        for u in 0..n as u32 {
            let labels = fronts[u as usize].clone();
            for e in graph.neighbors(u) {
                for &l in &labels {
                    let costs = [
                        l[0] + first_weight(e.weight),
                        l[1] + second_weight(u, e.target),
                    ];
                    if update_front(&mut fronts[e.target as usize], costs) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return fronts;
        }
    }
}

/// A bi-objective instance (graph + source) with its exhaustive oracle.
pub struct MoSsspWorkload {
    graph: CsrGraph,
    source: u32,
    spawn_chunk: usize,
    oracle: Vec<Vec<BiPriority>>,
}

impl MoSsspWorkload {
    /// Wraps an existing graph; computes the exhaustive front oracle once.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn new(graph: CsrGraph, source: u32) -> Self {
        assert!((source as usize) < graph.num_nodes(), "source out of range");
        let mut oracle = reference_fronts(&graph, source);
        for front in &mut oracle {
            front.sort();
        }
        MoSsspWorkload {
            graph,
            source,
            spawn_chunk: 0,
            oracle,
        }
    }

    /// Seeded Erdős–Rényi instance with source 0.
    pub fn random(n: usize, p: f64, seed: u64) -> Self {
        Self::new(erdos_renyi(&ErdosRenyiConfig { n, p, seed }), 0)
    }

    /// Sets the spawn-batch chunk bound forwarded to the executor.
    pub fn spawn_chunk(mut self, chunk: usize) -> Self {
        self.spawn_chunk = chunk;
        self
    }

    /// The per-node Pareto fronts this workload verifies against (sorted).
    pub fn oracle(&self) -> &[Vec<BiPriority>] {
        &self.oracle
    }
}

/// Per-run search state: the evolving per-node fronts.
pub struct MoSsspExec<'w> {
    graph: &'w CsrGraph,
    fronts: Vec<Mutex<Vec<BiPriority>>>,
    expanded: AtomicU64,
    superseded: AtomicU64,
    k: usize,
    spawn_chunk: usize,
}

impl MoSsspExec<'_> {
    /// Snapshot of the per-node fronts, sorted for canonical comparison.
    pub fn fronts(&self) -> Vec<Vec<BiPriority>> {
        self.fronts
            .iter()
            .map(|f| {
                let mut v = f.lock().clone();
                v.sort();
                v
            })
            .collect()
    }
}

impl TaskExecutor<Label> for MoSsspExec<'_> {
    /// Dead-label elimination: the label's cost vector has been dominated
    /// out of its node's front since it was spawned.
    fn is_dead(&self, label: &Label) -> bool {
        !self.fronts[label.node as usize]
            .lock()
            .contains(&label.costs)
    }

    fn execute(&self, label: Label, ctx: &mut SpawnCtx<'_, Label>) {
        // Re-check under the front actually stored now (the scheduler's
        // is_dead ran earlier; a dominating label may have landed since).
        if !self.fronts[label.node as usize]
            .lock()
            .contains(&label.costs)
        {
            self.superseded.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.expanded.fetch_add(1, Ordering::Relaxed);
        let mut batch = ctx.take_batch_buf();
        for e in self.graph.neighbors(label.node) {
            let costs = [
                label.costs[0] + first_weight(e.weight),
                label.costs[1] + second_weight(label.node, e.target),
            ];
            // One lock at a time: the target's front decides insertion and
            // therefore spawning (exactly once per inserted label).
            let inserted = update_front(&mut self.fronts[e.target as usize].lock(), costs);
            if inserted {
                batch.push((
                    scalar_priority(costs),
                    Label {
                        node: e.target,
                        costs,
                    },
                ));
                if self.spawn_chunk > 0 && batch.len() >= self.spawn_chunk {
                    ctx.spawn_batch(self.k, &mut batch);
                }
            }
        }
        ctx.spawn_batch(self.k, &mut batch);
        ctx.put_batch_buf(batch);
    }
}

impl Workload for MoSsspWorkload {
    type Task = Label;
    type Exec<'w>
        = MoSsspExec<'w>
    where
        Self: 'w;

    fn name(&self) -> &'static str {
        "mo_sssp"
    }

    fn executor(&self, params: &PoolParams) -> MoSsspExec<'_> {
        let fronts: Vec<Mutex<Vec<BiPriority>>> = (0..self.graph.num_nodes())
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        fronts[self.source as usize].lock().push([0, 0]);
        MoSsspExec {
            graph: &self.graph,
            fronts,
            expanded: AtomicU64::new(0),
            superseded: AtomicU64::new(0),
            k: params.k,
            spawn_chunk: self.spawn_chunk,
        }
    }

    fn seed(&self, _exec: &MoSsspExec<'_>, params: &PoolParams) -> Vec<(u64, usize, Label)> {
        vec![(
            0,
            params.k,
            Label {
                node: self.source,
                costs: [0, 0],
            },
        )]
    }

    fn verify(&self, exec: &MoSsspExec<'_>, _run: &RunStats) -> Result<(), String> {
        let fronts = exec.fronts();
        for (v, (got, want)) in fronts.iter().zip(&self.oracle).enumerate() {
            if got != want {
                return Err(format!(
                    "node {v}: front {got:?} diverges from oracle {want:?}"
                ));
            }
        }
        Ok(())
    }

    fn metrics(&self, exec: &MoSsspExec<'_>, _run: &RunStats) -> Vec<(&'static str, f64)> {
        let front_total: usize = self.oracle.iter().map(|f| f.len()).sum();
        vec![
            ("expanded", exec.expanded.load(Ordering::Relaxed) as f64),
            ("superseded", exec.superseded.load(Ordering::Relaxed) as f64),
            ("front_labels", front_total as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use priosched_core::PoolKind;

    #[test]
    fn update_front_keeps_pareto_invariant() {
        let mut front = Vec::new();
        assert!(update_front(&mut front, [5, 5]));
        assert!(update_front(&mut front, [3, 7]));
        assert!(!update_front(&mut front, [6, 6])); // dominated by [5,5]
        assert!(!update_front(&mut front, [5, 5])); // duplicate
        assert!(update_front(&mut front, [4, 4])); // dominates [5,5]
        front.sort();
        assert_eq!(front, vec![[3, 7], [4, 4]]);
    }

    #[test]
    fn mo_sssp_workload_matches_exhaustive_oracle() {
        let w = MoSsspWorkload::random(40, 0.12, 99);
        for kind in [PoolKind::WorkStealing, PoolKind::Hybrid] {
            let report = run_workload(&w, kind, 2, PoolParams::with_k(8));
            report.expect_verified();
        }
    }

    #[test]
    fn oracle_front_of_source_is_origin() {
        let w = MoSsspWorkload::random(30, 0.15, 5);
        assert_eq!(w.oracle()[0], vec![[0, 0]]);
    }
}
