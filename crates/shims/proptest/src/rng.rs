//! Deterministic generator driving case sampling.

/// xoshiro256++-based test RNG, seeded per (test, case).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
