#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

//! Lock-free data structures for task-based priority scheduling.
//!
//! This crate is a from-scratch Rust implementation of the three scheduling
//! data structures of *Wimmer, Cederman, Versaci, Träff, Tsigas: "Data
//! Structures for Task-based Priority Scheduling"* (PPoPP 2014,
//! arXiv:1312.2501), together with the task-scheduling runtime they plug
//! into:
//!
//! * [`workstealing::PriorityWorkStealing`] — work-stealing with per-place
//!   priority queues and steal-half (§3.1). Scalable, but provides **no
//!   global ordering guarantee**.
//! * [`centralized::CentralizedKPriority`] — a single global, ρ-relaxed
//!   priority ordering (§3.2, §4.1): a pop may ignore at most the `k` newest
//!   items (ρ = k).
//! * [`hybrid::HybridKPriority`] — the paper's main recommendation (§3.3,
//!   §4.2): local lists published to a global list every `k` pushes, with
//!   read-only *spying* instead of stealing. A pop may ignore at most the
//!   `k` newest items *of each place* (ρ = P·k).
//!
//! All three implement the [`pool::TaskPool`] interface used by the
//! [`scheduler::Scheduler`] (places, help-first spawning, termination
//! detection, finish regions — §2 of the paper).
//!
//! # Priorities
//!
//! Priorities are `u64` values, **smaller is higher priority**, matching the
//! paper's SSSP convention ("priority, smaller is better", Listing 5).
//! [`priority_from_f64`] maps non-negative floats (e.g. tentative distances)
//! to order-preserving `u64` keys.
//!
//! # Relaxation semantics (§2.2)
//!
//! A pop is never required to return the globally best task, but the number
//! of *newer* tasks that may be ignored in favour of an older, worse one is
//! bounded: by `k` for the centralized structure and by `P·k` for the hybrid
//! one. Work-stealing provides no such bound. The `k` parameter is supplied
//! **per task**, so kernels with different ordering requirements can coexist
//! (§1).
//!
//! # Memory reclamation
//!
//! The paper relies on a wait-free memory manager \[18\]. Here, task *items*
//! live in a pool that recycles them through a lock-free free list and only
//! releases memory when the data structure is dropped; position-derived tags
//! make recycling ABA-safe exactly as in §4.1.3/§4.2.3. See DESIGN.md §4 for
//! the substitution rationale.
//!
//! # Batch operations
//!
//! Every hot path has a batched form that amortizes synchronization
//! without weakening ordering guarantees:
//!
//! * [`pool::PoolHandle::push_batch`] / [`pool::PoolHandle::try_pop_batch`]
//!   move whole task batches through each structure — one lock
//!   acquisition per batch (work-stealing), one window pass per ≤ k
//!   placements plus one local-queue repair (centralized), one
//!   publication CAS per exhausted budget (hybrid);
//! * [`item::ItemPool::acquire_batch`] / [`item::ItemPool::release_batch`]
//!   pop/push whole free-list chains with a single CAS, and
//!   [`item::ItemCache`] gives each place a private stash so scalar
//!   operations touch the shared free list once per
//!   [`item::ItemCache::REFILL`] items;
//! * [`scheduler::SpawnCtx::spawn_batch`] stores a task's children with
//!   one pending-counter update and one `push_batch` — the spawn path for
//!   executors that emit many children per task (SSSP node expansion).
//!
//! ## How a batch is charged against `k`/ρ
//!
//! Batching amortizes *synchronization*, never *ordering slack*: every
//! batch element is charged against the relaxation bound individually,
//! exactly as the equivalent sequence of scalar calls would be.
//!
//! * **Centralized (ρ = k):** each element is placed inside
//!   `[tail, tail + k)` of the tail current at its placement; the batch
//!   holds no window open, so a batch of n behaves like n scalar pushes
//!   and the k-newest-items bound is untouched.
//! * **Hybrid (ρ = P·k):** the publication budget (`remaining_k`)
//!   decrements once per batch element, and the local list publishes
//!   *mid-batch* the moment the budget reaches zero — a batch is charged
//!   as a unit of n sequential debits, so at most `k` tasks of a place
//!   are ever unpublished, batch or no batch.
//! * **Pops:** a batch pop returns what ≤ max consecutive scalar pops
//!   would have returned against the state at its scan; in any sequential
//!   interleaving the histories coincide exactly (property-tested in
//!   `tests/proptests.rs`), and under concurrency tasks pushed while a
//!   batch drains are simply "newer than the batch", the same window a
//!   scalar pop exposes between its scan and its take-CAS.
//!
//! # Ingestion, backpressure, and quiescence
//!
//! The paper's runtime is closed-world: all roots are known at
//! [`scheduler::Scheduler::run`] time and termination is the
//! outstanding-task counter hitting zero. The [`ingest`] module opens that
//! world without touching the ordering arguments:
//!
//! * [`ingest::IngressLanes`] shard ingestion one MPSC lane per place;
//!   external producers submit `(prio, task)` scalars and batches through
//!   cloneable [`ingest::IngestHandle`]s, round-robined across lanes so
//!   ingestion itself scales with the place count;
//! * lanes are **bounded** when built with
//!   [`ingest::IngressLanes::with_capacity`] (or
//!   [`PoolParams::lane_capacity`] through the facade): `try_submit` /
//!   `try_submit_batch` *shed* with a typed [`ingest::SubmitError`] that
//!   hands every rejected item back, while the blocking `submit` /
//!   `submit_batch` *park* the producer until a worker's drain frees room
//!   — real backpressure instead of an unbounded queue between producers
//!   and the pool. After an abort (task panic, service drop) every
//!   submission path fails with [`ingest::SubmitError::Aborted`] rather
//!   than silently accepting work that would be discarded;
//! * each worker transfers its own lane into its pool handle at the **pop
//!   boundary** (between task executions) via the same batched
//!   [`pool::PoolHandle::push_batch`] path as
//!   [`scheduler::SpawnCtx::spawn_batch`] — drained batches are charged
//!   element-wise against the `k`/ρ bounds, and no batch is ever popped
//!   ahead of execution (the scheduler-module argument for why pops stay
//!   scalar is untouched);
//! * termination generalizes to **quiescence**: counter zero *and* empty
//!   lanes *and* zero live producer handles (a refcount — dropping the
//!   last handle is the producers' "no more input" signal). Exposed as
//!   [`scheduler::Scheduler::run_stream`] / [`facade::run_stream_on_kind`]
//!   for one-shot streamed runs, and as [`service::PoolService`] (or
//!   [`PoolBuilder::service`]) for a long-lived pool you can
//!   `submit`/`join` repeatedly — the service holds its own producer
//!   handle, so its workers stay alive through gaps instead of
//!   terminating, and shutdown is nothing but dropping that handle and
//!   waiting for quiescence.
//!
//! ## Parking: idle without burning a core
//!
//! Every streamed idle path — workers whose pops fail,
//! [`service::PoolService::join`], producers blocked on full lanes —
//! *parks* on the [`park`] subsystem instead of spinning or poll-sleeping.
//! A quiescent service consumes no CPU: its worker loops make **zero**
//! iterations until the next submission wakes them (pinned by the
//! `backpressure` integration tests).
//!
//! Parking is lost-wakeup-free by construction. Each waiter follows
//! *register → re-check → park* on an eventcount ([`park::ParkSlot`]):
//! it registers as a waiter, re-checks its wait condition, and only then
//! sleeps — while wakers always advance the slot's epoch before
//! notifying, so an event that fires inside the race window makes the
//! park return immediately. The quiescence read-order argument (producers
//! first, then queued, then pending — see [`ingest`]) extends to parking:
//! every transition a sleeper could be waiting on (submission, drain,
//! spawn, pending → 0, producers → 0, abort) is a wake event, and the
//! re-check after registration observes any transition whose wake was
//! skipped by the waiter-count gate (a seq-cst fence pairing; see
//! [`park`] for the precise argument). Workers additionally rely on a
//! structural invariant of the exact pools — a place's local component is
//! filled only by its own worker (the MultiQueue has no private component
//! and instead scans every shared queue before reporting empty) — so a
//! parked worker's component is empty and remaining work always stays
//! reachable by an awake one.
//!
//! # Async ingestion
//!
//! The [`async_ingest`] module lifts the producer side into futures, so a
//! network or async frontend can run thousands of logical producers
//! without a thread each. [`async_ingest::AsyncIngestHandle`] wraps an
//! [`ingest::IngestHandle`] from the same refcounted lineage (obtained
//! via [`ingest::IngestHandle::into_async`] or
//! [`service::PoolService::async_ingest_handle`]); its `submit` /
//! `submit_batch` futures run the identical register → re-check → park
//! protocol as the blocking path, except that where a thread would sleep
//! on the space slot's condvar, the future deposits the task's
//! [`std::task::Waker`] ([`park::Waiter::Waker`]) and returns
//! `Poll::Pending` — **`Full` becomes `Pending`**, and the drain that
//! frees lane space fires the deposited waker through the same
//! `wake_all` that unparks blocked threads. Abort/shutdown resolve
//! pending futures to the typed [`ingest::SubmitError`] with the payload
//! handed back, and dropping a pending future revokes its waker
//! (cancel-safe). [`service::PoolService::join_async`] is the drain wait
//! as a future on the control slot. The `async_equivalence` integration
//! test pins async-submitted ≡ blocking-submitted ≡ preseeded on all five
//! structures under a tiny lane capacity; no runtime is prescribed — the
//! in-tree `futures-executor` shim (`block_on` + `LocalPool`) or any
//! external executor can drive the futures. The `priosched-net` crate
//! builds the `priosched-serve` TCP frontend on exactly this surface:
//! one connection actor per socket, each owning an async handle.
//!
//! # Delegation combining
//!
//! The structural pool's shared queue — one heap crossed by every
//! overflow push, shared pop, and raid — is, by default, accessed through
//! the flat-combining layer in [`combine`] rather than a plain mutex
//! (toggle: [`PoolParams::combine`] / [`PoolBuilder::combining`]; the
//! mutex path stays selectable for A/B). The protocol:
//!
//! * each place owns one cache-padded **publication record** (op cell +
//!   response cell + `EMPTY → PUBLISHED → DONE` state word + a
//!   [`park::ParkSlot`]);
//! * an accessing place first `try_lock`s the **combiner lock**; on
//!   success it applies its op directly and then runs **combining
//!   passes**, walking all records and executing every published op
//!   back-to-back against the sequential heap — the heap's cache lines
//!   stay put while the operations travel, which is the whole trick;
//! * on failure it publishes its op and waits: spin briefly, re-try the
//!   lock, then park on the record's [`park::ParkSlot`] via the same
//!   register → re-check → park protocol as every other sleeper in the
//!   crate — bounded by [`combine::PARK_TIMEOUT`], so the deliberately
//!   unfenced post-unlock wake-walk (see [`combine`]'s module docs) can
//!   stay off the uncontended fast path's cost.
//!
//! A combiner's tenure is **bounded** (passes per lock acquisition,
//! [`combine::Combiner::max_passes`]) so one place is never stuck
//! combining for a queue-length of others — when the bound trips, the
//! leaving combiner unlocks first and then wakes every still-published
//! waiter, one of which takes the lock over. Responses are **written
//! before** the `DONE` flip and the wake: the wake carries no data, so a
//! woken waiter must be able to trust that observing `DONE` (acquire)
//! means its response cell is populated — waking earlier would at best
//! re-park the loser and at worst hand it an empty cell. Combiner
//! telemetry (passes, ops executed while combining, max ops per pass,
//! parks) lands on [`stats::PlaceStats`] and aggregates into
//! [`RunStats`]. The combiner is generic over the protected structure
//! ([`combine::CombineOp`]), so the hybrid global list can adopt it next.
//!
//! # Failure handling
//!
//! A task's `execute` may panic; what happens next is the
//! [`pool::FaultPolicy`] carried in [`PoolParams`] (or set via
//! [`Scheduler::with_fault_policy`] /
//! [`service::PoolService::start_with_policy`] /
//! [`PoolBuilder::fault_policy`]). Under the default
//! [`pool::FaultPolicy::AbortRun`], the worker records a
//! [`scheduler::FailureReport`], raises the abort flag, poisons the
//! lanes (blocked and future producers fail with
//! [`ingest::SubmitError::Aborted`], payloads handed back), and every
//! worker drains out; closed-world `run`/`run_stream` resume the panic on
//! the caller, while [`service::PoolService::join`]/`join_async` return
//! `Err(`[`scheduler::PoolAborted`]`)` and
//! [`service::PoolService::shutdown`] returns a typed
//! [`service::ShutdownError`] — a failure never poisons teardown. Under
//! [`pool::FaultPolicy::Isolate`], the panicking task is **quarantined**:
//! its place, popped priority, and panic message are captured into a
//! [`scheduler::FailureReport`] on the run stats
//! ([`RunStats::failed`]/[`RunStats::failures`]) and everything else —
//! sibling workers, producers, later rounds — continues unaffected.
//!
//! Isolation preserves the pending-count read-order argument that
//! quiescence termination rests on (see [`ingest`]): the failure is
//! recorded *before* the panicking task's pending decrement, exactly
//! where `AbortRun` raises the abort flag, and the decrement itself is
//! the same release a successful completion performs. Any observer that
//! sees the counter reach zero (a joiner, a terminating worker) is
//! therefore guaranteed to see every failure recorded by tasks that
//! finished before the drain — a quarantined panic can neither strand
//! the counter above zero (deadlock) nor hide from the round that
//! drained it, and `executed + dead + failed` accounts for every task
//! exactly once.
//!
//! # Runtime structure selection
//!
//! [`PoolKind`] names the five structures — the paper's three, the
//! structural prototype, and the relaxed MultiQueue
//! ([`multiqueue::RelaxedMultiQueue`], arXiv 2109.00657); the [`facade`]
//! module is the single place a kind becomes a pool. [`run_on_kind`]
//! schedules an executor on a freshly built pool with **one** dispatch
//! before the run (the scheduling loop stays monomorphized per
//! structure); [`PoolKind::build`] / [`PoolBuilder`] return a type-erased
//! [`AnyPool`] for callers that drive place handles themselves.
//! Construction knobs travel in [`PoolParams`] (`k` for the structural
//! prototype, `kmax` for the centralized structure, `mq_c` /
//! `mq_stickiness` / `rank_error` for the MultiQueue), so sweeping
//! harnesses cannot silently drop one.
//!
//! The MultiQueue's relaxation semantics differ in kind, not just in
//! degree: the paper's structures guarantee a **hard** bound on how many
//! newer tasks a pop may skip (ρ = k centralized, ρ = P·k hybrid; the
//! structural prototype bounds rank structurally), while the MultiQueue's
//! two-choice pop is only **probabilistically** close to the best — the
//! expected rank error stays O(P) but the worst case is unbounded. Its
//! rank-error instrument ([`PoolParams::rank_error`], reported on
//! [`stats::PlaceStats`]) makes that trade measurable instead of
//! anecdotal.
//!
//! # Model-checked properties
//!
//! The prose concurrency arguments above are not only argued — the
//! load-bearing ones are *model-checked*. Every atomic, lock, and thread
//! primitive in this crate routes through the [`sync`] facade, which under
//! `--cfg loom` swaps in the in-tree `loom` shim: a deterministic
//! interleaving explorer that runs a closure under every schedule (bounded
//! preemption DFS) while modeling relaxed/acquire/release stores through
//! per-thread store buffers. The models live in the `models` module
//! (compiled only under `--cfg loom`; run via
//! `RUSTFLAGS="--cfg loom" cargo test -p priosched-core --test
//! loom_models`). The mapping from argument to model:
//!
//! | Prose argument | Model |
//! |---|---|
//! | Parking's register → re-check → park never loses a wakeup against the waiter-count-gated `wake_if_waiting` (the seq-cst fence pairing in [`park`]) | `models::parker_no_lost_wakeup` |
//! | The combiner's publish / combine / park handoff applies each op exactly once, writes the response **before** the `DONE` flip, and never strands a waiter despite the unfenced post-unlock wake-walk ([`combine`]) | `models::combiner_exactly_once_handoff` |
//! | The item free list's versioned head defeats ABA on multi-node pops ([`item`], §4.1.3/§4.2.3 tag discipline) | `models::free_list_no_aba_double_pop` |
//! | The MultiQueue's exhaustive scan finds a present item once the pool is quiescent — the property worker parking rests on ([`multiqueue`] top-caching docs) | `models::multiqueue_scan_finds_present_item` |
//! | The quiescence read order (producers → queued → pending) never shows "quiescent" while a task is charged to neither counter ([`ingest`]) | `models::ingress_counters_never_hide_a_task` |
//! | The structural pop's double-lock window (bound snapshot → release → shared query → re-take) hands a raided task to exactly one thread ([`structural`]) | `models::structural_pop_vs_raid_exactly_once` |
//!
//! Two **mutation self-checks** validate the checker itself: building with
//! `--cfg loom_mutate_park_fence` (drops the `wake_if_waiting` fence) or
//! `--cfg loom_mutate_combine_done` (flips response/`DONE` order) makes
//! the corresponding model *fail*, which `tests/loom_models.rs` asserts.
//!
//! Arguments that remain prose-only (not yet modeled): the async waker
//! deposit/revoke exactly-once release ([`park::ParkSlot::park_as`]), the
//! hybrid spy/publish protocol, the centralized window walk, and the
//! scheduler's abort/failure accounting — see ROADMAP.md.
//!
//! # Workloads
//!
//! The scheduler is application-agnostic: anything that implements
//! [`scheduler::TaskExecutor`] can run on any structure. The
//! `priosched-workloads` crate packages the repo's evaluation scenarios —
//! SSSP (the paper's §5 application), unit-weight BFS, tile-Cholesky DAG
//! factorization, best-first branch-and-bound knapsack, and bi-objective
//! shortest paths — behind a `Workload` trait (config → seed tasks →
//! executor → sequential oracle → structured report). Every workload
//! verifies each run against its oracle — including streamed runs, whose
//! seeds arrive through [`ingest::IngressLanes`] instead of preseeding —
//! and the `schedbench` binary in `priosched-bench` sweeps workload ×
//! [`PoolKind`] × places × k × ingestion. New scenarios plug in by
//! implementing that trait; this crate deliberately knows nothing about
//! them beyond the [`scheduler::TaskExecutor`] contract.

pub mod async_ingest;
pub mod centralized;
pub mod combine;
pub mod facade;
pub mod garray;
pub mod hybrid;
pub mod ingest;
pub mod item;
#[cfg(loom)]
pub mod models;
pub mod multiqueue;
pub mod pareto;
pub mod park;
pub mod pool;
pub mod scheduler;
pub mod service;
pub mod stats;
pub mod structural;
pub mod sync;
pub mod task;
pub(crate) mod util;
pub mod workstealing;

pub use async_ingest::{AsyncIngestHandle, JoinFuture, SubmitBatchFuture, SubmitFuture};
pub use centralized::CentralizedKPriority;
pub use combine::{CombineOp, CombineStats, Combiner};
pub use facade::{run_on_kind, run_stream_on_kind, AnyHandle, AnyPool, PoolBuilder};
pub use hybrid::HybridKPriority;
pub use ingest::{IngestHandle, IngressLanes, SubmitError};
pub use multiqueue::RelaxedMultiQueue;
pub use pool::{FaultPolicy, PoolHandle, PoolKind, PoolParams, TaskPool};
pub use scheduler::{
    panic_message, FailureReport, PoolAborted, RunStats, Scheduler, SpawnCtx, TaskExecutor,
};
pub use service::{PoolService, ShutdownError};
pub use structural::StructuralKPriority;
pub use workstealing::PriorityWorkStealing;

/// Maps a non-negative, non-NaN `f64` to a `u64` key with the same order.
///
/// For non-negative IEEE-754 doubles the raw bit pattern is already
/// monotonically increasing, so the conversion is a transmute. `+∞` is
/// allowed (it encodes "unreached" priorities), and `-0.0` is normalized
/// to the key of `+0.0` (its raw bit pattern has the sign bit set and
/// would otherwise order above every positive value).
///
/// # Panics
/// Panics — in every build profile — if `x` is negative or NaN: a silently
/// misordered priority key corrupts scheduling decisions far from the call
/// site, which is strictly worse than failing here.
#[inline]
pub fn priority_from_f64(x: f64) -> u64 {
    assert!(x >= 0.0, "priority_from_f64 requires non-negative input");
    if x == 0.0 {
        // Collapses -0.0 (sign bit set) onto +0.0's key.
        return 0;
    }
    x.to_bits()
}

/// Inverse of [`priority_from_f64`].
#[inline]
pub fn priority_to_f64(bits: u64) -> f64 {
    f64::from_bits(bits)
}

#[cfg(test)]
mod conversion_tests {
    use super::*;

    #[test]
    fn f64_priority_is_order_preserving() {
        let xs = [0.0, 1e-300, 0.5, 1.0, 1.5, 42.0, 1e300, f64::INFINITY];
        for w in xs.windows(2) {
            assert!(priority_from_f64(w[0]) < priority_from_f64(w[1]));
        }
    }

    #[test]
    fn f64_priority_round_trips() {
        for x in [0.0, 0.25, 3.5, 1e10, f64::INFINITY] {
            assert_eq!(priority_to_f64(priority_from_f64(x)), x);
        }
    }

    #[test]
    fn negative_zero_maps_to_zero_key() {
        assert_eq!(priority_from_f64(-0.0), 0);
        assert_eq!(priority_from_f64(-0.0), priority_from_f64(0.0));
        // And therefore orders below every positive value.
        assert!(priority_from_f64(-0.0) < priority_from_f64(1e-300));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_input_panics_in_all_profiles() {
        priority_from_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn nan_input_panics() {
        priority_from_f64(f64::NAN);
    }
}
