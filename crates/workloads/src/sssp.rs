//! The paper's evaluation workload (§5.1) as a [`Workload`]: parallel SSSP
//! where every node relaxation is a task, verified against sequential
//! Dijkstra.

use crate::Workload;
use priosched_core::{PoolParams, RunStats};
use priosched_graph::{dijkstra, erdos_renyi, CsrGraph, ErdosRenyiConfig};
use priosched_sssp::{SsspExecutor, SsspTask};

/// An SSSP instance (graph + source) with its Dijkstra oracle.
pub struct SsspWorkload {
    graph: CsrGraph,
    source: u32,
    eliminate_dead: bool,
    spawn_chunk: usize,
    oracle: Vec<f64>,
    reachable: u64,
}

impl SsspWorkload {
    /// Wraps an existing graph; computes the Dijkstra oracle once.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn new(graph: CsrGraph, source: u32) -> Self {
        assert!((source as usize) < graph.num_nodes(), "source out of range");
        let oracle = dijkstra(&graph, source).dist;
        let reachable = oracle.iter().filter(|d| d.is_finite()).count() as u64;
        SsspWorkload {
            graph,
            source,
            eliminate_dead: true,
            spawn_chunk: 0,
            oracle,
            reachable,
        }
    }

    /// Seeded Erdős–Rényi instance with source 0 (the figures' workload
    /// shape).
    pub fn random(n: usize, p: f64, seed: u64) -> Self {
        Self::new(erdos_renyi(&ErdosRenyiConfig { n, p, seed }), 0)
    }

    /// Sets the spawn-batch chunk bound forwarded to the executor.
    pub fn spawn_chunk(mut self, chunk: usize) -> Self {
        self.spawn_chunk = chunk;
        self
    }

    /// Disables scheduler-side dead-task elimination (ablation runs).
    pub fn without_dead_elimination(mut self) -> Self {
        self.eliminate_dead = false;
        self
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The Dijkstra distances this workload verifies against.
    pub fn oracle(&self) -> &[f64] {
        &self.oracle
    }
}

impl Workload for SsspWorkload {
    type Task = SsspTask;
    type Exec<'w>
        = SsspExecutor<'w>
    where
        Self: 'w;

    fn name(&self) -> &'static str {
        "sssp"
    }

    fn executor(&self, params: &PoolParams) -> SsspExecutor<'_> {
        SsspExecutor::with_elimination(&self.graph, self.source, params.k, self.eliminate_dead)
            .spawn_chunk(self.spawn_chunk)
    }

    fn seed(&self, exec: &SsspExecutor<'_>, _params: &PoolParams) -> Vec<(u64, usize, SsspTask)> {
        vec![exec.root(self.source)]
    }

    fn verify(&self, exec: &SsspExecutor<'_>, _run: &RunStats) -> Result<(), String> {
        let dist = exec.distances().snapshot();
        if dist != self.oracle {
            let diverging = dist
                .iter()
                .zip(&self.oracle)
                .filter(|(a, b)| a != b)
                .count();
            return Err(format!(
                "{diverging} of {} distances diverge from Dijkstra",
                dist.len()
            ));
        }
        if exec.relaxed() < self.reachable {
            return Err(format!(
                "only {} relaxations for {} reachable nodes",
                exec.relaxed(),
                self.reachable
            ));
        }
        Ok(())
    }

    fn metrics(&self, exec: &SsspExecutor<'_>, _run: &RunStats) -> Vec<(&'static str, f64)> {
        vec![
            ("relaxed", exec.relaxed() as f64),
            (
                "useless",
                exec.relaxed().saturating_sub(self.reachable) as f64,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use priosched_core::PoolKind;

    #[test]
    fn sssp_workload_verifies_on_hybrid() {
        let w = SsspWorkload::random(120, 0.1, 7);
        let report = run_workload(&w, PoolKind::Hybrid, 2, PoolParams::with_k(16));
        report.expect_verified();
        assert!(report.executed >= 120);
        assert!(report
            .metrics
            .iter()
            .any(|(name, v)| *name == "relaxed" && *v >= 120.0));
    }

    #[test]
    fn spawn_chunk_variants_all_verify() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 80,
            p: 0.15,
            seed: 11,
        });
        for chunk in [0usize, 1, 4] {
            let w = SsspWorkload::new(g.clone(), 0).spawn_chunk(chunk);
            run_workload(&w, PoolKind::Centralized, 2, PoolParams::with_k(32)).expect_verified();
        }
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bad_source_rejected_at_construction() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 10,
            p: 0.3,
            seed: 1,
        });
        SsspWorkload::new(g, 10);
    }
}
