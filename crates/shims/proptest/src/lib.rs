//! In-tree shim for the subset of `proptest` used by this workspace.
//!
//! The offline build environment cannot fetch the real crate, so this
//! module provides the same *surface*: the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`], `any::<T>()`, range and tuple
//! strategies, `Just`, [`prop_oneof!`], `collection::vec`, and the
//! `prop_map`/`prop_flat_map`/`prop_filter_map` combinators.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its seed and case index
//!   instead of a minimized input;
//! * **deterministic seeding** — each test derives its base seed from its
//!   fully qualified name (override with `PROPTEST_SEED=<u64>`), so runs
//!   are reproducible by default;
//! * `PROPTEST_CASES=<n>` overrides the case count globally.

pub mod rng;
pub mod strategy;

pub mod arbitrary {
    //! `any::<T>()` — uniform sampling over a type's natural domain.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical "arbitrary value" distribution.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Bias towards structurally interesting values: edges of
                    // the domain and small magnitudes show up often.
                    match rng.next_u64() % 8 {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 => (rng.next_u64() % 16) as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Uniform-ish sampling over all of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of values from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1);
            let n = self.len.start + (rng.next_u64() as usize % span);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Config and error types for the [`crate::proptest!`] runner.

    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Effective case count (`PROPTEST_CASES` env overrides).
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property: carries the failure message.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Constructs a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod prelude {
    //! Everything a test file needs with one import.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Derives a deterministic 64-bit seed from a test's qualified name
/// (FNV-1a), unless `PROPTEST_SEED` overrides it.
pub fn seed_for(name: &str) -> u64 {
    if let Some(s) = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        return s;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Asserts a condition inside a property, failing the case (not panicking
/// the process) so the runner can report seed and case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right` (both `{:?}`)",
            left
        );
    }};
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let base_seed =
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let cases = config.effective_cases();
            for case in 0..cases {
                let mut rng = $crate::rng::TestRng::new(
                    base_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $pat = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = result {
                    panic!(
                        "property failed at case {}/{} (base seed {:#x}): {}",
                        case, cases, base_seed, e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tuples_ranges_and_vecs_compose(
            (n, xs) in (1usize..20).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0u64..100, 0..50))
            }),
            flag in any::<bool>(),
        ) {
            prop_assert!((1..20).contains(&n));
            prop_assert!(xs.iter().all(|&x| x < 100));
            let _ = flag;
        }

        #[test]
        fn oneof_respects_value_sets(v in prop_oneof![
            3 => Just(1i32),
            1 => (10i32..20).prop_map(|x| x),
        ]) {
            prop_assert!(v == 1 || (10..20).contains(&v));
        }

        #[test]
        fn filter_map_filters(v in (0u32..100).prop_filter_map("odd", |x| {
            (x % 2 == 0).then_some(x)
        })) {
            prop_assert!(v % 2 == 0);
        }
    }

    #[test]
    fn seeds_differ_per_name() {
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }
}
