//! Loom interleaving models for the crate's hand-rolled synchronization
//! protocols (compiled only under `--cfg loom`).
//!
//! Each function here wraps one concurrency argument from the prose docs
//! in an exhaustive schedule exploration: the in-tree `loom` shim runs the
//! closure under every interleaving (bounded by a preemption budget and a
//! branch budget, see the shim's docs), modeling relaxed/acquire/release
//! stores through per-thread store buffers. A lost wakeup shows up as a
//! detected deadlock, a protocol hole as an assertion or `expect` failure,
//! and the failing schedule is printed for replay (`LOOM_REPLAY`).
//!
//! The models live *inside* the crate (rather than in the integration
//! test) so they can use crate-private surface — [`IngressShared`]'s
//! `drain_into` most importantly. `tests/loom_models.rs` is the thin
//! runner; the crate-level docs ("Model-checked properties") map each
//! prose argument to its model.
//!
//! Two **mutation self-checks** keep the checker honest: building with
//! `--cfg loom_mutate_park_fence` removes the seq-cst fence in
//! [`ParkSlot::wake_if_waiting`], and `--cfg loom_mutate_combine_done`
//! flips the combiner's response-before-DONE store order. The runner then
//! asserts that [`parker_no_lost_wakeup`] and
//! [`combiner_exactly_once_handoff`] *fail* — a model suite that cannot
//! see a deliberately planted bug proves nothing about the real code.
//!
//! [`IngressShared`]: crate::ingest::IngressLanes
//! [`ParkSlot::wake_if_waiting`]: crate::park::ParkSlot::wake_if_waiting

use crate::combine::{CombineOp, CombineStats, Combiner};
use crate::ingest::IngressLanes;
use crate::item::ItemPool;
use crate::multiqueue::RelaxedMultiQueue;
use crate::park::ParkSlot;
use crate::pool::{PoolHandle, TaskPool};
use crate::stats::PlaceStats;
use crate::structural::StructuralKPriority;
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::thread;
use std::sync::Arc;

/// (a) Parker: register → re-check → park versus a concurrent
/// `wake_if_waiting` never loses the wakeup.
///
/// The waker publishes an event (a flag store) and calls the gated wake;
/// the waiter registers, re-checks the flag, and parks untimed only if it
/// saw no event. The seq-cst fence in `wake_if_waiting` pairing with the
/// fence in `prepare` is exactly what makes this safe: without it (the
/// `loom_mutate_park_fence` build) the waker's flag store can sit in its
/// store buffer while it reads a pre-registration `waiters == 0`, the
/// waiter's re-check misses the flag, and the untimed park deadlocks.
pub fn parker_no_lost_wakeup() {
    loom::model(|| {
        let slot = Arc::new(ParkSlot::new());
        let flag = Arc::new(AtomicBool::new(false));

        let waiter = {
            let (slot, flag) = (Arc::clone(&slot), Arc::clone(&flag));
            thread::spawn(move || {
                let token = slot.prepare();
                if flag.load(Ordering::Acquire) {
                    slot.cancel();
                } else {
                    // Untimed park: if the wake is lost, this blocks
                    // forever and the explorer reports a deadlock.
                    slot.park(token);
                    assert!(
                        flag.load(Ordering::Acquire),
                        "woken waiter must observe the event that woke it"
                    );
                }
            })
        };
        let waker = thread::spawn(move || {
            flag.store(true, Ordering::Release);
            slot.wake_if_waiting();
        });

        waiter.join().unwrap();
        waker.join().unwrap();
    });
}

/// Test op for the combiner model: push a value into a `Vec<u64>` and
/// answer the vector's new length.
struct PushOp(u64);

impl CombineOp<Vec<u64>> for PushOp {
    type Resp = u64;
    fn apply(self, shared: &mut Vec<u64>) -> u64 {
        shared.push(self.0);
        shared.len() as u64
    }
}

/// (b) Combiner: publish / combine / park handoff applies each op exactly
/// once and never strands a waiter.
///
/// Two places race one op each; whichever wins the combiner lock may serve
/// the other's published op. The responses are the structure's length at
/// apply time, so `{1, 2}` as a set certifies both ops applied exactly
/// once in *some* order. Waiter parks are timeout-bounded, so the unfenced
/// post-unlock wake-walk (see [`crate::combine`] docs, point 3) cannot
/// deadlock — the explorer verifies that too. Under
/// `loom_mutate_combine_done` the DONE flip precedes the response write
/// and a woken waiter can read an empty response cell
/// (`expect("response for DONE slot")` panics in some schedule).
pub fn combiner_exactly_once_handoff() {
    loom::model(|| {
        let c = Arc::new(Combiner::<Vec<u64>, PushOp>::new(Vec::new(), 2));

        let peer = {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                let mut stats = CombineStats::default();
                c.execute(1, PushOp(20), &mut stats)
            })
        };
        let mut stats = CombineStats::default();
        let own = c.execute(0, PushOp(10), &mut stats);
        let other = peer.join().unwrap();

        let mut resps = [own, other];
        resps.sort_unstable();
        assert_eq!(resps, [1, 2], "each op must apply exactly once");
    });
}

/// (c) Item free list: concurrent multi-node pop, scalar pop, and push
/// never hand the same item to two owners.
///
/// The versioned head (`(version << 32) | index`) is what rejects the
/// classic ABA: a two-node `acquire_batch` walks `next_free` links that a
/// concurrent pop/push cycle may be rewriting, and only the version check
/// keeps the stale walk from committing. All simultaneously-held items
/// must be pairwise distinct and the pool must never have grown past its
/// first block.
pub fn free_list_no_aba_double_pop() {
    loom::model(|| {
        let pool = Arc::new(ItemPool::<u64>::new());
        // Deterministic pre-state: the first acquire allocates the first
        // block (8 items under loom) — one comes back, seven chain onto
        // the free list.
        let first = pool.acquire() as usize;

        // Multi-node pop: the ABA-prone link walk.
        let batcher = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || {
                let mut out = Vec::new();
                let got = pool.acquire_batch(&mut out, 2);
                assert_eq!(got, 2, "seven free items satisfy a batch of two");
                (out[0] as usize, out[1] as usize)
            })
        };
        // Pop/push cycle racing the walk: acquire an item, run it through
        // a full take/release lifecycle, putting its index back on the
        // list while the batcher may be mid-walk.
        let cycler = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || {
                let p = pool.acquire();
                // SAFETY: freshly acquired, not yet published — exclusive.
                unsafe { (*p).init(0, 0, 9, 99) };
                // SAFETY: still exclusive; publish under position tag 7.
                unsafe { (*p).tag.store(7, Ordering::Release) };
                let taken = unsafe { (*p).try_take(7) }.expect("sole owner wins the take");
                assert_eq!(taken, 99);
                // SAFETY: tag is TAKEN and the payload was moved out.
                unsafe { pool.release(p) };
                p as usize
            })
        };

        let (a, b) = batcher.join().unwrap();
        let recycled = cycler.join().unwrap();
        let d = pool.acquire() as usize;

        // `recycled` went back to the pool, so `d` may legally alias it —
        // but everything still *held* must be distinct.
        let held = [first, a, b, d];
        for (i, x) in held.iter().enumerate() {
            for y in held.iter().skip(i + 1) {
                assert_ne!(x, y, "free list handed one item to two owners");
            }
        }
        let _ = recycled;
        assert_eq!(
            pool.allocated(),
            8,
            "no spurious grow: the list never ran dry"
        );
    });
}

/// (d) MultiQueue: a concurrent push/pop pair neither loses nor
/// duplicates an item, and once the pool is quiescent the exhaustive scan
/// finds a present item on the first pop.
///
/// The cached-top mirror (`u64::MAX` = empty) may be stale while a push
/// or pop is in flight — this model pins the property the scheduler's
/// parking machinery actually needs (see [`crate::multiqueue`] docs): a
/// `None` can only happen in states where retrying observes the missing
/// task, so after both racers join, the very next pop must succeed.
pub fn multiqueue_scan_finds_present_item() {
    loom::model(|| {
        // One place, c = 1 → a single queue: `rng.below(1)` is always 0,
        // keeping the schedule exploration deterministic.
        let mq = Arc::new(RelaxedMultiQueue::<u64>::with_options(1, 1, 0, false));
        let mut home = mq.handle(0);
        home.push(1, 0, 10);

        let pusher = {
            let mq = Arc::clone(&mq);
            thread::spawn(move || {
                let mut h = mq.handle(0);
                h.push(2, 0, 20);
            })
        };
        let popper = {
            let mq = Arc::clone(&mq);
            thread::spawn(move || {
                let mut h = mq.handle(0);
                // May be None if the racing push holds the queue lock at
                // every probe — the contract allows that spurious miss.
                h.pop()
            })
        };

        let popped = popper.join().unwrap();
        pusher.join().unwrap();

        // Quiescent: two items entered, at most one left. The exhaustive
        // scan must find a survivor immediately — this is what makes
        // parking on "pop returned None" safe.
        let next = home.pop();
        assert!(
            next.is_some(),
            "exhaustive scan missed a present item in a quiescent pool"
        );
        let mut seen: Vec<u64> = popped.into_iter().chain(next).collect();
        if let Some(rest) = home.pop() {
            seen.push(rest);
        }
        seen.sort_unstable();
        assert_eq!(seen, [10, 20], "push/pop race lost or duplicated an item");
        assert_eq!(
            home.pop(),
            None,
            "pool must be empty after both items popped"
        );
    });
}

/// Minimal recording pool handle for the ingress model.
#[derive(Default)]
struct RecHandle {
    pushed: Vec<(u64, u64)>,
}

impl PoolHandle<u64> for RecHandle {
    fn push(&mut self, prio: u64, _k: usize, task: u64) {
        self.pushed.push((prio, task));
    }
    fn pop_entry(&mut self) -> Option<(u64, u64)> {
        None
    }
    fn stats(&self) -> PlaceStats {
        PlaceStats::default()
    }
}

/// (e) Ingress quiescence counters: no interleaving of submit / drain /
/// check ever shows "quiescent" while a task is still uncharged.
///
/// This ports the stress test `counters_never_hide_a_task_mid_transfer`
/// (`src/ingest.rs`) into an exhaustive model: `drain_into` raises the
/// scheduler's `pending` counter *before* lowering the lane's `queued`
/// counter, so a checker reading producers → queued → pending (the
/// module-docs order) can never observe quiescence with the task charged
/// to neither counter. The stress test samples schedules; this model
/// enumerates them.
pub fn ingress_counters_never_hide_a_task() {
    loom::model(|| {
        let lanes: IngressLanes<u64> = IngressLanes::new(1);
        let pending = Arc::new(AtomicU64::new(0));
        let shared = Arc::clone(lanes.shared());

        let handle = lanes.handle();
        let producer = thread::spawn(move || {
            let mut h = handle;
            h.submit(7, 4, 7).unwrap();
            // Dropping `h` is the producer's "no more input" signal.
        });
        let drainer = {
            let (shared, pending) = (Arc::clone(&shared), Arc::clone(&pending));
            thread::spawn(move || {
                let mut rec = RecHandle::default();
                let (mut scratch, mut kbatch) = (Vec::new(), Vec::new());
                let mut got = 0;
                // Bounded attempts: a miss (producer still holds the lane
                // lock, or has not submitted yet) is mopped up by the
                // post-join drain below.
                for _ in 0..2 {
                    got += shared.drain_into(0, &mut rec, &pending, &mut scratch, &mut kbatch);
                    if got > 0 {
                        break;
                    }
                }
                got
            })
        };
        let checker = {
            let (shared, pending) = (Arc::clone(&shared), Arc::clone(&pending));
            thread::spawn(move || {
                // One probe per schedule; the explorer places it at every
                // reachable instant, which is what the stress test's spin
                // loop only samples.
                if shared.quiescent() {
                    assert_eq!(
                        pending.load(Ordering::Acquire),
                        1,
                        "quiescence observed before the task was charged to pending"
                    );
                }
            })
        };

        let mut got = drainer.join().unwrap();
        producer.join().unwrap();
        checker.join().unwrap();

        if got == 0 {
            let mut rec = RecHandle::default();
            let (mut scratch, mut kbatch) = (Vec::new(), Vec::new());
            got = shared.drain_into(0, &mut rec, &pending, &mut scratch, &mut kbatch);
        }
        assert_eq!(got, 1, "the submitted task must drain exactly once");
        assert_eq!(pending.load(Ordering::Acquire), 1);
        assert!(shared.quiescent());
    });
}

/// (f) Structural pool: the pop-side double-lock window versus a raider.
///
/// A pop snapshots its local minimum as a bound, *releases* the buffer
/// lock, queries the shared queue, and only then re-takes the buffer —
/// the window in which a raider may have drained the buffer into the
/// shared queue. The retry ladder (local pop miss → unbounded shared
/// retry) must hand the task to exactly one of the two threads: losing it
/// (both `None`) would strand a task against the scheduler's pending
/// counter; duplicating it would double-execute.
pub fn structural_pop_vs_raid_exactly_once() {
    loom::model(|| {
        // Two places, k = 2, mutex-backed shared queue (the combiner
        // handoff has its own model above).
        let sp = Arc::new(StructuralKPriority::<u64>::with_combining(2, 2, false));
        let mut owner = sp.handle(0);
        owner.push(5, 0, 50); // lands in place 0's local buffer

        let raider = {
            let sp = Arc::clone(&sp);
            thread::spawn(move || {
                let mut h = sp.handle(1);
                // Local buffer and shared queue are empty for place 1, so
                // this goes through the raid path against place 0.
                h.pop()
            })
        };
        let own = owner.pop();
        let stolen = raider.join().unwrap();

        let picked: Vec<u64> = own.into_iter().chain(stolen).collect();
        assert_eq!(
            picked,
            [50],
            "pop-vs-raid must transfer the task to exactly one thread"
        );
        assert_eq!(owner.pop(), None, "nothing may remain after the transfer");
    });
}
