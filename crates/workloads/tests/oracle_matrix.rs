//! Cross-matrix oracle coverage: every workload must match its sequential
//! oracle on every structure at 1 and 4 places.
//!
//! This is the contract that keeps example-derived workloads from rotting:
//! SSSP against Dijkstra, Cholesky against the dense sequential
//! factorization, knapsack against the exact DP optimum, bi-objective SSSP
//! against the exhaustive Pareto fronts. A relaxed structure that violates
//! its ρ bound (or a scheduler that drops/duplicates tasks) produces wrong
//! *answers* here, not just slow runs.

use priosched_core::{PoolKind, PoolParams};
use priosched_workloads::{
    BfsWorkload, CholeskyWorkload, DynWorkload, KnapsackWorkload, MoSsspWorkload, MstWorkload,
    SsspWorkload,
};

fn matrix(workload: &dyn DynWorkload, params: PoolParams) {
    for kind in PoolKind::ALL {
        for places in [1usize, 4] {
            let report = workload.run(kind, places, params);
            report.expect_verified();
            assert_eq!(report.places, places);
            assert_eq!(report.kind, kind);
            assert!(
                report.executed > 0,
                "{} on {kind}: nothing executed",
                workload.name()
            );
        }
    }
}

#[test]
fn sssp_matches_dijkstra_across_matrix() {
    let w = SsspWorkload::random(150, 0.08, 44);
    matrix(&w, PoolParams::with_k(32));
}

#[test]
fn cholesky_matches_dense_factorization_across_matrix() {
    let w = CholeskyWorkload::random(4, 8, 0xFEED_FACE);
    matrix(&w, PoolParams::with_k(16));
}

#[test]
fn knapsack_matches_dp_optimum_across_matrix() {
    let w = KnapsackWorkload::random(26, 2_500, 0x1234_5678_9ABC_DEF0);
    matrix(&w, PoolParams::with_k(64));
}

#[test]
fn mo_sssp_matches_exhaustive_fronts_across_matrix() {
    let w = MoSsspWorkload::random(45, 0.1, 99);
    matrix(&w, PoolParams::with_k(8));
}

#[test]
fn bfs_matches_sequential_bfs_across_matrix() {
    let w = BfsWorkload::random(160, 0.06, 77);
    matrix(&w, PoolParams::with_k(32));
}

#[test]
fn mst_matches_kruskal_across_matrix() {
    let w = MstWorkload::random(150, 0.05, 23);
    matrix(&w, PoolParams::with_k(32));
}

/// The streamed acceptance matrix: every workload, driven through
/// `run_workload_streamed` with 4 producer threads feeding sharded
/// ingestion lanes at 4 places, must match its sequential oracle on all
/// five structures. This is the committed guarantee that the open-world
/// path (lanes → pop-boundary drain → element-wise k/ρ charging →
/// quiescence termination) cannot be told apart from preseeding by any
/// oracle.
#[test]
fn streamed_ingestion_matches_oracles_across_matrix() {
    let workloads: Vec<Box<dyn DynWorkload>> = vec![
        Box::new(SsspWorkload::random(130, 0.08, 44)),
        // Wide frontier: hundreds of seeds shard across all 4 producers.
        Box::new(BfsWorkload::random_multi(140, 0.06, 77, 32)),
        Box::new(CholeskyWorkload::random(4, 8, 0xFEED_FACE)),
        Box::new(KnapsackWorkload::random(24, 2_200, 0x1234_5678_9ABC_DEF0)),
        Box::new(MoSsspWorkload::random(40, 0.1, 99)),
        // Wide seed stream too: one component-advance task per vertex.
        Box::new(MstWorkload::random(120, 0.06, 23)),
    ];
    let (places, producers, chunk) = (4usize, 4usize, 8usize);
    for workload in &workloads {
        for kind in PoolKind::ALL {
            let report =
                workload.run_streamed(kind, places, PoolParams::with_k(32), producers, chunk);
            report.expect_verified();
            assert!(
                report.executed > 0,
                "{} streamed on {kind}: nothing executed",
                workload.name()
            );
        }
    }
}

/// The backpressured acceptance matrix: the same streamed sweep with a
/// deliberately tiny `lane_capacity` (4), so producers hit `Full` lanes
/// constantly and ride the blocking park/wake path. Bounded buffering at
/// the producer/consumer boundary must be invisible to every oracle —
/// backpressure changes *when* tasks enter, never *what* is computed.
#[test]
fn streamed_ingestion_with_lane_capacity_matches_oracles_across_matrix() {
    let workloads: Vec<Box<dyn DynWorkload>> = vec![
        Box::new(SsspWorkload::random(130, 0.08, 44)),
        Box::new(BfsWorkload::random_multi(140, 0.06, 77, 32)),
        Box::new(CholeskyWorkload::random(4, 8, 0xFEED_FACE)),
        Box::new(KnapsackWorkload::random(24, 2_200, 0x1234_5678_9ABC_DEF0)),
        Box::new(MoSsspWorkload::random(40, 0.1, 99)),
        Box::new(MstWorkload::random(120, 0.06, 23)),
    ];
    let (places, producers, chunk) = (4usize, 4usize, 8usize);
    let params = PoolParams::with_k(32).with_lane_capacity(Some(4));
    for workload in &workloads {
        for kind in PoolKind::ALL {
            let report = workload.run_streamed(kind, places, params, producers, chunk);
            report.expect_verified();
            assert!(
                report.executed > 0,
                "{} backpressured on {kind}: nothing executed",
                workload.name()
            );
        }
    }
}

/// Strict ordering (k = 1) and heavy relaxation (k = 4096) both stay
/// correct — the knob trades work for synchronization, never correctness.
#[test]
fn k_extremes_stay_correct_on_hybrid_and_structural() {
    let sssp = SsspWorkload::random(100, 0.1, 7);
    let knap = KnapsackWorkload::random(22, 2_000, 3);
    for k in [1usize, 4096] {
        for kind in [PoolKind::Hybrid, PoolKind::Structural] {
            sssp.run(kind, 2, PoolParams::with_k(k)).expect_verified();
            knap.run(kind, 2, PoolParams::with_k(k)).expect_verified();
        }
    }
}
