#![warn(missing_docs)]

//! Sequential priority queues used as place-local components.
//!
//! All three scheduling data structures of Wimmer et al. (PPoPP 2014) keep a
//! *sequential* priority queue per place (thread): the paper notes in §4.1
//! that "any sequential implementation of a priority queue can be used, since
//! each priority queue is only accessed in the context of a single place".
//!
//! This crate provides two such implementations behind a common trait:
//!
//! * [`BinaryHeap`] — array-backed binary min-heap; the default everywhere.
//! * [`PairingHeap`] — pointer-based pairing heap with two-pass melding;
//!   useful as an independent implementation for differential testing and as
//!   a better fit for workloads with heavy `meld`/bulk insertion.
//!
//! Both are **min**-queues: `pop` returns the smallest element, matching the
//! paper's convention for the SSSP evaluation ("priority, smaller is
//! better" in Listing 5).
//!
//! Beyond the textbook operations, the trait carries two operations the
//! scheduler needs:
//!
//! * [`SequentialPriorityQueue::split_half`] — remove roughly half of the
//!   elements (an arbitrary half, *not* the best half) and return them as a
//!   new queue. This implements the steal-half policy of the priority
//!   work-stealing structure (§3.1, citing Hendler & Shavit).
//! * [`SequentialPriorityQueue::retain`] — drop entries that no longer need
//!   to be scheduled. This backs the lazy dead-task elimination described in
//!   §5.1.

pub mod binary_heap;
pub mod dary_heap;
pub mod pairing_heap;

/// Shared bulk-insertion repair policy for the array-backed heaps:
/// `true` when Floyd's O(n) heapify beats sifting up each of the `added`
/// elements individually (O(added · log n)). The crossover is
/// approximated as `added ≥ n / log₂(n)`; an empty original heap always
/// rebuilds. Kept in one place so the binary and d-ary heaps cannot
/// silently diverge on the policy.
pub(crate) fn bulk_repair_prefers_heapify(old: usize, added: usize, n: usize) -> bool {
    debug_assert_eq!(old + added, n);
    let log_n = (usize::BITS - n.leading_zeros()).max(1) as usize;
    old == 0 || added >= n / log_n
}

pub use binary_heap::BinaryHeap;
pub use dary_heap::{DaryHeap, QuaternaryHeap};
pub use pairing_heap::PairingHeap;

/// A sequential min-priority queue.
///
/// Implementations are not thread-safe by design: the scheduler guarantees
/// single-threaded access per place (or wraps the queue in a lock for the
/// work-stealing structure).
pub trait SequentialPriorityQueue<T: Ord>: Default {
    /// Creates an empty queue.
    fn new() -> Self;

    /// Inserts an element.
    fn push(&mut self, item: T);

    /// Removes and returns the smallest element, or `None` when empty.
    fn pop(&mut self) -> Option<T>;

    /// Returns a reference to the smallest element without removing it.
    fn peek(&self) -> Option<&T>;

    /// Number of stored elements.
    fn len(&self) -> usize;

    /// `true` when no elements are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all elements.
    fn clear(&mut self);

    /// Removes roughly half of the elements (⌈len/2⌉ of them, an arbitrary
    /// half by priority) and returns them as a new queue of the same type.
    ///
    /// Used by the work-stealing structure: "it chooses a random place and
    /// steals half the tasks from that place's priority queue" (§3.1).
    fn split_half(&mut self) -> Self;

    /// Keeps only the elements for which `keep` returns `true`.
    ///
    /// Backs lazy dead-task elimination (§5.1): entries whose task has become
    /// irrelevant (e.g. an SSSP node whose tentative distance has improved
    /// since the entry was created) can be swept without popping them.
    fn retain<F: FnMut(&T) -> bool>(&mut self, keep: F);

    /// Moves all elements of `other` into `self`, leaving `other` empty.
    fn append(&mut self, other: &mut Self);

    /// Inserts every element of `iter`, repairing the queue invariant once
    /// per batch instead of once per element.
    ///
    /// This is the sequential half of the scheduler's batch API: array
    /// heaps repair with Floyd's O(n) heapify (or per-element sift-up when
    /// the batch is small relative to the heap), and the pairing heap melds
    /// the batch in with a two-pass pairing combine. The default
    /// implementation falls back to per-element `push`.
    ///
    /// Equivalent to `for x in iter { self.push(x) }` up to internal
    /// layout: the stored multiset and the pop order are identical.
    fn extend_batch<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Drains the queue in an arbitrary order into a vector.
    ///
    /// Primarily for tests and for rebuilding after bulk operations; callers
    /// that need sorted output should `pop` repeatedly instead.
    fn drain_unordered(&mut self) -> Vec<T>;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn exercise<Q: SequentialPriorityQueue<i64>>() {
        let mut q = Q::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push(5);
        q.push(1);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek(), Some(&1));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(5));
        assert_eq!(q.pop(), None);
    }

    fn exercise_extend_batch<Q: SequentialPriorityQueue<i64>>() {
        let mut q = Q::new();
        q.push(4);
        q.extend_batch([9, 0, 7, 2]);
        q.extend_batch(std::iter::empty());
        assert_eq!(q.len(), 5);
        let mut out = Vec::new();
        while let Some(x) = q.pop() {
            out.push(x);
        }
        assert_eq!(out, vec![0, 2, 4, 7, 9]);
    }

    #[test]
    fn binary_heap_basics() {
        exercise::<BinaryHeap<i64>>();
        exercise_extend_batch::<BinaryHeap<i64>>();
    }

    #[test]
    fn pairing_heap_basics() {
        exercise::<PairingHeap<i64>>();
        exercise_extend_batch::<PairingHeap<i64>>();
    }

    #[test]
    fn dary_heap_basics() {
        exercise::<QuaternaryHeap<i64>>();
        exercise_extend_batch::<QuaternaryHeap<i64>>();
    }
}
