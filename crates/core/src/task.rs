//! Task-model helpers: finish regions (§2).
//!
//! The paper's model is async-finish (as in X10): "A finish region is a
//! blocking synchronization primitive, where execution can only continue
//! after all tasks transitively spawned inside the finish region have been
//! executed."
//!
//! A [`FinishRegion`] is a shared counter of outstanding tasks. Under
//! help-first scheduling the "blocking" wait is cooperative: the waiting
//! task calls [`crate::scheduler::SpawnCtx::help_while`] with
//! [`FinishRegion::is_open`] as the condition, executing other tasks until
//! the region drains. Tasks participate by carrying a [`RegionGuard`]
//! (created with [`FinishRegion::register`]) that completes the task when
//! dropped — including on panic, so regions cannot leak open.

use crate::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A counter of tasks transitively spawned inside a finish region.
#[derive(Clone, Debug, Default)]
pub struct FinishRegion {
    outstanding: Arc<AtomicU64>,
}

impl FinishRegion {
    /// Creates an empty (closed) region.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one task with the region; the task completes when the
    /// returned guard drops.
    pub fn register(&self) -> RegionGuard {
        self.outstanding.fetch_add(1, Ordering::AcqRel);
        RegionGuard {
            outstanding: Arc::clone(&self.outstanding),
        }
    }

    /// `true` while registered tasks are outstanding.
    pub fn is_open(&self) -> bool {
        self.outstanding.load(Ordering::Acquire) > 0
    }

    /// Number of outstanding tasks.
    pub fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::Acquire)
    }
}

/// Completion token for one task registered with a [`FinishRegion`].
#[derive(Debug)]
pub struct RegionGuard {
    outstanding: Arc<AtomicU64>,
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        let prev = self.outstanding.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "finish region underflow");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_opens_and_closes() {
        let region = FinishRegion::new();
        assert!(!region.is_open());
        let g1 = region.register();
        let g2 = region.register();
        assert!(region.is_open());
        assert_eq!(region.outstanding(), 2);
        drop(g1);
        assert!(region.is_open());
        drop(g2);
        assert!(!region.is_open());
    }

    #[test]
    fn clones_share_the_counter() {
        let region = FinishRegion::new();
        let alias = region.clone();
        let g = region.register();
        assert!(alias.is_open());
        drop(g);
        assert!(!alias.is_open());
    }

    #[test]
    fn guard_completes_on_panic() {
        let region = FinishRegion::new();
        let g = region.register();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _moved = g;
            panic!("task failed");
        }));
        assert!(result.is_err());
        assert!(!region.is_open(), "guard must complete on unwind");
    }
}
