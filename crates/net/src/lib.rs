#![warn(missing_docs)]

//! TCP ingestion frontend over [`PoolService`]: the `priosched-serve`
//! network layer.
//!
//! This crate is the open-world scheduler's front door for remote
//! producers: a line-protocol TCP server whose connections feed a running
//! pool through the async ingestion path (`priosched_core::async_ingest`).
//! Each accepted socket gets its **own connection actor** — an async
//! function holding an [`AsyncIngestHandle`] cloned from the service's
//! producer lineage — driven by the in-tree `futures-executor` shim on a
//! lightweight per-connection thread. Dropping the handle on disconnect
//! is the connection's "no more input" signal, so the service's
//! quiescence protocol extends to the network unchanged.
//!
//! # Backpressure, end to end
//!
//! The actor reads **one request at a time** and does not read the next
//! line until the current submission was accepted by the lanes. When the
//! pool's bounded ingress lanes are full, the actor's submit future is
//! `Pending` (its waker parked where blocking producers park threads), the
//! actor stops reading its socket, the kernel's TCP receive window fills,
//! and the *client's* sends stall — backpressure propagates to the wire
//! instead of buffering unboundedly in the server. A quiescent server with
//! idle connections burns no CPU: actors are blocked in `read`, pool
//! workers are parked ([`Server::idle_iters`] stops advancing — the same
//! guarantee as `PoolService::idle_iters`).
//!
//! # Protocol
//!
//! Newline-terminated ASCII requests, one reply line per request:
//!
//! | request | reply | meaning |
//! |---|---|---|
//! | `SUBMIT <prio> <k> <value>` | `OK` | enqueue one countdown job |
//! | `BATCH <k> <prio>:<value> …` | `OK <n>` | enqueue a batch (one lane, one lock) |
//! | `JOIN` | `DONE <executed>` | wait until the pool drained |
//! | `STATS` | `STATS accepted=… …` | this connection's counters |
//! | `PING` | `PONG` | liveness probe |
//! | `QUIT` | `BYE` | orderly goodbye (server closes) |
//!
//! Malformed requests get `ERR <reason>` and the connection stays open;
//! submissions rejected by a poisoned pool get `ERR aborted` /
//! `ERR shutdown`.
//!
//! A *job* is a countdown chain: value `v` executes and spawns `v-1`
//! (priority = value, smaller first) down to zero — `v + 1` executions per
//! submission. The chain gives every submission a deterministic execution
//! count, so a client can verify the server end-to-end:
//! `DONE <executed>` after quiescence must equal
//! `Σ (value_i + 1)` over everything accepted — the oracle the round-trip
//! tests and the `schedbench --net` axis check.
//!
//! # Shutdown
//!
//! [`Server::shutdown`] (also run by `Drop`) is graceful by construction:
//! stop accepting (listener poked closed), shut the read half of every
//! live connection (actors finish their current request, reply, and exit,
//! dropping their producer handles), join the actors, then
//! [`PoolService::shutdown`] — which *drains to quiescence* rather than
//! aborting, so work accepted from a client is never discarded.
//!
//! # Deadlines and idle reaping
//!
//! All three connection deadlines on [`ServerConfig`] default to **off**
//! (`None`) — a server without them behaves exactly as before, with
//! actors blocked in `read` burning no CPU. When configured:
//!
//! - [`ServerConfig::read_timeout`] bounds how long a *started* request
//!   line may take to complete. A client that sends half a line and
//!   stalls is answered `ERR read deadline exceeded` and disconnected —
//!   a half-open or malicious peer cannot pin an actor (and its producer
//!   handle, and therefore quiescence) forever.
//! - [`ServerConfig::idle_timeout`] bounds the gap *between* requests:
//!   a connection with no bytes in flight for that long is quietly
//!   reaped (socket closed, actor exits, producer handle dropped).
//! - [`ServerConfig::write_timeout`] bounds each reply write; a stalled
//!   writer ends the connection via the ordinary write-error path.
//!
//! Deadline enforcement polls the socket with a short tick (a fraction
//! of the smallest configured deadline), preserving any partial line
//! already read across ticks — partial input is never dropped while the
//! deadline has not expired.
//!
//! # Fault containment
//!
//! A panicking connection actor must not take the server down with it:
//! the panic is caught *inside* the actor thread, the socket registry
//! entry is released, and the failure is recorded as a [`ConnFailure`]
//! in [`ServeSummary::failures`] instead of resuming the panic out of
//! [`Server::shutdown`]. The same goes for the accept loop. A task
//! panic inside the pool itself surfaces through the typed
//! [`PoolService::shutdown`] result; the server folds those stats (with
//! their `failed` count and [`priosched_core::FailureReport`]s) into
//! [`ServeSummary::run`] rather than poisoning shutdown.

use priosched_core::async_ingest::AsyncIngestHandle;
use priosched_core::{
    panic_message, PoolBuilder, PoolKind, PoolService, RunStats, SpawnCtx, TaskExecutor,
};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The executor behind every served job: value `v` counts one execution
/// and spawns `v - 1`, so a submission of `v` contributes exactly `v + 1`
/// executions — the server's verifiable oracle.
pub struct CountdownExec {
    k: usize,
    executed: AtomicU64,
}

impl CountdownExec {
    /// Creates the executor; spawned children carry relaxation bound `k`.
    pub fn new(k: usize) -> Self {
        CountdownExec {
            k,
            executed: AtomicU64::new(0),
        }
    }

    /// Jobs executed so far, across all connections.
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Acquire)
    }

    /// The oracle: executions a submission of `value` contributes.
    pub fn expected_executions(value: u64) -> u64 {
        value + 1
    }
}

impl TaskExecutor<u64> for CountdownExec {
    fn execute(&self, value: u64, ctx: &mut SpawnCtx<'_, u64>) {
        self.executed.fetch_add(1, Ordering::AcqRel);
        if value > 0 {
            ctx.spawn(value - 1, self.k, value - 1);
        }
    }
}

/// One parsed protocol request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// `SUBMIT <prio> <k> <value>`
    Submit {
        /// Priority key (smaller = higher).
        prio: u64,
        /// Relaxation bound for this job.
        k: usize,
        /// Countdown start value.
        value: u64,
    },
    /// `BATCH <k> <prio>:<value> …`
    Batch {
        /// Relaxation bound shared by the batch.
        k: usize,
        /// `(prio, value)` pairs, submitted through one lane.
        jobs: Vec<(u64, u64)>,
    },
    /// `JOIN` — wait for the pool to drain.
    Join,
    /// `STATS` — this connection's counters.
    Stats,
    /// `PING` — liveness probe.
    Ping,
    /// `QUIT` — orderly goodbye.
    Quit,
}

/// Parses one protocol line (without its newline). `Err` is the reason
/// echoed back as `ERR <reason>`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut words = line.split_ascii_whitespace();
    let verb = words.next().ok_or("empty request")?;
    match verb {
        "SUBMIT" => {
            let mut num = |name: &str| -> Result<u64, String> {
                words
                    .next()
                    .ok_or(format!("SUBMIT missing {name}"))?
                    .parse()
                    .map_err(|_| format!("SUBMIT: bad {name}"))
            };
            let (prio, k, value) = (num("prio")?, num("k")?, num("value")?);
            if words.next().is_some() {
                return Err("SUBMIT: trailing garbage".into());
            }
            Ok(Request::Submit {
                prio,
                k: k as usize,
                value,
            })
        }
        "BATCH" => {
            let k: usize = words
                .next()
                .ok_or("BATCH missing k")?
                .parse()
                .map_err(|_| "BATCH: bad k".to_string())?;
            let mut jobs = Vec::new();
            for pair in words {
                let (p, v) = pair
                    .split_once(':')
                    .ok_or_else(|| format!("BATCH: expected prio:value, got {pair:?}"))?;
                let prio = p
                    .parse()
                    .map_err(|_| format!("BATCH: bad prio in {pair:?}"))?;
                let value = v
                    .parse()
                    .map_err(|_| format!("BATCH: bad value in {pair:?}"))?;
                jobs.push((prio, value));
            }
            if jobs.is_empty() {
                return Err("BATCH: no jobs".into());
            }
            Ok(Request::Batch { k, jobs })
        }
        "JOIN" => Ok(Request::Join),
        "STATS" => Ok(Request::Stats),
        "PING" => Ok(Request::Ping),
        "QUIT" => Ok(Request::Quit),
        other => Err(format!("unknown verb {other:?}")),
    }
}

/// Per-connection counters, reported by `STATS` and aggregated into the
/// [`ServeSummary`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Jobs accepted into the lanes (scalar + batch items).
    pub accepted: u64,
    /// Of those, jobs that arrived in `BATCH` requests.
    pub batch_items: u64,
    /// `JOIN` requests served.
    pub joins: u64,
    /// Malformed or rejected requests.
    pub errors: u64,
}

/// Construction parameters of a [`Server`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Scheduling structure backing the pool.
    pub kind: PoolKind,
    /// Worker threads (== ingress lanes).
    pub places: usize,
    /// Relaxation bound handed to pool construction.
    pub k: usize,
    /// Per-lane ingress capacity (`None` = unbounded). Bounded lanes are
    /// what make the submit futures pend — and the clients stall — under
    /// overload.
    pub lane_capacity: Option<usize>,
    /// Deadline for completing a request line once its first byte
    /// arrived (`None` = wait forever — the default). Exceeding it gets
    /// `ERR read deadline exceeded` and a disconnect.
    pub read_timeout: Option<Duration>,
    /// Deadline for each reply write (`None` = blocking writes — the
    /// default). A stalled writer ends the connection.
    pub write_timeout: Option<Duration>,
    /// Idle-connection reaper: a connection with no request bytes in
    /// flight for this long is quietly closed (`None` = never — the
    /// default).
    pub idle_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            kind: PoolKind::Hybrid,
            places: 2,
            k: 64,
            lane_capacity: Some(256),
            read_timeout: None,
            write_timeout: None,
            idle_timeout: None,
        }
    }
}

/// A contained server-side failure: a connection actor (or the accept
/// loop) that panicked instead of exiting cleanly. Recorded in
/// [`ServeSummary::failures`] rather than resumed out of shutdown.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConnFailure {
    /// Accept slot of the failed connection (`None` when the accept
    /// loop itself failed).
    pub slot: Option<usize>,
    /// The rendered panic message.
    pub message: String,
}

impl std::fmt::Display for ConnFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.slot {
            Some(slot) => write!(f, "connection {slot} failed: {}", self.message),
            None => write!(f, "accept loop failed: {}", self.message),
        }
    }
}

/// Aggregated outcome of one server lifetime.
#[derive(Debug)]
pub struct ServeSummary {
    /// The pool's run statistics (from [`PoolService::shutdown`]). A
    /// task panic under the pool's fault policy shows up here as
    /// `run.failed` / `run.failures` — shutdown itself stays graceful.
    pub run: RunStats,
    /// Per-connection counters, in accept order. Connections whose
    /// actor panicked are absent here and present in `failures`.
    pub connections: Vec<ConnStats>,
    /// Contained actor/accept-loop panics (empty on a healthy run).
    pub failures: Vec<ConnFailure>,
}

impl ServeSummary {
    /// Jobs accepted across all connections.
    pub fn accepted(&self) -> u64 {
        self.connections.iter().map(|c| c.accepted).sum()
    }

    /// `true` when nothing went wrong anywhere: no actor panics and no
    /// quarantined task failures in the pool.
    pub fn healthy(&self) -> bool {
        self.failures.is_empty() && self.run.failed == 0
    }
}

/// Coordination between [`Server`], its accept loop, and shutdown.
struct Ctl {
    stop: AtomicBool,
    /// Read halves of **live** connections by accept slot (entries are
    /// removed when the actor exits, so a long-lived server does not
    /// accumulate dead sockets), shut down at server shutdown so blocked
    /// actors see EOF and exit after their current request.
    conns: Mutex<std::collections::HashMap<usize, TcpStream>>,
    /// Connections fully served (actor exited); condvar for
    /// [`Server::wait_connections_closed`].
    closed: Mutex<usize>,
    closed_cv: Condvar,
}

impl Ctl {
    fn note_closed(&self) {
        let mut n = self.closed.lock().unwrap_or_else(|p| p.into_inner());
        *n += 1;
        self.closed_cv.notify_all();
    }
}

/// The `priosched-serve` TCP frontend: a bound listener, its accept loop,
/// and the [`PoolService`] the connections feed.
pub struct Server {
    addr: SocketAddr,
    service: Option<Arc<PoolService<u64>>>,
    exec: Arc<CountdownExec>,
    ctl: Arc<Ctl>,
    accept: Option<AcceptThread>,
    started: Instant,
}

/// One actor thread's outcome: its stats, or the rendered message of a
/// panic it contained (the catch happens *inside* the thread, after the
/// registry cleanup — joining an actor never re-raises).
type ActorOutcome = Result<ConnStats, String>;

/// The accept loop's thread. Returns the outcomes of connections already
/// reaped during the loop plus the still-live actor threads, both keyed
/// by accept slot so the final summary is in accept order.
type AcceptThread = std::thread::JoinHandle<(
    Vec<(usize, ActorOutcome)>,
    Vec<(usize, std::thread::JoinHandle<ActorOutcome>)>,
)>;

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port — see
    /// [`Server::local_addr`]) and starts the pool workers plus the accept
    /// loop.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let exec = Arc::new(CountdownExec::new(config.k));
        let mut builder = PoolBuilder::new(config.kind)
            .places(config.places)
            .k(config.k);
        if let Some(cap) = config.lane_capacity {
            builder = builder.lane_capacity(cap);
        }
        let service: Arc<PoolService<u64>> = Arc::new(builder.service(Arc::clone(&exec)));
        let ctl = Arc::new(Ctl {
            stop: AtomicBool::new(false),
            conns: Mutex::new(std::collections::HashMap::new()),
            closed: Mutex::new(0),
            closed_cv: Condvar::new(),
        });
        let accept = {
            let service = Arc::clone(&service);
            let exec = Arc::clone(&exec);
            let ctl = Arc::clone(&ctl);
            std::thread::Builder::new()
                .name("priosched-accept".into())
                .spawn(move || accept_loop(listener, service, exec, ctl, config))
                .expect("failed to spawn accept thread")
        };
        Ok(Server {
            addr,
            service: Some(service),
            exec,
            ctl,
            accept: Some(accept),
            started: Instant::now(),
        })
    }

    /// The bound address (resolves port 0 to the chosen ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Jobs executed so far across all connections.
    pub fn executed(&self) -> u64 {
        self.exec.executed()
    }

    /// The shared countdown executor (its count outlives the server —
    /// useful for asserting on work completed across a drop).
    pub fn executor(&self) -> Arc<CountdownExec> {
        Arc::clone(&self.exec)
    }

    /// Idle-loop iterations of the pool workers — the no-busy-wait meter.
    /// A quiescent server with idle connections must not advance this
    /// (workers parked, actors blocked in `read`).
    pub fn idle_iters(&self) -> u64 {
        self.service
            .as_ref()
            .expect("service present until shutdown")
            .idle_iters()
    }

    /// Blocks until at least `n` connections have been fully served
    /// (accepted *and* disconnected). Condvar-based — no polling.
    pub fn wait_connections_closed(&self, n: usize) {
        let mut closed = self.ctl.closed.lock().unwrap_or_else(|p| p.into_inner());
        while *closed < n {
            closed = self
                .ctl
                .closed_cv
                .wait(closed)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Graceful shutdown: close the listener, let every live connection
    /// finish its current request, join the actors, then drain the pool
    /// to quiescence ([`PoolService::shutdown`] — in-flight accepted work
    /// always completes). Returns the aggregated summary. Never panics on
    /// a failed actor or aborted pool: those are reported in
    /// [`ServeSummary::failures`] and [`ServeSummary::run`] instead.
    pub fn shutdown(mut self) -> ServeSummary {
        self.shutdown_impl()
            .expect("shutdown_impl runs once before drop")
    }

    fn shutdown_impl(&mut self) -> Option<ServeSummary> {
        let service = self.service.take()?;
        self.ctl.stop.store(true, Ordering::Release);
        // Poke the blocking accept() awake; it observes `stop` and exits.
        let _ = TcpStream::connect(self.addr);
        let mut failures: Vec<ConnFailure> = Vec::new();
        // Join the accept loop *before* closing connections: once it has
        // exited, the connection registry can no longer grow, so the close
        // sweep below cannot miss a just-accepted socket.
        let (mut reaped, live) = match self
            .accept
            .take()
            .expect("accept thread present until shutdown")
            .join()
        {
            Ok(collected) => collected,
            Err(payload) => {
                // Contained: no actor list to join, but the registry sweep
                // below still unblocks live actors (they clean up their own
                // registry entries as they exit).
                failures.push(ConnFailure {
                    slot: None,
                    message: panic_message(&*payload),
                });
                (Vec::new(), Vec::new())
            }
        };
        // Unblock actors waiting in read(): EOF ends their request loop
        // after the current request — accepted work is never cut short.
        for conn in self
            .ctl
            .conns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
        {
            let _ = conn.shutdown(Shutdown::Read);
        }
        for (slot, actor) in live {
            let outcome = actor
                .join()
                .unwrap_or_else(|payload| Err(panic_message(&*payload)));
            reaped.push((slot, outcome));
        }
        reaped.sort_by_key(|&(slot, _)| slot);
        let mut connections = Vec::new();
        for (slot, outcome) in reaped {
            match outcome {
                Ok(stats) => connections.push(stats),
                Err(message) => failures.push(ConnFailure {
                    slot: Some(slot),
                    message,
                }),
            }
        }
        // Every actor has exited and dropped its producer handle; the only
        // remaining Arc is ours, and PoolService::shutdown drains to
        // quiescence instead of aborting. A pool-level abort (task panic
        // under `FaultPolicy::AbortRun`) surfaces as the typed error whose
        // stats — including the failure reports — we fold into the summary
        // rather than letting it poison shutdown.
        let service = Arc::try_unwrap(service)
            .unwrap_or_else(|_| panic!("connection actors must not outlive the accept loop"));
        let mut run = match service.shutdown() {
            Ok(run) => run,
            Err(err) => err.stats,
        };
        run.elapsed = self.started.elapsed();
        Some(ServeSummary {
            run,
            connections,
            failures,
        })
    }
}

impl Drop for Server {
    /// Dropping a server is the same graceful path as
    /// [`Server::shutdown`]: never an abortive [`PoolService`] drop, so
    /// accepted client work is never discarded.
    fn drop(&mut self) {
        let _ = self.shutdown_impl();
    }
}

/// Accepts connections until told to stop; one actor thread per socket.
///
/// Finished actors are reaped opportunistically on every accept (their
/// join is instantaneous), so a long-lived server's footprint is bounded
/// by its *concurrent* connections, not by every connection ever served;
/// still-live actors are returned for [`Server::shutdown`] to join after
/// closing their sockets (the accept loop itself never blocks on them).
#[allow(clippy::type_complexity)]
fn accept_loop(
    listener: TcpListener,
    service: Arc<PoolService<u64>>,
    exec: Arc<CountdownExec>,
    ctl: Arc<Ctl>,
    config: ServerConfig,
) -> (
    Vec<(usize, ActorOutcome)>,
    Vec<(usize, std::thread::JoinHandle<ActorOutcome>)>,
) {
    let mut live: Vec<(usize, std::thread::JoinHandle<ActorOutcome>)> = Vec::new();
    let mut reaped: Vec<(usize, ActorOutcome)> = Vec::new();
    let mut next_slot = 0usize;
    for stream in listener.incoming() {
        // Reap exited actors: thread stacks are released at join time,
        // not at thread exit.
        let mut i = 0;
        while i < live.len() {
            if live[i].1.is_finished() {
                let (slot, actor) = live.swap_remove(i);
                let outcome = actor
                    .join()
                    .unwrap_or_else(|payload| Err(panic_message(&*payload)));
                reaped.push((slot, outcome));
            } else {
                i += 1;
            }
        }
        if ctl.stop.load(Ordering::Acquire) {
            break; // the shutdown poke (or a raced real client) ends us
        }
        let Ok(stream) = stream else { continue };
        // Request/reply line protocol: Nagle's algorithm would add a
        // delayed-ACK round trip to every one-line reply.
        let _ = stream.set_nodelay(true);
        let slot = next_slot;
        next_slot += 1;
        if let Ok(clone) = stream.try_clone() {
            ctl.conns
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(slot, clone);
        }
        // The connection's producer identity: one async handle per accept,
        // dropped when the actor exits (its "no more input" signal).
        let handle = service.async_ingest_handle();
        let svc = Arc::clone(&service);
        let exec = Arc::clone(&exec);
        let ctl2 = Arc::clone(&ctl);
        live.push((
            slot,
            std::thread::Builder::new()
                .name("priosched-conn".into())
                .spawn(move || {
                    // Contain actor panics *inside* the thread: the
                    // registry entry is released and the close is
                    // announced even on a panic, so a failed connection
                    // can neither leak its socket nor wedge
                    // `wait_connections_closed` — and joining the thread
                    // never re-raises.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        futures_executor::block_on(connection_actor(
                            stream, handle, svc, exec, config,
                        ))
                    }))
                    .map_err(|payload| panic_message(&*payload));
                    // Release the registry entry (long-lived servers must
                    // not accumulate dead sockets), then announce.
                    ctl2.conns
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .remove(&slot);
                    ctl2.note_closed();
                    outcome
                })
                .expect("failed to spawn connection actor thread"),
        ));
    }
    (reaped, live)
}

/// One connection's actor: parse a request, drive it through the async
/// ingestion handle, reply, repeat until EOF/`QUIT`. Runs under
/// `futures_executor::block_on` on its own thread; a `Pending` submit
/// future parks the thread (and stops socket reads — wire backpressure).
async fn connection_actor(
    stream: TcpStream,
    mut handle: AsyncIngestHandle<u64>,
    service: Arc<PoolService<u64>>,
    exec: Arc<CountdownExec>,
    config: ServerConfig,
) -> ConnStats {
    /// Longest accepted request line. The no-unbounded-buffering promise
    /// must hold against a single newline-less flood too: past this, the
    /// connection is answered with `ERR` and closed (no way to resync).
    const MAX_LINE_BYTES: u64 = 64 * 1024;
    let mut stats = ConnStats::default();
    let _ = stream.set_write_timeout(config.write_timeout);
    // Deadlines poll with a short socket timeout instead of blocking
    // forever in read(); with none configured the read stays fully
    // blocking — zero CPU while idle, exactly as before.
    let deadlines_on = config.read_timeout.is_some() || config.idle_timeout.is_some();
    if deadlines_on {
        let _ = stream.set_read_timeout(Some(deadline_tick(&config)));
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return stats,
    };
    let mut reader = std::io::Read::take(BufReader::new(stream), MAX_LINE_BYTES);
    let mut line = String::new();
    let mut last_activity = Instant::now();
    loop {
        line.clear();
        reader.set_limit(MAX_LINE_BYTES);
        // How one request line's read ended.
        enum ReadEnd {
            /// A line (or the unterminated tail before EOF) arrived.
            Line,
            /// EOF or connection reset.
            Eof,
            /// A started line outlived `read_timeout`.
            Deadline,
            /// No request bytes for `idle_timeout` — reap quietly.
            Idle,
        }
        let mut line_started: Option<Instant> = None;
        let end = loop {
            match reader.read_line(&mut line) {
                Ok(0) => break ReadEnd::Eof,
                Ok(_) => break ReadEnd::Line,
                Err(e)
                    if deadlines_on
                        && matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
                {
                    // Deadline tick. Partial bytes already read stay in
                    // `line` across ticks (valid ASCII survives an errored
                    // `read_line`) — only the clock advances here.
                    let now = Instant::now();
                    if !line.is_empty() {
                        let started = *line_started.get_or_insert(now);
                        if let Some(limit) = config.read_timeout {
                            if now.duration_since(started) >= limit {
                                break ReadEnd::Deadline;
                            }
                        }
                    } else if let Some(limit) = config.idle_timeout {
                        if now.duration_since(last_activity) >= limit {
                            break ReadEnd::Idle;
                        }
                    }
                }
                Err(_) => break ReadEnd::Eof, // connection reset
            }
        };
        match end {
            ReadEnd::Line => last_activity = Instant::now(),
            ReadEnd::Eof | ReadEnd::Idle => break,
            ReadEnd::Deadline => {
                stats.errors += 1;
                let _ = writeln!(writer, "ERR read deadline exceeded");
                break;
            }
        }
        if !line.ends_with('\n') && reader.limit() == 0 {
            stats.errors += 1;
            let _ = writeln!(writer, "ERR request line exceeds {MAX_LINE_BYTES} bytes");
            break;
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            continue;
        }
        let reply = match parse_request(trimmed) {
            Err(reason) => {
                stats.errors += 1;
                format!("ERR {reason}")
            }
            Ok(Request::Submit { prio, k, value }) => match handle.submit(prio, k, value).await {
                Ok(()) => {
                    stats.accepted += 1;
                    "OK".to_string()
                }
                Err(e) => {
                    stats.errors += 1;
                    submit_error_reply(e.kind())
                }
            },
            Ok(Request::Batch { k, mut jobs }) => {
                let n = jobs.len() as u64;
                match handle.submit_batch(k, &mut jobs).await {
                    Ok(()) => {
                        stats.accepted += n;
                        stats.batch_items += n;
                        format!("OK {n}")
                    }
                    Err(e) => {
                        // Partial acceptance: whatever is no longer in
                        // `jobs` made it into the lanes before the abort.
                        let taken = n - jobs.len() as u64;
                        stats.accepted += taken;
                        stats.batch_items += taken;
                        stats.errors += 1;
                        submit_error_reply(e)
                    }
                }
            }
            Ok(Request::Join) => {
                stats.joins += 1;
                match service.join_async().await {
                    Ok(()) => format!("DONE {}", exec.executed()),
                    Err(_aborted) => {
                        stats.errors += 1;
                        "ERR aborted".to_string()
                    }
                }
            }
            Ok(Request::Stats) => format!(
                "STATS accepted={} batch_items={} joins={} errors={}",
                stats.accepted, stats.batch_items, stats.joins, stats.errors
            ),
            Ok(Request::Ping) => "PONG".to_string(),
            Ok(Request::Quit) => {
                let _ = writeln!(writer, "BYE");
                break;
            }
        };
        if writeln!(writer, "{reply}").is_err() {
            break; // client gone; stop serving
        }
    }
    stats
}

/// Poll granularity for deadline enforcement: a quarter of the smallest
/// configured deadline, clamped to [2ms, 100ms] — prompt detection
/// without a hot spin.
fn deadline_tick(config: &ServerConfig) -> Duration {
    let smallest = [config.read_timeout, config.idle_timeout]
        .into_iter()
        .flatten()
        .min()
        .unwrap_or(Duration::from_millis(400));
    (smallest / 4).clamp(Duration::from_millis(2), Duration::from_millis(100))
}

/// Maps a payload-free [`priosched_core::SubmitError`] to its `ERR` line.
fn submit_error_reply(e: priosched_core::SubmitError) -> String {
    match e {
        priosched_core::SubmitError::Full(()) => "ERR full".to_string(),
        priosched_core::SubmitError::Aborted(()) => "ERR aborted".to_string(),
        priosched_core::SubmitError::ShutDown(()) => "ERR shutdown".to_string(),
    }
}

/// Load-generator parameters for [`run_load`].
#[derive(Clone, Copy, Debug)]
pub struct LoadSpec {
    /// Concurrent client connections.
    pub conns: usize,
    /// Submissions per connection.
    pub per_conn: usize,
    /// Relaxation bound sent with every job.
    pub k: usize,
    /// Jobs per `BATCH` request (`0` = scalar `SUBMIT`s).
    pub batch: usize,
}

/// Outcome of one [`run_load`] drive, verified against the countdown
/// oracle.
#[derive(Clone, Copy, Debug)]
pub struct LoadReport {
    /// Jobs the clients submitted (all accepted).
    pub submitted: u64,
    /// Executions the countdown oracle predicts for them.
    pub expected_executions: u64,
    /// Executions the server reported at `DONE`.
    pub executed: u64,
    /// Requests re-sent after an `ERR full` rejection (bounded
    /// exponential backoff; zero on an un-contended run).
    pub retries: u64,
    /// Wall-clock time from first connect to `DONE`.
    pub elapsed: Duration,
}

impl LoadReport {
    /// `true` when the server's execution count matches the oracle.
    pub fn verified(&self) -> bool {
        self.executed == self.expected_executions
    }
}

/// Deterministic job value for connection `conn`, submission `i` —
/// clients and tests share the oracle through this function.
pub fn load_value(conn: usize, i: usize) -> u64 {
    ((conn as u64 + 1) * 7 + i as u64 * 13) % 23
}

/// Drives `spec.conns` client connections against a server at `addr`,
/// each submitting `spec.per_conn` deterministic countdown jobs, then
/// `JOIN`s and checks the reported execution count against the oracle.
/// Expects a *fresh* server (the oracle counts from zero).
///
/// # Errors
/// I/O errors connecting or talking to the server, or a protocol reply
/// that is not the expected `OK`/`DONE` shape.
pub fn run_load(addr: SocketAddr, spec: &LoadSpec) -> std::io::Result<LoadReport> {
    use std::io::{Error, ErrorKind};
    let start = Instant::now();
    let mut expected = 0u64;
    let mut submitted = 0u64;
    for conn in 0..spec.conns {
        for i in 0..spec.per_conn {
            expected += CountdownExec::expected_executions(load_value(conn, i));
            submitted += 1;
        }
    }
    let workers: Vec<_> = (0..spec.conns)
        .map(|conn| {
            let spec = *spec;
            std::thread::spawn(move || -> std::io::Result<u64> {
                /// Re-send attempts after `ERR full` before giving up.
                const MAX_RETRIES: u32 = 8;
                const BACKOFF_CAP: Duration = Duration::from_millis(64);
                let stream = TcpStream::connect(addr)?;
                let _ = stream.set_nodelay(true);
                let mut writer = stream.try_clone()?;
                let mut reader = BufReader::new(stream);
                let mut reply = String::new();
                let mut retries = 0u64;
                // Sends `request`, expecting a `prefix` reply. With
                // `retry_full`, an `ERR full` rejection (lanes saturated
                // on a server not configured to pend) is re-sent with
                // bounded exponential backoff instead of failing the whole
                // run. Only scalar `SUBMIT`s opt in: a rejected `BATCH`
                // may have been *partially* accepted, so a blind re-send
                // would double-submit.
                let mut request = |writer: &mut TcpStream,
                                   reader: &mut BufReader<TcpStream>,
                                   retries: &mut u64,
                                   request: &str,
                                   prefix: &str,
                                   retry_full: bool|
                 -> std::io::Result<()> {
                    let mut backoff = Duration::from_millis(1);
                    let mut attempts = 0u32;
                    loop {
                        writeln!(writer, "{request}")?;
                        reply.clear();
                        reader.read_line(&mut reply)?;
                        let got = reply.trim_end();
                        if got.starts_with(prefix) {
                            return Ok(());
                        }
                        if retry_full && got == "ERR full" && attempts < MAX_RETRIES {
                            attempts += 1;
                            *retries += 1;
                            std::thread::sleep(backoff);
                            backoff = (backoff * 2).min(BACKOFF_CAP);
                            continue;
                        }
                        return Err(Error::new(
                            ErrorKind::InvalidData,
                            format!("expected {prefix}, got {reply:?}"),
                        ));
                    }
                };
                if spec.batch == 0 {
                    for i in 0..spec.per_conn {
                        let v = load_value(conn, i);
                        let line = format!("SUBMIT {v} {} {v}", spec.k);
                        request(&mut writer, &mut reader, &mut retries, &line, "OK", true)?;
                    }
                } else {
                    let mut i = 0;
                    while i < spec.per_conn {
                        let n = spec.batch.min(spec.per_conn - i);
                        let pairs: Vec<String> = (i..i + n)
                            .map(|j| {
                                let v = load_value(conn, j);
                                format!("{v}:{v}")
                            })
                            .collect();
                        let line = format!("BATCH {} {}", spec.k, pairs.join(" "));
                        request(&mut writer, &mut reader, &mut retries, &line, "OK", false)?;
                        i += n;
                    }
                }
                request(&mut writer, &mut reader, &mut retries, "QUIT", "BYE", false)?;
                Ok(retries)
            })
        })
        .collect();
    let mut retries = 0u64;
    for w in workers {
        retries += w.join().expect("load client thread must not panic")?;
    }
    // All submissions accepted; one control connection awaits the drain.
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    writeln!(writer, "JOIN")?;
    let mut reply = String::new();
    reader.read_line(&mut reply)?;
    let executed = reply
        .trim_end()
        .strip_prefix("DONE ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| {
            Error::new(
                ErrorKind::InvalidData,
                format!("expected DONE <n>, got {reply:?}"),
            )
        })?;
    writeln!(writer, "QUIT")?;
    Ok(LoadReport {
        submitted,
        expected_executions: expected,
        executed,
        retries,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_protocol() {
        assert_eq!(
            parse_request("SUBMIT 3 64 9"),
            Ok(Request::Submit {
                prio: 3,
                k: 64,
                value: 9
            })
        );
        assert_eq!(
            parse_request("BATCH 8 1:2 3:4"),
            Ok(Request::Batch {
                k: 8,
                jobs: vec![(1, 2), (3, 4)]
            })
        );
        assert_eq!(parse_request("JOIN"), Ok(Request::Join));
        assert_eq!(parse_request("STATS"), Ok(Request::Stats));
        assert_eq!(parse_request("PING"), Ok(Request::Ping));
        assert_eq!(parse_request("QUIT"), Ok(Request::Quit));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "",
            "NOPE",
            "SUBMIT",
            "SUBMIT 1",
            "SUBMIT 1 2",
            "SUBMIT 1 2 x",
            "SUBMIT 1 2 3 4",
            "BATCH",
            "BATCH 8",
            "BATCH 8 1-2",
            "BATCH 8 a:2",
            "BATCH 8 1:b",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn countdown_oracle_counts_chain_lengths() {
        assert_eq!(CountdownExec::expected_executions(0), 1);
        assert_eq!(CountdownExec::expected_executions(5), 6);
    }

    #[test]
    fn load_values_are_deterministic_and_bounded() {
        assert_eq!(load_value(0, 0), load_value(0, 0));
        for conn in 0..4 {
            for i in 0..50 {
                assert!(load_value(conn, i) < 23);
            }
        }
    }
}
