//! Synchronization facade: the one place this crate names a concurrency
//! primitive.
//!
//! Every atomic, fence, `UnsafeCell`, lock, condvar, spin hint, and
//! thread operation in `priosched-core` routes through this module.
//! Normal builds re-export `std` / `parking_lot` types one-to-one — the
//! facade compiles away entirely and the hot paths are byte-for-byte
//! what they were before it existed. Under `RUSTFLAGS="--cfg loom"` the
//! same paths resolve to the in-tree loom shim (`crates/shims/loom`), so
//! the models in `tests/loom_models.rs` explore every bounded
//! interleaving — including TSO store-buffer reorderings — of the *real*
//! crate code, not a transliteration of it.
//!
//! Code outside this module must not name `std::sync::atomic`,
//! `std::thread`, or `parking_lot` directly (test modules excepted); the
//! `atomics-audit` binary in `crates/bench` fails CI when one slips in.
//!
//! What is deliberately *not* modeled:
//!
//! * [`thread::scope`] is always `std`'s. The scheduler's scoped worker
//!   fleets drive whole runs — far past any model's state budget; loom
//!   models target the leaf protocols (parker, combiner, free list,
//!   MultiQueue pop) instead, and those use plain [`thread::spawn`].
//! * `Arc` — refcounts are not part of the checked state (real loom
//!   models them to catch leaks; the shim does not).

/// Atomic types, [`Ordering`](atomic::Ordering), and
/// [`fence`](atomic::fence).
pub mod atomic {
    #[cfg(loom)]
    pub use loom::sync::atomic::{
        fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
    #[cfg(not(loom))]
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

/// `UnsafeCell` with loom's closure-based access API.
///
/// Under the model every `with` / `with_mut` is a scheduling point, which
/// lets the explorer preempt between a cell write and the atomic publish
/// that is supposed to order it — the exact window publish-before-write
/// bugs live in. In normal builds the closures inline to raw-pointer
/// access on a plain [`std::cell::UnsafeCell`].
pub mod cell {
    #[cfg(loom)]
    pub use loom::cell::UnsafeCell;

    #[cfg(not(loom))]
    pub use imp::UnsafeCell;

    #[cfg(not(loom))]
    mod imp {
        /// Zero-cost stand-in for `loom::cell::UnsafeCell`.
        #[derive(Debug, Default)]
        #[repr(transparent)]
        pub struct UnsafeCell<T: ?Sized>(std::cell::UnsafeCell<T>);

        impl<T> UnsafeCell<T> {
            /// Wraps a value.
            #[inline]
            pub fn new(data: T) -> UnsafeCell<T> {
                UnsafeCell(std::cell::UnsafeCell::new(data))
            }

            /// Consumes the cell and returns the inner value.
            #[inline]
            pub fn into_inner(self) -> T {
                self.0.into_inner()
            }
        }

        impl<T: ?Sized> UnsafeCell<T> {
            /// Immutable access through a raw pointer. The caller upholds
            /// the usual `UnsafeCell` aliasing rules; under the model this
            /// is additionally a scheduling point.
            #[inline]
            pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
                f(self.0.get())
            }

            /// Mutable access through a raw pointer; see [`Self::with`].
            #[inline]
            pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
                f(self.0.get())
            }

            /// Exclusive access (no scheduling point: `&mut self` proves
            /// no concurrent accessor exists).
            #[inline]
            pub fn get_mut(&mut self) -> &mut T {
                self.0.get_mut()
            }
        }
    }
}

/// Thread spawning, yielding, and sleeping.
pub mod thread {
    #[cfg(loom)]
    pub use loom::thread::{sleep, spawn, yield_now, Builder, JoinHandle};
    #[cfg(not(loom))]
    pub use std::thread::{sleep, spawn, yield_now, Builder, JoinHandle};

    // Scoped worker fleets are not modeled (see the module docs): real
    // OS threads under both cfgs.
    pub use std::thread::scope;
}

/// Spin-loop hint; a yield point under the model so spinning cannot
/// monopolise an explored schedule.
pub mod hint {
    #[cfg(loom)]
    pub use loom::hint::spin_loop;
    #[cfg(not(loom))]
    pub use std::hint::spin_loop;
}

#[cfg(not(loom))]
pub use parking_lot::{Mutex, MutexGuard};

#[cfg(loom)]
pub use pl::{Mutex, MutexGuard};

/// `parking_lot`-flavor facade over the model mutex: `lock()` returns the
/// guard directly, `try_lock()` returns an `Option`, and poisoning does
/// not exist (a model-thread panic aborts the whole execution).
#[cfg(loom)]
mod pl {
    use std::fmt;

    /// Mutual exclusion primitive (model-checked under `--cfg loom`).
    pub struct Mutex<T: ?Sized>(loom::sync::Mutex<T>);

    /// RAII guard; unlocks on drop.
    pub struct MutexGuard<'a, T: ?Sized>(loom::sync::MutexGuard<'a, T>);

    impl<T> Mutex<T> {
        /// Creates an unlocked mutex.
        pub fn new(value: T) -> Self {
            Mutex(loom::sync::Mutex::new(value))
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.0.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock, blocking the model thread until available.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
        }

        /// Attempts to acquire the lock without blocking.
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            self.0.try_lock().ok().map(MutexGuard)
        }

        /// Mutable access without locking (requires exclusive ownership).
        pub fn get_mut(&mut self) -> &mut T {
            self.0.get_mut().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }

    impl<T: ?Sized> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Mutex { .. }")
        }
    }
}

/// `std`-flavor lock + condvar (the poisoning `LockResult` API), for the
/// parker's eventcount — the only place in the crate that blocks on a
/// condvar.
pub mod stdsync {
    #[cfg(loom)]
    pub use loom::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
    #[cfg(not(loom))]
    pub use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
}
