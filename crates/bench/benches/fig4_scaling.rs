//! Figure 4 headline points under criterion: SSSP wall time per structure
//! and place count (scaled graph; the full sweep lives in the
//! `fig4_scaling` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priosched_core::PoolKind;
use priosched_graph::{dijkstra, erdos_renyi, ErdosRenyiConfig};
use priosched_sssp::{run_sssp_kind, SsspConfig};
use std::time::Duration;

fn bench_fig4(c: &mut Criterion) {
    let graph = erdos_renyi(&ErdosRenyiConfig {
        n: 600,
        p: 0.3,
        seed: 1000,
    });
    let mut g = c.benchmark_group("fig4_sssp_vs_places");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));

    g.bench_function("sequential_dijkstra", |b| {
        b.iter(|| criterion::black_box(dijkstra(&graph, 0)))
    });

    for kind in PoolKind::PAPER {
        for places in [1usize, 2, 4] {
            g.bench_with_input(
                BenchmarkId::new(kind.label(), places),
                &places,
                |b, &places| {
                    let cfg = SsspConfig::new(places, 512);
                    b.iter(|| criterion::black_box(run_sssp_kind(kind, &graph, 0, &cfg)))
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
