//! Model-thread spawning, mirroring `std::thread`.

use crate::rt;
use std::any::Any;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    tid: usize,
    slot: Arc<Mutex<Option<T>>>,
    _not_copy: PhantomData<*const ()>,
}

// The handle owns no thread-local state; it is a ticket for the result.
unsafe impl<T: Send> Send for JoinHandle<T> {}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result; `Err` carries
    /// a stand-in payload if the thread panicked (in practice a model
    /// thread panic aborts the whole execution first).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        rt::join_model(self.tid);
        match self.slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
            Some(v) => Ok(v),
            None => Err(Box::new("loom model thread panicked")),
        }
    }
}

/// Spawn a new model thread.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let slot = Arc::new(Mutex::new(None));
    let writer = Arc::clone(&slot);
    let tid = rt::spawn_model(Box::new(move || {
        let v = f();
        *writer.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
    }));
    JoinHandle {
        tid,
        slot,
        _not_copy: PhantomData,
    }
}

/// Voluntary reschedule point; the yielding thread runs again only when no
/// other thread is runnable (prevents spin loops from monopolising the
/// explored schedule).
pub fn yield_now() {
    rt::yield_now();
}

/// Model time does not advance; sleeping is just a yield.
pub fn sleep(_dur: Duration) {
    rt::yield_now();
}

/// `std::thread::Builder` lookalike; the name is accepted and dropped.
#[derive(Default)]
pub struct Builder {
    _name: Option<String>,
}

impl Builder {
    /// Create a builder.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Names are ignored by the model.
    pub fn name(mut self, name: String) -> Builder {
        self._name = Some(name);
        self
    }

    /// Stack size is ignored by the model.
    pub fn stack_size(self, _size: usize) -> Builder {
        self
    }

    /// Spawn via [`spawn`]; never fails.
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Ok(spawn(f))
    }
}
