//! Model-checked atomics with TSO store-buffer semantics.
//!
//! Non-SeqCst stores land in the owning thread's store buffer and become
//! visible to other threads only when the scheduler drains them (or a
//! flush point — SeqCst store/fence, RMW, lock edge — forces it). Loads
//! forward from the thread's own buffer first. This is the x86 memory
//! model, which is exactly what the crate's documented fence-pairing
//! arguments are written against.

use crate::rt;
use std::marker::PhantomData;

pub use std::sync::atomic::Ordering;

/// SeqCst fences flush the issuing thread's store buffer; weaker fences
/// are no-ops on TSO (but still scheduling points).
pub fn fence(order: Ordering) {
    rt::fence(order);
}

macro_rules! int_atomic {
    ($(#[$doc:meta])* $name:ident, $ty:ty) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            loc: rt::Loc,
        }

        // The casts are identity for the u64 instantiation.
        #[allow(clippy::unnecessary_cast)]
        impl $name {
            /// Create and register with the active model execution.
            pub fn new(v: $ty) -> $name {
                $name { loc: rt::atomic_register(v as u64) }
            }

            /// Atomic load (all orderings equivalent under TSO).
            pub fn load(&self, order: Ordering) -> $ty {
                rt::atomic_load(self.loc, order) as $ty
            }

            /// Atomic store; buffered unless `SeqCst`.
            pub fn store(&self, v: $ty, order: Ordering) {
                rt::atomic_store(self.loc, v as u64, order);
            }

            /// Atomic swap (flushes the store buffer, like any RMW).
            pub fn swap(&self, v: $ty, _order: Ordering) -> $ty {
                rt::atomic_rmw(self.loc, |_| v as u64) as $ty
            }

            /// Atomic compare-exchange.
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$ty, $ty> {
                rt::atomic_cas(self.loc, current as u64, new as u64)
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }

            /// Weak CAS; the model never fails spuriously.
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: $ty, _order: Ordering) -> $ty {
                rt::atomic_rmw(self.loc, |x| (x as $ty).wrapping_add(v) as u64) as $ty
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, v: $ty, _order: Ordering) -> $ty {
                rt::atomic_rmw(self.loc, |x| (x as $ty).wrapping_sub(v) as u64) as $ty
            }

            /// Atomic bitwise OR, returning the previous value.
            pub fn fetch_or(&self, v: $ty, _order: Ordering) -> $ty {
                rt::atomic_rmw(self.loc, |x| ((x as $ty) | v) as u64) as $ty
            }

            /// Atomic bitwise AND, returning the previous value.
            pub fn fetch_and(&self, v: $ty, _order: Ordering) -> $ty {
                rt::atomic_rmw(self.loc, |x| ((x as $ty) & v) as u64) as $ty
            }

            /// Atomic max, returning the previous value.
            pub fn fetch_max(&self, v: $ty, _order: Ordering) -> $ty {
                rt::atomic_rmw(self.loc, |x| (x as $ty).max(v) as u64) as $ty
            }

            /// Atomic min, returning the previous value.
            pub fn fetch_min(&self, v: $ty, _order: Ordering) -> $ty {
                rt::atomic_rmw(self.loc, |x| (x as $ty).min(v) as u64) as $ty
            }

            /// Consume with exclusive access (flushes every buffer first).
            pub fn into_inner(self) -> $ty {
                rt::atomic_unsync_read(self.loc) as $ty
            }
        }

        impl Default for $name {
            fn default() -> $name {
                $name::new(0)
            }
        }
    };
}

int_atomic!(
    /// Model `AtomicU8`.
    AtomicU8,
    u8
);
int_atomic!(
    /// Model `AtomicU32`.
    AtomicU32,
    u32
);
int_atomic!(
    /// Model `AtomicU64`.
    AtomicU64,
    u64
);
int_atomic!(
    /// Model `AtomicUsize`.
    AtomicUsize,
    usize
);

/// Model `AtomicBool`.
#[derive(Debug)]
pub struct AtomicBool {
    loc: rt::Loc,
}

impl AtomicBool {
    /// Create and register with the active model execution.
    pub fn new(v: bool) -> AtomicBool {
        AtomicBool {
            loc: rt::atomic_register(v as u64),
        }
    }

    /// Atomic load.
    pub fn load(&self, order: Ordering) -> bool {
        rt::atomic_load(self.loc, order) != 0
    }

    /// Atomic store; buffered unless `SeqCst`.
    pub fn store(&self, v: bool, order: Ordering) {
        rt::atomic_store(self.loc, v as u64, order);
    }

    /// Atomic swap.
    pub fn swap(&self, v: bool, _order: Ordering) -> bool {
        rt::atomic_rmw(self.loc, |_| v as u64) != 0
    }

    /// Atomic compare-exchange.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        rt::atomic_cas(self.loc, current as u64, new as u64)
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }

    /// Weak CAS; never fails spuriously in the model.
    pub fn compare_exchange_weak(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.compare_exchange(current, new, success, failure)
    }

    /// Atomic OR, returning the previous value.
    pub fn fetch_or(&self, v: bool, _order: Ordering) -> bool {
        rt::atomic_rmw(self.loc, |x| x | (v as u64)) != 0
    }

    /// Atomic AND, returning the previous value.
    pub fn fetch_and(&self, v: bool, _order: Ordering) -> bool {
        rt::atomic_rmw(self.loc, |x| x & (v as u64)) != 0
    }

    /// Consume with exclusive access.
    pub fn into_inner(self) -> bool {
        rt::atomic_unsync_read(self.loc) != 0
    }
}

impl Default for AtomicBool {
    fn default() -> AtomicBool {
        AtomicBool::new(false)
    }
}

/// Model `AtomicPtr`; the pointer is stored as its address.
#[derive(Debug)]
pub struct AtomicPtr<T> {
    loc: rt::Loc,
    _marker: PhantomData<*mut T>,
}

// SAFETY: same bounds as `std::sync::atomic::AtomicPtr`.
unsafe impl<T> Send for AtomicPtr<T> {}
unsafe impl<T> Sync for AtomicPtr<T> {}

impl<T> AtomicPtr<T> {
    /// Create and register with the active model execution.
    pub fn new(p: *mut T) -> AtomicPtr<T> {
        AtomicPtr {
            loc: rt::atomic_register(p as usize as u64),
            _marker: PhantomData,
        }
    }

    /// Atomic load.
    pub fn load(&self, order: Ordering) -> *mut T {
        rt::atomic_load(self.loc, order) as usize as *mut T
    }

    /// Atomic store; buffered unless `SeqCst`.
    pub fn store(&self, p: *mut T, order: Ordering) {
        rt::atomic_store(self.loc, p as usize as u64, order);
    }

    /// Atomic swap.
    pub fn swap(&self, p: *mut T, _order: Ordering) -> *mut T {
        rt::atomic_rmw(self.loc, |_| p as usize as u64) as usize as *mut T
    }

    /// Atomic compare-exchange.
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        rt::atomic_cas(self.loc, current as usize as u64, new as usize as u64)
            .map(|v| v as usize as *mut T)
            .map_err(|v| v as usize as *mut T)
    }

    /// Weak CAS; never fails spuriously in the model.
    pub fn compare_exchange_weak(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        self.compare_exchange(current, new, success, failure)
    }

    /// Consume with exclusive access.
    pub fn into_inner(self) -> *mut T {
        rt::atomic_unsync_read(self.loc) as usize as *mut T
    }
}
