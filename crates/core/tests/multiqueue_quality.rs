//! Quality gates for the relaxed MultiQueue (`PoolKind::MultiQueue`).
//!
//! The MultiQueue trades the paper's hard ρ bounds for probabilistic
//! relaxation, so its correctness story rests on two pillars, pinned
//! here:
//!
//! 1. **Conservation under real concurrency** — every submitted task is
//!    popped exactly once (no loss, no duplication) with concurrent
//!    push/pop on every place count, across the c and stickiness knobs.
//!    The single-threaded oracle matrix cannot see lock races on the
//!    `c·P` queues or stale top-mirror reads; this suite drives them
//!    directly.
//! 2. **Instrument self-validation** — the rank-error shadow must read
//!    *zero* in the one configuration where the structure is exact
//!    (c = 1, one place: a single sequential queue), and must account
//!    for every pop whenever it is on. A measurement layer that can't
//!    pass its own null experiment can't be trusted on the real one.

use priosched_core::{PoolBuilder, PoolHandle, PoolKind, PoolParams, RelaxedMultiQueue, TaskPool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Drives one concurrent worker per place over one MultiQueue, each
/// pushing `per` uniquely-payloaded tasks at pseudo-random priorities
/// while popping, until everything pushed has been popped exactly once.
/// Panics (inside a worker) on any duplicated pop, and afterwards on any
/// task not taken exactly once.
fn concurrent_exactly_once(places: usize, c: usize, stickiness: usize, per: u64) {
    let pool = Arc::new(RelaxedMultiQueue::<u64>::with_options(
        places, c, stickiness, false,
    ));
    let total = places as u64 * per;
    let taken: Arc<Vec<AtomicU32>> = Arc::new((0..total).map(|_| 0.into()).collect());
    let popped = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..places {
            let pool = Arc::clone(&pool);
            let taken = Arc::clone(&taken);
            let popped = Arc::clone(&popped);
            s.spawn(move || {
                let mut h = pool.handle(t);
                // Mix scalar and batched pushes so both landing paths run.
                let mut pushed = 0u64;
                let mut batch: Vec<(u64, u64)> = Vec::new();
                let mut step = 0u64;
                loop {
                    step = step.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    if pushed < per && !step.is_multiple_of(3) {
                        let payload = t as u64 * per + pushed;
                        let prio = step >> 32;
                        if step.is_multiple_of(5) {
                            batch.push((prio, payload));
                            if batch.len() >= 8 {
                                h.push_batch(0, &mut batch);
                            }
                        } else {
                            h.push(prio, 0, payload);
                        }
                        pushed += 1;
                    } else if let Some(got) = h.pop() {
                        let prev = taken[got as usize].fetch_add(1, Ordering::Relaxed);
                        assert_eq!(prev, 0, "task {got} popped twice");
                        popped.fetch_add(1, Ordering::Relaxed);
                    } else if pushed == per {
                        if !batch.is_empty() {
                            h.push_batch(0, &mut batch);
                            continue;
                        }
                        if popped.load(Ordering::Relaxed) == total {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    assert_eq!(popped.load(Ordering::Relaxed), total, "tasks lost");
    for (i, flag) in taken.iter().enumerate() {
        assert_eq!(flag.load(Ordering::Relaxed), 1, "task {i} not exactly-once");
    }
}

#[test]
fn concurrent_exactly_once_on_all_place_counts() {
    for places in [1usize, 2, 4] {
        for (c, stickiness) in [(1usize, 0usize), (2, 0), (2, 8), (4, 4)] {
            let per = 4_000 / places as u64;
            concurrent_exactly_once(places, c, stickiness, per);
        }
    }
}

#[test]
fn c1_single_place_measures_zero_rank_error_against_oracle() {
    // One place × c = 1 is a single sequential queue: pops must come out
    // in exact priority order AND the instrument must price every one of
    // them at rank zero — the null experiment for the rank-error shadow.
    let pool: Arc<_> = Arc::new(RelaxedMultiQueue::<u64>::with_options(1, 1, 0, true));
    let mut h = pool.handle(0);
    let prios: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 263).collect();
    for (i, &p) in prios.iter().enumerate() {
        h.push(p, 0, (p << 32) | i as u64);
    }
    let mut popped_prios = Vec::new();
    while let Some((prio, _task)) = h.pop_entry() {
        popped_prios.push(prio);
    }
    // Sequential oracle: the sorted push multiset.
    let mut expect = prios.clone();
    expect.sort();
    assert_eq!(popped_prios, expect, "single queue must be exact");
    let s = h.stats();
    assert_eq!(s.rank_pops, 500, "instrument must account for every pop");
    assert_eq!(s.rank_sum, 0, "an exact structure has zero rank error");
    assert_eq!(s.rank_max, 0);
    assert_eq!(s.rank_mean(), 0.0);
    assert_eq!(s.rank_p99(), 0);
}

#[test]
fn instrument_accounts_for_every_pop_with_relaxation() {
    // c = 4 on one place misorders freely, but the instrument must still
    // balance: every pop measured, histogram mass == rank_pops, and the
    // summary statistics mutually consistent.
    let pool: Arc<_> = Arc::new(RelaxedMultiQueue::<u64>::with_options(1, 4, 2, true));
    let mut h = pool.handle(0);
    for i in 0..1_000u64 {
        h.push((i * 2654435761) % 4096, 0, i);
    }
    let mut got = 0u64;
    while h.pop().is_some() {
        got += 1;
    }
    assert_eq!(got, 1_000);
    let s = h.stats();
    assert_eq!(s.rank_pops, 1_000);
    assert_eq!(s.rank_hist.iter().sum::<u64>(), 1_000);
    assert!(s.rank_max as f64 >= s.rank_mean());
    assert!(s.rank_p99() <= s.rank_max);
}

#[test]
fn facade_run_reports_rank_stats_on_run_stats() {
    // End-to-end through the scheduler: an instrumented MultiQueue run
    // must surface rank accounting on RunStats.pool (pops measured ==
    // pool pops), proving the stats plumbing crosses the facade.
    use priosched_core::{SpawnCtx, TaskExecutor};
    struct Fan;
    impl TaskExecutor<u64> for Fan {
        fn execute(&self, task: u64, ctx: &mut SpawnCtx<'_, u64>) {
            if task > 0 {
                ctx.spawn(task - 1, 8, task - 1);
            }
        }
    }
    let stats = PoolBuilder::new(PoolKind::MultiQueue)
        .places(2)
        .mq_c(2)
        .rank_error(true)
        .run(&Fan, vec![(64, 8, 64u64)]);
    assert_eq!(stats.executed, 65);
    assert_eq!(
        stats.pool.rank_pops, stats.pool.pops,
        "every pop must be measured while the instrument is on"
    );
    assert_eq!(
        stats.pool.rank_hist.iter().sum::<u64>(),
        stats.pool.rank_pops
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Concurrent exactly-once as a property: random place count, c,
    /// stickiness, and load — no loss, no duplication, ever.
    #[test]
    fn concurrent_exactly_once_prop(
        places_idx in 0usize..3,
        c in 1usize..4,
        stickiness in 0usize..8,
        per in 200u64..1_200,
    ) {
        let places = [1usize, 2, 4][places_idx];
        concurrent_exactly_once(places, c, stickiness, per);
    }

    /// The null experiment as a property: any priority sequence, pushed
    /// scalar or batched into the c = 1 single-place queue, measures
    /// exactly zero rank error.
    #[test]
    fn c1_zero_rank_error_prop(
        prios in proptest::collection::vec(any::<u16>(), 1..200),
        chunk in 1usize..16,
    ) {
        let params = PoolParams::default().with_mq_c(1).with_rank_error(true);
        let pool: Arc<_> = Arc::new(RelaxedMultiQueue::<u64>::from_params(1, &params));
        let mut h = pool.handle(0);
        for group in prios.chunks(chunk) {
            let mut batch: Vec<(u64, u64)> =
                group.iter().map(|&p| (p as u64, p as u64)).collect();
            h.push_batch(0, &mut batch);
        }
        let mut out = Vec::new();
        while let Some((prio, _)) = h.pop_entry() {
            out.push(prio);
        }
        let mut expect: Vec<u64> = prios.iter().map(|&p| p as u64).collect();
        expect.sort();
        prop_assert_eq!(out, expect);
        let s = h.stats();
        prop_assert_eq!(s.rank_pops as usize, prios.len());
        prop_assert_eq!(s.rank_sum, 0);
        prop_assert_eq!(s.rank_max, 0);
    }
}
