//! Drop-safety and leak tests for the unsafe item machinery.
//!
//! The item pool hands payloads across threads through raw pointers and
//! `MaybeUninit` storage; these tests verify with a drop-counting payload
//! that every task is dropped **exactly once** under every lifecycle:
//! popped-and-dropped, left inside the structure at drop time, spied,
//! published, recycled, or consumed concurrently.

use priosched_core::{
    CentralizedKPriority, HybridKPriority, IngressLanes, PoolHandle, PriorityWorkStealing,
    Scheduler, SpawnCtx, StructuralKPriority, TaskExecutor, TaskPool,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Payload that counts its drops and aborts on double-drop.
struct Tracked {
    counter: Arc<AtomicUsize>,
    dropped: bool,
}

impl Tracked {
    fn new(counter: &Arc<AtomicUsize>) -> Self {
        Tracked {
            counter: Arc::clone(counter),
            dropped: false,
        }
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        assert!(!self.dropped, "double drop of a task payload");
        self.dropped = true;
        self.counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Pushes `total` tracked payloads, pops `take` of them, then drops the
/// structure; afterwards every payload must have been dropped exactly once.
fn check_drops<P, F>(make: F, total: usize, take: usize)
where
    P: TaskPool<Tracked>,
    F: FnOnce() -> Arc<P>,
{
    let drops = Arc::new(AtomicUsize::new(0));
    let pool = make();
    {
        let mut h = pool.handle(0);
        for i in 0..total {
            h.push(i as u64, 4, Tracked::new(&drops));
        }
        let mut taken = 0;
        let mut misses = 0;
        while taken < take && misses < 10_000 {
            match h.pop() {
                Some(t) => {
                    drop(t);
                    taken += 1;
                    misses = 0;
                }
                None => misses += 1,
            }
        }
        assert_eq!(taken, take, "could not pop the requested number");
        assert_eq!(drops.load(Ordering::Relaxed), take);
    }
    drop(pool);
    assert_eq!(
        drops.load(Ordering::Relaxed),
        total,
        "payloads left in the structure must be dropped exactly once on drop"
    );
}

#[test]
fn workstealing_drops_exactly_once() {
    check_drops(|| Arc::new(PriorityWorkStealing::new(2)), 100, 40);
}

#[test]
fn centralized_drops_exactly_once() {
    check_drops(|| Arc::new(CentralizedKPriority::new(2, 16)), 100, 40);
}

#[test]
fn hybrid_drops_exactly_once() {
    check_drops(|| Arc::new(HybridKPriority::new(2)), 100, 40);
}

#[test]
fn structural_drops_exactly_once() {
    check_drops(|| Arc::new(StructuralKPriority::new(2, 8)), 100, 40);
}

#[test]
fn hybrid_unpublished_tasks_dropped_once() {
    // Large k: tasks stay in the local list; handle drop publishes them;
    // structure drop must reclaim them exactly once.
    let drops = Arc::new(AtomicUsize::new(0));
    let pool = Arc::new(HybridKPriority::new(2));
    {
        let mut h = pool.handle(0);
        for i in 0..50u64 {
            h.push(i, usize::MAX, Tracked::new(&drops));
        }
    }
    assert_eq!(drops.load(Ordering::Relaxed), 0);
    drop(pool);
    assert_eq!(drops.load(Ordering::Relaxed), 50);
}

#[test]
fn centralized_in_window_tasks_dropped_once() {
    // Tasks parked after the tail (never taken) must be reclaimed on drop.
    let drops = Arc::new(AtomicUsize::new(0));
    let pool = Arc::new(CentralizedKPriority::new(1, 64));
    {
        let mut h = pool.handle(0);
        for i in 0..10u64 {
            h.push(i, 64, Tracked::new(&drops));
        }
    }
    drop(pool);
    assert_eq!(drops.load(Ordering::Relaxed), 10);
}

#[test]
fn recycled_items_do_not_leak_under_churn() {
    // Push/pop churn forces item recycling through the free list; drop
    // counts must stay exact throughout.
    let drops = Arc::new(AtomicUsize::new(0));
    let pool = Arc::new(HybridKPriority::new(1));
    let mut h = pool.handle(0);
    let rounds = 50usize;
    let per = 40usize;
    for r in 0..rounds {
        for i in 0..per {
            h.push((r * per + i) as u64, 4, Tracked::new(&drops));
        }
        for _ in 0..per {
            assert!(h.pop().is_some());
        }
        assert_eq!(drops.load(Ordering::Relaxed), (r + 1) * per);
    }
    drop(h);
    drop(pool);
    assert_eq!(drops.load(Ordering::Relaxed), rounds * per);
}

/// Tasks still sitting in ingress lanes when the lanes are dropped (never
/// having reached any pool) must be dropped exactly once — the same
/// guarantee the item free list gives in-structure tasks.
#[test]
fn ingress_lane_tasks_dropped_once_without_running() {
    let drops = Arc::new(AtomicUsize::new(0));
    let lanes: IngressLanes<Tracked> = IngressLanes::new(3);
    let mut h = lanes.handle();
    for i in 0..30u64 {
        assert!(h.submit(i, 4, Tracked::new(&drops)).is_ok());
    }
    let mut batch: Vec<(u64, Tracked)> = (0..20u64).map(|i| (i, Tracked::new(&drops))).collect();
    h.submit_batch(8, &mut batch).unwrap();
    // A clone shares the lanes; dropping handles must not drop tasks.
    let h2 = h.clone();
    drop(h);
    drop(h2);
    assert_eq!(drops.load(Ordering::Relaxed), 0, "handles own no tasks");
    assert_eq!(lanes.queued(), 50);
    drop(lanes);
    assert_eq!(
        drops.load(Ordering::Relaxed),
        50,
        "lane payloads must drop exactly once with the lanes"
    );
}

/// An aborted streamed run (task panic) leaves tasks both inside the pool
/// and — possibly — still in ingress lanes; between pool drop and lane
/// drop every payload must be dropped exactly once, no leaks, no doubles.
#[test]
fn aborted_stream_run_drops_lane_and_pool_tasks_once() {
    struct PanicOnFirst;
    impl TaskExecutor<Tracked> for PanicOnFirst {
        fn execute(&self, _t: Tracked, _ctx: &mut SpawnCtx<'_, Tracked>) {
            panic!("first task dies");
        }
    }

    let drops = Arc::new(AtomicUsize::new(0));
    let total = 80usize;
    let lanes: IngressLanes<Tracked> = IngressLanes::new(2);
    let mut h = lanes.handle();
    for i in 0..total {
        assert!(h.submit(i as u64, 4, Tracked::new(&drops)).is_ok());
    }
    drop(h);

    let sched = Scheduler::from_pool(HybridKPriority::new(2));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sched.run_stream(&PanicOnFirst, Vec::new(), &lanes)
    }));
    assert!(result.is_err(), "the task panic must propagate");
    // The one popped task was dropped by the panic unwind; the rest sit in
    // the pool (drained lanes) or still in lanes (abort races the drain).
    let sched_drops = drops.load(Ordering::Relaxed);
    assert!(sched_drops >= 1, "the panicked task's payload must be gone");
    drop(sched);
    drop(lanes);
    assert_eq!(
        drops.load(Ordering::Relaxed),
        total,
        "pool drop + lane drop must reclaim every payload exactly once"
    );
}

#[test]
fn concurrent_churn_drops_exactly_once() {
    let drops = Arc::new(AtomicUsize::new(0));
    let threads = 4usize;
    let per = 2_000usize;
    let pool = Arc::new(HybridKPriority::new(threads));
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = Arc::clone(&pool);
            let drops = Arc::clone(&drops);
            s.spawn(move || {
                let mut h = pool.handle(t);
                for i in 0..per {
                    h.push((t * per + i) as u64, 8, Tracked::new(&drops));
                    if i % 3 == 0 {
                        if let Some(x) = h.pop() {
                            drop(x);
                        }
                    }
                }
                // Drain whatever is visible; leftovers die with the pool.
                while h.pop().is_some() {}
            });
        }
    });
    drop(pool);
    assert_eq!(
        drops.load(Ordering::Relaxed),
        threads * per,
        "every payload dropped exactly once across threads + pool drop"
    );
}
