//! schedbench — the unified workload harness.
//!
//! Sweeps workload × structure × places × k × spawn-chunk, verifies **every
//! run** against the workload's sequential oracle, and emits records in the
//! committed `BENCH_*.json` format (`group`/`id`/`mean_ns`/`min_ns`/
//! `max_ns`/`elements`), so baselines like `BENCH_workloads.json` are
//! regenerable with one command instead of being one-off artifacts.
//!
//! ```text
//! schedbench [--smoke] [--workloads sssp,bfs,cholesky,knapsack,mo_sssp]
//!            [--kinds work_stealing,centralized,hybrid,structural]
//!            [--places 1,2,4] [--k 512] [--chunks 0] [--reps 3]
//!            [--ingest PRODUCERSxCHUNK,…] [--out FILE.json]
//! ```
//!
//! * `--smoke` shrinks every instance and runs one rep — the CI job that
//!   keeps example-derived workloads from rotting.
//! * `--chunks` sweeps the spawn-batch chunk bound for the workloads that
//!   batch their spawns (sssp, mo_sssp); `0` = one batch per expansion.
//! * `--ingest` switches the sweep to the open-world path: each cell like
//!   `4x32` feeds the instance's seeds through sharded ingestion lanes
//!   from 4 producer threads in submission chunks of 32 (see
//!   `run_workload_streamed`), still verified against the same oracle.
//!   Without the flag, seeds are preseeded as roots (the closed-world
//!   baseline).
//! * Any oracle mismatch aborts with a nonzero exit code.

use priosched_core::{PoolKind, PoolParams};
use priosched_workloads::{
    bench_record, BfsWorkload, CholeskyWorkload, DynWorkload, KnapsackWorkload, MoSsspWorkload,
    SsspWorkload, WorkloadReport,
};
use std::io::Write;
use std::path::PathBuf;

/// Workload names in sweep order.
const WORKLOADS: [&str; 5] = ["sssp", "bfs", "cholesky", "knapsack", "mo_sssp"];

/// One `--ingest` cell: producer-thread count × submission-chunk size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct IngestCell {
    producers: usize,
    chunk: usize,
}

impl std::str::FromStr for IngestCell {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (p, c) = s
            .split_once(['x', 'X'])
            .ok_or_else(|| format!("expected PRODUCERSxCHUNK (e.g. 4x32), got {s:?}"))?;
        let producers = p
            .trim()
            .parse()
            .map_err(|e| format!("bad producer count in {s:?}: {e}"))?;
        let chunk = c
            .trim()
            .parse()
            .map_err(|e| format!("bad chunk size in {s:?}: {e}"))?;
        if producers == 0 {
            return Err(format!("{s:?}: producer count must be positive"));
        }
        Ok(IngestCell { producers, chunk })
    }
}

struct Args {
    smoke: bool,
    workloads: Vec<String>,
    kinds: Vec<PoolKind>,
    places: Vec<usize>,
    ks: Vec<usize>,
    chunks: Vec<usize>,
    ingest: Vec<IngestCell>,
    reps: usize,
    out: Option<PathBuf>,
}

fn parse_list<T: std::str::FromStr>(flag: &str, value: &str) -> Vec<T>
where
    T::Err: std::fmt::Display,
{
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|e| panic!("{flag}: bad element {s:?}: {e}"))
        })
        .collect()
}

impl Args {
    fn from_env() -> Self {
        let mut cfg = Args {
            smoke: false,
            workloads: WORKLOADS.iter().map(|s| s.to_string()).collect(),
            kinds: PoolKind::ALL.to_vec(),
            places: vec![1, 2, 4],
            ks: vec![512],
            chunks: vec![0],
            ingest: Vec::new(),
            reps: 3,
            out: None,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        // Apply --smoke defaults first, wherever the flag appears, so an
        // explicit --places/--k/--reps always wins regardless of order.
        if argv.iter().any(|a| a == "--smoke") {
            cfg.smoke = true;
            cfg.places = vec![1, 2];
            cfg.ks = vec![64];
            cfg.reps = 1;
        }
        let mut args = argv.into_iter();
        while let Some(arg) = args.next() {
            let mut take = |name: &str| -> String {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match arg.as_str() {
                "--smoke" => {}
                "--workloads" => {
                    cfg.workloads = parse_list::<String>("--workloads", &take("--workloads"));
                    for w in &cfg.workloads {
                        assert!(
                            WORKLOADS.contains(&w.as_str()),
                            "unknown workload {w:?} (expected one of {WORKLOADS:?})"
                        );
                    }
                }
                "--kinds" => cfg.kinds = parse_list("--kinds", &take("--kinds")),
                "--places" => cfg.places = parse_list("--places", &take("--places")),
                "--k" => cfg.ks = parse_list("--k", &take("--k")),
                "--chunks" => cfg.chunks = parse_list("--chunks", &take("--chunks")),
                "--ingest" => cfg.ingest = parse_list("--ingest", &take("--ingest")),
                "--reps" => cfg.reps = take("--reps").parse().expect("--reps wants an integer"),
                "--out" => cfg.out = Some(PathBuf::from(take("--out"))),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --smoke | --workloads LIST | --kinds LIST | --places LIST \
                         | --k LIST | --chunks LIST | --ingest PxC,… | --reps N | --out FILE"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        assert!(cfg.reps > 0, "--reps must be positive");
        cfg
    }
}

/// Builds one workload instance. `chunk` configures spawn batching where
/// the workload supports it; returns `None` when `chunk` is not applicable
/// (so the sweep produces no duplicate rows for scalar-spawning workloads).
fn make_workload(name: &str, smoke: bool, chunk: usize) -> Option<Box<dyn DynWorkload>> {
    match name {
        "sssp" => Some(Box::new(if smoke {
            SsspWorkload::random(120, 0.1, 1000).spawn_chunk(chunk)
        } else {
            SsspWorkload::random(800, 0.08, 1000).spawn_chunk(chunk)
        })),
        "mo_sssp" => Some(Box::new(if smoke {
            MoSsspWorkload::random(30, 0.15, 99).spawn_chunk(chunk)
        } else {
            MoSsspWorkload::random(60, 0.12, 99).spawn_chunk(chunk)
        })),
        // BFS, Cholesky and knapsack have no spawn-chunk knob (BFS batches
        // one expansion per spawn_batch; the other two spawn scalar
        // tasks); the chunk axis does not apply.
        // Multi-source frontier: the wide seed stream gives the --ingest
        // axis real sharding work (hundreds of seeds, not one root).
        "bfs" if chunk == 0 => Some(Box::new(if smoke {
            BfsWorkload::random_multi(150, 0.06, 2000, 16)
        } else {
            BfsWorkload::random_multi(1_200, 0.01, 2000, 128)
        })),
        "cholesky" if chunk == 0 => Some(Box::new(if smoke {
            CholeskyWorkload::random(3, 8, 0xFEED_FACE)
        } else {
            CholeskyWorkload::random(6, 16, 0xFEED_FACE)
        })),
        "knapsack" if chunk == 0 => Some(Box::new(if smoke {
            KnapsackWorkload::random(18, 1_500, 0x1234_5678_9ABC_DEF0)
        } else {
            KnapsackWorkload::random(30, 3_000, 0x1234_5678_9ABC_DEF0)
        })),
        _ => None,
    }
}

/// One aggregated sweep cell in the `BENCH_batch.json` record format
/// (the shape itself is defined once, in `priosched_workloads`). Streamed
/// cells extend the id with an `_iPRODUCERSxCHUNK` tag.
fn json_record(reports: &[WorkloadReport], chunk: usize, ingest: Option<IngestCell>) -> String {
    let mut suffix = if chunk > 0 {
        format!("_c{chunk}")
    } else {
        String::new()
    };
    if let Some(cell) = ingest {
        suffix.push_str(&format!("_i{}x{}", cell.producers, cell.chunk));
    }
    bench_record(reports, &suffix)
}

fn main() {
    let args = Args::from_env();
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!(
        "schedbench: {} workload(s) × {} kind(s) × places {:?} × k {:?} × chunks {:?}{}, {} rep(s)",
        args.workloads.len(),
        args.kinds.len(),
        args.places,
        args.ks,
        args.chunks,
        if args.ingest.is_empty() {
            " (preseeded)".to_string()
        } else {
            format!(
                " × ingest {:?}",
                args.ingest
                    .iter()
                    .map(|c| format!("{}x{}", c.producers, c.chunk))
                    .collect::<Vec<_>>()
            )
        },
        args.reps
    );
    println!(
        "host: {cores} hardware thread(s){}\n",
        if args.smoke { "; smoke sizes" } else { "" }
    );
    println!(
        "{:<10} {:<14} {:>2} {:>6} {:>6} {:>7} | {:>11} {:>9} {:>7}  oracle",
        "workload", "structure", "P", "k", "chunk", "ingest", "mean", "tasks", "dead"
    );

    let mut records = Vec::new();
    let mut failures = 0usize;
    for name in &args.workloads {
        let mut cells_for_workload = 0usize;
        for &chunk in &args.chunks {
            let Some(workload) = make_workload(name, args.smoke, chunk) else {
                // Scalar-spawning workloads have no chunk axis; skipping a
                // nonzero chunk is only fine if some other cell runs them.
                continue;
            };
            cells_for_workload += 1;
            // Preseeded baseline when --ingest is absent; otherwise every
            // producers×chunk cell is its own streamed sweep cell.
            let modes: Vec<Option<IngestCell>> = if args.ingest.is_empty() {
                vec![None]
            } else {
                args.ingest.iter().copied().map(Some).collect()
            };
            for &kind in &args.kinds {
                for &places in &args.places {
                    for &k in &args.ks {
                        let params = PoolParams::with_k(k);
                        for &mode in &modes {
                            let reports: Vec<WorkloadReport> = (0..args.reps)
                                .map(|_| match mode {
                                    None => workload.run(kind, places, params),
                                    Some(cell) => workload.run_streamed(
                                        kind,
                                        places,
                                        params,
                                        cell.producers,
                                        cell.chunk,
                                    ),
                                })
                                .collect();
                            let mean_ms = reports
                                .iter()
                                .map(|r| r.elapsed.as_secs_f64() * 1e3)
                                .sum::<f64>()
                                / reports.len() as f64;
                            let bad = reports.iter().find(|r| !r.verified());
                            println!(
                                "{:<10} {:<14} {:>2} {:>6} {:>6} {:>7} | {:>9.3}ms {:>9} {:>7}  {}",
                                name,
                                kind.label(),
                                places,
                                k,
                                chunk,
                                match mode {
                                    None => "-".to_string(),
                                    Some(cell) => format!("{}x{}", cell.producers, cell.chunk),
                                },
                                mean_ms,
                                reports[0].executed,
                                reports[0].dead,
                                match bad {
                                    None => "ok".to_string(),
                                    Some(r) =>
                                        format!("MISMATCH: {}", r.verify.as_ref().unwrap_err()),
                                }
                            );
                            if bad.is_some() {
                                failures += 1;
                            }
                            records.push(json_record(&reports, chunk, mode));
                        }
                    }
                }
            }
        }
        assert!(
            cells_for_workload > 0,
            "workload {name:?} was requested but no chunk in {:?} applies to it \
             (scalar-spawning workloads only run at chunk 0)",
            args.chunks
        );
    }

    if let Some(path) = &args.out {
        let mut f = std::fs::File::create(path).expect("create --out file");
        writeln!(f, "[").unwrap();
        for (i, rec) in records.iter().enumerate() {
            let comma = if i + 1 < records.len() { "," } else { "" };
            writeln!(f, "  {rec}{comma}").unwrap();
        }
        writeln!(f, "]").unwrap();
        println!("\nJSON: {} ({} records)", path.display(), records.len());
    }

    if failures > 0 {
        eprintln!("\n{failures} sweep cell(s) FAILED oracle verification");
        std::process::exit(1);
    }
    println!(
        "\nall {} sweep cells verified against their oracles",
        records.len()
    );
}
