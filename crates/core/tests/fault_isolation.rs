//! Property tests for the fault-isolation tentpole: panics under both
//! [`FaultPolicy`] values, driven mid-streamed-run on every structure.
//!
//! * **AbortRun** (the default): a panic mid-run must *release* blocked
//!   producers — every blocking submit returns, and any error it
//!   returns is `SubmitError::Aborted` — and the panic is reported
//!   exactly once through the typed `join`/`shutdown` results (one
//!   bomb task exists, so exactly one [`FailureReport`]).
//! * **Isolate**: the run finishes; quarantined and completed tasks
//!   partition the submissions exactly: `failed + executed ==
//!   submitted`, with one failure report per bomb.
//!
//! Both properties hold for arbitrary task multisets, producer counts,
//! and all five [`PoolKind`]s — proptest shrinks any interleaving that
//! breaks them.

use priosched_core::{
    FaultPolicy, PoolBuilder, PoolKind, PoolService, SpawnCtx, SubmitError, TaskExecutor,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};

/// The AbortRun bomb: a value no generated task can carry.
const SENTINEL: u64 = 1 << 40;
const SENTINEL_PRIO: u64 = 9_999;

/// Keeps the injected panics from spamming a backtrace per proptest
/// case while leaving real failures loud.
fn quiet_bomb_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.starts_with("fault bomb") {
                default_hook(info);
            }
        }));
    });
}

/// Panics on bomb tasks (the sentinel, or any value `≡ 3 (mod 7)` when
/// `value_bombs` is on), counts everything else. No spawning: the
/// submission multiset is the full task population, so the isolate
/// partition check is exact.
struct Bombable {
    executed: AtomicU64,
    value_bombs: bool,
}

impl Bombable {
    fn is_bomb(&self, v: u64) -> bool {
        v == SENTINEL || (self.value_bombs && v % 7 == 3)
    }
}

impl TaskExecutor<u64> for Bombable {
    fn execute(&self, v: u64, _ctx: &mut SpawnCtx<'_, u64>) {
        if self.is_bomb(v) {
            panic!("fault bomb {v}");
        }
        self.executed.fetch_add(1, Ordering::AcqRel);
    }
}

/// Shards `values` across `producers` threads submitting through their
/// own ingest handles; returns every `SubmitError` kind observed.
fn drive_producers(svc: &PoolService<u64>, values: &[u16], producers: usize) -> Vec<SubmitError> {
    std::thread::scope(|s| {
        let mut workers = Vec::new();
        for p in 0..producers {
            let mut handle = svc.ingest_handle();
            let shard: Vec<u64> = values
                .iter()
                .enumerate()
                .filter(|(i, _)| i % producers == p)
                .map(|(_, &v)| v as u64)
                .collect();
            workers.push(s.spawn(move || {
                let mut errors = Vec::new();
                for v in shard {
                    if let Err(e) = handle.submit(v, 8, v) {
                        errors.push(e.kind());
                    }
                }
                errors
            }));
        }
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("producer threads never panic"))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// AbortRun: one bomb, tiny bounded lanes so producers actually
    /// block. The scope returning at all proves the abort released
    /// them; the only error they may see is `Aborted`; and the typed
    /// join/shutdown results carry the panic exactly once.
    #[test]
    fn abort_mid_stream_releases_producers_and_reports_once(
        values in proptest::collection::vec(any::<u16>(), 0..40),
        producers in 1usize..4,
    ) {
        quiet_bomb_panics();
        for kind in PoolKind::ALL {
            let exec = Arc::new(Bombable { executed: AtomicU64::new(0), value_bombs: false });
            let svc: PoolService<u64> = PoolBuilder::new(kind)
                .places(2)
                .k(8)
                .lane_capacity(1)
                .service(Arc::clone(&exec));
            // The bomb is in the lanes before any producer starts, so
            // the abort is guaranteed; producers then race it.
            svc.ingest_handle()
                .submit(SENTINEL_PRIO, 8, SENTINEL)
                .expect("live lanes accept the bomb");
            let errors = drive_producers(&svc, &values, producers);
            for e in &errors {
                prop_assert!(
                    matches!(e, SubmitError::Aborted(())),
                    "{kind}: blocked producers must be released with Aborted, got {e:?}"
                );
            }
            let aborted = svc.join().expect_err("the bomb must abort the run");
            prop_assert_eq!(aborted.failure.prio, SENTINEL_PRIO, "{}", kind);
            let want_message = format!("fault bomb {SENTINEL}");
            prop_assert_eq!(&aborted.failure.message, &want_message, "{}", kind);
            let err = svc.shutdown().expect_err("typed shutdown after abort");
            prop_assert_eq!(
                err.stats.failures.len(), 1,
                "{}: one bomb task, exactly one report", kind
            );
            prop_assert_eq!(err.stats.failed, 1, "{}", kind);
        }
    }

    /// Isolate: bombs are a pure function of the value, so quarantined
    /// and completed tasks must partition the submissions exactly —
    /// `failed + executed == submitted` — with one report per bomb.
    #[test]
    fn isolate_partitions_submissions_exactly(
        values in proptest::collection::vec(any::<u16>(), 0..60),
        producers in 1usize..4,
    ) {
        quiet_bomb_panics();
        let want_failed = values.iter().filter(|&&v| u64::from(v) % 7 == 3).count() as u64;
        let want_executed = values.len() as u64 - want_failed;
        for kind in PoolKind::ALL {
            let exec = Arc::new(Bombable { executed: AtomicU64::new(0), value_bombs: true });
            let svc: PoolService<u64> = PoolBuilder::new(kind)
                .places(2)
                .k(8)
                .lane_capacity(2)
                .fault_policy(FaultPolicy::Isolate)
                .service(Arc::clone(&exec));
            let errors = drive_producers(&svc, &values, producers);
            prop_assert!(errors.is_empty(), "{}: Isolate never rejects: {:?}", kind, errors);
            svc.join().expect("Isolate finishes the run");
            let stats = svc.shutdown().expect("clean Isolate shutdown");
            prop_assert_eq!(stats.failed, want_failed, "{}", kind);
            prop_assert_eq!(stats.executed, want_executed, "{}", kind);
            prop_assert_eq!(
                stats.failed + stats.executed,
                values.len() as u64,
                "{}: quarantined + completed must partition the submissions", kind
            );
            prop_assert_eq!(stats.failures.len() as u64, want_failed, "{}", kind);
            for f in &stats.failures {
                prop_assert!(f.prio % 7 == 3, "{}: non-bomb prio {} reported", kind, f.prio);
            }
            prop_assert_eq!(exec.executed.load(Ordering::Acquire), want_executed, "{}", kind);
        }
    }
}
