#![warn(missing_docs)]

//! # priosched — data structures for task-based priority scheduling
//!
//! A from-scratch Rust reproduction of *Wimmer, Cederman, Versaci, Träff,
//! Tsigas: "Data Structures for Task-based Priority Scheduling"* (PPoPP
//! 2014, arXiv:1312.2501): three lock-free priority scheduling data
//! structures with different scalability/ordering trade-offs, the
//! task-scheduling runtime they plug into, the parallel SSSP evaluation
//! application, the phase-model simulator, and the analytical bounds.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`core`] — the data structures and scheduler;
//! * [`pq`] — sequential priority queues (place-local components);
//! * [`graph`] — Erdős–Rényi graphs + sequential Dijkstra baseline;
//! * [`sssp`] — the parallel SSSP application;
//! * [`sim`] — phase simulator + Theorem 5 bounds;
//! * [`workloads`] — first-class benchmark workloads (SSSP, BFS, tile
//!   Cholesky, branch-and-bound knapsack, bi-objective SSSP, MST), each
//!   verified against a sequential oracle and sweepable by the `schedbench`
//!   harness, preseeded or through sharded ingestion
//!   (`run_workload_streamed`).
//!
//! The `priosched-net` crate (not re-exported here — it is a frontend, not
//! a library layer) serves the pool over TCP: `priosched-serve` accepts
//! line-protocol submissions through per-connection async ingest handles
//! with wire-level backpressure; see `core::async_ingest`.
//!
//! ## Quick start
//!
//! Schedule prioritized tasks over the hybrid k-priority structure:
//!
//! ```
//! use priosched::core::{HybridKPriority, Scheduler, SpawnCtx, TaskExecutor};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // Tasks: numbers to "process"; priority: the number itself.
//! struct Sum(AtomicU64);
//! impl TaskExecutor<u64> for Sum {
//!     fn execute(&self, task: u64, ctx: &mut SpawnCtx<'_, u64>) {
//!         self.0.fetch_add(task, Ordering::Relaxed);
//!         if task > 0 {
//!             // Help-first spawn: stored for later, we continue.
//!             ctx.spawn(task - 1, 64, task - 1);
//!         }
//!     }
//! }
//!
//! let scheduler = Scheduler::from_pool(HybridKPriority::new(2));
//! let sum = Sum(AtomicU64::new(0));
//! let stats = scheduler.run(&sum, vec![(10, 64, 10u64)]);
//! assert_eq!(sum.0.load(Ordering::Relaxed), 55); // 10 + 9 + … + 0
//! assert_eq!(stats.executed, 11);
//! ```
//!
//! ## Choosing a structure (§3 of the paper)
//!
//! | structure | ordering guarantee | scalability |
//! |---|---|---|
//! | [`core::PriorityWorkStealing`] | local only — none globally | best |
//! | [`core::CentralizedKPriority`] | ρ = k ignored items max | limited by the shared array |
//! | [`core::HybridKPriority`] | ρ = P·k ignored items max | near work-stealing for large k |
//!
//! The paper's recommendation is the hybrid structure with `k` tuned per
//! application (they found `k = 512` a good compromise on 80 cores).

pub use priosched_core as core;
pub use priosched_graph as graph;
pub use priosched_pq as pq;
pub use priosched_sim as sim;
pub use priosched_sssp as sssp;
pub use priosched_workloads as workloads;

/// Workspace version, for examples that print provenance.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
