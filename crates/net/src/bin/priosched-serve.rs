//! priosched-serve — the TCP ingestion frontend binary.
//!
//! Binds a listener, starts a [`priosched_net::Server`] (a `PoolService`
//! with one connection actor per accepted socket), and serves the line
//! protocol until either `--max-conns` connections have come and gone or
//! stdin reaches EOF — both end in the *graceful* shutdown path (listener
//! closed, actors drained, `PoolService::shutdown` waits for quiescence),
//! so in-flight client work is never aborted.
//!
//! ```text
//! priosched-serve [--addr HOST:PORT] [--kind KIND] [--places N] [--k N]
//!                 [--lane-cap N (0 = unbounded)] [--max-conns N]
//! ```
//!
//! * `--addr 127.0.0.1:0` picks an ephemeral port; the chosen address is
//!   printed as `listening on <addr>` (and flushed) so harnesses can
//!   connect.
//! * `--max-conns N` shuts down after `N` connections were served
//!   (condvar-gated — no polling); without it the server runs until its
//!   stdin closes.
//! * Malformed flags are **usage errors**: a diagnostic on stderr and
//!   exit code 2, never a panic — the same convention as `schedbench`.

use priosched_net::{Server, ServerConfig};
use std::io::{Read, Write};

const USAGE: &str = "usage: priosched-serve [--addr HOST:PORT] \
     [--kind work_stealing|centralized|hybrid|structural] [--places N] \
     [--k N] [--lane-cap N (0 = unbounded)] [--max-conns N]";

#[derive(Debug, PartialEq)]
struct Args {
    addr: String,
    config: ServerConfig,
    /// Shut down after this many connections were served (`None`: run
    /// until stdin EOF).
    max_conns: Option<usize>,
}

impl Args {
    /// Parses the argument vector. `Ok(None)` means `--help`; `Err`
    /// carries a usage diagnostic (exit code 2 in `main`).
    fn parse(argv: &[String]) -> Result<Option<Args>, String> {
        let mut args = Args {
            addr: "127.0.0.1:7411".to_string(),
            config: ServerConfig::default(),
            max_conns: None,
        };
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            let mut take = |name: &str| -> Result<&String, String> {
                it.next().ok_or_else(|| format!("{name} requires a value"))
            };
            match arg.as_str() {
                "--addr" => args.addr = take("--addr")?.clone(),
                "--kind" => {
                    args.config.kind = take("--kind")?
                        .parse()
                        .map_err(|e| format!("--kind: {e}"))?
                }
                "--places" => {
                    args.config.places = take("--places")?
                        .parse()
                        .map_err(|e| format!("--places: {e}"))?;
                    if args.config.places == 0 {
                        return Err("--places must be positive".into());
                    }
                }
                "--k" => {
                    args.config.k = take("--k")?.parse().map_err(|e| format!("--k: {e}"))?;
                }
                "--lane-cap" => {
                    let cap: usize = take("--lane-cap")?
                        .parse()
                        .map_err(|e| format!("--lane-cap: {e}"))?;
                    args.config.lane_capacity = if cap == 0 { None } else { Some(cap) };
                }
                "--max-conns" => {
                    let n: usize = take("--max-conns")?
                        .parse()
                        .map_err(|e| format!("--max-conns: {e}"))?;
                    if n == 0 {
                        return Err("--max-conns must be positive".into());
                    }
                    args.max_conns = Some(n);
                }
                "--help" | "-h" => return Ok(None),
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(Some(args))
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(e) => {
            eprintln!("priosched-serve: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let server = match Server::bind(&args.addr, args.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("priosched-serve: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    println!(
        "pool: {} × {} place(s), k = {}, lane capacity {}",
        args.config.kind,
        args.config.places,
        args.config.k,
        args.config
            .lane_capacity
            .map_or("∞".to_string(), |c| c.to_string()),
    );
    std::io::stdout().flush().expect("stdout must be writable");

    match args.max_conns {
        Some(n) => server.wait_connections_closed(n),
        None => {
            // Run until our stdin closes (pipelines end us cleanly; an
            // interactive shell can ^D). Blocking read — no poll loop.
            let mut sink = Vec::new();
            let _ = std::io::stdin().read_to_end(&mut sink);
        }
    }

    let summary = server.shutdown();
    for (i, conn) in summary.connections.iter().enumerate() {
        println!(
            "conn {i}: accepted {} ({} batched), joins {}, errors {}",
            conn.accepted, conn.batch_items, conn.joins, conn.errors
        );
    }
    println!(
        "served {} connection(s), accepted {} job(s), executed {} task(s) in {:.2?}",
        summary.connections.len(),
        summary.accepted(),
        summary.run.executed,
        summary.run.elapsed,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use priosched_core::PoolKind;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_and_overrides_parse() {
        let args = Args::parse(&argv(&[])).unwrap().unwrap();
        assert_eq!(args.addr, "127.0.0.1:7411");
        assert!(args.max_conns.is_none());
        let args = Args::parse(&argv(&[
            "--addr",
            "0.0.0.0:0",
            "--kind",
            "centralized",
            "--places",
            "4",
            "--k",
            "128",
            "--lane-cap",
            "0",
            "--max-conns",
            "3",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(args.addr, "0.0.0.0:0");
        assert_eq!(args.config.kind, PoolKind::Centralized);
        assert_eq!(args.config.places, 4);
        assert_eq!(args.config.k, 128);
        assert_eq!(args.config.lane_capacity, None, "0 spells unbounded");
        assert_eq!(args.max_conns, Some(3));
    }

    #[test]
    fn malformed_flags_are_usage_errors_not_panics() {
        for bad in [
            vec!["--kind", "quantum"],
            vec!["--kind"],
            vec!["--places", "zero"],
            vec!["--places", "0"],
            vec!["--k", "many"],
            vec!["--lane-cap", "-1"],
            vec!["--max-conns", "0"],
            vec!["--max-conns", "x"],
            vec!["--no-such-flag"],
        ] {
            let err = Args::parse(&argv(&bad)).expect_err(&format!("{bad:?} must be rejected"));
            assert!(!err.is_empty());
        }
    }

    #[test]
    fn help_short_circuits() {
        assert!(Args::parse(&argv(&["--help"])).unwrap().is_none());
        assert!(Args::parse(&argv(&["-h"])).unwrap().is_none());
    }
}
