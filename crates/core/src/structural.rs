//! Structurally ρ-relaxed priority pool (§5.3 prototype).
//!
//! The paper observes that its analysis does not need the *temporal*
//! formulation of ρ-relaxation ("the last k items added may be ignored") —
//! a weaker *structural* formulation suffices: **a pop never ignores more
//! than ρ items, regardless of their age**. §5.3 and the conclusion name
//! data structures built on this weaker property as future work with
//! "promising first results".
//!
//! This module is our prototype of that direction, kept deliberately simple:
//!
//! * each place buffers up to `k` tasks privately (any age — no publication
//!   deadline, no budget bookkeeping);
//! * everything else lives in one shared priority queue;
//! * `pop` takes the better of (own buffer minimum, shared minimum).
//!
//! A pop can only ignore tasks buffered at *other* places — at most
//! `(P−1)·k` of them, so the structure is ρ-relaxed with ρ = (P−1)·k, and
//! the bound holds for arbitrarily old buffered tasks (structural, not
//! temporal). Compared to the hybrid structure the synchronization story is
//! much simpler (the shared queue is a mutex-guarded heap — this prototype
//! trades the hybrid's lock-freedom for simplicity), but pushes touch the
//! shared queue only once every `k` tasks, which is where the scalability
//! comes from. The ablation bench compares it against the paper's
//! structures.
//!
//! Tasks buffered at a place are visible to idle peers through *raiding*: a
//! popper that finds both its buffer and the shared queue empty flushes a
//! victim's buffer into the shared queue (taking the victim's buffer lock),
//! so no task is ever stranded.

use crate::pool::{PoolHandle, TaskPool};
use crate::stats::PlaceStats;
use crate::util::XorShift64;
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use priosched_pq::{BinaryHeap, SequentialPriorityQueue};
use std::sync::Arc;

/// Entry ordered by `(prio, seq)`.
struct Entry<T> {
    prio: u64,
    seq: u64,
    task: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.prio, self.seq).cmp(&(other.prio, other.seq))
    }
}

/// A lockable heap padded to its own cache line.
type PaddedHeap<T> = CachePadded<Mutex<BinaryHeap<Entry<T>>>>;

/// Shared component: the global heap plus every place's raidable buffer.
pub struct StructuralKPriority<T: Send + 'static> {
    k: usize,
    shared_heap: PaddedHeap<T>,
    buffers: Box<[PaddedHeap<T>]>,
}

impl<T: Send + 'static> StructuralKPriority<T> {
    /// Creates the structure for `nplaces` places with per-place buffer
    /// bound `k` (ρ = (P−1)·k).
    ///
    /// # Panics
    /// Panics if `nplaces == 0`.
    pub fn new(nplaces: usize, k: usize) -> Self {
        assert!(nplaces > 0, "need at least one place");
        StructuralKPriority {
            k,
            shared_heap: CachePadded::new(Mutex::new(BinaryHeap::new())),
            buffers: (0..nplaces)
                .map(|_| CachePadded::new(Mutex::new(BinaryHeap::new())))
                .collect(),
        }
    }

    /// The per-place buffer bound.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl<T: Send + 'static> TaskPool<T> for StructuralKPriority<T> {
    type Handle = StructuralHandle<T>;

    fn num_places(&self) -> usize {
        self.buffers.len()
    }

    fn handle(self: &Arc<Self>, place: usize) -> StructuralHandle<T> {
        assert!(place < self.buffers.len(), "place {place} out of range");
        StructuralHandle {
            place,
            seq: 0,
            rng: XorShift64::new(0x5172_0000 ^ place as u64),
            stats: PlaceStats::default(),
            shared: Arc::clone(self),
        }
    }
}

/// One place's view of the structural prototype.
pub struct StructuralHandle<T: Send + 'static> {
    shared: Arc<StructuralKPriority<T>>,
    place: usize,
    seq: u64,
    rng: XorShift64,
    stats: PlaceStats,
}

impl<T: Send + 'static> StructuralHandle<T> {
    /// Moves every task of `victim`'s buffer to the shared queue; returns
    /// how many moved.
    fn raid(&mut self, victim: usize) -> usize {
        let mut buf = self.shared.buffers[victim].lock();
        if buf.is_empty() {
            return 0;
        }
        let mut drained = std::mem::take(&mut *buf);
        drop(buf);
        let n = drained.len();
        self.shared.shared_heap.lock().append(&mut drained);
        n
    }
}

impl<T: Send + 'static> PoolHandle<T> for StructuralHandle<T> {
    /// Buffers locally; overflows (buffer already holds `k`) go to the
    /// shared queue. `k` from the call is ignored — the structural bound is
    /// a per-structure constant here (a per-task variant would track the
    /// minimum, as the hybrid does; not needed for the prototype).
    fn push(&mut self, prio: u64, _k: usize, task: T) {
        let entry = Entry {
            prio,
            seq: self.seq,
            task,
        };
        self.seq += 1;
        self.stats.pushes += 1;
        let mut buf = self.shared.buffers[self.place].lock();
        if buf.len() < self.shared.k {
            buf.push(entry);
            return;
        }
        // Buffer full: move the *worst* of buffer ∪ {entry}? The simple
        // prototype keeps the buffer as-is and forwards the new task, which
        // preserves the ρ bound (buffer size never exceeds k).
        drop(buf);
        self.shared.shared_heap.lock().push(entry);
        self.stats.publishes += 1;
    }

    fn pop_entry(&mut self) -> Option<(u64, T)> {
        // Take the better of (own buffer min, shared min).
        let mut buf = self.shared.buffers[self.place].lock();
        let mut shared = self.shared.shared_heap.lock();
        let from_buffer = match (buf.peek(), shared.peek()) {
            (Some(b), Some(s)) => b < s,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => {
                drop(shared);
                drop(buf);
                // Both empty: raid a random victim's buffer, then retry the
                // shared queue once. Spurious failure is allowed.
                let p = self.shared.buffers.len();
                if p > 1 {
                    // Round-robin over all other places from a random start,
                    // so every buffer is tried exactly once per pop.
                    let start = self.rng.below(p as u64) as usize;
                    for i in 0..p {
                        let victim = (start + i) % p;
                        if victim == self.place {
                            continue;
                        }
                        if self.raid(victim) > 0 {
                            self.stats.steals += 1;
                            if let Some(e) = self.shared.shared_heap.lock().pop() {
                                self.stats.pops += 1;
                                return Some((e.prio, e.task));
                            }
                        }
                    }
                }
                self.stats.failed_pops += 1;
                return None;
            }
        };
        let entry = if from_buffer {
            drop(shared);
            buf.pop()
        } else {
            drop(buf);
            shared.pop()
        };
        self.stats.pops += 1;
        entry.map(|e| (e.prio, e.task))
    }

    /// Batch push: the local-buffer prefix fills under one buffer lock,
    /// and everything past the buffer bound goes to the shared queue in a
    /// single locked bulk insert.
    fn push_batch(&mut self, _k: usize, batch: &mut Vec<(u64, T)>) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len() as u64;
        let base_seq = self.seq;
        self.seq += n;
        self.stats.pushes += n;
        let mut entries = batch.drain(..).enumerate().map(|(i, (prio, task))| Entry {
            prio,
            seq: base_seq + i as u64,
            task,
        });
        let mut buf = self.shared.buffers[self.place].lock();
        let room = self.shared.k.saturating_sub(buf.len());
        buf.extend_batch(entries.by_ref().take(room));
        drop(buf);
        let overflow: Vec<Entry<T>> = entries.collect();
        if !overflow.is_empty() {
            self.stats.publishes += overflow.len() as u64;
            self.shared.shared_heap.lock().extend_batch(overflow);
        }
    }

    /// Batch pop: drains up to `max` tasks while holding the two locks
    /// once, instead of re-locking per task; raiding (the slow path) is
    /// delegated to scalar `pop` when the batch would come up empty.
    fn try_pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut got = 0;
        {
            let mut buf = self.shared.buffers[self.place].lock();
            let mut shared = self.shared.shared_heap.lock();
            while got < max {
                let from_buffer = match (buf.peek(), shared.peek()) {
                    (Some(b), Some(s)) => b < s,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                let entry = if from_buffer { buf.pop() } else { shared.pop() };
                match entry {
                    Some(e) => {
                        out.push(e.task);
                        got += 1;
                    }
                    None => break,
                }
            }
        }
        if got > 0 {
            self.stats.pops += got as u64;
            return got;
        }
        // Empty fast path: fall back to the raiding scalar pop.
        match self.pop() {
            Some(task) => {
                out.push(task);
                1
            }
            None => 0,
        }
    }

    fn stats(&self) -> PlaceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize, k: usize) -> Arc<StructuralKPriority<u64>> {
        Arc::new(StructuralKPriority::new(n, k))
    }

    #[test]
    fn single_place_priority_order() {
        let p = pool(1, 4);
        let mut h = p.handle(0);
        for &x in &[6u64, 2, 8, 1] {
            h.push(x, 0, x);
        }
        let mut out = Vec::new();
        while let Some(t) = h.pop() {
            out.push(t);
        }
        assert_eq!(out, vec![1, 2, 6, 8]);
    }

    #[test]
    fn overflow_goes_to_shared_queue() {
        let p = pool(2, 2);
        let mut h0 = p.handle(0);
        for i in 0..5u64 {
            h0.push(i, 0, i);
        }
        // Buffer holds 2, the rest went shared: place 1 sees them without
        // raiding.
        let mut h1 = p.handle(1);
        assert!(h1.pop().is_some());
        assert_eq!(h1.stats().steals, 0);
    }

    #[test]
    fn raid_recovers_buffered_tasks() {
        let p = pool(2, 64);
        let mut h0 = p.handle(0);
        for i in 0..5u64 {
            h0.push(i, 0, i); // all buffered at place 0
        }
        let mut h1 = p.handle(1);
        let mut got = Vec::new();
        while let Some(t) = h1.pop() {
            got.push(t);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(h1.stats().steals >= 1);
    }

    /// The structural bound: a pop may ignore only tasks buffered at other
    /// places, at most (P−1)·k, regardless of age. With P = 2 the popping
    /// place can see everything except ≤ k buffered tasks — and unlike the
    /// temporal structures, an *old* task may legally stay hidden.
    #[test]
    fn old_tasks_may_stay_buffered_but_bound_holds() {
        let k = 3;
        let p = pool(2, k);
        let mut h0 = p.handle(0);
        // k old, high-priority tasks stay in the buffer forever …
        for i in 0..k as u64 {
            h0.push(i, 0, i);
        }
        // … while newer, worse tasks overflow to the shared queue.
        for i in 0..20u64 {
            h0.push(100 + i, 0, 100 + i);
        }
        let mut h1 = p.handle(1);
        // Place 1 pops the shared tasks; the k buffered ones are ignored —
        // exactly the structural allowance, never more.
        for i in 0..20u64 {
            assert_eq!(h1.pop(), Some(100 + i));
        }
        // Raid finally liberates the buffered ones.
        let mut rest = Vec::new();
        while let Some(t) = h1.pop() {
            rest.push(t);
        }
        assert_eq!(rest, vec![0, 1, 2]);
    }

    #[test]
    fn concurrent_exactly_once() {
        let threads = 4usize;
        let per = 2_000u64;
        let p = pool(threads, 16);
        let popped = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let taken: Arc<Vec<std::sync::atomic::AtomicU32>> =
            Arc::new((0..threads as u64 * per).map(|_| 0.into()).collect());
        std::thread::scope(|s| {
            for t in 0..threads {
                let p = Arc::clone(&p);
                let taken = Arc::clone(&taken);
                let popped = Arc::clone(&popped);
                s.spawn(move || {
                    use std::sync::atomic::Ordering;
                    let mut h = p.handle(t);
                    let mut rng = XorShift64::new(t as u64 + 13);
                    let mut pushed = 0u64;
                    loop {
                        if pushed < per && rng.below(2) == 0 {
                            h.push(rng.below(500), 0, t as u64 * per + pushed);
                            pushed += 1;
                        } else if let Some(got) = h.pop() {
                            assert_eq!(taken[got as usize].fetch_add(1, Ordering::Relaxed), 0);
                            popped.fetch_add(1, Ordering::Relaxed);
                        } else if pushed == per
                            && popped.load(Ordering::Relaxed) == threads as u64 * per
                        {
                            break;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(
            popped.load(std::sync::atomic::Ordering::Relaxed),
            threads as u64 * per
        );
    }
}
