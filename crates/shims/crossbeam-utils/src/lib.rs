//! In-tree shim for the subset of `crossbeam-utils` used by this workspace.
//!
//! The build environment is fully offline, so the two small utilities the
//! scheduler relies on are reimplemented here with the same API:
//!
//! * [`CachePadded`] — aligns a value to its own cache line to prevent
//!   false sharing between per-place shared records;
//! * [`Backoff`] — exponential spin/yield backoff for poll loops.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line.
///
/// 128 bytes covers the common cases: x86_64 prefetches cache-line pairs
/// (effectively 128 B) and Apple/ARM big cores use 128-B lines; on 64-B-line
/// machines the extra padding is harmless.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads and aligns `value` to a cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

/// Exponential backoff for spin loops: spin for a while, then start
/// yielding to the OS scheduler.
pub struct Backoff {
    step: std::cell::Cell<u32>,
}

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

impl Backoff {
    /// Creates a backoff in its initial (shortest-wait) state.
    pub fn new() -> Self {
        Backoff {
            step: std::cell::Cell::new(0),
        }
    }

    /// Resets to the initial state (call after useful work was found).
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Busy-spins a bounded, exponentially growing number of times.
    pub fn spin(&self) {
        let step = self.step.get().min(SPIN_LIMIT);
        for _ in 0..1u32 << step {
            std::hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Spins while cheap, then yields the thread.
    pub fn snooze(&self) {
        if self.step.get() <= SPIN_LIMIT {
            self.spin();
        } else {
            std::thread::yield_now();
            if self.step.get() <= YIELD_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }
    }

    /// `true` once waiting has escalated past busy-spinning, i.e. callers
    /// that can block should.
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let x = CachePadded::new(7u64);
        assert_eq!(*x, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(x.into_inner(), 7);
    }

    #[test]
    fn backoff_escalates_and_resets() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }
}
