//! Minimum spanning tree as a [`Workload`], à la the Multi-Queues
//! evaluation (Postnikova et al., PODC'21), verified against a sequential
//! Kruskal oracle (cross-checked against Prim in tests).
//!
//! # Why Borůvka-style merging, not relaxed Prim
//!
//! Under a ρ-relaxed pop, textbook parallel Prim is *incorrect*: popping a
//! frontier vertex whose connecting edge is not the global minimum can
//! commit a non-MST edge, and nothing later repairs it (unlike SSSP,
//! which is label-correcting). What survives arbitrary reordering is the
//! **cut property**: the minimum outgoing edge of *any* component is in
//! the MST. So tasks here are *component-advance* steps — pop a
//! component, find its minimum outgoing edge, merge across it — which are
//! order-insensitive: any interleaving commits only MST edges, and the
//! run terminates with exactly the MST edge set. Priorities still matter
//! for efficiency (components are advanced lightest-edge-first, giving
//! Kruskal-like behavior), so the relaxed structures get realistic
//! priority traffic while the oracle check stays exact.
//!
//! Edge weights are totally ordered by `(weight, edge id)` — the standard
//! tie-breaking perturbation — so the minimum spanning forest is
//! *unique*, and verification compares the chosen **edge id set** against
//! the oracle's: exact equality, no floating-point summation order
//! issues.

use crate::Workload;
use priosched_core::{priority_from_f64, PoolParams, RunStats, SpawnCtx, TaskExecutor};
use priosched_graph::{erdos_renyi, CsrGraph, ErdosRenyiConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One component-advance step: `rep` is a vertex that was the
/// representative (union-find root) of its component when the task was
/// spawned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MstTask {
    /// Component representative to advance.
    pub rep: u32,
}

/// An MST instance: the graph with ids assigned to its undirected edges,
/// plus the unique-minimum-spanning-forest oracle.
pub struct MstWorkload {
    /// Adjacency with edge ids: `adj[u] = [(v, edge_id), …]`.
    adj: Vec<Vec<(u32, u32)>>,
    /// Weight of each undirected edge, by id.
    weights: Vec<f32>,
    /// Oracle: sorted ids of the unique MSF's edges (Kruskal with
    /// `(weight, id)` tie-breaking).
    oracle_edges: Vec<u32>,
    /// Min incident `(weight, edge id)` per vertex (seed priorities).
    seed_prio: Vec<u64>,
}

/// Totally ordered effective weight: `(weight, id)` lexicographic.
fn edge_key(weights: &[f32], id: u32) -> (f32, u32) {
    (weights[id as usize], id)
}

fn key_less(a: (f32, u32), b: (f32, u32)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
}

impl MstWorkload {
    /// Wraps an existing graph; computes the Kruskal oracle once.
    pub fn new(graph: &CsrGraph) -> Self {
        let n = graph.num_nodes();
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        let mut weights = Vec::new();
        for (u, v, w) in graph.undirected_edges() {
            let id = weights.len() as u32;
            weights.push(w);
            adj[u as usize].push((v, id));
            adj[v as usize].push((u, id));
        }
        let oracle_edges = sequential_kruskal(n, &adj, &weights);
        let seed_prio = (0..n)
            .map(|u| {
                adj[u]
                    .iter()
                    .map(|&(_, id)| edge_key(&weights, id))
                    .reduce(|a, b| if key_less(b, a) { b } else { a })
                    .map_or(u64::MAX, |(w, _)| priority_from_f64(w as f64))
            })
            .collect();
        MstWorkload {
            adj,
            weights,
            oracle_edges,
            seed_prio,
        }
    }

    /// Seeded Erdős–Rényi instance.
    pub fn random(n: usize, p: f64, seed: u64) -> Self {
        Self::new(&erdos_renyi(&ErdosRenyiConfig { n, p, seed }))
    }

    /// Sorted edge ids of the unique minimum spanning forest.
    pub fn oracle_edges(&self) -> &[u32] {
        &self.oracle_edges
    }

    /// Total weight of the oracle forest (summed in id order, so the
    /// value is deterministic).
    pub fn oracle_weight(&self) -> f64 {
        self.oracle_edges
            .iter()
            .map(|&id| self.weights[id as usize] as f64)
            .sum()
    }

    fn num_nodes(&self) -> usize {
        self.adj.len()
    }
}

/// Reference solution: Kruskal with `(weight, id)` tie-breaking over a
/// sequential union-find. Returns the sorted edge ids of the (unique)
/// minimum spanning forest.
pub fn sequential_kruskal(n: usize, adj: &[Vec<(u32, u32)>], weights: &[f32]) -> Vec<u32> {
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    // Each undirected edge appears twice in `adj`; recover endpoints once
    // per id.
    let mut endpoints: Vec<(u32, u32)> = vec![(u32::MAX, u32::MAX); weights.len()];
    for (u, lst) in adj.iter().enumerate() {
        for &(v, id) in lst {
            if endpoints[id as usize].0 == u32::MAX {
                endpoints[id as usize] = (u as u32, v);
            }
        }
    }
    let mut order: Vec<u32> = (0..weights.len() as u32).collect();
    order.sort_by(|&a, &b| {
        weights[a as usize]
            .partial_cmp(&weights[b as usize])
            .expect("finite weights")
            .then(a.cmp(&b))
    });
    let mut chosen = Vec::new();
    for id in order {
        let (u, v) = endpoints[id as usize];
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru as usize] = rv;
            chosen.push(id);
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Reference cross-check: Prim (lazy-deletion binary heap) from every
/// still-unvisited vertex, same `(weight, id)` tie-breaking. Used by
/// tests to confirm the Kruskal oracle independently.
pub fn sequential_prim(n: usize, adj: &[Vec<(u32, u32)>], weights: &[f32]) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut in_tree = vec![false; n];
    let mut chosen = Vec::new();
    for start in 0..n {
        if in_tree[start] {
            continue;
        }
        in_tree[start] = true;
        // Keyed by (weight bits, id): f32 bits of positive weights order
        // like the weights themselves.
        let mut heap: BinaryHeap<Reverse<(u32, u32, u32)>> = BinaryHeap::new();
        let push_edges = |from: usize, heap: &mut BinaryHeap<Reverse<(u32, u32, u32)>>| {
            for &(to, id) in &adj[from] {
                heap.push(Reverse((weights[id as usize].to_bits(), id, to)));
            }
        };
        push_edges(start, &mut heap);
        while let Some(Reverse((_, id, to))) = heap.pop() {
            if in_tree[to as usize] {
                continue; // lazy deletion
            }
            in_tree[to as usize] = true;
            chosen.push(id);
            push_edges(to as usize, &mut heap);
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Union-find forest with per-root member lists (small-into-large merge),
/// guarded by one mutex — the workload's shared state is deliberately
/// simple; the parallelism under test is the *scheduler's*, and tasks
/// contend realistically on the single commit point like the knapsack
/// incumbent.
struct Forest {
    parent: Vec<u32>,
    members: Vec<Vec<u32>>,
    chosen: Vec<u32>,
    components: usize,
}

impl Forest {
    fn find(&self, mut x: u32) -> u32 {
        // Read-only find (no path compression): callers iterate member
        // lists while probing, and trees stay shallow thanks to the
        // small-into-large member merge.
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }
}

/// Per-run state: the shared forest plus monotone merge flags for the
/// dead-task hint.
pub struct MstExec<'w> {
    workload: &'w MstWorkload,
    forest: parking_lot::Mutex<Forest>,
    /// `merged[v]` rises (permanently) when root `v` loses a union — the
    /// lock-free `is_dead` hint for tasks referencing it.
    merged: Vec<AtomicBool>,
    /// Merge commits performed (diagnostics).
    merges: AtomicU64,
    k: usize,
}

impl MstExec<'_> {
    /// Sorted edge ids the run committed so far.
    pub fn chosen_edges(&self) -> Vec<u32> {
        let mut chosen = self.forest.lock().chosen.clone();
        chosen.sort_unstable();
        chosen
    }

    /// Merge commits performed.
    pub fn merges(&self) -> u64 {
        self.merges.load(Ordering::Relaxed)
    }
}

impl TaskExecutor<MstTask> for MstExec<'_> {
    /// A task whose representative lost a union is dead: the winning
    /// root's follow-up task covers the merged component.
    fn is_dead(&self, task: &MstTask) -> bool {
        self.merged[task.rep as usize].load(Ordering::Relaxed)
    }

    fn execute(&self, task: MstTask, ctx: &mut SpawnCtx<'_, MstTask>) {
        let (spawn, prio) = {
            let mut f = self.forest.lock();
            let root = f.find(task.rep);
            // Minimum outgoing edge of the component (cut property: it is
            // in the MST whatever the global task order).
            let mut best: Option<(f32, u32, u32)> = None; // (w, id, other_root)
            for i in 0..f.members[root as usize].len() {
                let v = f.members[root as usize][i];
                for &(to, id) in &self.workload.adj[v as usize] {
                    let to_root = f.find(to);
                    if to_root == root {
                        continue; // internal edge
                    }
                    let key = edge_key(&self.workload.weights, id);
                    if best.is_none_or(|(bw, bid, _)| key_less(key, (bw, bid))) {
                        best = Some((key.0, key.1, to_root));
                    }
                }
            }
            let Some((w, id, other)) = best else {
                return; // spanning (or isolated) component: nothing to do
            };
            // Merge small into large so member scans stay near-linear.
            let (winner, loser) =
                if f.members[root as usize].len() >= f.members[other as usize].len() {
                    (root, other)
                } else {
                    (other, root)
                };
            f.parent[loser as usize] = winner;
            let absorbed = std::mem::take(&mut f.members[loser as usize]);
            f.members[winner as usize].extend(absorbed);
            f.chosen.push(id);
            f.components -= 1;
            self.merged[loser as usize].store(true, Ordering::Release);
            self.merges.fetch_add(1, Ordering::Relaxed);
            (
                (f.components > 1).then_some(MstTask { rep: winner }),
                priority_from_f64(w as f64),
            )
        };
        // Spawn outside the lock: one follow-up per committed merge keeps
        // every live root covered by a task (see module docs).
        if let Some(next) = spawn {
            ctx.spawn(prio, self.k, next);
        }
    }
}

impl Workload for MstWorkload {
    type Task = MstTask;
    type Exec<'w>
        = MstExec<'w>
    where
        Self: 'w;

    fn name(&self) -> &'static str {
        "mst"
    }

    fn executor(&self, params: &PoolParams) -> MstExec<'_> {
        let n = self.num_nodes();
        MstExec {
            workload: self,
            forest: parking_lot::Mutex::new(Forest {
                parent: (0..n as u32).collect(),
                members: (0..n as u32).map(|v| vec![v]).collect(),
                chosen: Vec::new(),
                components: n,
            }),
            merged: (0..n).map(|_| AtomicBool::new(false)).collect(),
            merges: AtomicU64::new(0),
            k: params.k,
        }
    }

    /// One seed per vertex — a wide stream (like multi-source BFS) that
    /// gives sharded ingestion real work — prioritized by the vertex's
    /// lightest incident edge.
    fn seed(&self, _exec: &MstExec<'_>, params: &PoolParams) -> Vec<(u64, usize, MstTask)> {
        (0..self.num_nodes() as u32)
            .map(|rep| (self.seed_prio[rep as usize], params.k, MstTask { rep }))
            .collect()
    }

    fn verify(&self, exec: &MstExec<'_>, _run: &RunStats) -> Result<(), String> {
        let chosen = exec.chosen_edges();
        if chosen != self.oracle_edges {
            return Err(format!(
                "chosen {} edge(s) diverge from the unique MSF's {} \
                 (Kruskal oracle with (weight, id) tie-breaking)",
                chosen.len(),
                self.oracle_edges.len()
            ));
        }
        Ok(())
    }

    fn metrics(&self, exec: &MstExec<'_>, _run: &RunStats) -> Vec<(&'static str, f64)> {
        vec![
            ("mst_weight", self.oracle_weight()),
            ("merges", exec.merges() as f64),
        ]
    }
}

/// Seeded random connected-ish graph helper for tests wanting duplicate
/// weights (tie-break coverage): weights quantized to few distinct values.
#[cfg(test)]
fn quantized_instance(n: usize, p: f64, seed: u64) -> MstWorkload {
    let g = erdos_renyi(&ErdosRenyiConfig { n, p, seed });
    let mut rng = crate::SplitRng(seed | 1);
    let edges: Vec<(u32, u32, f32)> = g
        .undirected_edges()
        .map(|(u, v, _)| (u, v, ((rng.next() % 4) as f32 + 1.0) / 4.0))
        .collect();
    MstWorkload::new(&CsrGraph::from_undirected_edges(n, &edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use priosched_core::PoolKind;

    #[test]
    fn kruskal_on_known_graph() {
        // 4-cycle with one heavy chord: MST = the three lightest edges.
        let g = CsrGraph::from_undirected_edges(
            4,
            &[
                (0, 1, 0.1),
                (1, 2, 0.2),
                (2, 3, 0.3),
                (3, 0, 0.9),
                (0, 2, 0.8),
            ],
        );
        // Ids follow CsrGraph::undirected_edges order (by u, then u's
        // adjacency order): 0 = (0,1,.1), 1 = (0,3,.9), 2 = (0,2,.8),
        // 3 = (1,2,.2), 4 = (2,3,.3); the MSF is the three lightest.
        let w = MstWorkload::new(&g);
        assert_eq!(w.oracle_edges(), &[0, 3, 4]);
        assert!((w.oracle_weight() - 0.6).abs() < 1e-6);
    }

    #[test]
    fn kruskal_and_prim_agree() {
        for seed in [3u64, 17, 99] {
            let w = MstWorkload::random(120, 0.06, seed);
            assert_eq!(
                w.oracle_edges,
                sequential_prim(w.num_nodes(), &w.adj, &w.weights),
                "seed {seed}: the two sequential oracles must agree on the \
                 unique MSF"
            );
        }
    }

    #[test]
    fn tie_broken_duplicate_weights_still_have_unique_msf() {
        let w = quantized_instance(90, 0.08, 7);
        assert_eq!(
            w.oracle_edges,
            sequential_prim(w.num_nodes(), &w.adj, &w.weights),
            "(weight, id) tie-breaking must make both oracles pick the \
             same forest despite duplicate weights"
        );
        run_workload(&w, PoolKind::Hybrid, 4, PoolParams::with_k(16)).expect_verified();
    }

    #[test]
    fn mst_workload_verifies_on_all_kinds() {
        let w = MstWorkload::random(140, 0.05, 42);
        for kind in PoolKind::ALL {
            let report = run_workload(&w, kind, 2, PoolParams::with_k(32));
            report.expect_verified();
            assert!(report.executed >= 1, "{kind}");
        }
    }

    #[test]
    fn disconnected_graph_yields_spanning_forest() {
        // Two triangles, no bridge: the MSF has 4 edges (2 per component).
        let g = CsrGraph::from_undirected_edges(
            6,
            &[
                (0, 1, 0.1),
                (1, 2, 0.2),
                (2, 0, 0.3),
                (3, 4, 0.1),
                (4, 5, 0.2),
                (5, 3, 0.3),
            ],
        );
        let w = MstWorkload::new(&g);
        assert_eq!(w.oracle_edges().len(), 4);
        run_workload(&w, PoolKind::Centralized, 2, PoolParams::with_k(8)).expect_verified();
    }

    #[test]
    fn isolated_vertices_are_fine() {
        let g = CsrGraph::from_undirected_edges(5, &[(0, 1, 0.5)]);
        let w = MstWorkload::new(&g);
        assert_eq!(w.oracle_edges(), &[0]);
        run_workload(&w, PoolKind::WorkStealing, 2, PoolParams::with_k(8)).expect_verified();
    }
}
