//! schedbench — the unified workload harness.
//!
//! Sweeps workload × structure × places × k × spawn-chunk, verifies **every
//! run** against the workload's sequential oracle, and emits records in the
//! committed `BENCH_*.json` format (`group`/`id`/`mean_ns`/`min_ns`/
//! `max_ns`/`elements`), so baselines like `BENCH_workloads.json` are
//! regenerable with one command instead of being one-off artifacts.
//!
//! ```text
//! schedbench [--smoke] [--workloads sssp,bfs,cholesky,knapsack,mo_sssp,mst]
//!            [--kinds work_stealing,centralized,hybrid,structural,multiqueue]
//!            [--places 1,2,4] [--k 512] [--chunks 0] [--reps 3]
//!            [--combining on,off] [--oplat OPS] [--rank-error OPS]
//!            [--ingest PRODUCERSxCHUNK,…] [--lane-cap N,…]
//!            [--net CONNSxPER_CONN,…] [--out FILE.json]
//! ```
//!
//! * `--smoke` shrinks every instance and runs one rep — the CI job that
//!   keeps example-derived workloads from rotting.
//! * `--chunks` sweeps the spawn-batch chunk bound for the workloads that
//!   batch their spawns (sssp, mo_sssp); `0` = one batch per expansion.
//! * `--ingest` switches the sweep to the open-world path: each cell like
//!   `4x32` feeds the instance's seeds through sharded ingestion lanes
//!   from 4 producer threads in submission chunks of 32 (see
//!   `run_workload_streamed`), still verified against the same oracle.
//!   Without the flag, seeds are preseeded as roots (the closed-world
//!   baseline).
//! * `--lane-cap` adds a backpressure axis to `--ingest` cells: each value
//!   bounds every ingress lane to that many queued tasks (`0` =
//!   unbounded), so producers block (parking) when they outrun the
//!   workers. Requires `--ingest` or `--net`.
//! * `--net` switches to the network sweep: each cell like `4x64` starts
//!   a fresh in-process `priosched-serve` server per (kind × places × k ×
//!   lane-cap) combination, drives it with 4 load-client connections of
//!   64 countdown submissions each over real loopback TCP (batched
//!   `BATCH` requests), verifies the `DONE` count against the countdown
//!   oracle, and emits `schedbench_net` records. Mutually exclusive with
//!   `--ingest` and `--workloads` (the net workload is the wire
//!   protocol's countdown job).
//! * `--chaos seed=N` switches to the deterministic chaos sweep (see
//!   `priosched_bench::chaos`): seeded task panics under both fault
//!   policies, mid-run producer aborts, garbage/oversized protocol
//!   lines, stalled and killed sockets — across every requested kind ×
//!   places cell, each run **twice** to prove the failure counters are
//!   identical on a same-seed repeat. Emits `schedbench_chaos` records
//!   carrying the failure-mode counters. Contradicts `--net` and
//!   `--ingest` (usage error).
//! * `--combining on,off` A/Bs the structural pool's shared-queue
//!   backend: `on` routes overflow/pop/raid traffic through the flat
//!   combiner (the default), `off` through the plain mutex. Off-cells
//!   only apply to the structural kind (other structures ignore the
//!   toggle and would produce duplicate rows); their record ids carry a
//!   `_nocomb` suffix.
//! * `--oplat OPS` switches to the per-op latency sweep: `places`
//!   threads per cell each run OPS push/pop cycles against the raw pool
//!   (no workload, no oracle), every op individually timed into an
//!   HDR-style histogram ([`priosched_bench::latency::LatencyHist`]);
//!   records land in group `schedbench_oplat` with `p50_ns`/`p99_ns`/
//!   `p999_ns` fields — the committed `BENCH_combine.json` baseline.
//!   Mutually exclusive with `--ingest`/`--net`/`--chaos`.
//! * `--rank-error OPS` switches to the relaxation-quality sweep: the
//!   same raw-pool cycle, but MultiQueue cells fan out over the c ×
//!   stickiness grid and run twice — once uninstrumented for honest
//!   latency, once with the shadow-heap instrument pricing every pop's
//!   rank error. Records land in group `schedbench_rankerr`; MultiQueue
//!   rows carry `rank_err_mean`/`rank_err_p99`/`rank_err_max` next to
//!   the latency percentiles, and the c = 1 single-place cell must
//!   measure exactly zero (the instrument's null experiment) — the
//!   committed `BENCH_multiqueue.json` baseline. Mutually exclusive
//!   with `--ingest`/`--net`/`--chaos`/`--oplat`.
//! * Malformed flags are **usage errors**: the sweep prints a diagnostic
//!   to stderr and exits with code 2 instead of panicking.
//! * Any oracle mismatch aborts with a nonzero exit code.

use priosched_core::{PoolKind, PoolParams};
use priosched_workloads::{
    bench_record, BfsWorkload, CholeskyWorkload, DynWorkload, KnapsackWorkload, MoSsspWorkload,
    MstWorkload, SsspWorkload, WorkloadReport,
};
use std::io::Write;
use std::path::PathBuf;

/// Workload names in sweep order.
const WORKLOADS: [&str; 6] = ["sssp", "bfs", "cholesky", "knapsack", "mo_sssp", "mst"];

const USAGE: &str = "usage: schedbench [--smoke] [--workloads LIST] [--kinds LIST] \
     [--places LIST] [--k LIST] [--chunks LIST] [--combining on,off] \
     [--oplat OPS] [--rank-error OPS] [--ingest PxC,…] \
     [--lane-cap N,… (0 = unbounded; requires --ingest or --net)] \
     [--net CxS,…] [--chaos seed=N] [--reps N] [--out FILE]";

/// One `--ingest` cell: producer-thread count × submission-chunk size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct IngestCell {
    producers: usize,
    chunk: usize,
}

impl std::str::FromStr for IngestCell {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (p, c) = s
            .split_once(['x', 'X'])
            .ok_or_else(|| format!("expected PRODUCERSxCHUNK (e.g. 4x32), got {s:?}"))?;
        let producers = p
            .trim()
            .parse()
            .map_err(|e| format!("bad producer count in {s:?}: {e}"))?;
        let chunk = c
            .trim()
            .parse()
            .map_err(|e| format!("bad chunk size in {s:?}: {e}"))?;
        if producers == 0 {
            return Err(format!("{s:?}: producer count must be positive"));
        }
        Ok(IngestCell { producers, chunk })
    }
}

#[derive(Debug)]
struct Args {
    smoke: bool,
    workloads: Vec<String>,
    kinds: Vec<PoolKind>,
    places: Vec<usize>,
    ks: Vec<usize>,
    chunks: Vec<usize>,
    ingest: Vec<IngestCell>,
    /// `--net` cells: client connections × submissions per connection.
    net: Vec<IngestCell>,
    /// `--chaos seed=N`: run the deterministic chaos sweep with this seed.
    chaos: Option<u64>,
    /// Lane-capacity axis for streamed cells; `None` = unbounded (the `0`
    /// spelling on the command line).
    lane_caps: Vec<Option<usize>>,
    /// `--combining` axis: shared-queue backend for the structural pool
    /// (`true` = flat combiner, `false` = plain mutex). Off-cells apply
    /// only to the structural kind.
    combining: Vec<bool>,
    /// `--oplat OPS`: per-op latency sweep with OPS cycles per thread.
    oplat: Option<u64>,
    /// `--rank-error OPS`: relaxation-quality sweep — oplat cycle plus a
    /// shadow-instrumented MultiQueue pass over the c × stickiness grid.
    rank_error: Option<u64>,
    reps: usize,
    out: Option<PathBuf>,
}

fn parse_list<T: std::str::FromStr>(flag: &str, value: &str) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|e| format!("{flag}: bad element {s:?}: {e}"))
        })
        .collect()
}

impl Args {
    /// Parses the argument vector. `Ok(None)` means `--help` was asked
    /// for; `Err` carries a usage diagnostic (exit code 2 in `main`).
    fn parse(argv: &[String]) -> Result<Option<Args>, String> {
        let mut cfg = Args {
            smoke: false,
            workloads: WORKLOADS.iter().map(|s| s.to_string()).collect(),
            kinds: PoolKind::ALL.to_vec(),
            places: vec![1, 2, 4],
            ks: vec![512],
            chunks: vec![0],
            ingest: Vec::new(),
            net: Vec::new(),
            chaos: None,
            lane_caps: vec![None],
            combining: vec![true],
            oplat: None,
            rank_error: None,
            reps: 3,
            out: None,
        };
        // Apply --smoke defaults first, wherever the flag appears, so an
        // explicit --places/--k/--reps always wins regardless of order.
        if argv.iter().any(|a| a == "--smoke") {
            cfg.smoke = true;
            cfg.places = vec![1, 2];
            cfg.ks = vec![64];
            cfg.reps = 1;
        }
        let mut lane_caps_given = false;
        let mut args = argv.iter();
        while let Some(arg) = args.next() {
            let mut take = |name: &str| -> Result<&String, String> {
                args.next()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match arg.as_str() {
                "--smoke" => {}
                "--workloads" => {
                    cfg.workloads = parse_list::<String>("--workloads", take("--workloads")?)?;
                    for w in &cfg.workloads {
                        if !WORKLOADS.contains(&w.as_str()) {
                            return Err(format!(
                                "unknown workload {w:?} (expected one of {WORKLOADS:?})"
                            ));
                        }
                    }
                }
                "--kinds" => cfg.kinds = parse_list("--kinds", take("--kinds")?)?,
                "--places" => cfg.places = parse_list("--places", take("--places")?)?,
                "--k" => cfg.ks = parse_list("--k", take("--k")?)?,
                "--chunks" => cfg.chunks = parse_list("--chunks", take("--chunks")?)?,
                "--ingest" => cfg.ingest = parse_list("--ingest", take("--ingest")?)?,
                "--net" => cfg.net = parse_list("--net", take("--net")?)?,
                "--chaos" => {
                    let raw = take("--chaos")?.as_str();
                    let digits = raw.strip_prefix("seed=").unwrap_or(raw);
                    cfg.chaos = Some(
                        digits
                            .parse()
                            .map_err(|e| format!("--chaos: bad seed {raw:?}: {e}"))?,
                    );
                }
                "--lane-cap" => {
                    lane_caps_given = true;
                    cfg.lane_caps = parse_list::<usize>("--lane-cap", take("--lane-cap")?)?
                        .into_iter()
                        .map(|c| if c == 0 { None } else { Some(c) })
                        .collect();
                    if cfg.lane_caps.is_empty() {
                        return Err("--lane-cap: expected at least one capacity".into());
                    }
                }
                "--combining" => {
                    cfg.combining = parse_list::<String>("--combining", take("--combining")?)?
                        .into_iter()
                        .map(|v| match v.as_str() {
                            "on" | "true" => Ok(true),
                            "off" | "false" => Ok(false),
                            other => Err(format!("--combining: expected on/off, got {other:?}")),
                        })
                        .collect::<Result<Vec<bool>, String>>()?;
                    if cfg.combining.is_empty() {
                        return Err("--combining: expected at least one of on/off".into());
                    }
                }
                "--oplat" => {
                    cfg.oplat = Some(
                        take("--oplat")?
                            .parse()
                            .map_err(|e| format!("--oplat: {e}"))?,
                    );
                }
                "--rank-error" => {
                    cfg.rank_error = Some(
                        take("--rank-error")?
                            .parse()
                            .map_err(|e| format!("--rank-error: {e}"))?,
                    );
                }
                "--reps" => {
                    cfg.reps = take("--reps")?
                        .parse()
                        .map_err(|e| format!("--reps: {e}"))?;
                }
                "--out" => cfg.out = Some(PathBuf::from(take("--out")?)),
                "--help" | "-h" => return Ok(None),
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if cfg.reps == 0 {
            return Err("--reps must be positive".into());
        }
        if lane_caps_given && cfg.ingest.is_empty() && cfg.net.is_empty() {
            return Err(
                "--lane-cap bounds the streamed ingress lanes and needs --ingest \
                 or --net (preseeded runs have no lanes)"
                    .into(),
            );
        }
        if !cfg.net.is_empty() && cfg.ingest.is_empty() {
            // --net cells always run bounded lanes (the whole point is
            // wire backpressure); default to a small capacity when the
            // flag is absent.
            if !lane_caps_given {
                cfg.lane_caps = vec![Some(64)];
            }
        }
        if !cfg.net.is_empty() && !cfg.ingest.is_empty() {
            return Err("--net and --ingest are separate sweeps; pass one".into());
        }
        if cfg.chaos.is_some() && (!cfg.net.is_empty() || !cfg.ingest.is_empty()) {
            return Err(
                "--chaos is its own sweep (it injects its own faults and traffic) and \
                 contradicts --net/--ingest; pass one"
                    .into(),
            );
        }
        if !cfg.combining.contains(&true) && !cfg.kinds.contains(&PoolKind::Structural) {
            return Err("--combining off only affects the structural pool; include \
                 structural in --kinds or add on"
                .into());
        }
        if let Some(ops) = cfg.oplat {
            if ops == 0 {
                return Err("--oplat: ops per thread must be positive".into());
            }
            if !cfg.net.is_empty() || !cfg.ingest.is_empty() || cfg.chaos.is_some() {
                return Err(
                    "--oplat times raw pool ops and contradicts --net/--ingest/--chaos; \
                     pass one"
                        .into(),
                );
            }
        }
        if let Some(ops) = cfg.rank_error {
            if ops == 0 {
                return Err("--rank-error: ops per thread must be positive".into());
            }
            if !cfg.net.is_empty()
                || !cfg.ingest.is_empty()
                || cfg.chaos.is_some()
                || cfg.oplat.is_some()
            {
                return Err(
                    "--rank-error measures raw pool ops plus relaxation quality and \
                     contradicts --net/--ingest/--chaos/--oplat; pass one"
                        .into(),
                );
            }
        }
        Ok(Some(cfg))
    }
}

/// Builds one workload instance. `chunk` configures spawn batching where
/// the workload supports it; returns `None` when `chunk` is not applicable
/// (so the sweep produces no duplicate rows for scalar-spawning workloads).
fn make_workload(name: &str, smoke: bool, chunk: usize) -> Option<Box<dyn DynWorkload>> {
    match name {
        "sssp" => Some(Box::new(if smoke {
            SsspWorkload::random(120, 0.1, 1000).spawn_chunk(chunk)
        } else {
            SsspWorkload::random(800, 0.08, 1000).spawn_chunk(chunk)
        })),
        "mo_sssp" => Some(Box::new(if smoke {
            MoSsspWorkload::random(30, 0.15, 99).spawn_chunk(chunk)
        } else {
            MoSsspWorkload::random(60, 0.12, 99).spawn_chunk(chunk)
        })),
        // BFS, Cholesky and knapsack have no spawn-chunk knob (BFS batches
        // one expansion per spawn_batch; the other two spawn scalar
        // tasks); the chunk axis does not apply.
        // Multi-source frontier: the wide seed stream gives the --ingest
        // axis real sharding work (hundreds of seeds, not one root).
        "bfs" if chunk == 0 => Some(Box::new(if smoke {
            BfsWorkload::random_multi(150, 0.06, 2000, 16)
        } else {
            BfsWorkload::random_multi(1_200, 0.01, 2000, 128)
        })),
        "cholesky" if chunk == 0 => Some(Box::new(if smoke {
            CholeskyWorkload::random(3, 8, 0xFEED_FACE)
        } else {
            CholeskyWorkload::random(6, 16, 0xFEED_FACE)
        })),
        "knapsack" if chunk == 0 => Some(Box::new(if smoke {
            KnapsackWorkload::random(18, 1_500, 0x1234_5678_9ABC_DEF0)
        } else {
            KnapsackWorkload::random(30, 3_000, 0x1234_5678_9ABC_DEF0)
        })),
        // MST spawns scalar component-advance tasks; its wide per-vertex
        // seed stream is the ingestion sweep's best case after BFS.
        "mst" if chunk == 0 => Some(Box::new(if smoke {
            MstWorkload::random(140, 0.06, 23)
        } else {
            MstWorkload::random(900, 0.01, 23)
        })),
        _ => None,
    }
}

/// One aggregated sweep cell in the `BENCH_batch.json` record format
/// (the shape itself is defined once, in `priosched_workloads`). Streamed
/// cells extend the id with an `_iPRODUCERSxCHUNK` tag, bounded-lane
/// cells with `_lcCAP`, and mutex-backend (combining-off) cells with
/// `_nocomb`.
fn json_record(
    reports: &[WorkloadReport],
    chunk: usize,
    ingest: Option<IngestCell>,
    lane_cap: Option<usize>,
    combining: bool,
) -> String {
    let mut suffix = if chunk > 0 {
        format!("_c{chunk}")
    } else {
        String::new()
    };
    if let Some(cell) = ingest {
        suffix.push_str(&format!("_i{}x{}", cell.producers, cell.chunk));
    }
    if let Some(cap) = lane_cap {
        suffix.push_str(&format!("_lc{cap}"));
    }
    if !combining {
        suffix.push_str("_nocomb");
    }
    bench_record(reports, &suffix)
}

/// Per-op latency cell: `places` threads, each timing `ops` push/pop
/// cycles (push, then every other iteration a pop, then a drain) into a
/// thread-local histogram; merged at the end. Pseudo-random priorities
/// keep the heap honest. Also merges the per-place operation counters —
/// when `params` switched the MultiQueue's rank-error shadow on, they
/// carry the relaxation accounting the `--rank-error` sweep reports.
fn oplat_cell(
    kind: PoolKind,
    places: usize,
    params: PoolParams,
    ops: u64,
) -> (
    priosched_bench::latency::LatencyHist,
    priosched_core::stats::PlaceStats,
) {
    use priosched_bench::latency::LatencyHist;
    use priosched_core::stats::PlaceStats;
    use priosched_core::{PoolHandle, TaskPool};
    use std::time::Instant;
    let pool = std::sync::Arc::new(kind.build(places, params));
    let merged = std::sync::Mutex::new((LatencyHist::new(), PlaceStats::default()));
    std::thread::scope(|s| {
        for t in 0..places {
            let pool = std::sync::Arc::clone(&pool);
            let merged = &merged;
            s.spawn(move || {
                let mut h = pool.handle(t);
                let mut hist = LatencyHist::new();
                for i in 0..ops {
                    let prio = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
                    let t0 = Instant::now();
                    h.push(prio, 64, i);
                    hist.record_duration(t0.elapsed());
                    if i % 2 == 1 {
                        let t0 = Instant::now();
                        let got = h.pop();
                        hist.record_duration(t0.elapsed());
                        std::hint::black_box(got);
                    }
                }
                loop {
                    let t0 = Instant::now();
                    let got = h.pop();
                    if got.is_none() {
                        break;
                    }
                    hist.record_duration(t0.elapsed());
                }
                let stats = h.stats();
                let mut m = merged.lock().unwrap();
                m.0.merge(&hist);
                m.1.merge(&stats);
            });
        }
    });
    merged.into_inner().unwrap()
}

/// Runs the `--oplat` sweep: kind × places × k × combining, each cell a
/// raw-pool push/pop latency measurement. Emits `schedbench_oplat`
/// records carrying p50/p99/p999 — the `BENCH_combine.json` generator.
fn run_oplat_sweep(args: &Args, ops: u64) -> Vec<String> {
    let mut records = Vec::new();
    println!(
        "{:<14} {:>2} {:>6} {:>6} | {:>9} {:>9} {:>9} {:>9} {:>10}",
        "structure", "P", "k", "queue", "mean", "p50", "p99", "p999", "ops"
    );
    for &kind in &args.kinds {
        for &places in &args.places {
            for &k in &args.ks {
                for &comb in &args.combining {
                    // The toggle only changes the structural pool; a
                    // combining-off cell for any other kind would just
                    // duplicate its combining-on row.
                    if !comb && kind != PoolKind::Structural {
                        continue;
                    }
                    let params = PoolParams::with_k(k).with_combining(comb);
                    let (hist, _) = oplat_cell(kind, places, params, ops);
                    let queue = if kind != PoolKind::Structural {
                        "-"
                    } else if comb {
                        "comb"
                    } else {
                        "mutex"
                    };
                    println!(
                        "{:<14} {:>2} {:>6} {:>6} | {:>7.1}ns {:>7}ns {:>7}ns {:>7}ns {:>10}",
                        kind.label(),
                        places,
                        k,
                        queue,
                        hist.mean_ns(),
                        hist.p50(),
                        hist.p99(),
                        hist.p999(),
                        hist.count(),
                    );
                    let suffix = if kind != PoolKind::Structural {
                        ""
                    } else if comb {
                        "_comb"
                    } else {
                        "_nocomb"
                    };
                    records.push(format!(
                        "{{\"group\": \"schedbench_oplat\", \"id\": \"{}/p{}_k{}{}\", \
                         \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \
                         \"elements\": {}, \"p50_ns\": {:.1}, \"p99_ns\": {:.1}, \
                         \"p999_ns\": {:.1}}}",
                        kind.id(),
                        places,
                        k,
                        suffix,
                        hist.mean_ns(),
                        hist.min_ns() as f64,
                        hist.max_ns() as f64,
                        hist.count(),
                        hist.p50() as f64,
                        hist.p99() as f64,
                        hist.p999() as f64,
                    ));
                }
            }
        }
    }
    records
}

/// MultiQueue relaxation axes swept by `--rank-error`: queues-per-place
/// factor c and pop stickiness. Exact structures get one cell each (they
/// have no relaxation knobs and serve as the latency baselines).
const MQ_CS: [usize; 3] = [1, 2, 4];
const MQ_STICKINESS: [usize; 2] = [0, 8];

/// Runs the `--rank-error` sweep: the oplat push/pop cycle per kind ×
/// places × k, with MultiQueue cells fanned out over c × stickiness and
/// run **twice** — an uninstrumented pass for honest latency numbers,
/// then an instrumented pass whose shadow-heap accounting prices every
/// pop's rank error. Emits `schedbench_rankerr` records; MultiQueue rows
/// carry `rank_err_mean`/`rank_err_p99`/`rank_err_max`/`rank_err_pops`.
///
/// Self-check: a c = 1 single-place MultiQueue is one sequential queue,
/// so the instrument must measure exactly zero there — any other reading
/// aborts the sweep (a measurement layer that fails its null experiment
/// cannot be trusted on the real one).
fn run_rankerr_sweep(args: &Args, ops: u64) -> Vec<String> {
    let mut records = Vec::new();
    println!(
        "{:<14} {:>2} {:>6} {:>3} {:>5} | {:>9} {:>9} {:>9} {:>9} | {:>9} {:>8} {:>8}",
        "structure",
        "P",
        "k",
        "c",
        "stick",
        "mean",
        "p50",
        "p99",
        "p999",
        "rank-mean",
        "rank-p99",
        "rank-max"
    );
    for &kind in &args.kinds {
        for &places in &args.places {
            for &k in &args.ks {
                // Exact structures: one latency-baseline cell, no knobs.
                let cells: Vec<Option<(usize, usize)>> = if kind == PoolKind::MultiQueue {
                    MQ_CS
                        .iter()
                        .flat_map(|&c| MQ_STICKINESS.iter().map(move |&s| Some((c, s))))
                        .collect()
                } else {
                    vec![None]
                };
                for cell in cells {
                    let params = match cell {
                        None => PoolParams::with_k(k),
                        Some((c, stick)) => {
                            PoolParams::with_k(k).with_mq_c(c).with_mq_stickiness(stick)
                        }
                    };
                    // Timed pass runs uninstrumented: the shadow heap's
                    // global mutex would poison the latency numbers.
                    let (hist, _) = oplat_cell(kind, places, params, ops);
                    let rank = cell.map(|_| {
                        let (_, stats) =
                            oplat_cell(kind, places, params.with_rank_error(true), ops);
                        stats
                    });
                    if let (Some((1, _)), Some(stats)) = (cell, rank.as_ref()) {
                        if places == 1 {
                            assert_eq!(
                                (stats.rank_sum, stats.rank_max),
                                (0, 0),
                                "self-check failed: c=1 single-place MultiQueue is exact \
                                 but the instrument measured nonzero rank error"
                            );
                        }
                    }
                    let (id_suffix, c_col, s_col) = match cell {
                        None => (String::new(), "-".to_string(), "-".to_string()),
                        Some((c, s)) => (format!("_c{c}_s{s}"), c.to_string(), s.to_string()),
                    };
                    println!(
                        "{:<14} {:>2} {:>6} {:>3} {:>5} | {:>7.1}ns {:>7}ns {:>7}ns {:>7}ns | {:>9} {:>8} {:>8}",
                        kind.label(),
                        places,
                        k,
                        c_col,
                        s_col,
                        hist.mean_ns(),
                        hist.p50(),
                        hist.p99(),
                        hist.p999(),
                        rank.as_ref()
                            .map_or("-".to_string(), |s| format!("{:.2}", s.rank_mean())),
                        rank.as_ref()
                            .map_or("-".to_string(), |s| s.rank_p99().to_string()),
                        rank.as_ref()
                            .map_or("-".to_string(), |s| s.rank_max.to_string()),
                    );
                    let rank_fields = rank.as_ref().map_or(String::new(), |s| {
                        format!(
                            ", \"rank_err_mean\": {:.3}, \"rank_err_p99\": {}, \
                             \"rank_err_max\": {}, \"rank_err_pops\": {}",
                            s.rank_mean(),
                            s.rank_p99(),
                            s.rank_max,
                            s.rank_pops,
                        )
                    });
                    records.push(format!(
                        "{{\"group\": \"schedbench_rankerr\", \"id\": \"{}/p{}_k{}{}\", \
                         \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \
                         \"elements\": {}, \"p50_ns\": {:.1}, \"p99_ns\": {:.1}, \
                         \"p999_ns\": {:.1}{}}}",
                        kind.id(),
                        places,
                        k,
                        id_suffix,
                        hist.mean_ns(),
                        hist.min_ns() as f64,
                        hist.max_ns() as f64,
                        hist.count(),
                        hist.p50() as f64,
                        hist.p99() as f64,
                        hist.p999() as f64,
                        rank_fields,
                    ));
                }
            }
        }
    }
    records
}

/// Runs the `--net` sweep: a fresh in-process `priosched-serve` server
/// per cell, driven over loopback TCP by the load client, verified
/// against the countdown oracle. Returns `(records, failures)`.
fn run_net_sweep(args: &Args) -> (Vec<String>, usize) {
    use priosched_net::{run_load, LoadSpec, Server, ServerConfig};
    let mut records = Vec::new();
    let mut failures = 0usize;
    println!(
        "{:<14} {:>2} {:>6} {:>7} {:>5} | {:>11} {:>9}  oracle",
        "structure", "P", "k", "net", "lcap", "mean", "tasks"
    );
    for &kind in &args.kinds {
        for &places in &args.places {
            for &k in &args.ks {
                for &cap in &args.lane_caps {
                    for &cell in &args.net {
                        let spec = LoadSpec {
                            conns: cell.producers,
                            per_conn: cell.chunk,
                            k,
                            batch: 8,
                        };
                        let mut ns: Vec<f64> = Vec::new();
                        let mut elements = 0u64;
                        let mut bad = None;
                        for _ in 0..args.reps {
                            let server = Server::bind(
                                "127.0.0.1:0",
                                ServerConfig {
                                    kind,
                                    places,
                                    k,
                                    lane_capacity: cap,
                                    ..ServerConfig::default()
                                },
                            )
                            .expect("bind loopback server");
                            match run_load(server.local_addr(), &spec) {
                                Ok(report) => {
                                    ns.push(report.elapsed.as_nanos() as f64);
                                    elements = report.expected_executions;
                                    if !report.verified() {
                                        bad = Some(format!(
                                            "executed {} != oracle {}",
                                            report.executed, report.expected_executions
                                        ));
                                    }
                                }
                                Err(e) => bad = Some(format!("load client failed: {e}")),
                            }
                            server.shutdown();
                        }
                        // All-failed cells have no timings; 0s keep the
                        // emitted record valid JSON (never inf/-inf) —
                        // the failure itself is reported via exit 1.
                        let (mean, min, max) = if ns.is_empty() {
                            (0.0, 0.0, 0.0)
                        } else {
                            (
                                ns.iter().sum::<f64>() / ns.len() as f64,
                                ns.iter().copied().fold(f64::INFINITY, f64::min),
                                ns.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                            )
                        };
                        println!(
                            "{:<14} {:>2} {:>6} {:>7} {:>5} | {:>9.3}ms {:>9}  {}",
                            kind.label(),
                            places,
                            k,
                            format!("{}x{}", cell.producers, cell.chunk),
                            cap.map_or("-".to_string(), |c| c.to_string()),
                            mean / 1e6,
                            elements,
                            match &bad {
                                None => "ok".to_string(),
                                Some(msg) => format!("MISMATCH: {msg}"),
                            }
                        );
                        if bad.is_some() {
                            failures += 1;
                        }
                        records.push(format!(
                            "{{\"group\": \"schedbench_net\", \"id\": \"{}/p{}_k{}_n{}x{}_lc{}\", \
                             \"mean_ns\": {mean:.1}, \"min_ns\": {min:.1}, \"max_ns\": {max:.1}, \
                             \"elements\": {elements}}}",
                            kind.id(),
                            places,
                            k,
                            cell.producers,
                            cell.chunk,
                            cap.unwrap_or(0),
                        ));
                    }
                }
            }
        }
    }
    (records, failures)
}

/// Runs the `--chaos` sweep: every kind × places cell through the
/// deterministic chaos harness, twice each (the harness asserts the
/// same-seed repeat reproduces identical failure counters). Returns the
/// `schedbench_chaos` records, counters embedded.
fn run_chaos_sweep(args: &Args, seed: u64) -> Vec<String> {
    use priosched_bench::chaos::chaos_sweep;
    // The harness injects panics on purpose; keep the default hook from
    // spamming a backtrace per bomb while leaving every other panic
    // (i.e. a real invariant violation) loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.as_str())
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.starts_with("chaos bomb") {
            default_hook(info);
        }
    }));
    println!(
        "{:<14} {:>2} | {:>6} {:>7} {:>5} {:>6} {:>5} {:>4} {:>5} {:>4} {:>6} {:>8}",
        "structure",
        "P",
        "chains",
        "done",
        "quar",
        "aborts",
        "pkill",
        "garb",
        "flood",
        "stall",
        "sock✝",
        "net done"
    );
    let reports = chaos_sweep(seed, &args.kinds, &args.places, args.smoke);
    let _ = std::panic::take_hook();
    let mut records = Vec::new();
    for r in &reports {
        let c = &r.counters;
        println!(
            "{:<14} {:>2} | {:>6} {:>7} {:>5} {:>6} {:>5} {:>4} {:>5} {:>4} {:>6} {:>8}",
            r.kind.label(),
            r.places,
            c.submitted,
            c.completed,
            c.quarantined,
            c.aborted_runs,
            c.producer_aborts,
            c.garbage_rejected,
            c.oversized_closed,
            c.deadline_reaped,
            c.killed_sockets,
            c.net_executed,
        );
        let e = r.elapsed.as_nanos() as f64;
        records.push(format!(
            "{{\"group\": \"schedbench_chaos\", \"id\": \"{}/p{}_seed{seed}\", \
             \"mean_ns\": {e:.1}, \"min_ns\": {e:.1}, \"max_ns\": {e:.1}, \
             \"elements\": {}, \"counters\": {{\
             \"submitted\": {}, \"completed\": {}, \"quarantined\": {}, \
             \"aborted_runs\": {}, \"producer_aborts\": {}, \"unsent\": {}, \
             \"garbage_rejected\": {}, \"oversized_closed\": {}, \
             \"deadline_reaped\": {}, \"killed_sockets\": {}, \
             \"net_accepted\": {}, \"net_executed\": {}}}}}",
            r.kind.id(),
            r.places,
            c.completed,
            c.submitted,
            c.completed,
            c.quarantined,
            c.aborted_runs,
            c.producer_aborts,
            c.unsent,
            c.garbage_rejected,
            c.oversized_closed,
            c.deadline_reaped,
            c.killed_sockets,
            c.net_accepted,
            c.net_executed,
        ));
    }
    records
}

/// Writes the collected records as a JSON array to `--out`, if given.
fn write_records(out: Option<&std::path::Path>, records: &[String]) {
    if let Some(path) = out {
        let mut f = std::fs::File::create(path).expect("create --out file");
        writeln!(f, "[").unwrap();
        for (i, rec) in records.iter().enumerate() {
            let comma = if i + 1 < records.len() { "," } else { "" };
            writeln!(f, "  {rec}{comma}").unwrap();
        }
        writeln!(f, "]").unwrap();
        println!("\nJSON: {} ({} records)", path.display(), records.len());
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(e) => {
            eprintln!("schedbench: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    if let Some(seed) = args.chaos {
        println!(
            "schedbench --chaos: seed {seed}, {} kind(s) × places {:?}, every cell twice \
             (same-seed repeat must match)",
            args.kinds.len(),
            args.places,
        );
        println!("host: {cores} hardware thread(s)\n");
        let records = run_chaos_sweep(&args, seed);
        write_records(args.out.as_deref(), &records);
        println!(
            "\nall {} chaos cells held their invariants (seed {seed}, deterministic repeat verified)",
            records.len()
        );
        return;
    }
    if !args.net.is_empty() {
        println!(
            "schedbench --net: {} kind(s) × places {:?} × k {:?} × lane-cap {:?} × cells {:?}, {} rep(s)",
            args.kinds.len(),
            args.places,
            args.ks,
            args.lane_caps
                .iter()
                .map(|c| c.map_or("∞".to_string(), |c| c.to_string()))
                .collect::<Vec<_>>(),
            args.net
                .iter()
                .map(|c| format!("{}x{}", c.producers, c.chunk))
                .collect::<Vec<_>>(),
            args.reps
        );
        println!("host: {cores} hardware thread(s)\n");
        let (records, failures) = run_net_sweep(&args);
        write_records(args.out.as_deref(), &records);
        if failures > 0 {
            eprintln!("\n{failures} net sweep cell(s) FAILED oracle verification");
            std::process::exit(1);
        }
        println!(
            "\nall {} net sweep cells verified against the countdown oracle",
            records.len()
        );
        return;
    }
    if let Some(ops) = args.rank_error {
        println!(
            "schedbench --rank-error: {} kind(s) × places {:?} × k {:?}; MultiQueue cells \
             sweep c {:?} × stickiness {:?}, each timed uninstrumented then re-run with \
             the shadow instrument; {ops} push/pop cycles per thread",
            args.kinds.len(),
            args.places,
            args.ks,
            MQ_CS,
            MQ_STICKINESS,
        );
        println!("host: {cores} hardware thread(s)\n");
        let records = run_rankerr_sweep(&args, ops);
        write_records(args.out.as_deref(), &records);
        let instrumented = records
            .iter()
            .filter(|r| r.contains("rank_err_mean"))
            .count();
        let null_ran = args.kinds.contains(&PoolKind::MultiQueue) && args.places.contains(&1);
        println!(
            "\n{} rank-error cells measured ({instrumented} with the shadow instrument{})",
            records.len(),
            if null_ran {
                "; c=1 single-place null experiment held"
            } else {
                ""
            }
        );
        return;
    }
    if let Some(ops) = args.oplat {
        println!(
            "schedbench --oplat: {} kind(s) × places {:?} × k {:?} × combining {:?}, \
             {ops} push/pop cycles per thread",
            args.kinds.len(),
            args.places,
            args.ks,
            args.combining
                .iter()
                .map(|&c| if c { "on" } else { "off" })
                .collect::<Vec<_>>(),
        );
        println!("host: {cores} hardware thread(s)\n");
        let records = run_oplat_sweep(&args, ops);
        write_records(args.out.as_deref(), &records);
        println!("\n{} per-op latency cells measured", records.len());
        return;
    }
    println!(
        "schedbench: {} workload(s) × {} kind(s) × places {:?} × k {:?} × chunks {:?}{}, {} rep(s)",
        args.workloads.len(),
        args.kinds.len(),
        args.places,
        args.ks,
        args.chunks,
        if args.ingest.is_empty() {
            " (preseeded)".to_string()
        } else {
            format!(
                " × ingest {:?} × lane-cap {:?}",
                args.ingest
                    .iter()
                    .map(|c| format!("{}x{}", c.producers, c.chunk))
                    .collect::<Vec<_>>(),
                args.lane_caps
                    .iter()
                    .map(|c| c.map_or("∞".to_string(), |c| c.to_string()))
                    .collect::<Vec<_>>()
            )
        },
        args.reps
    );
    println!(
        "host: {cores} hardware thread(s){}\n",
        if args.smoke { "; smoke sizes" } else { "" }
    );
    println!(
        "{:<10} {:<14} {:>2} {:>6} {:>6} {:>7} {:>5} | {:>11} {:>9} {:>7}  oracle",
        "workload", "structure", "P", "k", "chunk", "ingest", "lcap", "mean", "tasks", "dead"
    );

    let mut records = Vec::new();
    let mut failures = 0usize;
    for name in &args.workloads {
        let mut cells_for_workload = 0usize;
        for &chunk in &args.chunks {
            let Some(workload) = make_workload(name, args.smoke, chunk) else {
                // Scalar-spawning workloads have no chunk axis; skipping a
                // nonzero chunk is only fine if some other cell runs them.
                continue;
            };
            cells_for_workload += 1;
            // Preseeded baseline when --ingest is absent; otherwise every
            // producers×chunk×lane-cap cell is its own streamed sweep cell.
            let modes: Vec<(Option<IngestCell>, Option<usize>)> = if args.ingest.is_empty() {
                vec![(None, None)]
            } else {
                args.ingest
                    .iter()
                    .flat_map(|&cell| args.lane_caps.iter().map(move |&cap| (Some(cell), cap)))
                    .collect()
            };
            for &kind in &args.kinds {
                for &places in &args.places {
                    for &k in &args.ks {
                        for &(mode, lane_cap) in &modes {
                            for &comb in &args.combining {
                                // The combining toggle only changes the
                                // structural pool; off-cells elsewhere
                                // would duplicate the on-row.
                                if !comb && kind != PoolKind::Structural {
                                    continue;
                                }
                                let params = PoolParams::with_k(k)
                                    .with_lane_capacity(lane_cap)
                                    .with_combining(comb);
                                let reports: Vec<WorkloadReport> = (0..args.reps)
                                    .map(|_| match mode {
                                        None => workload.run(kind, places, params),
                                        Some(cell) => workload.run_streamed(
                                            kind,
                                            places,
                                            params,
                                            cell.producers,
                                            cell.chunk,
                                        ),
                                    })
                                    .collect();
                                let mean_ms = reports
                                    .iter()
                                    .map(|r| r.elapsed.as_secs_f64() * 1e3)
                                    .sum::<f64>()
                                    / reports.len() as f64;
                                let bad = reports.iter().find(|r| !r.verified());
                                println!(
                                    "{:<10} {:<14} {:>2} {:>6} {:>6} {:>7} {:>5} | {:>9.3}ms {:>9} {:>7}  {}",
                                    name,
                                    if comb {
                                        kind.label().to_string()
                                    } else {
                                        format!("{}+mtx", kind.label())
                                    },
                                    places,
                                    k,
                                    chunk,
                                    match mode {
                                        None => "-".to_string(),
                                        Some(cell) =>
                                            format!("{}x{}", cell.producers, cell.chunk),
                                    },
                                    lane_cap.map_or("-".to_string(), |c| c.to_string()),
                                    mean_ms,
                                    reports[0].executed,
                                    reports[0].dead,
                                    match bad {
                                        None => "ok".to_string(),
                                        Some(r) => format!(
                                            "MISMATCH: {}",
                                            r.verify.as_ref().unwrap_err()
                                        ),
                                    }
                                );
                                if bad.is_some() {
                                    failures += 1;
                                }
                                records.push(json_record(&reports, chunk, mode, lane_cap, comb));
                            }
                        }
                    }
                }
            }
        }
        assert!(
            cells_for_workload > 0,
            "workload {name:?} was requested but no chunk in {:?} applies to it \
             (scalar-spawning workloads only run at chunk 0)",
            args.chunks
        );
    }

    write_records(args.out.as_deref(), &records);

    if failures > 0 {
        eprintln!("\n{failures} sweep cell(s) FAILED oracle verification");
        std::process::exit(1);
    }
    println!(
        "\nall {} sweep cells verified against their oracles",
        records.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn ingest_cell_parses_and_rejects() {
        assert_eq!(
            "4x32".parse::<IngestCell>().unwrap(),
            IngestCell {
                producers: 4,
                chunk: 32
            }
        );
        assert_eq!(
            "2X8".parse::<IngestCell>().unwrap(),
            IngestCell {
                producers: 2,
                chunk: 8
            }
        );
        assert!("4y32".parse::<IngestCell>().is_err(), "missing separator");
        assert!("x32".parse::<IngestCell>().is_err(), "empty producers");
        assert!("4x".parse::<IngestCell>().is_err(), "empty chunk");
        assert!("0x8".parse::<IngestCell>().is_err(), "zero producers");
        assert!("-1x8".parse::<IngestCell>().is_err(), "negative producers");
    }

    #[test]
    fn malformed_flags_are_usage_errors_not_panics() {
        // The former panic paths: each must come back as Err.
        for bad in [
            vec!["--ingest", "4y3"],
            vec!["--ingest", "0x8"],
            vec!["--ingest"],
            vec!["--lane-cap", "abc", "--ingest", "2x8"],
            vec!["--lane-cap", "-4", "--ingest", "2x8"],
            vec!["--places", "two"],
            vec!["--reps", "0"],
            vec!["--reps", "many"],
            vec!["--workloads", "nope"],
            vec!["--kinds", "quantum"],
            vec!["--no-such-flag"],
        ] {
            let err = Args::parse(&argv(&bad)).expect_err(&format!("{bad:?} must be rejected"));
            assert!(!err.is_empty());
        }
    }

    #[test]
    fn lane_cap_requires_ingest() {
        let err = Args::parse(&argv(&["--lane-cap", "8"])).unwrap_err();
        assert!(err.contains("--ingest"), "{err}");
        // With --ingest it parses, 0 meaning unbounded.
        let args = Args::parse(&argv(&["--ingest", "2x8", "--lane-cap", "0,64"]))
            .unwrap()
            .unwrap();
        assert_eq!(args.lane_caps, vec![None, Some(64)]);
        assert_eq!(
            args.ingest,
            vec![IngestCell {
                producers: 2,
                chunk: 8
            }]
        );
    }

    #[test]
    fn net_axis_parses_and_guards() {
        let args = Args::parse(&argv(&["--net", "4x64"])).unwrap().unwrap();
        assert_eq!(
            args.net,
            vec![IngestCell {
                producers: 4,
                chunk: 64
            }]
        );
        assert_eq!(
            args.lane_caps,
            vec![Some(64)],
            "--net defaults to bounded lanes"
        );
        // Explicit lane caps win; 0 spells unbounded.
        let args = Args::parse(&argv(&["--net", "2x8", "--lane-cap", "0,16"]))
            .unwrap()
            .unwrap();
        assert_eq!(args.lane_caps, vec![None, Some(16)]);
        // --net and --ingest are separate sweeps.
        assert!(Args::parse(&argv(&["--net", "2x8", "--ingest", "2x8"])).is_err());
        // Malformed cells are usage errors.
        assert!(Args::parse(&argv(&["--net", "0x8"])).is_err());
        assert!(Args::parse(&argv(&["--net", "4y8"])).is_err());
    }

    #[test]
    fn chaos_axis_parses_and_guards() {
        let args = Args::parse(&argv(&["--chaos", "seed=7"])).unwrap().unwrap();
        assert_eq!(args.chaos, Some(7));
        // The bare-number spelling is accepted too.
        let args = Args::parse(&argv(&["--chaos", "42"])).unwrap().unwrap();
        assert_eq!(args.chaos, Some(42));
        // A chaos spec contradicting --net/--ingest is a usage error
        // (exit 2 in main), not a silently-merged sweep.
        let err = Args::parse(&argv(&["--chaos", "seed=7", "--net", "2x8"])).unwrap_err();
        assert!(err.contains("--chaos"), "{err}");
        let err = Args::parse(&argv(&["--chaos", "seed=7", "--ingest", "2x8"])).unwrap_err();
        assert!(err.contains("--chaos"), "{err}");
        // Malformed seeds are usage errors.
        assert!(Args::parse(&argv(&["--chaos", "seed=x"])).is_err());
        assert!(Args::parse(&argv(&["--chaos", "seven"])).is_err());
        assert!(Args::parse(&argv(&["--chaos"])).is_err());
    }

    #[test]
    fn combining_axis_parses_and_guards() {
        // Default: combiner on only.
        let args = Args::parse(&argv(&[])).unwrap().unwrap();
        assert_eq!(args.combining, vec![true]);
        // Both spellings of the A/B.
        let args = Args::parse(&argv(&["--combining", "on,off"]))
            .unwrap()
            .unwrap();
        assert_eq!(args.combining, vec![true, false]);
        let args = Args::parse(&argv(&["--combining", "false"]))
            .unwrap()
            .unwrap();
        assert_eq!(args.combining, vec![false]);
        // Junk values and empty lists are usage errors.
        assert!(Args::parse(&argv(&["--combining", "maybe"])).is_err());
        assert!(Args::parse(&argv(&["--combining", ""])).is_err());
        // combining-off without the structural kind is a usage error —
        // the toggle would affect nothing.
        let err =
            Args::parse(&argv(&["--combining", "off", "--kinds", "work_stealing"])).unwrap_err();
        assert!(err.contains("structural"), "{err}");
    }

    #[test]
    fn oplat_parses_and_guards() {
        let args = Args::parse(&argv(&["--oplat", "5000"])).unwrap().unwrap();
        assert_eq!(args.oplat, Some(5000));
        assert!(Args::parse(&argv(&["--oplat", "0"])).is_err(), "zero ops");
        assert!(Args::parse(&argv(&["--oplat", "lots"])).is_err());
        assert!(Args::parse(&argv(&["--oplat"])).is_err());
        // Its own sweep: contradicts the streamed/net/chaos modes.
        for conflict in [
            vec!["--oplat", "100", "--ingest", "2x8"],
            vec!["--oplat", "100", "--net", "2x8"],
            vec!["--oplat", "100", "--chaos", "seed=1"],
        ] {
            let err =
                Args::parse(&argv(&conflict)).expect_err(&format!("{conflict:?} must be rejected"));
            assert!(err.contains("--oplat"), "{err}");
        }
    }

    #[test]
    fn rank_error_parses_and_guards() {
        let args = Args::parse(&argv(&["--rank-error", "2000"]))
            .unwrap()
            .unwrap();
        assert_eq!(args.rank_error, Some(2000));
        assert!(
            Args::parse(&argv(&["--rank-error", "0"])).is_err(),
            "zero ops"
        );
        assert!(Args::parse(&argv(&["--rank-error", "lots"])).is_err());
        assert!(Args::parse(&argv(&["--rank-error"])).is_err());
        // Its own sweep: contradicts the streamed/net/chaos/oplat modes.
        for conflict in [
            vec!["--rank-error", "100", "--ingest", "2x8"],
            vec!["--rank-error", "100", "--net", "2x8"],
            vec!["--rank-error", "100", "--chaos", "seed=1"],
            vec!["--rank-error", "100", "--oplat", "100"],
        ] {
            let err =
                Args::parse(&argv(&conflict)).expect_err(&format!("{conflict:?} must be rejected"));
            assert!(err.contains("--rank-error"), "{err}");
        }
    }

    #[test]
    fn kinds_filter_accepts_the_multiqueue_spellings() {
        // The fifth kind reaches every sweep through the same --kinds
        // filter as the exact four — no schedbench special-casing.
        let args = Args::parse(&argv(&["--kinds", "multiqueue"]))
            .unwrap()
            .unwrap();
        assert_eq!(args.kinds, vec![PoolKind::MultiQueue]);
        let args = Args::parse(&argv(&["--kinds", "mq,work_stealing"]))
            .unwrap()
            .unwrap();
        assert_eq!(
            args.kinds,
            vec![PoolKind::MultiQueue, PoolKind::WorkStealing]
        );
        // The default sweep covers all five kinds.
        let args = Args::parse(&argv(&[])).unwrap().unwrap();
        assert_eq!(args.kinds.len(), 5);
        assert!(args.kinds.contains(&PoolKind::MultiQueue));
    }

    #[test]
    fn mst_is_a_known_workload() {
        let args = Args::parse(&argv(&["--workloads", "mst"]))
            .unwrap()
            .unwrap();
        assert_eq!(args.workloads, vec!["mst".to_string()]);
        assert!(make_workload("mst", true, 0).is_some());
        assert!(
            make_workload("mst", true, 8).is_none(),
            "mst has no spawn-chunk axis"
        );
    }

    #[test]
    fn smoke_defaults_yield_to_explicit_flags() {
        let args = Args::parse(&argv(&["--places", "4", "--smoke"]))
            .unwrap()
            .unwrap();
        assert!(args.smoke);
        assert_eq!(args.places, vec![4], "explicit --places beats --smoke");
        assert_eq!(args.ks, vec![64]);
        assert_eq!(args.reps, 1);
    }

    #[test]
    fn help_short_circuits() {
        assert!(Args::parse(&argv(&["--help"])).unwrap().is_none());
        assert!(Args::parse(&argv(&["-h"])).unwrap().is_none());
    }
}
