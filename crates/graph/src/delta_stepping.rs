//! Δ-stepping (Meyer & Sanders), the classic parallelizable SSSP baseline.
//!
//! The paper's analysis of useless work (§5.2) follows the tradition of
//! average-case bounds for ∆-stepping and related label-correcting
//! algorithms ([14, 15] in the paper). This sequential implementation of
//! the bucket-based algorithm serves as an additional oracle and as a
//! reference point for the amount of re-relaxation a bucket-relaxed
//! ordering produces — conceptually the bucket width Δ plays the same
//! ordering-slack role as the paper's ρ.
//!
//! Algorithm recap: tentative distances are kept in buckets of width Δ
//! (`bucket i` holds nodes with `dist ∈ [iΔ, (i+1)Δ)`). Buckets are
//! processed in order; within a bucket, *light* edges (weight ≤ Δ) are
//! relaxed repeatedly until the bucket stops changing, then *heavy* edges
//! are relaxed once. With Δ → min-weight this is Dijkstra; with Δ → ∞ it is
//! Bellman–Ford.

use crate::csr::CsrGraph;
use crate::INFINITY;

/// Outcome of a Δ-stepping run.
#[derive(Clone, Debug)]
pub struct DeltaSteppingResult {
    /// Final distances (identical to Dijkstra's).
    pub dist: Vec<f64>,
    /// Total node relaxations, counting re-relaxations within buckets:
    /// the algorithm's "useless work" analog.
    pub relaxations: usize,
    /// Number of buckets processed.
    pub buckets_processed: usize,
}

/// Single-source shortest paths by Δ-stepping with bucket width `delta`.
///
/// # Panics
/// Panics if `source` is out of range or `delta` is not positive.
pub fn delta_stepping(graph: &CsrGraph, source: u32, delta: f64) -> DeltaSteppingResult {
    let n = graph.num_nodes();
    assert!((source as usize) < n, "source out of range");
    assert!(delta > 0.0, "delta must be positive");

    let mut dist = vec![INFINITY; n];
    // bucket index per node; usize::MAX = none.
    let mut node_bucket = vec![usize::MAX; n];
    let mut buckets: Vec<Vec<u32>> = Vec::new();
    let mut relaxations = 0usize;
    let mut buckets_processed = 0usize;

    let bucket_of = |d: f64| (d / delta) as usize;

    let insert = |dist: &mut Vec<f64>,
                  node_bucket: &mut Vec<usize>,
                  buckets: &mut Vec<Vec<u32>>,
                  v: u32,
                  nd: f64| {
        dist[v as usize] = nd;
        let b = bucket_of(nd);
        if buckets.len() <= b {
            buckets.resize_with(b + 1, Vec::new);
        }
        // Lazy deletion: stale entries are skipped when popped.
        node_bucket[v as usize] = b;
        buckets[b].push(v);
    };

    insert(&mut dist, &mut node_bucket, &mut buckets, source, 0.0);

    let mut i = 0usize;
    while i < buckets.len() {
        // Phase 1: drain bucket i over light edges until it stays empty.
        let mut settled_here: Vec<u32> = Vec::new();
        loop {
            let batch = std::mem::take(&mut buckets[i]);
            if batch.is_empty() {
                break;
            }
            for v in batch {
                // Skip entries superseded by a smaller distance (moved to an
                // earlier bucket) or already handled in this bucket.
                if node_bucket[v as usize] != i {
                    continue;
                }
                node_bucket[v as usize] = usize::MAX;
                settled_here.push(v);
                relaxations += 1;
                let dv = dist[v as usize];
                for e in graph.neighbors(v) {
                    if e.weight as f64 <= delta {
                        let nd = dv + e.weight as f64;
                        if nd < dist[e.target as usize] {
                            insert(&mut dist, &mut node_bucket, &mut buckets, e.target, nd);
                        }
                    }
                }
            }
        }
        // Phase 2: heavy edges of everything settled from this bucket, once.
        for &v in &settled_here {
            let dv = dist[v as usize];
            for e in graph.neighbors(v) {
                if e.weight as f64 > delta {
                    let nd = dv + e.weight as f64;
                    if nd < dist[e.target as usize] {
                        insert(&mut dist, &mut node_bucket, &mut buckets, e.target, nd);
                    }
                }
            }
        }
        if !settled_here.is_empty() {
            buckets_processed += 1;
        }
        i += 1;
    }

    DeltaSteppingResult {
        dist,
        relaxations,
        buckets_processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use crate::gen::{erdos_renyi, ErdosRenyiConfig};

    #[test]
    fn line_graph_distances() {
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]);
        let r = delta_stepping(&g, 0, 1.5);
        assert_eq!(r.dist, vec![0.0, 1.0, 3.0, 6.0]);
    }

    #[test]
    fn matches_dijkstra_over_deltas() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 200,
            p: 0.06,
            seed: 71,
        });
        let expect = dijkstra(&g, 0).dist;
        for delta in [0.05, 0.2, 1.0, 10.0] {
            let r = delta_stepping(&g, 0, delta);
            assert_eq!(r.dist, expect, "delta = {delta}");
        }
    }

    #[test]
    fn tiny_delta_behaves_like_dijkstra() {
        // With delta below the minimum edge weight every bucket settles one
        // frontier shell; no node is relaxed more than ~once.
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 150,
            p: 0.08,
            seed: 72,
        });
        let exact = dijkstra(&g, 0);
        let r = delta_stepping(&g, 0, 1e-4);
        assert_eq!(r.dist, exact.dist);
        let reachable = exact.dist.iter().filter(|d| d.is_finite()).count();
        assert_eq!(r.relaxations, reachable);
    }

    #[test]
    fn large_delta_costs_more_relaxations() {
        // With one giant bucket (Bellman–Ford-like), intra-bucket
        // re-relaxation appears: relaxations >= the tiny-delta count.
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 200,
            p: 0.05,
            seed: 73,
        });
        let tight = delta_stepping(&g, 0, 1e-4).relaxations;
        let loose = delta_stepping(&g, 0, 1e9).relaxations;
        assert!(loose >= tight, "loose {loose} < tight {tight}");
        assert_eq!(
            delta_stepping(&g, 0, 1e9).dist,
            delta_stepping(&g, 0, 1e-4).dist
        );
    }

    #[test]
    fn disconnected_nodes_stay_infinite() {
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1, 0.3)]);
        let r = delta_stepping(&g, 0, 0.5);
        assert_eq!(r.dist[1], 0.3f32 as f64);
        assert!(r.dist[2].is_infinite());
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn zero_delta_rejected() {
        let g = CsrGraph::from_undirected_edges(2, &[(0, 1, 1.0)]);
        delta_stepping(&g, 0, 0.0);
    }
}
