//! Runner for the loom interleaving models (see `src/models.rs` and the
//! crate-level "Model-checked properties" section).
//!
//! Compiled only under `--cfg loom`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p priosched-core --test loom_models --release
//! ```
//!
//! The two mutation self-checks run under an *additional* cfg that plants
//! a deliberate bug in the library and assert the checker finds it:
//!
//! ```text
//! RUSTFLAGS="--cfg loom --cfg loom_mutate_park_fence"   cargo test -p priosched-core --test loom_models --release
//! RUSTFLAGS="--cfg loom --cfg loom_mutate_combine_done" cargo test -p priosched-core --test loom_models --release
//! ```
//!
//! The regular models are gated off in the mutated builds — the planted
//! bug makes them (correctly) fail, which is exactly what the self-check
//! asserts via `catch_unwind`.
#![cfg(loom)]

use priosched_core::models;

#[cfg(not(any(loom_mutate_park_fence, loom_mutate_combine_done)))]
mod checked {
    use super::models;

    #[test]
    fn parker_no_lost_wakeup() {
        models::parker_no_lost_wakeup();
    }

    #[test]
    fn combiner_exactly_once_handoff() {
        models::combiner_exactly_once_handoff();
    }

    #[test]
    fn free_list_no_aba_double_pop() {
        models::free_list_no_aba_double_pop();
    }

    #[test]
    fn multiqueue_scan_finds_present_item() {
        models::multiqueue_scan_finds_present_item();
    }

    #[test]
    fn ingress_counters_never_hide_a_task() {
        models::ingress_counters_never_hide_a_task();
    }

    #[test]
    fn structural_pop_vs_raid_exactly_once() {
        models::structural_pop_vs_raid_exactly_once();
    }
}

/// Self-check: with the `wake_if_waiting` fence removed, the parker model
/// must *fail* (the explorer finds the lost-wakeup deadlock). A green run
/// here would mean the checker is blind.
#[cfg(loom_mutate_park_fence)]
#[test]
fn mutation_park_fence_is_caught() {
    let result = std::panic::catch_unwind(models::parker_no_lost_wakeup);
    assert!(
        result.is_err(),
        "checker failed to find the planted lost-wakeup (missing fence)"
    );
}

/// Self-check: with the combiner's DONE store moved before the response
/// write, the handoff model must *fail* (a woken waiter reads an empty
/// response cell in some schedule).
#[cfg(loom_mutate_combine_done)]
#[test]
fn mutation_combine_done_is_caught() {
    let result = std::panic::catch_unwind(models::combiner_exactly_once_handoff);
    assert!(
        result.is_err(),
        "checker failed to find the planted DONE-before-response reorder"
    );
}
