//! Figure 5 headline points under criterion: SSSP wall time vs k for the
//! two k-priority structures (scaled graph; the full sweep lives in the
//! `fig5_k_sweep` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priosched_core::PoolKind;
use priosched_graph::{erdos_renyi, ErdosRenyiConfig};
use priosched_sssp::{run_sssp_kind, SsspConfig};
use std::time::Duration;

fn bench_fig5(c: &mut Criterion) {
    let graph = erdos_renyi(&ErdosRenyiConfig {
        n: 600,
        p: 0.3,
        seed: 1000,
    });
    let mut g = c.benchmark_group("fig5_sssp_vs_k");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));

    for kind in [PoolKind::Centralized, PoolKind::Hybrid] {
        for k in [1usize, 32, 512, 8192] {
            g.bench_with_input(BenchmarkId::new(kind.label(), k), &k, |b, &k| {
                let cfg = SsspConfig::new(4, k).kmax(512);
                b.iter(|| criterion::black_box(run_sssp_kind(kind, &graph, 0, &cfg)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
