//! The task-scheduling runtime (§2).
//!
//! * **Places**: `P` worker threads, each owning the place-local component
//!   of the chosen [`TaskPool`] through its [`PoolHandle`].
//! * **Help-first spawning** (§2, citing Guo et al.): `spawn` *stores* the
//!   new task for later execution by any thread and the current task
//!   continues — the policy priority scheduling requires, since work-first's
//!   fixed depth-first order cannot follow priorities.
//! * **Termination**: "the scheduling system terminates when all tasks have
//!   finished executing and no new tasks were created" — realized with a
//!   global outstanding-task counter (incremented before push, decremented
//!   after execution); workers whose pops fail spin with backoff until the
//!   counter reaches zero. Streamed runs ([`Scheduler::run_stream`])
//!   generalize this to *quiescence*: counter zero **and** empty ingress
//!   lanes **and** zero live producers — see [`crate::ingest`]. Streamed
//!   workers whose backoff is exhausted **park** (see [`crate::park`])
//!   instead of sleeping in a poll loop; submissions, spawns, drains,
//!   abort, and the quiescence transitions wake them.
//! * **Dead-task elimination** (§5.1): tasks report deadness through
//!   [`TaskExecutor::is_dead`]; dead tasks are dropped at pop time without
//!   being executed, mirroring the lazy removal in the paper's structures.
//!
//! Finish regions (§2's blocking synchronization primitive) are provided by
//! [`crate::task::FinishRegion`] together with [`SpawnCtx::help_while`]: a
//! task waiting on a region keeps executing other tasks instead of blocking
//! the worker, which is the natural help-first realization.
//!
//! # Why spawns batch but pops do not
//!
//! [`SpawnCtx::spawn_batch`] batches the *push* side: all children of a
//! task are stored with one batched insertion, which cannot change what
//! any pop observes (pops only happen between task executions, and the
//! batch lands before the executing task returns). The worker loop still
//! pops one task at a time on purpose: popping a batch ahead of execution
//! would fix the batch's order against tasks spawned *during* the batch —
//! a freshly spawned better-priority task would wait behind the
//! pre-popped rest, which creates useless work even at one place (e.g.
//! SSSP relaxing a node whose distance a batch-mate was about to
//! improve). Per-pop latency is already amortized by the structures'
//! batched ingest; batching across *executions* is where ordering would
//! actually be lost.

use crate::ingest::{IngressLanes, IngressShared};
use crate::pool::{FaultPolicy, PoolHandle, TaskPool};
use crate::stats::PlaceStats;
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::thread;
use crossbeam_utils::Backoff;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One quarantined (or aborting) task failure: where it ran, what priority
/// it was popped with, and the panic message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureReport {
    /// The place whose worker executed the panicking task.
    pub place: usize,
    /// The priority key the task was popped with.
    pub prio: u64,
    /// The panic message (string payloads verbatim; other payload types
    /// are summarized).
    pub message: String,
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task (prio {}) panicked at place {}: {}",
            self.prio, self.place, self.message
        )
    }
}

/// Typed outcome of joining an aborted pool (`FaultPolicy::AbortRun`):
/// the first recorded failure, in place of a resumed panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolAborted {
    /// The failure that raised the abort flag.
    pub failure: FailureReport,
}

impl std::fmt::Display for PoolAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool run aborted: {}", self.failure)
    }
}

impl std::error::Error for PoolAborted {}

/// Renders a panic payload (as caught by `std::panic::catch_unwind`) into
/// a human-readable message for a [`FailureReport`]. `&str` and `String`
/// payloads — what `panic!` produces — are passed through; anything else
/// becomes a placeholder.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Shared failure state of one run or service: the configured
/// [`FaultPolicy`], the recorded [`FailureReport`]s, and — under
/// `AbortRun` — the first panic payload for `Scheduler::run` to resume.
///
/// Workers record into the cell *before* decrementing the pending count
/// (see [`SpawnCtx::run_one`]); anyone who observes the count reach zero
/// is therefore guaranteed to see every failure of a task that finished
/// before the drain — the same read-order argument quiescence itself
/// rests on (see [`crate::ingest`]).
pub(crate) struct FaultCell {
    policy: FaultPolicy,
    payload: crate::sync::Mutex<Option<Box<dyn std::any::Any + Send>>>,
    failures: crate::sync::Mutex<Vec<FailureReport>>,
    failed: AtomicU64,
}

impl FaultCell {
    pub(crate) fn new(policy: FaultPolicy) -> Self {
        FaultCell {
            policy,
            payload: crate::sync::Mutex::new(None),
            failures: crate::sync::Mutex::new(Vec::new()),
            failed: AtomicU64::new(0),
        }
    }

    pub(crate) fn policy(&self) -> FaultPolicy {
        self.policy
    }

    /// Records one failure; under `AbortRun` also stashes the first panic
    /// payload so the closed-world entry points can resume it.
    fn record(&self, report: FailureReport, payload: Option<Box<dyn std::any::Any + Send>>) {
        self.failures.lock().push(report);
        // The count is published *after* the report so `failed()` never
        // exceeds what `first_failure()`/`take_failures()` can observe.
        self.failed.fetch_add(1, Ordering::Release);
        if let Some(p) = payload {
            let mut slot = self.payload.lock();
            if slot.is_none() {
                *slot = Some(p);
            }
        }
    }

    /// Number of failures recorded so far.
    pub(crate) fn failed(&self) -> u64 {
        self.failed.load(Ordering::Acquire)
    }

    /// Takes the stored panic payload (`AbortRun` only), if any.
    pub(crate) fn take_payload(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.payload.lock().take()
    }

    /// Drains the recorded failure reports.
    pub(crate) fn take_failures(&self) -> Vec<FailureReport> {
        std::mem::take(&mut *self.failures.lock())
    }

    /// Clones the first recorded failure (the one that raised the abort,
    /// under `AbortRun`).
    pub(crate) fn first_failure(&self) -> Option<FailureReport> {
        self.failures.lock().first().cloned()
    }
}

/// Application logic driven by the scheduler.
///
/// The executor is shared by all places (`Sync`) and owns the application
/// state tasks operate on (e.g. the graph and the atomic distance array for
/// SSSP).
pub trait TaskExecutor<T: Send>: Sync {
    /// Runs one task. New tasks are spawned through `ctx` (help-first: they
    /// are stored for later execution, the current invocation continues).
    fn execute(&self, task: T, ctx: &mut SpawnCtx<'_, T>);

    /// Lazy dead-task elimination hook (§5.1): return `true` when the task
    /// no longer needs to run (e.g. an SSSP node relaxation whose distance
    /// value has since improved). Dead tasks are dropped at pop time.
    fn is_dead(&self, _task: &T) -> bool {
        false
    }
}

/// Per-task spawn context handed to [`TaskExecutor::execute`].
pub struct SpawnCtx<'a, T: Send> {
    handle: &'a mut dyn PoolHandle<T>,
    pending: &'a AtomicU64,
    executor: &'a dyn TaskExecutor<T>,
    /// Set when a task panicked under `FaultPolicy::AbortRun`: all workers
    /// drain out and the panic is re-raised from `run` (without this, a
    /// lost decrement would leave `pending` nonzero and deadlock the
    /// remaining workers). Never raised under `FaultPolicy::Isolate`.
    abort: &'a AtomicBool,
    faults: &'a FaultCell,
    place: usize,
    executed: u64,
    dead: u64,
    /// Reusable scratch for [`SpawnCtx::take_batch_buf`], so executors can
    /// build spawn batches without a per-task-execution allocation.
    batch_buf: Vec<(u64, T)>,
    /// Ingress lanes of a streamed run ([`Scheduler::run_stream`]); `None`
    /// for closed-world [`Scheduler::run`]. Governs both lane draining at
    /// the pop boundary and the quiescence half of termination.
    ingress: Option<&'a IngressShared<T>>,
    /// Reusable drain buffers (lane contents / same-`k` runs), so draining
    /// allocates nothing in steady state.
    ingest_scratch: Vec<(u64, usize, T)>,
    ingest_kbatch: Vec<(u64, T)>,
}

impl<'a, T: Send> SpawnCtx<'a, T> {
    /// Spawns a task with priority `prio` (smaller = higher) and per-task
    /// relaxation bound `k` (§2.2).
    pub fn spawn(&mut self, prio: u64, k: usize, task: T) {
        // Increment before push: a task must never be poppable while the
        // counter could read zero.
        self.pending.fetch_add(1, Ordering::AcqRel);
        self.handle.push(prio, k, task);
        // Streamed runs park idle workers; a fresh task may be stealable
        // or spyable by any of them (gated: one fence + load when the
        // fleet is busy).
        if let Some(ing) = self.ingress {
            ing.parker().wake_workers_if_idle();
        }
    }

    /// Spawns a batch of `(prio, task)` pairs sharing the relaxation bound
    /// `k`, draining `tasks`.
    ///
    /// Help-first semantics are unchanged — every task is stored for later
    /// execution — but the whole batch flows through
    /// [`PoolHandle::push_batch`]: one pending-counter update and one
    /// batched structure insertion instead of per-task trait calls. This
    /// is the intended spawn path for executors that emit many children
    /// per task (e.g. SSSP node expansion); pair it with
    /// [`SpawnCtx::take_batch_buf`] to avoid allocating the batch.
    pub fn spawn_batch(&mut self, k: usize, tasks: &mut Vec<(u64, T)>) {
        if tasks.is_empty() {
            return;
        }
        // Increment before push, as in `spawn`.
        self.pending.fetch_add(tasks.len() as u64, Ordering::AcqRel);
        self.handle.push_batch(k, tasks);
        if let Some(ing) = self.ingress {
            ing.parker().wake_workers_if_idle();
        }
    }

    /// Borrows the reusable batch buffer (empty). Fill it, pass it to
    /// [`SpawnCtx::spawn_batch`], then return it via
    /// [`SpawnCtx::put_batch_buf`] so the allocation is reused.
    pub fn take_batch_buf(&mut self) -> Vec<(u64, T)> {
        std::mem::take(&mut self.batch_buf)
    }

    /// Returns a buffer taken with [`SpawnCtx::take_batch_buf`].
    pub fn put_batch_buf(&mut self, mut buf: Vec<(u64, T)>) {
        buf.clear();
        self.batch_buf = buf;
    }

    /// The id of the place executing the current task.
    pub fn place(&self) -> usize {
        self.place
    }

    /// Number of tasks this place has executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Cooperative wait: keeps popping and executing tasks while `cond`
    /// holds. The building block for blocking finish regions under
    /// help-first scheduling — the waiting task helps drain the pool
    /// instead of idling a worker. In a streamed run it also keeps this
    /// place's ingress lane flowing, so a finish region waiting on
    /// externally submitted work cannot deadlock.
    pub fn help_while(&mut self, cond: &dyn Fn() -> bool) {
        let backoff = Backoff::new();
        while cond() && !self.abort.load(Ordering::Relaxed) {
            if self.drain_ingress() > 0 {
                backoff.reset();
            }
            match self.handle.pop_entry() {
                Some((prio, task)) => {
                    self.run_one(prio, task);
                    backoff.reset();
                }
                None => {
                    if self.drained_out() {
                        return; // nothing left anywhere; cond can never flip
                    }
                    match self.ingress {
                        Some(ing) if backoff.is_completed() => {
                            // Park instead of sleeping in a poll loop —
                            // but *time-bounded*: `cond` is executor state
                            // (e.g. a finish-region counter) whose flip is
                            // not a parker event, so an unbounded park
                            // could outlive it. Submissions, spawns, and
                            // abort still cut the wait short through the
                            // normal wake path.
                            let parker = ing.parker();
                            parker.note_idle_iter();
                            let token = parker.worker_prepare(self.place);
                            if !cond()
                                || self.abort.load(Ordering::Relaxed)
                                || self.drain_ingress() > 0
                            {
                                parker.worker_cancel(self.place);
                            } else if let Some((prio, task)) = self.handle.pop_entry() {
                                // A task spawned inside the register race
                                // window may have skipped its wake (gated
                                // on a not-yet-visible registration); the
                                // post-registration pop closes that hole,
                                // exactly as in `place_loop`.
                                parker.worker_cancel(self.place);
                                self.run_one(prio, task);
                                backoff.reset();
                            } else {
                                parker.worker_park_timeout(self.place, token, HELP_WAIT_CAP);
                            }
                        }
                        _ => backoff.snooze(),
                    }
                }
            }
        }
    }

    /// Transfers this place's ingress lane into the pool (streamed runs
    /// only; a no-op for closed-world runs). Called at the pop boundary —
    /// between task executions — so the scheduler-module ordering argument
    /// (no pre-popped batches racing fresh spawns) is untouched. Returns
    /// how many tasks were transferred.
    fn drain_ingress(&mut self) -> u64 {
        let Some(ing) = self.ingress else {
            return 0;
        };
        if ing.queued_hint() == 0 {
            return 0;
        }
        let mut scratch = std::mem::take(&mut self.ingest_scratch);
        let mut kbatch = std::mem::take(&mut self.ingest_kbatch);
        let n = ing.drain_into(
            self.place,
            &mut *self.handle,
            self.pending,
            &mut scratch,
            &mut kbatch,
        );
        self.ingest_scratch = scratch;
        self.ingest_kbatch = kbatch;
        n
    }

    /// The termination condition: quiescent ingress (no producers, empty
    /// lanes — trivially true in closed-world runs) checked *before* a
    /// zero pending count. See the `ingest` module docs for why this read
    /// order is sound.
    fn drained_out(&self) -> bool {
        self.ingress.is_none_or(IngressShared::quiescent)
            && self.pending.load(Ordering::Acquire) == 0
    }

    fn run_one(&mut self, prio: u64, task: T) {
        if self.executor.is_dead(&task) {
            self.dead += 1;
            self.finish_one();
            return;
        }
        // Contain panics: decrement `pending` either way so sibling workers
        // cannot spin forever on a count that will never drain. The failure
        // is recorded (and, under `AbortRun`, the abort flag raised)
        // *before* the decrement so that anyone who observes the count
        // reach zero (e.g. `PoolService::join`) is guaranteed to see it on
        // a subsequent read — a drain caused by a panic can never
        // masquerade as a clean one, and an isolated failure is always
        // visible by the time the run it belonged to quiesces.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            self.executor.execute(task, self);
        }));
        if let Err(payload) = result {
            let report = FailureReport {
                place: self.place,
                prio,
                message: panic_message(&*payload),
            };
            match self.faults.policy() {
                FaultPolicy::AbortRun => {
                    self.faults.record(report, Some(payload));
                    self.abort.store(true, Ordering::Release);
                    if let Some(ing) = self.ingress {
                        // Poison the lanes and wake everything: parked
                        // workers exit, join waiters report the abort,
                        // blocked producers fail with
                        // `SubmitError::Aborted` instead of waiting for
                        // drains that will never come.
                        ing.abort_and_wake();
                    }
                }
                FaultPolicy::Isolate => {
                    // Quarantine: record and move on. Siblings, producers,
                    // and this very worker keep running; the panicking
                    // task's pending unit is released below exactly as a
                    // completion would release it, so quiescence
                    // accounting stays exact.
                    self.faults.record(report, None);
                }
            }
        } else {
            self.executed += 1;
        }
        self.finish_one();
    }

    /// Releases one unit of the pending counter and fires the quiescence
    /// wakes when it hits zero: join waiters always re-check on a full
    /// drain, and if the ingress side is also quiescent the whole run is
    /// over — every parked worker must observe that and exit.
    fn finish_one(&mut self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            if let Some(ing) = self.ingress {
                ing.parker().control().wake_if_waiting();
                if ing.quiescent() {
                    ing.parker().wake_all();
                }
            }
        }
    }
}

/// Aggregated outcome of one [`Scheduler::run`].
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Tasks executed (dead tasks excluded).
    pub executed: u64,
    /// Tasks popped but eliminated as dead (§5.1).
    pub dead: u64,
    /// Tasks whose `execute` panicked. Under `FaultPolicy::Isolate` the
    /// run continues past them; under `AbortRun` at most one failure is
    /// recorded before the run aborts.
    pub failed: u64,
    /// One report per failed task (place, priority, panic message), in
    /// recording order.
    pub failures: Vec<FailureReport>,
    /// Wall-clock time of the run (from first worker start to full drain).
    pub elapsed: Duration,
    /// Summed data-structure counters over all places.
    pub pool: PlaceStats,
    /// Per-place executed counts (load-balance diagnostics).
    pub per_place_executed: Vec<u64>,
}

/// The scheduling system: `P` places over a shared [`TaskPool`].
pub struct Scheduler<P> {
    pool: Arc<P>,
    fault_policy: FaultPolicy,
}

impl<P> Scheduler<P> {
    /// Wraps an already shared task pool; the pool's place count determines
    /// the number of worker threads. Panics abort the run by default — see
    /// [`Scheduler::with_fault_policy`].
    pub fn from_pool_arc(pool: Arc<P>) -> Self {
        Scheduler {
            pool,
            fault_policy: FaultPolicy::AbortRun,
        }
    }

    /// Creates a scheduler owning a fresh pool.
    pub fn from_pool(pool: P) -> Self {
        Self::from_pool_arc(Arc::new(pool))
    }

    /// Sets what a worker does when a task panics (see [`FaultPolicy`]).
    /// Under `Isolate`, `run`/`run_stream` return normally with
    /// `RunStats::failed`/`failures` populated instead of resuming the
    /// panic.
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }

    /// Access to the underlying pool (for diagnostics).
    pub fn pool(&self) -> &Arc<P> {
        &self.pool
    }
}

/// Cap on one bounded park inside [`SpawnCtx::help_while`]: the waited-on
/// condition (a finish-region counter) can flip without producing a parker
/// event, so that one wait — and only that one — stays time-bounded.
const HELP_WAIT_CAP: Duration = Duration::from_micros(200);

/// One place's §2 scheduling loop: pop → execute → repeat until the abort
/// flag rises or the run drains out. In a streamed run (`ingress` set) the
/// place additionally transfers its ingress lane into the pool at every
/// pop boundary and terminates only at quiescence (counter zero *and* no
/// producers *and* empty lanes).
///
/// Streamed idle behavior: a worker whose pop failed spins briefly
/// (exponential backoff), then **parks** on its [`crate::park`] slot via
/// register → re-check → park. The re-check (abort, quiescence, lane
/// drain, one more pop) closes the check-then-sleep race against every
/// wake event; see the event table in the [`crate::ingest`] module docs.
/// Parking is safe against "work exists but my pop missed it": a place's
/// local component is only ever filled by its own worker, so a parked
/// worker's component is empty and any remaining task is either in an
/// *awake* worker's component or in a shared component that pops scan
/// deterministically (see [`crate::park`]).
///
/// Shared by [`Scheduler::run`]/[`Scheduler::run_stream`] (scoped worker
/// threads) and [`crate::service::PoolService`] (detached worker threads);
/// returns `(executed, dead)` for this place.
pub(crate) fn place_loop<T: Send>(
    handle: &mut dyn PoolHandle<T>,
    executor: &dyn TaskExecutor<T>,
    pending: &AtomicU64,
    abort: &AtomicBool,
    faults: &FaultCell,
    ingress: Option<&IngressShared<T>>,
    place: usize,
) -> (u64, u64) {
    let mut ctx = SpawnCtx {
        handle,
        pending,
        executor,
        abort,
        faults,
        place,
        executed: 0,
        dead: 0,
        batch_buf: Vec::new(),
        ingress,
        ingest_scratch: Vec::new(),
        ingest_kbatch: Vec::new(),
    };
    let backoff = Backoff::new();
    loop {
        if abort.load(Ordering::Acquire) {
            break;
        }
        if ctx.drain_ingress() > 0 {
            backoff.reset();
        }
        match ctx.handle.pop_entry() {
            Some((prio, task)) => {
                ctx.run_one(prio, task);
                backoff.reset();
            }
            None => {
                if ctx.drained_out() {
                    break;
                }
                match ctx.ingress {
                    Some(ing) if backoff.is_completed() => {
                        // Backoff exhausted: park until an event instead of
                        // poll-sleeping. Register, re-check everything a
                        // wake could signal, then sleep on the slot.
                        let parker = ing.parker();
                        parker.note_idle_iter();
                        let token = parker.worker_prepare(place);
                        if abort.load(Ordering::Acquire) || ctx.drained_out() {
                            parker.worker_cancel(place);
                            continue; // loop head exits on both conditions
                        }
                        if ctx.drain_ingress() > 0 {
                            parker.worker_cancel(place);
                            backoff.reset();
                            continue;
                        }
                        match ctx.handle.pop_entry() {
                            Some((prio, task)) => {
                                parker.worker_cancel(place);
                                ctx.run_one(prio, task);
                                backoff.reset();
                            }
                            None => parker.worker_park(place, token),
                        }
                    }
                    Some(ing) => {
                        ing.parker().note_idle_iter();
                        backoff.snooze();
                    }
                    None => backoff.snooze(),
                }
            }
        }
    }
    (ctx.executed, ctx.dead)
}

impl<Pool> Scheduler<Pool> {
    /// Runs `roots` to completion and returns aggregated statistics.
    ///
    /// Worker 0 seeds the roots through its own handle (so every structure
    /// sees a normal place-local push), then all places run the §2 loop:
    /// pop → execute → repeat, until every task transitively spawned has
    /// finished.
    pub fn run<T, E>(&self, executor: &E, roots: Vec<(u64, usize, T)>) -> RunStats
    where
        T: Send + 'static,
        E: TaskExecutor<T>,
        Pool: TaskPool<T>,
    {
        self.run_inner(executor, roots, None)
    }

    /// Streamed variant of [`Scheduler::run`]: in addition to `roots`,
    /// tasks submitted through `ingress` handles while the pool is running
    /// are drained by each place at its pop boundary and scheduled like any
    /// spawned task (same dead-task elimination, same element-wise `k`/ρ
    /// accounting).
    ///
    /// Returns at **quiescence**: the outstanding-task counter is zero,
    /// every lane is empty, and every [`crate::IngestHandle`] has been
    /// dropped. Mint the producer handles *before* calling this — a
    /// streamed run that observes zero producers and no queued tasks
    /// terminates exactly like a closed-world run.
    ///
    /// # Panics
    /// Panics if `ingress` was not created with one lane per place of this
    /// scheduler's pool.
    pub fn run_stream<T, E>(
        &self,
        executor: &E,
        roots: Vec<(u64, usize, T)>,
        ingress: &IngressLanes<T>,
    ) -> RunStats
    where
        T: Send + 'static,
        E: TaskExecutor<T>,
        Pool: TaskPool<T>,
    {
        self.run_inner(executor, roots, Some(ingress))
    }

    fn run_inner<T, E>(
        &self,
        executor: &E,
        roots: Vec<(u64, usize, T)>,
        ingress: Option<&IngressLanes<T>>,
    ) -> RunStats
    where
        T: Send + 'static,
        E: TaskExecutor<T>,
        Pool: TaskPool<T>,
    {
        let nplaces = self.pool.num_places();
        if let Some(lanes) = ingress {
            assert_eq!(
                lanes.num_lanes(),
                nplaces,
                "ingress lanes must match the pool's place count"
            );
        }
        let ingress: Option<&IngressShared<T>> = ingress.map(|l| &**l.shared());
        let pending = AtomicU64::new(roots.len() as u64);
        let abort = AtomicBool::new(false);
        let faults = FaultCell::new(self.fault_policy);
        let start = Instant::now();
        let mut per_place: Vec<(u64, u64, PlaceStats)> = Vec::with_capacity(nplaces);

        thread::scope(|s| {
            let mut joins = Vec::with_capacity(nplaces);
            let mut roots = Some(roots);
            for place in 0..nplaces {
                let pool = Arc::clone(&self.pool);
                let pending = &pending;
                let abort = &abort;
                let faults = &faults;
                let seed = if place == 0 { roots.take() } else { None };
                joins.push(s.spawn(move || {
                    let mut handle = pool.handle(place);
                    if let Some(seed) = seed {
                        for (prio, k, task) in seed {
                            handle.push(prio, k, task);
                        }
                    }
                    let (executed, dead) = place_loop(
                        &mut handle,
                        executor,
                        pending,
                        abort,
                        faults,
                        ingress,
                        place,
                    );
                    (executed, dead, handle.stats())
                }));
            }
            for j in joins {
                per_place.push(j.join().expect("worker thread itself panicked"));
            }
        });

        // AbortRun keeps the historical contract: the closed-world entry
        // points re-raise the panic on the caller. Isolate returns
        // normally with the failures on the stats.
        if let Some(payload) = faults.take_payload() {
            std::panic::resume_unwind(payload);
        }
        let elapsed = start.elapsed();
        let mut stats = RunStats {
            elapsed,
            failed: faults.failed(),
            failures: faults.take_failures(),
            per_place_executed: per_place.iter().map(|(e, _, _)| *e).collect(),
            ..RunStats::default()
        };
        for (executed, dead, pool_stats) in per_place {
            stats.executed += executed;
            stats.dead += dead;
            stats.pool.merge(&pool_stats);
        }
        debug_assert_eq!(pending.load(Ordering::Acquire), 0);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::CentralizedKPriority;
    use crate::hybrid::HybridKPriority;
    use crate::workstealing::PriorityWorkStealing;
    use std::sync::atomic::AtomicU64 as Counter;

    /// Counts executions; spawns `fanout` children per task until `depth`.
    struct TreeSpawner {
        executed: Counter,
        fanout: u64,
        depth: u64,
    }

    impl TaskExecutor<(u64, u64)> for TreeSpawner {
        fn execute(&self, (depth, _id): (u64, u64), ctx: &mut SpawnCtx<'_, (u64, u64)>) {
            self.executed.fetch_add(1, Ordering::Relaxed);
            if depth < self.depth {
                for i in 0..self.fanout {
                    ctx.spawn(depth + 1, 64, (depth + 1, i));
                }
            }
        }
    }

    fn tree_total(fanout: u64, depth: u64) -> u64 {
        // 1 + f + f^2 + … + f^depth
        (0..=depth).map(|d| fanout.pow(d as u32)).sum()
    }

    fn run_tree<P: TaskPool<(u64, u64)>>(pool: Arc<P>, places: usize) {
        let exec = TreeSpawner {
            executed: Counter::new(0),
            fanout: 3,
            depth: 7,
        };
        let sched = Scheduler::from_pool_arc(pool);
        let stats = sched.run(&exec, vec![(0, 64, (0u64, 0u64))]);
        let expect = tree_total(3, 7);
        assert_eq!(stats.executed, expect, "places={places}");
        assert_eq!(exec.executed.load(Ordering::Relaxed), expect);
        assert_eq!(stats.dead, 0);
        assert_eq!(stats.per_place_executed.iter().sum::<u64>(), expect);
    }

    #[test]
    fn drains_task_tree_workstealing() {
        for places in [1, 2, 4] {
            run_tree(Arc::new(PriorityWorkStealing::new(places)), places);
        }
    }

    #[test]
    fn drains_task_tree_centralized() {
        for places in [1, 2, 4] {
            run_tree(
                Arc::new(CentralizedKPriority::with_defaults(places)),
                places,
            );
        }
    }

    #[test]
    fn drains_task_tree_hybrid() {
        for places in [1, 2, 4] {
            run_tree(Arc::new(HybridKPriority::new(places)), places);
        }
    }

    /// All tasks dead on arrival must be eliminated, not executed.
    struct AllDead;
    impl TaskExecutor<u64> for AllDead {
        fn execute(&self, _t: u64, _ctx: &mut SpawnCtx<'_, u64>) {
            panic!("dead task executed");
        }
        fn is_dead(&self, _t: &u64) -> bool {
            true
        }
    }

    #[test]
    fn dead_tasks_are_eliminated() {
        let pool = Arc::new(PriorityWorkStealing::new(2));
        let sched = Scheduler::from_pool_arc(pool);
        let roots = (0..50u64).map(|i| (i, 0usize, i)).collect();
        let stats = sched.run(&AllDead, roots);
        assert_eq!(stats.executed, 0);
        assert_eq!(stats.dead, 50);
    }

    /// Priority ordering sanity: with one place, tasks must execute in
    /// strict priority order for every structure.
    struct OrderRecorder {
        order: parking_lot::Mutex<Vec<u64>>,
    }
    impl TaskExecutor<u64> for OrderRecorder {
        fn execute(&self, t: u64, _ctx: &mut SpawnCtx<'_, u64>) {
            self.order.lock().push(t);
        }
    }

    #[test]
    fn single_place_executes_in_priority_order() {
        let prios = [5u64, 1, 9, 3, 3, 8, 0];
        let run = |stats: &RunStats, order: Vec<u64>| {
            let mut sorted = prios.to_vec();
            sorted.sort();
            assert_eq!(order, sorted);
            assert_eq!(stats.executed, prios.len() as u64);
        };
        let roots: Vec<(u64, usize, u64)> = prios.iter().map(|&p| (p, 16, p)).collect();

        let rec = OrderRecorder {
            order: parking_lot::Mutex::new(Vec::new()),
        };
        let sched = Scheduler::from_pool_arc(Arc::new(CentralizedKPriority::with_defaults(1)));
        let stats = sched.run(&rec, roots.clone());
        run(&stats, std::mem::take(&mut *rec.order.lock()));

        let rec = OrderRecorder {
            order: parking_lot::Mutex::new(Vec::new()),
        };
        let sched = Scheduler::from_pool_arc(Arc::new(HybridKPriority::new(1)));
        let stats = sched.run(&rec, roots.clone());
        run(&stats, std::mem::take(&mut *rec.order.lock()));

        let rec = OrderRecorder {
            order: parking_lot::Mutex::new(Vec::new()),
        };
        let sched = Scheduler::from_pool_arc(Arc::new(PriorityWorkStealing::new(1)));
        let stats = sched.run(&rec, roots);
        run(&stats, std::mem::take(&mut *rec.order.lock()));
    }

    /// A panicking task must re-raise from `run` rather than deadlocking
    /// sibling workers on a never-draining pending count.
    struct PanicOn13;
    impl TaskExecutor<u64> for PanicOn13 {
        fn execute(&self, t: u64, _ctx: &mut SpawnCtx<'_, u64>) {
            if t == 13 {
                panic!("boom at 13");
            }
        }
    }

    #[test]
    fn task_panic_propagates_without_deadlock() {
        let sched = Scheduler::from_pool(PriorityWorkStealing::new(2));
        let roots: Vec<(u64, usize, u64)> = (0..50u64).map(|i| (i, 0usize, i)).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sched.run(&PanicOn13, roots)
        }));
        let err = result.expect_err("panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("boom at 13"), "got: {msg}");
    }

    /// Under `Isolate` the same panicking workload completes: the failure
    /// is quarantined into the stats with exact accounting, siblings run
    /// every other task, and the scheduler reports place + priority.
    #[test]
    fn isolate_quarantines_panicking_task_and_finishes() {
        let sched = Scheduler::from_pool(PriorityWorkStealing::new(2))
            .with_fault_policy(FaultPolicy::Isolate);
        let roots: Vec<(u64, usize, u64)> = (0..50u64).map(|i| (i, 0usize, i)).collect();
        let stats = sched.run(&PanicOn13, roots);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.executed, 49, "every non-bomb task still runs");
        assert_eq!(stats.failures.len(), 1);
        let failure = &stats.failures[0];
        assert_eq!(failure.prio, 13, "priority captured from the pop");
        assert!(failure.place < 2);
        assert!(failure.message.contains("boom at 13"), "{failure}");
        assert!(stats.to_string().contains("1 failed"), "{stats}");
    }

    /// Streamed run: external producers submit while the pool is running;
    /// the run must execute roots + everything ingested, then terminate
    /// only after all handles drop.
    #[test]
    fn run_stream_executes_roots_and_ingested_tasks() {
        use crate::ingest::IngressLanes;
        for places in [1usize, 2, 4] {
            let exec = TreeSpawner {
                executed: Counter::new(0),
                fanout: 2,
                depth: 3,
            };
            let sched = Scheduler::from_pool(HybridKPriority::new(places));
            let ingress = IngressLanes::new(places);
            let producers = 3usize;
            let per = 40u64;
            let stats = std::thread::scope(|s| {
                for _ in 0..producers {
                    let mut h = ingress.handle();
                    s.spawn(move || {
                        let mut batch = Vec::new();
                        for i in 0..per {
                            // Leaf-depth tasks: execute without spawning.
                            batch.push((7, (3u64, i)));
                            if batch.len() == 8 {
                                h.submit_batch(16, &mut batch).unwrap();
                            }
                        }
                        h.submit_batch(16, &mut batch).unwrap();
                    });
                }
                sched.run_stream(&exec, vec![(0, 16, (0u64, 0u64))], &ingress)
            });
            let expect = tree_total(2, 3) + producers as u64 * per;
            assert_eq!(stats.executed, expect, "places={places}");
            assert_eq!(exec.executed.load(Ordering::Relaxed), expect);
        }
    }

    /// With no producers and no roots, a streamed run is a closed-world
    /// run and terminates immediately.
    #[test]
    fn run_stream_without_producers_terminates() {
        use crate::ingest::IngressLanes;
        let sched = Scheduler::from_pool(PriorityWorkStealing::new(2));
        let ingress = IngressLanes::new(2);
        let stats = sched.run_stream(
            &TreeSpawner {
                executed: Counter::new(0),
                fanout: 1,
                depth: 0,
            },
            Vec::new(),
            &ingress,
        );
        assert_eq!(stats.executed, 0);
    }

    #[test]
    #[should_panic(expected = "must match the pool's place count")]
    fn run_stream_rejects_mismatched_lane_count() {
        use crate::ingest::IngressLanes;
        let sched = Scheduler::from_pool(PriorityWorkStealing::new(2));
        let ingress: IngressLanes<(u64, u64)> = IngressLanes::new(3);
        let exec = TreeSpawner {
            executed: Counter::new(0),
            fanout: 1,
            depth: 0,
        };
        let _ = sched.run_stream(&exec, Vec::new(), &ingress);
    }

    /// Ingested dead tasks are eliminated at pop time like spawned ones.
    #[test]
    fn run_stream_eliminates_dead_ingested_tasks() {
        use crate::ingest::IngressLanes;
        let sched = Scheduler::from_pool(HybridKPriority::new(2));
        let ingress = IngressLanes::new(2);
        let mut h = ingress.handle();
        for i in 0..30u64 {
            h.submit(i, 4, i).unwrap();
        }
        drop(h);
        let stats = sched.run_stream(&AllDead, Vec::new(), &ingress);
        assert_eq!(stats.executed, 0);
        assert_eq!(stats.dead, 30);
    }

    #[test]
    fn scheduler_is_reusable_across_runs() {
        let sched = Scheduler::from_pool_arc(Arc::new(HybridKPriority::new(2)));
        let exec = TreeSpawner {
            executed: Counter::new(0),
            fanout: 2,
            depth: 5,
        };
        let a = sched.run(&exec, vec![(0, 8, (0u64, 0u64))]);
        let b = sched.run(&exec, vec![(0, 8, (0u64, 0u64))]);
        assert_eq!(a.executed, b.executed);
        assert_eq!(exec.executed.load(Ordering::Relaxed), 2 * tree_total(2, 5));
    }
}

impl std::fmt::Display for RunStats {
    /// One-line summary: task counts, timing, and load balance.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let places = self.per_place_executed.len().max(1);
        let max = self.per_place_executed.iter().copied().max().unwrap_or(0);
        let balance = if max == 0 {
            1.0
        } else {
            self.executed as f64 / (places as f64 * max as f64)
        };
        write!(
            f,
            "{} tasks ({} dead) on {} place(s) in {:.2?}; balance {:.2}; \
             pushes {}, steals {}, spies {}, publishes {}",
            self.executed,
            self.dead,
            places,
            self.elapsed,
            balance,
            self.pool.pushes,
            self.pool.steals,
            self.pool.spies,
            self.pool.publishes,
        )?;
        if self.pool.combine_passes > 0 {
            write!(
                f,
                "; combine: {} passes, {} ops ({:.1}/pass mean, {} max), {} parks",
                self.pool.combine_passes,
                self.pool.combine_ops,
                self.pool.combine_ops as f64 / self.pool.combine_passes as f64,
                self.pool.combine_pass_max,
                self.pool.combine_parks,
            )?;
        }
        if self.pool.rank_pops > 0 {
            write!(
                f,
                "; rank error: {:.2} mean, {} p99, {} max over {} pops",
                self.pool.rank_mean(),
                self.pool.rank_p99(),
                self.pool.rank_max,
                self.pool.rank_pops,
            )?;
        }
        if self.failed > 0 {
            write!(f, "; {} failed (quarantined)", self.failed)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn run_stats_display_mentions_key_fields() {
        let stats = RunStats {
            executed: 10,
            dead: 2,
            elapsed: Duration::from_millis(5),
            pool: PlaceStats {
                pushes: 12,
                ..PlaceStats::default()
            },
            per_place_executed: vec![6, 4],
            failed: 0,
            failures: Vec::new(),
        };
        let s = stats.to_string();
        assert!(s.contains("10 tasks"), "{s}");
        assert!(s.contains("(2 dead)"), "{s}");
        assert!(s.contains("pushes 12"), "{s}");
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::workstealing::PriorityWorkStealing;

    struct Nop;
    impl TaskExecutor<u64> for Nop {
        fn execute(&self, _t: u64, _ctx: &mut SpawnCtx<'_, u64>) {}
    }

    #[test]
    fn empty_roots_terminate_immediately() {
        let sched = Scheduler::from_pool(PriorityWorkStealing::new(3));
        let stats = sched.run(&Nop, Vec::<(u64, usize, u64)>::new());
        assert_eq!(stats.executed, 0);
        assert_eq!(stats.dead, 0);
        assert_eq!(stats.per_place_executed, vec![0, 0, 0]);
    }

    #[test]
    fn single_task_single_place() {
        let sched = Scheduler::from_pool(PriorityWorkStealing::new(1));
        let stats = sched.run(&Nop, vec![(5, 0, 42u64)]);
        assert_eq!(stats.executed, 1);
        assert_eq!(stats.pool.pushes, 1);
        assert_eq!(stats.pool.pops, 1);
    }

    #[test]
    fn many_roots_spread_over_places() {
        let sched = Scheduler::from_pool(PriorityWorkStealing::new(4));
        let roots: Vec<(u64, usize, u64)> = (0..200u64).map(|i| (i, 0usize, i)).collect();
        let stats = sched.run(&Nop, roots);
        assert_eq!(stats.executed, 200);
        // All roots are seeded at place 0; with steal-half at least one
        // other place usually participates, but single-place execution is
        // legal — just verify accounting.
        assert_eq!(stats.per_place_executed.iter().sum::<u64>(), 200);
    }
}
