//! Figure 3: simulation of the phase model (§5.4.1).
//!
//! Three panels, P = 80, ρ ∈ {0, 128, 512}, mean over the replicated
//! graphs:
//!   (a) nodes settled per phase;
//!   (b) h*_t (spread of relaxed tentative distances) per phase;
//!   (c) theoretical lower bound on settled nodes vs simulation (ρ = 0),
//!       using Theorem 5's exact pairwise form.
//!
//! The simulator is single-threaded regardless of host cores (it *models*
//! P places), so this figure reproduces at paper scale on any machine.

use priosched_bench::{mean, write_csv, HarnessConfig};
use priosched_sim::{simulate_sssp, SimConfig, TheoryBound};

fn main() {
    let cfg = HarnessConfig::from_args();
    cfg.banner("Figure 3: phase-model simulation (settled/phase, h*, theory bound)");
    let p_places = if cfg.full { 80 } else { cfg.places.max(2) };
    let rhos = [0usize, 128, 512];

    let graphs = cfg.graph_set();
    let theory = TheoryBound::new(cfg.n, cfg.p);

    // phase-indexed accumulators per rho
    let mut settled_acc: Vec<Vec<f64>> = vec![Vec::new(); rhos.len()];
    let mut hstar_acc: Vec<Vec<f64>> = vec![Vec::new(); rhos.len()];
    let mut counts: Vec<Vec<usize>> = vec![Vec::new(); rhos.len()];
    // Panel c accumulators (rho = 0): simulation settled + theory bound.
    let mut sim_c: Vec<f64> = Vec::new();
    let mut theory_c: Vec<f64> = Vec::new();
    let mut count_c: Vec<usize> = Vec::new();

    for (gi, g) in graphs.iter().enumerate() {
        for (ri, &rho) in rhos.iter().enumerate() {
            let res = simulate_sssp(
                g,
                0,
                &SimConfig {
                    p: p_places,
                    rho,
                    seed: 7 + gi as u64,
                },
            );
            for (ph_idx, ph) in res.phases.iter().enumerate() {
                if settled_acc[ri].len() <= ph_idx {
                    settled_acc[ri].push(0.0);
                    hstar_acc[ri].push(0.0);
                    counts[ri].push(0);
                }
                settled_acc[ri][ph_idx] += ph.settled as f64;
                hstar_acc[ri][ph_idx] += ph.h_star;
                counts[ri][ph_idx] += 1;
                if rho == 0 {
                    if sim_c.len() <= ph_idx {
                        sim_c.push(0.0);
                        theory_c.push(0.0);
                        count_c.push(0);
                    }
                    sim_c[ph_idx] += ph.settled as f64;
                    theory_c[ph_idx] += theory.settled_lower_bound(&ph.dists);
                    count_c[ph_idx] += 1;
                }
            }
            println!(
                "graph {gi:2} rho {rho:3}: {} phases, {} relaxed, {} useless",
                res.phases.len(),
                res.total_relaxed,
                res.total_useless
            );
        }
    }

    // ---- CSV dumps -------------------------------------------------------
    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    for (ri, &rho) in rhos.iter().enumerate() {
        for ph in 0..counts[ri].len() {
            let c = counts[ri][ph] as f64;
            rows_a.push(format!("{ph},{rho},{:.4}", settled_acc[ri][ph] / c));
            rows_b.push(format!("{ph},{rho},{:.6}", hstar_acc[ri][ph] / c));
        }
    }
    let mut rows_c = Vec::new();
    for ph in 0..count_c.len() {
        let c = count_c[ph] as f64;
        rows_c.push(format!("{ph},{:.4},{:.4}", sim_c[ph] / c, theory_c[ph] / c));
    }
    let a = write_csv(
        &cfg.out_dir,
        "fig3a_settled_per_phase.csv",
        "phase,rho,settled_mean",
        &rows_a,
    )
    .unwrap();
    let b = write_csv(
        &cfg.out_dir,
        "fig3b_hstar_per_phase.csv",
        "phase,rho,h_star_mean",
        &rows_b,
    )
    .unwrap();
    let c = write_csv(
        &cfg.out_dir,
        "fig3c_theory_vs_sim.csv",
        "phase,sim_settled,theory_lower_bound",
        &rows_c,
    )
    .unwrap();

    // ---- Human-readable summary ------------------------------------------
    println!("\npanels (a, b): settled nodes and h* per phase (mean over graphs)");
    println!(
        "{:>6} | {:>24} | {:>27}",
        "phase", "settled (rho=0/128/512)", "h* (rho=0/128/512)"
    );
    let max_phases = counts.iter().map(|c| c.len()).max().unwrap_or(0);
    let probe_points: Vec<usize> = (0..max_phases)
        .filter(|&ph| ph < 3 || ph % (max_phases / 10).max(1) == 0 || ph + 3 >= max_phases)
        .collect();
    for &ph in &probe_points {
        let cell = |ri: usize, acc: &Vec<Vec<f64>>, width: usize, prec: usize| -> String {
            if ph < counts[ri].len() {
                format!("{:>width$.prec$}", acc[ri][ph] / counts[ri][ph] as f64)
            } else {
                format!("{:>width$}", "-")
            }
        };
        println!(
            "{:>6} | {} {} {} | {} {} {}",
            ph,
            cell(0, &settled_acc, 8, 1),
            cell(1, &settled_acc, 7, 1),
            cell(2, &settled_acc, 7, 1),
            cell(0, &hstar_acc, 9, 5),
            cell(1, &hstar_acc, 8, 5),
            cell(2, &hstar_acc, 8, 5),
        );
    }

    println!("\npanel (c): theory lower bound vs simulation (rho = 0)");
    println!(
        "{:>6} | {:>12} | {:>12}",
        "phase", "simulation", "lower bound"
    );
    for &ph in &probe_points {
        if ph < count_c.len() {
            println!(
                "{:>6} | {:>12.2} | {:>12.2}",
                ph,
                sim_c[ph] / count_c[ph] as f64,
                theory_c[ph] / count_c[ph] as f64
            );
        }
    }
    let gap = mean((0..count_c.len()).map(|ph| (sim_c[ph] - theory_c[ph]) / count_c[ph] as f64));
    println!("\nmean (simulation − bound) per phase: {gap:.3} nodes");
    println!("CSV: {}, {}, {}", a.display(), b.display(), c.display());
}
