//! Data-structure push/pop throughput — the congestion behaviour underlying
//! Figures 4–5.
//!
//! Single-threaded cost per op for each structure (pure overhead ranking)
//! plus a small contended producer/consumer scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use priosched_core::{
    CentralizedKPriority, HybridKPriority, PoolHandle, PriorityWorkStealing, StructuralKPriority,
    TaskPool,
};
use std::sync::Arc;
use std::time::Duration;

const OPS: u64 = 10_000;

fn push_pop_cycle<P: TaskPool<u64>>(pool: Arc<P>) {
    let mut h = pool.handle(0);
    for i in 0..OPS {
        // Pseudo-random priorities; xorshift-style scramble of i.
        let prio = i.wrapping_mul(0x9E3779B97F4A7C15) >> 32;
        h.push(prio, 64, i);
    }
    let mut got = 0;
    while h.pop().is_some() {
        got += 1;
    }
    assert_eq!(got, OPS);
}

fn bench_single_thread(c: &mut Criterion) {
    let mut g = c.benchmark_group("ds_single_thread_push_pop");
    g.throughput(Throughput::Elements(2 * OPS));
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("work_stealing", |b| {
        b.iter(|| push_pop_cycle(Arc::new(PriorityWorkStealing::new(1))))
    });
    g.bench_function("centralized", |b| {
        b.iter(|| push_pop_cycle(Arc::new(CentralizedKPriority::with_defaults(1))))
    });
    g.bench_function("hybrid", |b| {
        b.iter(|| push_pop_cycle(Arc::new(HybridKPriority::new(1))))
    });
    g.bench_function("structural", |b| {
        b.iter(|| push_pop_cycle(Arc::new(StructuralKPriority::new(1, 64))))
    });
    g.finish();
}

fn contended_cycle<P: TaskPool<u64>>(pool: Arc<P>, threads: usize) {
    let per = OPS / threads as u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                let mut h = pool.handle(t);
                let mut popped = 0u64;
                for i in 0..per {
                    let prio = i.wrapping_mul(0x9E3779B97F4A7C15) >> 32;
                    h.push(prio, 64, i);
                    if i % 2 == 1 {
                        // Interleave pops so both paths stay hot.
                        if h.pop().is_some() {
                            popped += 1;
                        }
                    }
                }
                while h.pop().is_some() {
                    popped += 1;
                }
                criterion::black_box(popped);
            });
        }
    });
}

fn bench_contended(c: &mut Criterion) {
    let threads = 2;
    let mut g = c.benchmark_group("ds_contended_push_pop");
    g.throughput(Throughput::Elements(2 * OPS));
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    for name in ["work_stealing", "centralized", "hybrid", "structural"] {
        g.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &t| {
            b.iter(|| match name {
                "work_stealing" => contended_cycle(Arc::new(PriorityWorkStealing::new(t)), t),
                "centralized" => {
                    contended_cycle(Arc::new(CentralizedKPriority::with_defaults(t)), t)
                }
                "hybrid" => contended_cycle(Arc::new(HybridKPriority::new(t)), t),
                _ => contended_cycle(Arc::new(StructuralKPriority::new(t, 64)), t),
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_single_thread, bench_contended);
criterion_main!(benches);
