//! Small internal utilities.

/// xorshift64* PRNG: one multiply + three shifts per draw.
///
/// The randomized placement of the centralized push (Listing 1) and victim
/// selection draw one random number per operation, so the generator sits on
/// the hot path; a cryptographic RNG would dominate push cost. Determinism
/// per seed keeps tests reproducible.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator; any seed is accepted (zero is remapped).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: seed ^ 0x9E37_79B9_7F4A_7C15 | 1,
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw from `[0, n)`. `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift; the modulo bias is < 2^-32 for the small
        // ranges used here (k ≤ 2^20, P ≤ 2^10), far below what scheduling
        // randomization could ever observe.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = XorShift64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = XorShift64::new(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        assert_ne!(a, 0);
    }

    #[test]
    fn roughly_uniform_over_small_range() {
        let mut rng = XorShift64::new(11);
        let n = 16u64;
        let draws = 64_000;
        let mut counts = vec![0u32; n as usize];
        for _ in 0..draws {
            counts[rng.below(n) as usize] += 1;
        }
        let expect = draws as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.10, "bucket {i} off by {dev:.3}");
        }
    }
}
