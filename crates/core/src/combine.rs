//! Flat-combining delegation for mutex-class sequential structures.
//!
//! The structural pool (and, eventually, the hybrid global list) protects a
//! sequential data structure with a single lock. Under contention every
//! operation migrates the structure's hot cache lines to the acquiring
//! core — the classic pattern where *delegation* wins: instead of moving
//! the data to the operation, move the operation to the data. Workers
//! publish their operation in a per-place *publication record*; whichever
//! worker holds the combiner lock walks all published records and executes
//! them back-to-back against the sequential structure, so the structure's
//! cache lines stay resident on one core for the whole pass.
//!
//! # Protocol
//!
//! Each place owns one cache-padded [`Slot`] holding an op cell, a response
//! cell, a three-state word (`EMPTY → PUBLISHED → DONE → EMPTY`), and a
//! [`ParkSlot`]. [`Combiner::execute`] proceeds as:
//!
//! 1. **Fast path:** `try_lock` the combiner lock. On success, apply the
//!    op directly (no publication), run bounded combining passes for any
//!    peers that published meanwhile, unlock, and wake still-pending peers.
//! 2. **Slow path:** write the op into the own slot, flip it to
//!    `PUBLISHED`, then loop: check for `DONE` (a combiner served us),
//!    retry `try_lock` (the combiner left; we take over — serving our own
//!    published op first), spin briefly, and finally park on the slot's
//!    `ParkSlot` via the register → re-check → park protocol from
//!    [`crate::park`].
//!
//! A combining pass walks every slot; for each `PUBLISHED` record it takes
//! the op, applies it, **writes the response into the slot and only then**
//! flips the state to `DONE` and wakes the slot's parker. Writing the
//! response before the `DONE` store (release) means a waiter that observes
//! `DONE` (acquire) always finds its response — the wake itself carries no
//! data, so waking before the response was visible would send the loser
//! back to sleep at best and return garbage at worst.
//!
//! # Tenure bound
//!
//! A combiner's tenure is bounded to [`Combiner::max_passes`] passes per
//! lock acquisition (a pass serves at most one op per place). Without the
//! bound, one unlucky worker could combine forever while its own place
//! starves — the usage-fairness problem from the delegation-lock
//! literature. When the bound trips with requests still published, the
//! leaving combiner wakes those waiters after unlocking so one of them
//! takes over the lock; its own op was served on acquisition, so progress
//! is never blocked on a parked ex-combiner.
//!
//! # Why nobody sleeps through an unlock (for long)
//!
//! The lost-wakeup risk is a waiter parking while the lock is free and its
//! request unserved. *Correctness* never depends on wakes: exactly-once
//! execution and response delivery are governed by the slot state word
//! alone, and every wake is paired with a state re-check. Only *progress*
//! depends on them, and it is covered three ways:
//!
//! 1. A combiner that serves a request flips it `DONE` and calls
//!    `wake_if_waiting`; the `SeqCst` fence pair in [`ParkSlot::prepare`] /
//!    [`ParkSlot::wake_if_waiting`] makes that handoff watertight (see
//!    `crate::park`'s module docs).
//! 2. A leaving combiner releases the lock and then walks the slots,
//!    waking every place still `PUBLISHED` so one of them takes over.
//! 3. The walk in (2) is deliberately *unfenced* — its loads may be
//!    satisfied before the unlock store drains, so a publication landing
//!    in that store-buffer-sized window can be missed while the
//!    publisher's own pre-park re-check still saw the lock held. For that
//!    reason waiters never park unboundedly: they park with
//!    [`PARK_TIMEOUT`] and on expiry re-check `DONE` and the lock word —
//!    finding the lock free, the waiter takes it and serves itself.
//!
//! The alternative to (3) is a full barrier between the unlock store and
//! the walk — an `mfence`-class instruction on **every** shared-structure
//! operation, including the uncontended fast path, which benchmarks as a
//! measurable regression against the plain-mutex baseline. The timeout
//! converts that per-op cost into a bounded (and vanishingly rare: the
//! window is a store-buffer drain) stall on the losing side of the race.
//!
//! # Memory safety
//!
//! The op/response cells are `UnsafeCell`s governed by the state word: the
//! owning place touches its cell only in `EMPTY` (writing the op) and
//! `DONE` (taking the response); a combiner touches it only in `PUBLISHED`
//! (taking the op, writing the response) and only while holding the
//! combiner lock. State transitions out of `PUBLISHED` are made only by a
//! lock holder, and transitions out of `EMPTY`/`DONE` only by the owner,
//! so at most one thread can access a cell at any state. The sequential
//! structure itself is touched only under the combiner lock (acquire CAS /
//! release-or-stronger store pair orders all accesses).

use crate::park::ParkSlot;
use crate::sync::atomic::{AtomicBool, AtomicU32, AtomicU8, Ordering};
use crate::sync::cell::UnsafeCell;
use crate::sync::{hint, thread};
use crossbeam_utils::CachePadded;

/// An operation that a [`Combiner`] can execute against the protected
/// sequential structure `S` on behalf of the publishing place.
pub trait CombineOp<S>: Send {
    /// What the publisher gets back.
    type Resp: Send;

    /// Executes the operation. Runs on whichever thread holds the combiner
    /// lock — not necessarily the publisher — so it must not rely on
    /// thread-local state.
    fn apply(self, shared: &mut S) -> Self::Resp;
}

/// Per-handle combining counters, folded into `PlaceStats` by the caller.
///
/// `ops` counts every operation this handle executed *while holding the
/// combiner lock* (its own plus delegated ones); `passes` counts slot-walk
/// passes that served at least one delegated op, so `ops / passes`
/// over-approximates the delegated ops-per-pass mean by the own-op share.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CombineStats {
    /// Combining passes that served at least one delegated op.
    pub passes: u64,
    /// Ops executed while holding the combiner lock (own + delegated).
    pub ops: u64,
    /// Most delegated ops served in a single pass.
    pub max_pass: u64,
    /// Times this handle parked waiting for its response.
    pub parks: u64,
}

impl CombineStats {
    /// Aggregate: sums, except `max_pass` which takes the maximum.
    pub fn merge(&mut self, other: &CombineStats) {
        self.passes += other.passes;
        self.ops += other.ops;
        self.max_pass = self.max_pass.max(other.max_pass);
        self.parks += other.parks;
    }
}

const EMPTY: u8 = 0;
const PUBLISHED: u8 = 1;
const DONE: u8 = 2;

/// Slow-path wait budget before falling back to parking: the first
/// [`SPIN_HINT`] iterations are pure `spin_loop` hints (the combiner is
/// usually mid-pass and the response lands within nanoseconds), the rest
/// are `yield_now` — on an oversubscribed host the combiner likely lost
/// the core, and donating the quantum gets the op served for the price of
/// a scheduler hop instead of a park/wake syscall pair.
const SPIN_LIMIT: u32 = if cfg!(loom) { 0 } else { 64 };
/// Busy-spin prefix of [`SPIN_LIMIT`].
const SPIN_HINT: u32 = 8;

/// Upper bound on one park in the slow path. Longer than any sane
/// combining pass (so legitimate waits rarely time out), short enough
/// that the rare missed post-unlock wake (module docs, "why nobody
/// sleeps through an unlock") is a blip, not a hang.
pub const PARK_TIMEOUT: std::time::Duration = std::time::Duration::from_micros(100);

/// Default combiner tenure (passes per lock acquisition).
pub const DEFAULT_MAX_PASSES: usize = 4;

/// One place's publication record.
struct Slot<O, R> {
    state: AtomicU8,
    cell: UnsafeCell<SlotCell<O, R>>,
    park: ParkSlot,
}

struct SlotCell<O, R> {
    op: Option<O>,
    resp: Option<R>,
}

impl<O, R> Slot<O, R> {
    fn new() -> Self {
        Slot {
            state: AtomicU8::new(EMPTY),
            cell: UnsafeCell::new(SlotCell {
                op: None,
                resp: None,
            }),
            park: ParkSlot::new(),
        }
    }
}

/// A sequential structure `S` fronted by flat-combining publication slots,
/// one per place. See the module docs for the protocol.
pub struct Combiner<S, O: CombineOp<S>> {
    lock: AtomicBool,
    /// Count of currently-`PUBLISHED` records: incremented right before a
    /// publish, decremented by whoever takes the op out of the cell. Lets
    /// the fast path skip both slot walks (combining passes and the
    /// post-unlock wake-walk) when nobody is waiting, instead of touching
    /// every place's cache-padded line on every uncontended op. A stale
    /// zero read falls into the same missed-wake window as the unfenced
    /// wake-walk and is covered the same way (bounded park).
    pending: AtomicU32,
    shared: UnsafeCell<S>,
    #[allow(clippy::type_complexity)]
    slots: Box<[CachePadded<Slot<O, O::Resp>>]>,
    max_passes: usize,
}

// Slots and the shared structure are handed between threads under the
// state-word / combiner-lock discipline documented on the module.
unsafe impl<S: Send, O: CombineOp<S>> Send for Combiner<S, O> {}
unsafe impl<S: Send, O: CombineOp<S>> Sync for Combiner<S, O> {}

impl<S, O: CombineOp<S>> Combiner<S, O> {
    /// Wraps `shared` for `places` places with the default tenure bound.
    ///
    /// # Panics
    /// Panics if `places == 0`.
    pub fn new(shared: S, places: usize) -> Self {
        Self::with_tenure(shared, places, DEFAULT_MAX_PASSES)
    }

    /// Wraps `shared` with an explicit tenure bound of `max_passes`
    /// combining passes per lock acquisition (minimum 1).
    ///
    /// # Panics
    /// Panics if `places == 0`.
    pub fn with_tenure(shared: S, places: usize, max_passes: usize) -> Self {
        assert!(places > 0, "need at least one place");
        Combiner {
            lock: AtomicBool::new(false),
            pending: AtomicU32::new(0),
            shared: UnsafeCell::new(shared),
            slots: (0..places).map(|_| CachePadded::new(Slot::new())).collect(),
            max_passes: max_passes.max(1),
        }
    }

    /// Number of publication slots (places).
    pub fn places(&self) -> usize {
        self.slots.len()
    }

    /// The tenure bound (combining passes per lock acquisition).
    pub fn max_passes(&self) -> usize {
        self.max_passes
    }

    /// Executes `op` on behalf of `place`, either directly (as the
    /// combiner) or by publishing it for whichever peer holds the combiner
    /// lock. Blocks (spin, then park) until the response is available.
    ///
    /// # Panics
    /// Panics if `place >= self.places()`. Must not be called reentrantly
    /// for the same place (each place is a single thread, per the
    /// `PoolHandle` ownership contract).
    pub fn execute(&self, place: usize, op: O, stats: &mut CombineStats) -> O::Resp {
        let slot = &self.slots[place];
        // Fast path: uncontended — combine without publishing.
        if self.try_lock() {
            // SAFETY: we hold the combiner lock, the only license to touch
            // the shared structure.
            let resp = self.shared.with_mut(|s| op.apply(unsafe { &mut *s }));
            stats.ops += 1;
            self.run_passes(place, stats);
            self.unlock_and_wake();
            return resp;
        }
        // Slow path: publish, then wait to be served or take over the lock.
        // SAFETY: own slot in EMPTY state — only the owner may touch it.
        slot.cell.with_mut(|c| unsafe { (*c).op = Some(op) });
        self.pending.fetch_add(1, Ordering::AcqRel);
        slot.state.store(PUBLISHED, Ordering::Release);
        let mut spins = 0u32;
        loop {
            if slot.state.load(Ordering::Acquire) == DONE {
                return self.take_resp(slot);
            }
            if self.try_lock() {
                // We are the combiner now. A leaving combiner may have
                // served us in its final pass; otherwise serve ourselves.
                let resp = if slot.state.load(Ordering::Acquire) == DONE {
                    self.take_resp(slot)
                } else {
                    // SAFETY: we hold the lock and the slot is PUBLISHED —
                    // no combiner will touch the cell, and we are its owner.
                    let op = slot
                        .cell
                        .with_mut(|c| unsafe { (*c).op.take() })
                        .expect("published op");
                    slot.state.store(EMPTY, Ordering::Relaxed);
                    self.pending.fetch_sub(1, Ordering::AcqRel);
                    stats.ops += 1;
                    // SAFETY: combiner lock held (as above).
                    self.shared.with_mut(|s| op.apply(unsafe { &mut *s }))
                };
                self.run_passes(place, stats);
                self.unlock_and_wake();
                return resp;
            }
            #[allow(clippy::absurd_extreme_comparisons)] // SPIN_LIMIT is 0 under cfg(loom)
            if spins < SPIN_LIMIT {
                spins += 1;
                if spins <= SPIN_HINT {
                    hint::spin_loop();
                } else {
                    // Donate the quantum: on an oversubscribed core the
                    // combiner is likely descheduled, and a yield serves
                    // the op far cheaper than a park/wake syscall pair.
                    thread::yield_now();
                }
                continue;
            }
            // Register → re-check → park (see crate::park). Re-check both
            // wake reasons: response written, or combiner lock released.
            // The park is timeout-bounded: if the post-unlock wake-walk
            // raced past this publication (module docs), the expiry
            // re-check finds the lock free and takes over.
            let token = slot.park.prepare();
            if slot.state.load(Ordering::Acquire) == DONE || !self.lock.load(Ordering::Acquire) {
                slot.park.cancel();
                continue;
            }
            stats.parks += 1;
            slot.park.park_timeout(token, PARK_TIMEOUT);
        }
    }

    fn try_lock(&self) -> bool {
        // Load first: a failed CAS still takes the line exclusive, which
        // is exactly the migration combining exists to avoid.
        !self.lock.load(Ordering::Relaxed)
            && self
                .lock
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    /// Takes the response from an own slot observed `DONE`.
    fn take_resp(&self, slot: &Slot<O, O::Resp>) -> O::Resp {
        // SAFETY: state is DONE — only the owner may touch the cell, and
        // the combiner's release store made the response visible.
        let resp = slot
            .cell
            .with_mut(|c| unsafe { (*c).resp.take() })
            .expect("response for DONE slot");
        slot.state.store(EMPTY, Ordering::Release);
        resp
    }

    /// Runs up to `max_passes` combining passes. Caller holds the lock;
    /// `place`'s own slot is already EMPTY (served on acquisition).
    fn run_passes(&self, place: usize, stats: &mut CombineStats) {
        for _ in 0..self.max_passes {
            // Nothing published → don't touch P cache-padded slot lines.
            if self.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            let mut served = 0u64;
            for (i, slot) in self.slots.iter().enumerate() {
                if i == place || slot.state.load(Ordering::Acquire) != PUBLISHED {
                    continue;
                }
                // SAFETY: lock held + slot PUBLISHED — the owner is waiting
                // and will not touch the cell until it observes DONE.
                let op = slot
                    .cell
                    .with_mut(|c| unsafe { (*c).op.take() })
                    .expect("published op");
                self.pending.fetch_sub(1, Ordering::AcqRel);
                // SAFETY: shared-structure access under the combiner lock.
                let resp = self.shared.with_mut(|s| op.apply(unsafe { &mut *s }));
                // Response before DONE before wake: a woken waiter must
                // find its response (module docs). The mutation self-check
                // (`--cfg loom_mutate_combine_done`) flips this order and
                // `tests/loom_models.rs` asserts the model catches the
                // waiter reading an empty response cell.
                #[cfg(not(loom_mutate_combine_done))]
                {
                    // SAFETY: as above — lock held, owner parked on DONE.
                    slot.cell.with_mut(|c| unsafe { (*c).resp = Some(resp) });
                    slot.state.store(DONE, Ordering::Release);
                }
                #[cfg(loom_mutate_combine_done)]
                {
                    // Deliberately wrong: DONE can become visible before
                    // the response is written.
                    slot.state.store(DONE, Ordering::Release);
                    // SAFETY: as above.
                    slot.cell.with_mut(|c| unsafe { (*c).resp = Some(resp) });
                }
                slot.park.wake_if_waiting();
                served += 1;
            }
            if served == 0 {
                break;
            }
            stats.passes += 1;
            stats.ops += served;
            stats.max_pass = stats.max_pass.max(served);
        }
    }

    /// Releases the combiner lock, then wakes every place whose request is
    /// still published so one of them takes over (tenure bound tripped, or
    /// the request arrived after our last pass). Unlock strictly before
    /// wake: waking first would let a woken waiter observe the lock still
    /// held and re-park for a full timeout. The walk is best-effort by
    /// design — no fence between the store and the loads, so a racing
    /// publication can slip past; the publisher's bounded park covers that
    /// window (module docs, point 3).
    fn unlock_and_wake(&self) {
        self.lock.store(false, Ordering::Release);
        if self.pending.load(Ordering::Acquire) == 0 {
            return;
        }
        for slot in self.slots.iter() {
            if slot.state.load(Ordering::Acquire) == PUBLISHED {
                slot.park.wake_if_waiting();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    /// Test op against a Vec<u64>: push a value, report the new length.
    struct PushOp(u64);
    impl CombineOp<Vec<u64>> for PushOp {
        type Resp = usize;
        fn apply(self, shared: &mut Vec<u64>) -> usize {
            shared.push(self.0);
            shared.len()
        }
    }

    #[test]
    fn single_place_fast_path_applies_directly() {
        let c: Combiner<Vec<u64>, PushOp> = Combiner::new(Vec::new(), 1);
        let mut stats = CombineStats::default();
        assert_eq!(c.execute(0, PushOp(7), &mut stats), 1);
        assert_eq!(c.execute(0, PushOp(9), &mut stats), 2);
        // Uncontended ops never publish, park, or run a delegated pass.
        assert_eq!(stats.ops, 2);
        assert_eq!(stats.passes, 0);
        assert_eq!(stats.parks, 0);
    }

    #[test]
    fn concurrent_ops_all_applied_exactly_once() {
        let places = 4usize;
        let per = 5_000u64;
        let c: Arc<Combiner<Vec<u64>, PushOp>> = Arc::new(Combiner::with_tenure(
            Vec::new(),
            places,
            1, // tiny tenure: force frequent combiner handoffs
        ));
        let total_ops = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for p in 0..places {
                let c = Arc::clone(&c);
                let total_ops = Arc::clone(&total_ops);
                s.spawn(move || {
                    let mut stats = CombineStats::default();
                    for i in 0..per {
                        let len = c.execute(p, PushOp(p as u64 * per + i), &mut stats);
                        assert!(len >= 1);
                    }
                    total_ops.fetch_add(stats.ops, Ordering::Relaxed);
                });
            }
        });
        // Every op ran while *someone* held the lock…
        assert_eq!(total_ops.load(Ordering::Relaxed), places as u64 * per);
        // …and landed in the Vec exactly once.
        let mut got = match Arc::try_unwrap(c) {
            Ok(c) => c.shared.into_inner(),
            Err(_) => panic!("combiner still shared"),
        };
        got.sort_unstable();
        let want: Vec<u64> = (0..places as u64 * per).collect();
        assert_eq!(got, want);
    }
}
