//! In-tree shim for `rand_chacha`'s `ChaCha8Rng` (offline build).
//!
//! The workspace uses `ChaCha8Rng` purely as a *high-quality, seedable,
//! deterministic* generator for reproducible graph generation and
//! simulation — none of its cryptographic properties. This shim keeps the
//! type name (so call sites and the future switch back to the real crate
//! stay unchanged) but implements xoshiro256++, whose statistical quality
//! is far beyond what the 6-sigma sampler tests can distinguish.
//!
//! Note: the byte streams differ from real ChaCha8, so seeded artifacts
//! (generated graphs) are reproducible *within* this tree, not across the
//! shim/real-crate boundary.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (xoshiro256++ under a ChaCha8Rng name).
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard way to seed xoshiro state.
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain reference).
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
