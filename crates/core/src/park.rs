//! Parker/waker subsystem: blocking idle instead of burning a core.
//!
//! Every idle path in the streamed runtime — workers whose pops fail,
//! [`crate::service::PoolService::join`] waiting for a drain, producers
//! blocked on a full ingress lane — used to spin with capped backoff
//! (sleep 50 µs, poll, repeat). This module replaces that with real
//! parking: an idle thread sleeps on a condvar until an *event* (a
//! submission, a spawn, a drain, abort, quiescence) wakes it, so a
//! quiescent pool consumes no CPU at all.
//!
//! # The lost-wakeup problem, and the eventcount that solves it
//!
//! Naive "check condition, then sleep" loses wakeups: the event can fire
//! between the check and the sleep, and nobody will ever wake the sleeper.
//! [`ParkSlot`] is an *eventcount* (a sequence lock for sleeping): waiters
//! follow a register → re-check → park protocol and wakers always
//! advance an epoch, so the race window closes:
//!
//! 1. **Register:** [`ParkSlot::prepare`] increments the waiter count,
//!    issues a [`SeqCst`] fence, and reads the current epoch as a token.
//! 2. **Re-check:** the caller re-examines its wait condition (is there
//!    work? did the pool abort?). Only if there is still nothing to do
//!    does it proceed; otherwise it [`ParkSlot::cancel`]s.
//! 3. **Park:** [`ParkSlot::park`] sleeps only while the epoch still
//!    equals the token, re-checking under the slot's mutex.
//!
//! A waker ([`ParkSlot::wake_all`]) bumps the epoch *first*, then
//! notifies if any waiter is registered. Whichever way the race goes, no
//! wakeup is lost:
//!
//! * epoch bumped before the token was read → `park` returns immediately
//!   (token is stale);
//! * epoch bumped after → the bump happens either before the waiter takes
//!   the slot mutex (the mutex-guarded epoch check sees it) or while the
//!   waiter sleeps (the notify, sent under the same mutex, wakes it).
//!
//! # Two flavors of waiter: threads and async wakers
//!
//! A slot holds two kinds of waiter ([`Waiter`]): an **OS thread**
//! ([`Waiter::Thread`]), which sleeps on the slot's condvar, and an
//! **async task** ([`Waiter::Waker`]), which deposits its
//! [`std::task::Waker`] in the slot and returns to its executor. Both
//! flavors follow the *same* register → re-check → park protocol through
//! [`ParkSlot::prepare`] / [`ParkSlot::park_as`]; they differ only in how
//! the final "sleep" is realized, so the lost-wakeup argument above covers
//! them uniformly:
//!
//! * a thread re-checks the epoch under the slot mutex before each condvar
//!   wait;
//! * a waker is stored under that *same* mutex, after a mutex-guarded
//!   epoch check. If the epoch already moved, [`ParkSlot::park_as`]
//!   returns [`Parked::Woken`] and the future simply retries — the exact
//!   analogue of `park` returning immediately on a stale token. If it has
//!   not, the waker is in the set before the mutex is released, and every
//!   subsequent [`ParkSlot::wake_all`] (which takes the mutex, because the
//!   `prepare` registration is still counted in `waiters`) drains the set
//!   and calls [`std::task::Waker::wake`]. Either way, an event concurrent
//!   with registration cannot be missed.
//!
//! A registered waker keeps its `prepare` registration held until it is
//! either fired by a wake (which releases the count) or revoked by
//! [`ParkSlot::revoke_waker`] (future re-polled or dropped). Wakers are
//! invoked *outside* the slot mutex — an executor may run arbitrary code
//! in `wake` — after the count has already been released under it.
//!
//! The cheap-waker path ([`ParkSlot::wake_if_waiting`]) skips even the
//! epoch bump when no waiter is registered. That gate is sound because of
//! the [`SeqCst`] fences on both sides: the waker makes its event visible
//! (e.g. pushes a task), fences, then reads the waiter count; the waiter
//! increments the count, fences, then re-checks the condition. In the
//! seq-cst total order either the waker's read sees the registration (and
//! wakes), or the waiter's re-check is ordered after the waker's fence
//! and must see the event (and doesn't park). C++20 [atomics.fences]
//! makes this precise; the point is that *neither* side can miss *both*
//! signals.
//!
//! # Why parked workers cannot strand work
//!
//! Parking is only sound if every transition from "nothing to do" to
//! "something to do" produces a wake event, and if a single re-check
//! suffices to observe pool state. The scheduler's events are enumerated
//! in [`crate::ingest`] (submissions, drains, spawns, the pending counter
//! reaching zero, producer-count reaching zero, abort). The re-check is
//! reliable because of a structural invariant shared by the exact pool
//! implementations: **a place's local component is filled only by its own
//! worker** (pushes, steals, raids, and lane drains all land in the
//! *executing* place's component). A worker only parks after its own pop
//! failed, so a parked worker's local component is empty and stays empty;
//! any remaining task is therefore in an *awake* worker's local component
//! (its next pop finds it) or in a shared component that pops scan
//! deterministically. The relaxed MultiQueue satisfies the invariant
//! vacuously — it has no per-place private component at all; every queue
//! is shared, and its pop ends with an exhaustive try-lock scan of all
//! c·P queues before reporting empty (see [`crate::multiqueue`]). Either
//! way, the "all workers parked with work remaining" state is
//! unreachable.
//!
//! [`SeqCst`]: crate::sync::atomic::Ordering::SeqCst

use crate::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use crate::sync::stdsync::{Condvar, Mutex, MutexGuard};
use crossbeam_utils::CachePadded;
use std::task::Waker;
use std::time::Duration;
#[cfg(not(loom))]
use std::time::Instant;

/// The two flavors of waiter a [`ParkSlot`] can hold (see module docs).
pub enum Waiter<'a> {
    /// The calling OS thread: blocks on the slot's condvar until a wake.
    Thread,
    /// An async task: its waker is deposited in the slot and called on the
    /// next wake; the task's future returns `Poll::Pending` meanwhile.
    Waker(&'a Waker),
}

/// Outcome of [`ParkSlot::park_as`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parked {
    /// The wait is over: a thread waiter was woken (or found the token
    /// already stale), or a waker waiter found the token stale before
    /// registering. Re-check the wait condition and retry.
    Woken,
    /// The waker is registered; the future must return `Poll::Pending`.
    /// Revoke with [`ParkSlot::revoke_waker`] when re-polled or dropped
    /// before the wake arrives.
    Registered(WakerId),
}

/// Identifies one registered async waker within its slot (returned by
/// [`ParkSlot::park_as`], consumed by [`ParkSlot::revoke_waker`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WakerId(u64);

/// Mutex-guarded slot state: the deposited async wakers.
#[derive(Default)]
struct WakerSet {
    next_id: u64,
    entries: Vec<(u64, Waker)>,
}

/// Takes a possibly poisoned std mutex guard; a panicking waiter leaves
/// only wakers behind, which are safe to fire or drop (same stance as the
/// workspace's `parking_lot` facade).
fn lock_ignore_poison(mutex: &Mutex<WakerSet>) -> MutexGuard<'_, WakerSet> {
    match mutex.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// One park/wake rendezvous point (an *eventcount*; see module docs for
/// the register → re-check → park protocol and its loss-freedom
/// argument).
#[derive(Default)]
pub struct ParkSlot {
    /// Wake-event sequence number; advanced by every wake.
    epoch: AtomicU64,
    /// Waiters registered (between [`ParkSlot::prepare`] and the matching
    /// park/cancel, plus deposited wakers until they fire or are revoked).
    /// Gates the waker's slow path.
    waiters: AtomicUsize,
    mutex: Mutex<WakerSet>,
    condvar: Condvar,
}

impl ParkSlot {
    /// Creates an idle slot.
    pub fn new() -> Self {
        ParkSlot::default()
    }

    /// Registers the caller (thread or async task) as a waiter and
    /// returns the epoch token to park on. **Must** be followed by a
    /// re-check of the wait condition and then exactly one of
    /// [`ParkSlot::park`], [`ParkSlot::park_timeout`],
    /// [`ParkSlot::park_as`], or [`ParkSlot::cancel`].
    pub fn prepare(&self) -> u64 {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        // Pairs with the fence in `wake_if_waiting`: after this fence the
        // caller's condition re-check is guaranteed to observe any event
        // whose waker read `waiters` before this registration.
        fence(Ordering::SeqCst);
        self.epoch.load(Ordering::SeqCst)
    }

    /// Deregisters without parking (the re-check found work to do).
    pub fn cancel(&self) {
        self.waiters.fetch_sub(1, Ordering::Release);
    }

    /// Blocks until some wake advances the epoch past `token`. Consumes
    /// the registration made by the matching [`ParkSlot::prepare`].
    /// Returns immediately if the epoch already moved.
    pub fn park(&self, token: u64) {
        let mut guard = lock_ignore_poison(&self.mutex);
        while self.epoch.load(Ordering::SeqCst) == token {
            guard = match self.condvar.wait(guard) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        drop(guard);
        self.waiters.fetch_sub(1, Ordering::Release);
    }

    /// Parks as either waiter flavor (see [`Waiter`] and the module docs).
    ///
    /// * [`Waiter::Thread`] behaves exactly like [`ParkSlot::park`] and
    ///   always returns [`Parked::Woken`].
    /// * [`Waiter::Waker`] deposits the waker **if the token is still
    ///   current** (checked under the slot mutex, so the check and the
    ///   deposit are atomic against [`ParkSlot::wake_all`]) and returns
    ///   [`Parked::Registered`]; the `prepare` registration stays held
    ///   until the wake fires the waker or [`ParkSlot::revoke_waker`]
    ///   removes it. A stale token deregisters and returns
    ///   [`Parked::Woken`] — the caller re-checks and retries, exactly as
    ///   a thread returning from `park` would.
    pub fn park_as(&self, token: u64, waiter: Waiter<'_>) -> Parked {
        match waiter {
            Waiter::Thread => {
                self.park(token);
                Parked::Woken
            }
            Waiter::Waker(waker) => {
                let mut guard = lock_ignore_poison(&self.mutex);
                if self.epoch.load(Ordering::SeqCst) != token {
                    drop(guard);
                    self.waiters.fetch_sub(1, Ordering::Release);
                    return Parked::Woken;
                }
                let id = guard.next_id;
                guard.next_id += 1;
                guard.entries.push((id, waker.clone()));
                Parked::Registered(WakerId(id))
            }
        }
    }

    /// Removes a waker deposited by [`ParkSlot::park_as`], releasing its
    /// registration. Returns `false` when the waker was already consumed
    /// by a wake (which released the registration itself) — the two paths
    /// release exactly once between them. Call on every re-poll and on
    /// future drop.
    pub fn revoke_waker(&self, id: WakerId) -> bool {
        let mut guard = lock_ignore_poison(&self.mutex);
        let Some(pos) = guard.entries.iter().position(|(eid, _)| *eid == id.0) else {
            return false;
        };
        guard.entries.swap_remove(pos);
        drop(guard);
        self.waiters.fetch_sub(1, Ordering::Release);
        true
    }

    /// Like [`ParkSlot::park`], but gives up after `timeout`. Returns
    /// `true` if woken by an epoch advance, `false` on timeout. Used
    /// where the wait condition can change without a parker event (e.g.
    /// finish-region counters flipped by task completions).
    #[cfg(not(loom))]
    pub fn park_timeout(&self, token: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = lock_ignore_poison(&self.mutex);
        let woken = loop {
            if self.epoch.load(Ordering::SeqCst) != token {
                break true;
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                break false;
            };
            guard = match self.condvar.wait_timeout(guard, remaining) {
                Ok((g, _)) => g,
                Err(p) => p.into_inner().0,
            };
        };
        drop(guard);
        self.waiters.fetch_sub(1, Ordering::Release);
        woken
    }

    /// Model build of [`ParkSlot::park_timeout`]: model time does not
    /// advance, so a scheduler-granted timeout wake *is* deadline expiry —
    /// re-arming the wait because `Instant::now()` hasn't moved would ask
    /// the scheduler for unboundedly many timeout wakes (a livelock in the
    /// explored state space, not in the real code).
    #[cfg(loom)]
    pub fn park_timeout(&self, token: u64, timeout: Duration) -> bool {
        let _ = timeout;
        let mut guard = lock_ignore_poison(&self.mutex);
        let woken = loop {
            if self.epoch.load(Ordering::SeqCst) != token {
                break true;
            }
            let (g, timeout_res) = match self.condvar.wait_timeout(guard, timeout) {
                Ok(r) => r,
                Err(p) => p.into_inner(),
            };
            guard = g;
            if timeout_res.timed_out() {
                // One last epoch check so a wake that raced the timeout is
                // still reported as a wake, as in the real build.
                break self.epoch.load(Ordering::SeqCst) != token;
            }
        };
        drop(guard);
        self.waiters.fetch_sub(1, Ordering::Release);
        woken
    }

    /// Wakes every current and in-flight waiter — parked threads *and*
    /// deposited async wakers: advances the epoch, then notifies
    /// registered sleepers. Always safe to call; one atomic increment plus
    /// one load when nobody is parked.
    pub fn wake_all(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            // Taking the mutex orders the notify against a waiter that
            // passed its epoch check but has not started waiting yet.
            let mut guard = lock_ignore_poison(&self.mutex);
            self.condvar.notify_all();
            let fired = std::mem::take(&mut guard.entries);
            // Release each drained waker's registration under the mutex,
            // so a concurrent `revoke_waker` (which no longer finds the
            // entry) cannot double-release it…
            if !fired.is_empty() {
                self.waiters.fetch_sub(fired.len(), Ordering::Release);
            }
            drop(guard);
            // …but invoke the wakers outside it: `wake` runs executor code
            // that may take arbitrary locks of its own.
            for (_, waker) in fired {
                waker.wake();
            }
        }
    }

    /// Hot-path wake: skips the epoch bump entirely when no waiter is
    /// registered. The [`SeqCst`] fence pairs with [`ParkSlot::prepare`]
    /// (see module docs) so the skip can never lose a registration that
    /// would miss the triggering event.
    ///
    /// [`SeqCst`]: Ordering::SeqCst
    pub fn wake_if_waiting(&self) {
        // Mutation self-check (`--cfg loom_mutate_park_fence`): removing
        // this fence re-opens the classic lost-wakeup window — the event
        // store can sit in the waker's store buffer while it reads a
        // pre-registration `waiters == 0`, and the waiter's re-check then
        // misses the event. `tests/loom_models.rs` asserts the model
        // checker finds that deadlock.
        #[cfg(not(loom_mutate_park_fence))]
        fence(Ordering::SeqCst);
        if self.waiters.load(Ordering::Relaxed) > 0 {
            self.wake_all();
        }
    }

    /// Currently registered waiters (diagnostics; racy).
    pub fn waiters(&self) -> usize {
        self.waiters.load(Ordering::Relaxed)
    }
}

/// The parking fabric of one streamed pool (or service): one slot per
/// place for its worker, one control slot for join/shutdown waiters, and
/// one space slot for producers blocked on full ingress lanes.
///
/// Per-place worker slots make submission wakes *targeted*: a task pushed
/// into lane `l` can only be drained by worker `l`, so only slot `l` is
/// woken. Broadcast events (abort, quiescence, spawned work that any
/// place could steal or spy) go through [`Parker::wake_workers_if_idle`]
/// / [`Parker::wake_all`].
pub struct Parker {
    workers: Box<[CachePadded<ParkSlot>]>,
    control: CachePadded<ParkSlot>,
    space: CachePadded<ParkSlot>,
    /// Workers currently registered or parked on their slot; gates the
    /// spawn-path broadcast to one fence + one load when everyone is busy.
    idle_workers: AtomicUsize,
    /// Idle-path iterations of all worker loops (diagnostics: a parked
    /// fleet must not advance this — see `PoolService::idle_iters`).
    idle_iters: AtomicU64,
}

impl Parker {
    /// Creates the fabric for `places` worker slots.
    pub fn new(places: usize) -> Self {
        Parker {
            workers: (0..places)
                .map(|_| CachePadded::new(ParkSlot::new()))
                .collect(),
            control: CachePadded::new(ParkSlot::new()),
            space: CachePadded::new(ParkSlot::new()),
            idle_workers: AtomicUsize::new(0),
            idle_iters: AtomicU64::new(0),
        }
    }

    /// Registers worker `place` as idle; same contract as
    /// [`ParkSlot::prepare`] (re-check, then park or cancel).
    pub fn worker_prepare(&self, place: usize) -> u64 {
        self.idle_workers.fetch_add(1, Ordering::SeqCst);
        self.workers[place].prepare()
    }

    /// Deregisters worker `place` without parking.
    pub fn worker_cancel(&self, place: usize) {
        self.workers[place].cancel();
        self.idle_workers.fetch_sub(1, Ordering::Release);
    }

    /// Parks worker `place` on its slot until an event.
    pub fn worker_park(&self, place: usize, token: u64) {
        self.workers[place].park(token);
        self.idle_workers.fetch_sub(1, Ordering::Release);
    }

    /// Bounded park for worker `place` (see [`ParkSlot::park_timeout`]).
    pub fn worker_park_timeout(&self, place: usize, token: u64, timeout: Duration) {
        self.workers[place].park_timeout(token, timeout);
        self.idle_workers.fetch_sub(1, Ordering::Release);
    }

    /// Targeted wake of worker `place` (a submission landed in its lane).
    pub fn wake_worker(&self, place: usize) {
        self.workers[place].wake_if_waiting();
    }

    /// Broadcast to every idle worker, gated so the common busy-fleet case
    /// costs one fence + one load. Called after spawns and lane drains —
    /// freshly stored tasks may be stealable/spyable by any place.
    pub fn wake_workers_if_idle(&self) {
        fence(Ordering::SeqCst);
        if self.idle_workers.load(Ordering::Relaxed) > 0 {
            for slot in &self.workers {
                slot.wake_all();
            }
        }
    }

    /// The join/shutdown waiters' slot.
    pub fn control(&self) -> &ParkSlot {
        &self.control
    }

    /// The blocked-producers' slot (full lanes waiting for a drain).
    pub fn space(&self) -> &ParkSlot {
        &self.space
    }

    /// Wakes everything — workers, control waiters, blocked producers.
    /// The abort / quiescence / shutdown broadcast.
    pub fn wake_all(&self) {
        for slot in &self.workers {
            slot.wake_all();
        }
        self.control.wake_all();
        self.space.wake_all();
    }

    /// Records one idle-path iteration of a worker loop.
    pub fn note_idle_iter(&self) {
        self.idle_iters.fetch_add(1, Ordering::Relaxed);
    }

    /// Total idle-path iterations across all worker loops.
    pub fn idle_iters(&self) -> u64 {
        self.idle_iters.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn park_returns_immediately_on_stale_token() {
        let slot = ParkSlot::new();
        let token = slot.prepare();
        slot.wake_all(); // epoch moves past the token
        slot.park(token); // must not block
        assert_eq!(slot.waiters(), 0);
    }

    #[test]
    fn cancel_deregisters() {
        let slot = ParkSlot::new();
        let _token = slot.prepare();
        assert_eq!(slot.waiters(), 1);
        slot.cancel();
        assert_eq!(slot.waiters(), 0);
    }

    #[test]
    fn wake_all_unblocks_a_parked_thread() {
        let slot = Arc::new(ParkSlot::new());
        let parked = Arc::new(AtomicBool::new(false));
        let t = {
            let slot = Arc::clone(&slot);
            let parked = Arc::clone(&parked);
            std::thread::spawn(move || {
                let token = slot.prepare();
                parked.store(true, Ordering::Release);
                slot.park(token);
            })
        };
        while !parked.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        // The thread is registered (maybe not yet asleep); wake_all must
        // reach it either way.
        slot.wake_all();
        t.join().unwrap();
    }

    #[test]
    fn wake_if_waiting_covers_the_register_recheck_race() {
        // Event fires between prepare() and park(): the epoch token is
        // stale by park time, so the park is a no-op.
        let slot = ParkSlot::new();
        let token = slot.prepare();
        slot.wake_if_waiting(); // sees waiters == 1, bumps epoch
        slot.park(token); // must not block
    }

    #[test]
    fn park_timeout_expires_without_event() {
        let slot = ParkSlot::new();
        let token = slot.prepare();
        let woken = slot.park_timeout(token, Duration::from_millis(5));
        assert!(!woken, "no event: the bounded park must time out");
    }

    #[test]
    fn parker_targets_and_broadcasts() {
        let parker = Arc::new(Parker::new(2));
        // Targeted: a registered worker is woken by its own slot.
        let token = parker.worker_prepare(1);
        parker.wake_worker(1);
        parker.worker_park(1, token); // stale token, returns
                                      // Gated broadcast: with nobody idle this is one fence + load.
        parker.wake_workers_if_idle();
        // With an idle worker it must wake it.
        let t = {
            let parker = Arc::clone(&parker);
            std::thread::spawn(move || {
                let token = parker.worker_prepare(0);
                parker.worker_park(0, token);
            })
        };
        while parker.idle_workers.load(Ordering::Acquire) == 0 {
            std::hint::spin_loop();
        }
        parker.wake_workers_if_idle();
        t.join().unwrap();
    }

    /// Waker whose `wake` flips a shared counter (observable from tests).
    struct CountWaker(AtomicUsize);

    impl std::task::Wake for CountWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn count_waker() -> (Arc<CountWaker>, std::task::Waker) {
        let counter = Arc::new(CountWaker(AtomicUsize::new(0)));
        let waker = std::task::Waker::from(Arc::clone(&counter));
        (counter, waker)
    }

    #[test]
    fn registered_waker_fires_on_wake_and_releases_registration() {
        let slot = ParkSlot::new();
        let (counter, waker) = count_waker();
        let token = slot.prepare();
        let Parked::Registered(id) = slot.park_as(token, Waiter::Waker(&waker)) else {
            panic!("fresh token must register");
        };
        assert_eq!(slot.waiters(), 1, "registration held while deposited");
        slot.wake_all();
        assert_eq!(counter.0.load(Ordering::SeqCst), 1, "waker must fire");
        assert_eq!(slot.waiters(), 0, "wake releases the registration");
        assert!(!slot.revoke_waker(id), "already consumed by the wake");
    }

    #[test]
    fn stale_token_rejects_waker_registration() {
        let slot = ParkSlot::new();
        let (counter, waker) = count_waker();
        let token = slot.prepare();
        slot.wake_all(); // epoch moves past the token
        assert_eq!(
            slot.park_as(token, Waiter::Waker(&waker)),
            Parked::Woken,
            "stale token: the future must retry, not sleep"
        );
        assert_eq!(slot.waiters(), 0);
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn revoked_waker_never_fires() {
        let slot = ParkSlot::new();
        let (counter, waker) = count_waker();
        let token = slot.prepare();
        let Parked::Registered(id) = slot.park_as(token, Waiter::Waker(&waker)) else {
            panic!("fresh token must register");
        };
        assert!(slot.revoke_waker(id));
        assert_eq!(slot.waiters(), 0);
        slot.wake_all();
        assert_eq!(counter.0.load(Ordering::SeqCst), 0, "revoked ≠ woken");
    }

    #[test]
    fn thread_flavor_of_park_as_matches_park() {
        let slot = ParkSlot::new();
        let token = slot.prepare();
        slot.wake_all();
        assert_eq!(slot.park_as(token, Waiter::Thread), Parked::Woken);
        assert_eq!(slot.waiters(), 0);
    }

    /// The satellite race test: a waker registered *concurrently* with a
    /// wake is never lost. Whatever the interleaving, either registration
    /// observes the stale token (the future retries immediately) or the
    /// wake fires the deposited waker — a registration that neither
    /// retries nor fires would hang an async submitter forever.
    #[test]
    fn waker_registered_concurrently_with_wake_is_never_lost() {
        for _ in 0..2_000 {
            let slot = Arc::new(ParkSlot::new());
            let (counter, waker) = count_waker();
            let waiter = {
                let slot = Arc::clone(&slot);
                std::thread::spawn(move || {
                    let token = slot.prepare();
                    slot.park_as(token, Waiter::Waker(&waker))
                })
            };
            slot.wake_all();
            match waiter.join().unwrap() {
                Parked::Woken => {} // stale token observed: retry path
                Parked::Registered(_) => {
                    // Deposited before our wake drained the set, or after
                    // it (in which case a later wake must still fire it —
                    // the registration is still counted, so the next
                    // wake_all takes the slow path).
                    if counter.0.load(Ordering::SeqCst) == 0 {
                        slot.wake_all();
                    }
                    assert_eq!(
                        counter.0.load(Ordering::SeqCst),
                        1,
                        "registered waker lost across a concurrent wake"
                    );
                }
            }
            assert_eq!(slot.waiters(), 0);
        }
    }

    #[test]
    fn control_and_space_slots_are_independent() {
        let parker = Parker::new(1);
        let ctl = parker.control().prepare();
        parker.space().wake_all(); // must not wake control
        assert!(!parker.control().park_timeout(ctl, Duration::from_millis(2)));
        let sp = parker.space().prepare();
        parker.control().wake_all();
        assert!(!parker.space().park_timeout(sp, Duration::from_millis(2)));
        // wake_all reaches both.
        let ctl = parker.control().prepare();
        let sp = parker.space().prepare();
        parker.wake_all();
        parker.control().park(ctl);
        parker.space().park(sp);
    }
}
