#![warn(missing_docs)]

//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every figure of the paper's evaluation (§5.4.1, §5.5) has a binary in
//! `src/bin/` that regenerates its series:
//!
//! | binary            | paper figure | series |
//! |-------------------|--------------|--------|
//! | `fig3_simulation` | Figure 3     | settled/phase, h*_t/phase, theory-vs-simulation |
//! | `fig4_scaling`    | Figure 4     | time & nodes relaxed vs P (k = 512) |
//! | `fig5_k_sweep`    | Figure 5     | time & nodes relaxed vs k (P fixed) |
//!
//! All binaries accept the same flags (parsed by [`HarnessConfig`]):
//!
//! * `--full` — the paper's workload: n = 10000, p = 0.5, 20 graphs
//!   (several GiB of CSR and minutes of runtime; the default is a scaled
//!   workload with the same shapes);
//! * `--n N`, `--p P`, `--graphs G`, `--places P`, `--out DIR`.
//!
//! Output goes to stdout (human-readable tables) and `results/*.csv`
//! (machine-readable, one row per point).

use priosched_graph::{erdos_renyi, CsrGraph, ErdosRenyiConfig};
use std::io::Write;
use std::path::PathBuf;

pub mod chaos;
pub mod latency;

/// Seed base for the replicated graphs: graph `i` uses `GRAPH_SEED_BASE+i`,
/// identical across every figure so all experiments see the same graphs
/// (§5.4.1: "exactly the same 20 random graphs").
pub const GRAPH_SEED_BASE: u64 = 1000;

/// Common harness configuration.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Nodes per graph.
    pub n: usize,
    /// Edge probability.
    pub p: f64,
    /// Number of replicated graphs (paper: 20).
    pub graphs: usize,
    /// Maximum place count to sweep (paper machine: 80).
    pub places: usize,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
    /// Whether `--full` (paper-scale) was requested.
    pub full: bool,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            n: 2000,
            p: 0.5,
            graphs: 5,
            places: 8,
            out_dir: PathBuf::from("results"),
            full: false,
        }
    }
}

impl HarnessConfig {
    /// Parses process arguments; unknown flags abort with usage help.
    pub fn from_args() -> Self {
        let mut cfg = HarnessConfig::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut take = |name: &str| -> String {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match arg.as_str() {
                "--full" => {
                    cfg.full = true;
                    cfg.n = 10_000;
                    cfg.p = 0.5;
                    cfg.graphs = 20;
                    cfg.places = 80;
                }
                "--n" => cfg.n = take("--n").parse().expect("--n wants an integer"),
                "--p" => cfg.p = take("--p").parse().expect("--p wants a float"),
                "--graphs" => {
                    cfg.graphs = take("--graphs").parse().expect("--graphs wants an integer")
                }
                "--places" => {
                    cfg.places = take("--places").parse().expect("--places wants an integer")
                }
                "--out" => cfg.out_dir = PathBuf::from(take("--out")),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --full | --n N | --p P | --graphs G | --places P | --out DIR"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        cfg
    }

    /// Generates the replicated graph set (seeded, reproducible).
    pub fn graph_set(&self) -> Vec<CsrGraph> {
        (0..self.graphs)
            .map(|i| {
                let g = erdos_renyi(&ErdosRenyiConfig {
                    n: self.n,
                    p: self.p,
                    seed: GRAPH_SEED_BASE + i as u64,
                });
                if !g.is_connected() {
                    eprintln!(
                        "warning: graph {i} (n={}, p={}) is disconnected; \
                         relaxation counts will undershoot n",
                        self.n, self.p
                    );
                }
                g
            })
            .collect()
    }

    /// Describes the environment, flagging host limitations honestly.
    pub fn banner(&self, figure: &str) {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        println!("=== {figure} ===");
        println!(
            "workload: {} graphs, n = {}, p = {}, seeds {}..{}",
            self.graphs,
            self.n,
            self.p,
            GRAPH_SEED_BASE,
            GRAPH_SEED_BASE + self.graphs as u64 - 1
        );
        println!("host: {cores} hardware thread(s); paper testbed: 80-core Xeon, 1 TB RAM");
        if self.places > cores {
            println!(
                "note: sweeping up to {} places on {cores} hardware thread(s): \
                 wall-clock scaling will flatten from oversubscription, while \
                 'nodes relaxed' (ordering quality) remains meaningful",
                self.places
            );
        }
        if !self.full {
            println!("scaled workload; pass --full for the paper's n = 10000 / 20 graphs");
        }
        println!();
    }
}

/// Mean of an f64 iterator (0 for empty input).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Writes a CSV with a header row; creates the output directory if needed.
pub fn write_csv(
    dir: &std::path::Path,
    file: &str,
    header: &str,
    rows: &[String],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(file);
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{header}")?;
    for row in rows {
        writeln!(f, "{row}")?;
    }
    Ok(path)
}

/// The paper's place sweep for Figure 4, filtered to `max`.
pub fn fig4_place_sweep(max: usize) -> Vec<usize> {
    [1usize, 2, 3, 5, 10, 20, 40, 80]
        .into_iter()
        .filter(|&p| p <= max.max(1))
        .collect()
}

/// The paper's k sweep for Figure 5 (x-axis: 0, 1, 2, 4, …, 32768),
/// optionally truncated for scaled runs.
pub fn fig5_k_sweep(full: bool) -> Vec<usize> {
    let mut ks = vec![0usize, 1];
    let mut k = 2;
    let cap = if full { 32_768 } else { 8_192 };
    while k <= cap {
        ks.push(k);
        k *= 2;
    }
    ks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_scaled_down() {
        let cfg = HarnessConfig::default();
        assert!(cfg.n < 10_000);
        assert!(cfg.graphs < 20);
        assert!(!cfg.full);
    }

    #[test]
    fn graph_set_is_reproducible() {
        let cfg = HarnessConfig {
            n: 60,
            p: 0.2,
            graphs: 2,
            ..HarnessConfig::default()
        };
        let a = cfg.graph_set();
        let b = cfg.graph_set();
        assert_eq!(a.len(), 2);
        assert_eq!(
            a[0].undirected_edges().collect::<Vec<_>>(),
            b[0].undirected_edges().collect::<Vec<_>>()
        );
        // Different seeds per graph.
        assert_ne!(
            a[0].undirected_edges().collect::<Vec<_>>(),
            a[1].undirected_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn fig4_sweep_respects_cap() {
        assert_eq!(fig4_place_sweep(8), vec![1, 2, 3, 5]);
        assert_eq!(fig4_place_sweep(80), vec![1, 2, 3, 5, 10, 20, 40, 80]);
        assert_eq!(fig4_place_sweep(0), vec![1]);
    }

    #[test]
    fn fig5_sweep_is_paper_axis() {
        let full = fig5_k_sweep(true);
        assert_eq!(full[0], 0);
        assert_eq!(*full.last().unwrap(), 32_768);
        assert!(full.contains(&512));
        let scaled = fig5_k_sweep(false);
        assert!(*scaled.last().unwrap() <= 8_192);
    }

    #[test]
    fn mean_handles_empty_and_values() {
        assert_eq!(mean([]), 0.0);
        assert_eq!(mean([2.0, 4.0]), 3.0);
    }

    #[test]
    fn write_csv_round_trip() {
        let dir = std::env::temp_dir().join("priosched-bench-test");
        let path = write_csv(
            &dir,
            "t.csv",
            "a,b",
            &["1,2".to_string(), "3,4".to_string()],
        )
        .unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
    }
}
