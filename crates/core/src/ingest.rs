//! Sharded ingestion lanes: feeding tasks into a *running* pool.
//!
//! The paper's runtime (§2) is closed-world — every root is known at
//! [`crate::scheduler::Scheduler::run`] time and termination is a single
//! outstanding-task counter hitting zero. A pool that serves external
//! traffic needs the opposite: producers that are **not** workers must be
//! able to submit prioritized tasks while the pool is draining, without
//! funnelling through one contended entry point.
//!
//! This module supplies the open-world half:
//!
//! * [`IngressLanes`] — one MPSC lane per place. Producers append under a
//!   short per-lane lock; the place's worker moves whole lane contents into
//!   its pool handle at the *pop boundary* (between task executions), so the
//!   scheduler-module ordering argument is untouched: no task batch is ever
//!   popped ahead of execution, and a freshly spawned better-priority task
//!   can never get stuck behind pre-popped ingested work.
//! * [`IngestHandle`] — a cloneable producer handle. Submissions are
//!   round-robined across lanes so ingestion itself shards; batch
//!   submissions ride one lane (one lock) and are charged element-wise
//!   against the `k`/ρ bounds when drained, exactly like
//!   [`crate::scheduler::SpawnCtx::spawn_batch`].
//!
//! # Quiescence
//!
//! With external producers, "counter is zero" is no longer termination —
//! a producer might be about to submit. Termination generalizes to
//! **quiescence**: the pending counter is zero **and** every lane is empty
//! **and** every [`IngestHandle`] has been dropped (a producer refcount).
//! The refcount makes the open world closable: dropping the last handle is
//! the producers' collective "no more input" signal, after which the usual
//! drain argument applies.
//!
//! The check order matters and is fixed in [`IngressShared::quiescent`]:
//! producers first, then the queued count, then (in the scheduler) the
//! pending counter. Under the usage contract — every producer handle is
//! minted **before** the streamed run starts, and new handles come only
//! from cloning live ones while the run is in flight — a producer count
//! that reads zero can never rise again, so all queued increments have
//! happened; a lane→pool transfer increments `pending` *before*
//! decrementing `queued`, so a task is always visible to at least one of
//! the two counters; reading `queued == 0` after `producers == 0` and
//! `pending == 0` last therefore proves nothing is left anywhere.
//!
//! [`IngressLanes::handle`] *can* re-arm a drained set of lanes (the count
//! goes 0 → 1 again); that is how the same lanes feed a *subsequent*
//! streamed run. What the contract rules out is racing such a mint against
//! a run that is already terminating — see [`IngressLanes::handle`].

use crate::pool::PoolHandle;
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One queued submission: priority, relaxation bound, payload.
type Entry<T> = (u64, usize, T);

/// One MPSC lane: producer-locked, cache-line-padded against its
/// neighbours.
type Lane<T> = CachePadded<Mutex<Vec<Entry<T>>>>;

/// Shared state behind [`IngressLanes`] and every [`IngestHandle`].
pub(crate) struct IngressShared<T: Send> {
    /// One MPSC lane per place; workers drain their own index.
    lanes: Box<[Lane<T>]>,
    /// Tasks submitted but not yet transferred into the pool. Incremented
    /// before the lane push; decremented only after the pool push (the
    /// transfer increments the scheduler's pending counter first, so no
    /// task is ever invisible to both counters).
    queued: AtomicU64,
    /// Live [`IngestHandle`] count. While a streamed run is in flight,
    /// zero is absorbing *by contract*: clones need a live handle, and
    /// minting fresh handles mid-run is ruled out (see
    /// [`IngressLanes::handle`]); the lanes object itself is not a
    /// producer.
    producers: AtomicUsize,
    /// Round-robin seed so successive handles start on different lanes.
    next_lane: AtomicUsize,
}

impl<T: Send> IngressShared<T> {
    /// `true` when no producer can ever submit again and every lane has
    /// been transferred into the pool. Combined with `pending == 0` (read
    /// *after* this, see module docs) this is the streamed termination
    /// condition.
    pub(crate) fn quiescent(&self) -> bool {
        self.producers.load(Ordering::Acquire) == 0 && self.queued.load(Ordering::Acquire) == 0
    }

    /// Cheap "is there anything to drain anywhere" hint.
    pub(crate) fn queued_hint(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Moves the contents of lane `place` into `handle`, charging the
    /// scheduler's `pending` counter before any task becomes poppable.
    ///
    /// Tasks are pushed through [`PoolHandle::push_batch`] in maximal
    /// consecutive same-`k` runs, so a drained batch is charged
    /// element-wise against the `k`/ρ bounds exactly as the equivalent
    /// sequence of spawns would be. Uses `try_lock`: if a producer holds
    /// the lane, the worker retries on its next pop boundary instead of
    /// blocking (the queued count keeps termination honest meanwhile).
    ///
    /// `scratch` and `kbatch` are caller-owned reusable buffers; both are
    /// left empty. Returns the number of tasks transferred.
    pub(crate) fn drain_into(
        &self,
        place: usize,
        handle: &mut dyn PoolHandle<T>,
        pending: &AtomicU64,
        scratch: &mut Vec<Entry<T>>,
        kbatch: &mut Vec<(u64, T)>,
    ) -> u64 {
        debug_assert!(scratch.is_empty() && kbatch.is_empty());
        {
            let Some(mut lane) = self.lanes[place].try_lock() else {
                return 0;
            };
            if lane.is_empty() {
                return 0;
            }
            std::mem::swap(&mut *lane, scratch);
        }
        let n = scratch.len() as u64;
        // Pending rises before the tasks are poppable *and* before queued
        // falls — the task stays visible to the termination check
        // throughout the transfer.
        pending.fetch_add(n, Ordering::AcqRel);
        let mut run_k: Option<usize> = None;
        for (prio, k, task) in scratch.drain(..) {
            if run_k != Some(k) {
                if let Some(prev_k) = run_k.take() {
                    handle.push_batch(prev_k, kbatch);
                }
                run_k = Some(k);
            }
            kbatch.push((prio, task));
        }
        if let Some(prev_k) = run_k {
            handle.push_batch(prev_k, kbatch);
        }
        self.queued.fetch_sub(n, Ordering::AcqRel);
        n
    }
}

/// The per-place ingress lanes of one pool run (or service).
///
/// Create one with as many lanes as the pool has places, mint
/// [`IngestHandle`]s for every producer **before** starting the streamed
/// run (a run that observes zero producers and empty lanes terminates),
/// then hand it to [`crate::Scheduler::run_stream`] /
/// [`crate::facade::run_stream_on_kind`].
///
/// Tasks still sitting in lanes when the lanes (and all handles) are
/// dropped are dropped exactly once, like any owned value — lanes store
/// tasks by value and never hand out raw pointers.
pub struct IngressLanes<T: Send> {
    shared: Arc<IngressShared<T>>,
}

impl<T: Send> IngressLanes<T> {
    /// Creates `lanes` empty ingress lanes (one per place of the pool this
    /// will feed).
    ///
    /// # Panics
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "IngressLanes needs at least one lane");
        let lanes = (0..lanes)
            .map(|_| CachePadded::new(Mutex::new(Vec::new())))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        IngressLanes {
            shared: Arc::new(IngressShared {
                lanes,
                queued: AtomicU64::new(0),
                producers: AtomicUsize::new(0),
                next_lane: AtomicUsize::new(0),
            }),
        }
    }

    /// Number of lanes (== places of the pool this feeds).
    pub fn num_lanes(&self) -> usize {
        self.shared.lanes.len()
    }

    /// Mints a new producer handle, raising the producer refcount. The
    /// handle starts on a different lane than the previous one so
    /// producers spread across lanes even if each submits little.
    ///
    /// **Contract:** mint every producer's handle *before* the streamed
    /// run it feeds starts (mid-run producers clone a live handle
    /// instead). A run terminates the moment it observes zero producers
    /// and nothing queued; a handle minted concurrently with that
    /// observation re-arms the lanes for a *subsequent* run — its
    /// submissions stay queued (visible via [`IngressLanes::queued`]) and
    /// are only drained by the next `run_stream` over these lanes, or
    /// dropped with them.
    pub fn handle(&self) -> IngestHandle<T> {
        self.shared.producers.fetch_add(1, Ordering::AcqRel);
        let lane = self.shared.next_lane.fetch_add(1, Ordering::Relaxed) % self.num_lanes();
        IngestHandle {
            shared: Arc::clone(&self.shared),
            lane,
        }
    }

    /// Tasks submitted but not yet transferred into a pool.
    pub fn queued(&self) -> u64 {
        self.shared.queued.load(Ordering::Acquire)
    }

    /// Live producer handles.
    pub fn producers(&self) -> usize {
        self.shared.producers.load(Ordering::Acquire)
    }

    /// The shared state, for the scheduler/service side.
    pub(crate) fn shared(&self) -> &Arc<IngressShared<T>> {
        &self.shared
    }
}

/// A producer's capability to submit tasks into a running pool.
///
/// Cloneable; each clone counts toward the producer refcount that gates
/// streamed termination (see module docs). Drop every handle when the
/// producer side is done — a retained handle keeps
/// [`crate::Scheduler::run_stream`] (deliberately) waiting for more input.
pub struct IngestHandle<T: Send> {
    shared: Arc<IngressShared<T>>,
    /// Lane cursor, advanced round-robin per submission.
    lane: usize,
}

impl<T: Send> IngestHandle<T> {
    /// Submits one task with priority `prio` (smaller = higher) and
    /// relaxation bound `k` (§2.2), into the next lane in round-robin
    /// order.
    pub fn submit(&mut self, prio: u64, k: usize, task: T) {
        self.shared.queued.fetch_add(1, Ordering::AcqRel);
        let lane = self.advance();
        self.shared.lanes[lane].lock().push((prio, k, task));
    }

    /// Submits a batch of `(prio, task)` pairs sharing the relaxation
    /// bound `k`, draining `batch`. The whole batch rides one lane — one
    /// lock acquisition — and is later transferred into the pool with one
    /// [`PoolHandle::push_batch`], each element charged individually
    /// against the `k`/ρ bounds.
    pub fn submit_batch(&mut self, k: usize, batch: &mut Vec<(u64, T)>) {
        if batch.is_empty() {
            return;
        }
        self.shared
            .queued
            .fetch_add(batch.len() as u64, Ordering::AcqRel);
        let lane = self.advance();
        self.shared.lanes[lane]
            .lock()
            .extend(batch.drain(..).map(|(prio, task)| (prio, k, task)));
    }

    /// Number of lanes this handle shards over.
    pub fn num_lanes(&self) -> usize {
        self.shared.lanes.len()
    }

    fn advance(&mut self) -> usize {
        let lane = self.lane;
        self.lane = (self.lane + 1) % self.shared.lanes.len();
        lane
    }
}

impl<T: Send> Clone for IngestHandle<T> {
    fn clone(&self) -> Self {
        self.shared.producers.fetch_add(1, Ordering::AcqRel);
        let lane = self.shared.next_lane.fetch_add(1, Ordering::Relaxed) % self.shared.lanes.len();
        IngestHandle {
            shared: Arc::clone(&self.shared),
            lane,
        }
    }
}

impl<T: Send> Drop for IngestHandle<T> {
    fn drop(&mut self) {
        self.shared.producers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::PlaceStats;

    /// Minimal recording handle: pushes append, pops unsupported.
    #[derive(Default)]
    struct RecordingHandle {
        pushed: Vec<(u64, usize, u64)>,
        batches: Vec<usize>,
    }

    impl PoolHandle<u64> for RecordingHandle {
        fn push(&mut self, prio: u64, k: usize, task: u64) {
            self.pushed.push((prio, k, task));
        }
        fn pop(&mut self) -> Option<u64> {
            None
        }
        fn push_batch(&mut self, k: usize, batch: &mut Vec<(u64, u64)>) {
            self.batches.push(batch.len());
            for (prio, task) in batch.drain(..) {
                self.pushed.push((prio, k, task));
            }
        }
        fn stats(&self) -> PlaceStats {
            PlaceStats::default()
        }
    }

    #[test]
    fn producer_refcount_tracks_handles() {
        let lanes: IngressLanes<u64> = IngressLanes::new(2);
        assert_eq!(lanes.producers(), 0);
        let h1 = lanes.handle();
        let h2 = h1.clone();
        assert_eq!(lanes.producers(), 2);
        drop(h1);
        assert_eq!(lanes.producers(), 1);
        drop(h2);
        assert_eq!(lanes.producers(), 0);
        assert!(lanes.shared().quiescent());
    }

    #[test]
    fn submissions_round_robin_across_lanes() {
        let lanes: IngressLanes<u64> = IngressLanes::new(4);
        let mut h = lanes.handle();
        for i in 0..8u64 {
            h.submit(i, 4, i);
        }
        assert_eq!(lanes.queued(), 8);
        // Every lane received exactly two scalar submissions.
        for lane in 0..4 {
            assert_eq!(lanes.shared().lanes[lane].lock().len(), 2, "lane {lane}");
        }
    }

    #[test]
    fn batch_rides_one_lane_and_drains_grouped_by_k() {
        let lanes: IngressLanes<u64> = IngressLanes::new(2);
        let mut h = lanes.handle();
        let mut batch = vec![(1u64, 10u64), (2, 20)];
        h.submit_batch(8, &mut batch);
        assert!(batch.is_empty());
        // A second batch with a different k lands on the other lane; put it
        // on the same lane by submitting twice (round-robin wraps).
        let mut batch = vec![(3u64, 30u64)];
        h.submit_batch(16, &mut batch);
        let mut b2 = vec![(4u64, 40u64)];
        h.submit_batch(16, &mut b2);
        assert_eq!(lanes.queued(), 4);

        let pending = AtomicU64::new(0);
        let mut rec = RecordingHandle::default();
        let (mut scratch, mut kbatch) = (Vec::new(), Vec::new());
        let n0 = lanes
            .shared()
            .drain_into(0, &mut rec, &pending, &mut scratch, &mut kbatch);
        let n1 = lanes
            .shared()
            .drain_into(1, &mut rec, &pending, &mut scratch, &mut kbatch);
        assert_eq!((n0, n1), (3, 1), "round-robin: lanes 0, 1, 0");
        assert_eq!(pending.load(Ordering::Relaxed), 4);
        assert_eq!(lanes.queued(), 0);
        let mut tasks: Vec<(u64, usize, u64)> = rec.pushed.clone();
        tasks.sort();
        assert_eq!(
            tasks,
            vec![(1, 8, 10), (2, 8, 20), (3, 16, 30), (4, 16, 40)]
        );
        // Lane 0 held the k=8 pair then the second k=16 single; the k-run
        // grouping must split exactly at the k change, never merge across
        // it: lane 0 drains as batches [2, 1], lane 1 as [1].
        assert_eq!(rec.batches, vec![2, 1, 1]);
    }

    #[test]
    fn drain_reports_empty_lane_as_zero() {
        let lanes: IngressLanes<u64> = IngressLanes::new(1);
        let pending = AtomicU64::new(0);
        let mut rec = RecordingHandle::default();
        let (mut scratch, mut kbatch) = (Vec::new(), Vec::new());
        assert_eq!(
            lanes
                .shared()
                .drain_into(0, &mut rec, &pending, &mut scratch, &mut kbatch),
            0
        );
        assert_eq!(pending.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn quiescent_requires_both_empty_lanes_and_no_producers() {
        let lanes: IngressLanes<u64> = IngressLanes::new(1);
        assert!(lanes.shared().quiescent());
        let mut h = lanes.handle();
        assert!(
            !lanes.shared().quiescent(),
            "live producer blocks quiescence"
        );
        h.submit(1, 4, 1);
        drop(h);
        assert!(
            !lanes.shared().quiescent(),
            "queued task blocks quiescence even with no producers"
        );
        let pending = AtomicU64::new(0);
        let mut rec = RecordingHandle::default();
        let (mut scratch, mut kbatch) = (Vec::new(), Vec::new());
        lanes
            .shared()
            .drain_into(0, &mut rec, &pending, &mut scratch, &mut kbatch);
        assert!(lanes.shared().quiescent());
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = IngressLanes::<u64>::new(0);
    }
}
