//! `loom::cell::UnsafeCell`: unsynchronized data whose accesses are
//! visible scheduling points.
//!
//! The data lives natively (a plain `std::cell::UnsafeCell`), so reads
//! and writes take effect immediately — but each access passes through a
//! model decision point, which lets the explorer preempt between a cell
//! write and the atomic publish that is supposed to order it. That is
//! enough to catch publish-before-write bugs (the store-buffer modeling
//! of the *atomic* side supplies the reordering).

/// Model `UnsafeCell` with loom's closure-based access API.
#[derive(Debug)]
pub struct UnsafeCell<T: ?Sized>(std::cell::UnsafeCell<T>);

impl<T> UnsafeCell<T> {
    /// Wrap a value.
    pub fn new(data: T) -> UnsafeCell<T> {
        UnsafeCell(std::cell::UnsafeCell::new(data))
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

impl<T: ?Sized> UnsafeCell<T> {
    /// Immutable access through a raw pointer.
    ///
    /// # Safety contract (checked by convention, not the model)
    ///
    /// The caller promises the usual `UnsafeCell` aliasing rules; the
    /// model only inserts a scheduling point.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        crate::rt::cell_access();
        f(self.0.get())
    }

    /// Mutable access through a raw pointer; see [`UnsafeCell::with`].
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        crate::rt::cell_access();
        f(self.0.get())
    }

    /// Exclusive access without a scheduling point.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut()
    }
}
