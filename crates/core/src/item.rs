//! Tagged task items and their recycling pool.
//!
//! Both k-priority structures store every task inside an *item* carrying the
//! task payload plus scheduling metadata (`place`, `k`, priority) and a
//! **tag** (§4.1.1, §4.1.3). The tag is initialized to the item's position
//! in the owning structure — positions are strictly increasing — and a task
//! is *taken* by atomically CASing the tag from the expected position to a
//! sentinel. Because a recycled item is always re-tagged with a fresh, never
//! previously used position, a stale reference's CAS can never succeed: this
//! is the paper's ABA protection, reproduced here unchanged.
//!
//! # Memory management substitution
//!
//! The paper allocates items through a wait-free memory manager \[18\] and
//! reuses an item "as soon as the previous task has been executed". We keep
//! the reuse scheme but back it with an [`ItemPool`]: a grow-only directory
//! of item blocks plus an intrusive lock-free free list (a Treiber stack
//! over 32-bit item indices with a version-counted head, so pops are
//! ABA-safe without double-wide CAS). Item memory is released only when the
//! pool is dropped, which makes it sound for stale references to *read the
//! tag* of a recycled item — the dereference is always into live memory,
//! and the tag comparison detects the recycling.
//!
//! # Batched allocation
//!
//! The free list is intrusive, so a whole chain of items can be popped or
//! pushed with **one CAS** ([`ItemPool::acquire_batch`],
//! [`ItemPool::release_batch`]). On top of that, [`ItemCache`] gives each
//! place a private stash refilled/flushed in batches: the hot path of a
//! batched `push_batch`/`try_pop_batch` touches the shared free-list head
//! once per [`ItemCache::REFILL`] items instead of once per item.
//!
//! # Payload handoff
//!
//! One deliberate deviation from Listing 2: the paper reads the task out of
//! the item *before* the take-CAS because their items may be recycled
//! immediately after the CAS. For arbitrary `T` that read would be a data
//! race. Here the unique CAS winner reads the payload *after* winning and
//! only then releases the item for reuse ([`Item::try_take`] +
//! [`ItemPool::release`]), so the handoff is race-free without changing the
//! algorithm's structure.

use crate::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use crate::sync::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ptr;

/// Tag of an item sitting in the free list (or never used). No payload.
pub const TAG_FREE: u64 = u64::MAX;
/// Tag of an item whose task has been taken. No payload.
pub const TAG_TAKEN: u64 = u64::MAX - 1;
/// Exclusive upper bound for position tags.
pub const MAX_POSITION: u64 = u64::MAX - 2;

/// Items per allocation block. Tiny under the model: every atomic field
/// of every item registers with the execution, and the drop walk visits
/// all of them.
const BLOCK_LEN: usize = if cfg!(loom) { 8 } else { 1024 };
/// Maximum number of blocks (fixed-size directory; ≈ 67M items per pool).
const MAX_BLOCKS: usize = if cfg!(loom) { 4 } else { 65_536 };
/// "No item" marker in the intrusive free list.
const NIL: u32 = u32::MAX;

/// A task wrapper with take-once semantics.
///
/// Field access rules (enforced by the structures, not the type system):
/// * `payload` is written exactly once per lifecycle, by the thread that
///   acquired the item from the pool, *before* the item is published;
/// * `payload` is read exactly once, by the unique winner of the take-CAS;
/// * all other fields are atomics and may be read by any thread at any time
///   (reads of recycled items yield stale metadata, which callers tolerate —
///   any decision based on it is revalidated by the tag CAS).
pub struct Item<T> {
    /// Position tag, [`TAG_TAKEN`], or [`TAG_FREE`].
    pub tag: AtomicU64,
    /// Priority key (smaller = higher priority).
    pub prio: AtomicU64,
    /// Id of the place that created the current task.
    pub place: AtomicU32,
    /// Per-task relaxation parameter `k`.
    pub k: AtomicU32,
    /// This item's index in the pool directory (immutable after creation).
    index: u32,
    /// Intrusive free-list link: index of the next free item, or [`NIL`].
    /// Only meaningful while the item sits in the free list.
    next_free: AtomicU32,
    payload: UnsafeCell<MaybeUninit<T>>,
}

impl<T> Item<T> {
    fn empty(index: u32) -> Self {
        Item {
            tag: AtomicU64::new(TAG_FREE),
            prio: AtomicU64::new(0),
            place: AtomicU32::new(0),
            k: AtomicU32::new(0),
            index,
            next_free: AtomicU32::new(NIL),
            payload: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }

    /// Initializes a freshly acquired item with a new task.
    ///
    /// Does **not** set the tag: the caller stores the position tag with
    /// `Release` ordering as the final step before (or together with)
    /// publication, which is what makes the payload visible to the taker.
    ///
    /// # Safety
    /// The caller must have exclusive ownership of the item (freshly
    /// returned by [`ItemPool::acquire`], not yet published).
    pub unsafe fn init(&self, place: u32, k: u32, prio: u64, task: T) {
        debug_assert_eq!(self.tag.load(Ordering::Relaxed), TAG_FREE);
        // SAFETY: exclusive ownership per this function's contract.
        self.payload.with_mut(|p| unsafe {
            (*p).write(task);
        });
        self.prio.store(prio, Ordering::Relaxed);
        self.place.store(place, Ordering::Relaxed);
        self.k.store(k, Ordering::Relaxed);
    }

    /// Attempts to take the task by CASing the tag from `expected_tag` to
    /// [`TAG_TAKEN`]. On success the unique winner receives the payload.
    ///
    /// Fails (returns `None`) when the item was already taken, or recycled
    /// under a different position — the ABA case the tag exists to detect.
    pub fn try_take(&self, expected_tag: u64) -> Option<T> {
        debug_assert!(expected_tag < MAX_POSITION);
        if self
            .tag
            .compare_exchange(expected_tag, TAG_TAKEN, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: the CAS succeeded, so we are the unique winner for
            // this lifecycle; the publisher's Release store of the tag
            // happens-before our Acquire, making the payload write visible.
            // The item cannot be recycled until we put it back in the pool.
            Some(self.payload.with(|p| unsafe { (*p).assume_init_read() }))
        } else {
            None
        }
    }

    /// `true` when the item currently carries the given position tag
    /// (cheap pre-check to skip CAS attempts on dead references).
    #[inline]
    pub fn is_live_at(&self, expected_tag: u64) -> bool {
        self.tag.load(Ordering::Acquire) == expected_tag
    }
}

/// A block of items; owned by the pool directory.
struct Block<T> {
    items: Box<[Item<T>]>,
}

/// Grow-only, recycle-forever item pool.
///
/// * `acquire`/`acquire_batch` pop the intrusive free list (one CAS per
///   call, regardless of batch size), allocating a new block only when the
///   list is empty;
/// * `release`/`release_batch` re-tag items [`TAG_FREE`] and push them back
///   (again one CAS per call);
/// * memory is reclaimed only on drop, at which point payloads of still-live
///   items (pushed but never taken) are dropped in place.
pub struct ItemPool<T> {
    /// Free-list head: `(version << 32) | index`. The version counts
    /// successful CASes, which makes multi-node pops ABA-safe: any
    /// interleaved pop/push bumps the version and fails our CAS.
    free_head: AtomicU64,
    /// Directory of blocks; entry `b` owns indices `[b·1024, (b+1)·1024)`.
    blocks: Box<[AtomicPtr<Block<T>>]>,
    /// Next directory slot to claim (fetch_add gives growers unique slots).
    next_block: AtomicUsize,
    allocated: AtomicU64,
}

#[inline]
fn pack(version: u64, index: u32) -> u64 {
    (version << 32) | index as u64
}

#[inline]
fn unpack(head: u64) -> (u64, u32) {
    (head >> 32, head as u32)
}

impl<T: Send> ItemPool<T> {
    /// Creates an empty pool; the first block is allocated lazily.
    pub fn new() -> Self {
        ItemPool {
            free_head: AtomicU64::new(pack(0, NIL)),
            blocks: (0..MAX_BLOCKS)
                .map(|_| AtomicPtr::new(ptr::null_mut()))
                .collect(),
            next_block: AtomicUsize::new(0),
            allocated: AtomicU64::new(0),
        }
    }

    /// Resolves an item index to its (pool-owned, immortal) item.
    #[inline]
    fn item_at(&self, idx: u32) -> *const Item<T> {
        let block = self.blocks[idx as usize / BLOCK_LEN].load(Ordering::Acquire);
        debug_assert!(!block.is_null(), "index into unallocated block");
        // SAFETY: an index only circulates after its block was published
        // with Release; blocks live until pool drop.
        unsafe { &(*block).items[idx as usize % BLOCK_LEN] as *const Item<T> }
    }

    /// Fetches a free item. The returned item has tag [`TAG_FREE`] and no
    /// payload; the caller must [`Item::init`] it and set its tag before
    /// publication.
    pub fn acquire(&self) -> *const Item<T> {
        let mut out = [ptr::null::<Item<T>>(); 1];
        let got = self.acquire_into(&mut out);
        debug_assert_eq!(got, 1);
        out[0]
    }

    /// Fetches up to `max` free items with a single free-list CAS,
    /// appending them to `out`. Always returns at least one item (growing
    /// the pool if the free list is empty); returns the number appended.
    pub fn acquire_batch(&self, out: &mut Vec<*const Item<T>>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        // Fill in place: grow `out` with placeholders, let `acquire_into`
        // write into the new tail, then trim — no temporary allocation on
        // this hot path.
        let old_len = out.len();
        out.resize(old_len + max, ptr::null());
        let got = self.acquire_into(&mut out[old_len..]);
        out.truncate(old_len + got);
        got
    }

    /// Pops up to `buf.len()` items from the free list with one CAS (or
    /// allocates a fresh block); fills `buf` from the front and returns the
    /// count (≥ 1).
    fn acquire_into(&self, buf: &mut [*const Item<T>]) -> usize {
        debug_assert!(!buf.is_empty());
        loop {
            let head = self.free_head.load(Ordering::Acquire);
            let (version, first) = unpack(head);
            if first == NIL {
                return self.grow_into(buf);
            }
            // Walk up to buf.len() nodes. Reads of `next_free` may race
            // with concurrent recycling; the version check below rejects
            // any walk that observed a mutated chain.
            let mut n = 0;
            let mut idx = first;
            while n < buf.len() && idx != NIL {
                let item = self.item_at(idx);
                buf[n] = item;
                n += 1;
                // SAFETY: immortal pool memory.
                idx = unsafe { &*item }.next_free.load(Ordering::Acquire);
            }
            if self
                .free_head
                .compare_exchange(
                    head,
                    pack(version.wrapping_add(1), idx),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                #[cfg(debug_assertions)]
                for &p in &buf[..n] {
                    // SAFETY: immortal pool memory; we just won the CAS, so
                    // these nodes are exclusively ours.
                    debug_assert_eq!(
                        unsafe { &*p }.tag.load(Ordering::Relaxed),
                        TAG_FREE,
                        "free-list item must be tagged FREE"
                    );
                }
                return n;
            }
        }
    }

    /// Allocates a new block into a freshly claimed directory slot, fills
    /// `buf` from it and pushes the remainder onto the free list.
    fn grow_into(&self, buf: &mut [*const Item<T>]) -> usize {
        let slot = self.next_block.fetch_add(1, Ordering::Relaxed);
        assert!(slot < MAX_BLOCKS, "item pool exhausted its directory");
        let base = (slot * BLOCK_LEN) as u32;
        let items: Box<[Item<T>]> = (0..BLOCK_LEN)
            .map(|i| Item::empty(base + i as u32))
            .collect();
        let block = Box::into_raw(Box::new(Block { items }));
        // Publish the block before any of its indices can reach another
        // thread through the free list.
        self.blocks[slot].store(block, Ordering::Release);
        self.allocated
            .fetch_add(BLOCK_LEN as u64, Ordering::Relaxed);
        // SAFETY: just published; we still own every item in it.
        let items = unsafe { &(*block).items };
        let take = buf.len().min(BLOCK_LEN);
        for (i, slot_out) in buf.iter_mut().take(take).enumerate() {
            *slot_out = &items[i] as *const Item<T>;
        }
        if take < BLOCK_LEN {
            // Chain the leftovers locally, then one CAS to donate them.
            for i in take..BLOCK_LEN - 1 {
                items[i]
                    .next_free
                    .store(base + i as u32 + 1, Ordering::Relaxed);
            }
            self.push_chain(base + take as u32, base + BLOCK_LEN as u32 - 1);
        }
        take
    }

    /// Pushes the pre-linked chain `first → … → last` with one CAS.
    fn push_chain(&self, first: u32, last: u32) {
        let last_item = self.item_at(last);
        loop {
            let head = self.free_head.load(Ordering::Acquire);
            let (version, top) = unpack(head);
            // SAFETY: immortal pool memory.
            unsafe { &*last_item }
                .next_free
                .store(top, Ordering::Relaxed);
            if self
                .free_head
                .compare_exchange(
                    head,
                    pack(version.wrapping_add(1), first),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return;
            }
        }
    }

    /// Returns a taken item for reuse.
    ///
    /// # Safety
    /// `item` must have been acquired from this pool, its tag must be
    /// [`TAG_TAKEN`] (payload already moved out by [`Item::try_take`]), and
    /// the caller must not touch it afterwards.
    pub unsafe fn release(&self, item: *const Item<T>) {
        // SAFETY: forwarded contract.
        unsafe { self.release_batch(&[item]) };
    }

    /// Returns a batch of taken items for reuse with a single CAS.
    ///
    /// # Safety
    /// Every pointer must satisfy the contract of [`ItemPool::release`].
    pub unsafe fn release_batch(&self, items: &[*const Item<T>]) {
        for &p in items {
            // SAFETY: caller owns the items exclusively; pool memory is
            // immortal until drop.
            let it = unsafe { &*p };
            debug_assert_eq!(it.tag.load(Ordering::Relaxed), TAG_TAKEN);
            // Items in the free list must look FREE so stale `is_live_at`
            // checks fail.
            it.tag.store(TAG_FREE, Ordering::Release);
        }
        self.donate_chain(items);
    }

    /// Links already-FREE, exclusively owned `items` front-to-back through
    /// their intrusive indices and pushes the whole chain with one CAS.
    fn donate_chain(&self, items: &[*const Item<T>]) {
        let (Some(&first), Some(&last)) = (items.first(), items.last()) else {
            return;
        };
        // SAFETY (all derefs below): caller owns the items exclusively;
        // pool memory is immortal until drop.
        for w in items.windows(2) {
            unsafe {
                (*w[0]).next_free.store((*w[1]).index, Ordering::Relaxed);
            }
        }
        let (first, last) = unsafe { ((*first).index, (*last).index) };
        self.push_chain(first, last);
    }

    /// Total items ever allocated (live + free).
    pub fn allocated(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }
}

impl<T: Send> Default for ItemPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for ItemPool<T> {
    fn drop(&mut self) {
        for slot in self.blocks.iter() {
            // Relaxed load instead of `get_mut`: `&mut self` already
            // proves exclusivity (and the model's atomics have no
            // `get_mut` — a drop decision never branches anyway).
            let block = slot.load(Ordering::Relaxed);
            if block.is_null() {
                continue;
            }
            // SAFETY: the pool owns its blocks; drop has exclusive access.
            let boxed = unsafe { Box::from_raw(block) };
            for item in boxed.items.iter() {
                // Items that were pushed but never taken still own a task.
                if item.tag.load(Ordering::Relaxed) < MAX_POSITION {
                    // SAFETY: live tag ⇒ payload initialized and not moved
                    // out; we have exclusive access in drop.
                    item.payload
                        .with_mut(|p| unsafe { (*p).assume_init_drop() });
                }
            }
        }
    }
}

// SAFETY: all cross-thread access to `payload` follows the write-once /
// take-once protocol documented on `Item`; every other field is atomic.
unsafe impl<T: Send> Send for ItemPool<T> {}
unsafe impl<T: Send> Sync for ItemPool<T> {}

/// A place-local stash of free items, refilled from and flushed to the
/// shared pool in batches.
///
/// Each place handle owns one cache. A scalar `acquire` costs a `Vec::pop`
/// in the common case and touches the shared free-list head only once per
/// [`ItemCache::REFILL`] acquisitions; releases are symmetric. This is the
/// allocation half of the batch API: a `push_batch` of n tasks performs
/// ⌈n / REFILL⌉ free-list CASes instead of n.
pub struct ItemCache<T> {
    stash: Vec<*const Item<T>>,
}

// SAFETY: the cache holds exclusively owned FREE items of a pool the
// owning handle keeps alive; the pointers guard `T: Send` payload slots.
unsafe impl<T: Send> Send for ItemCache<T> {}

impl<T: Send> ItemCache<T> {
    /// Items fetched from / returned to the pool per refill or flush.
    pub const REFILL: usize = 64;

    /// Creates an empty cache.
    pub fn new() -> Self {
        ItemCache {
            stash: Vec::with_capacity(2 * Self::REFILL),
        }
    }

    /// Fetches one free item, refilling from `pool` when empty.
    #[inline]
    pub fn acquire(&mut self, pool: &ItemPool<T>) -> *const Item<T> {
        match self.stash.pop() {
            Some(p) => p,
            None => {
                pool.acquire_batch(&mut self.stash, Self::REFILL);
                self.stash.pop().expect("acquire_batch returns ≥ 1 item")
            }
        }
    }

    /// Ensures at least `n` items are stashed (one pool CAS per refill
    /// round), so a following batch of `n` scalar [`ItemCache::acquire`]
    /// calls cannot touch the shared pool.
    pub fn prefetch(&mut self, pool: &ItemPool<T>, n: usize) {
        while self.stash.len() < n {
            let want = (n - self.stash.len()).max(Self::REFILL);
            pool.acquire_batch(&mut self.stash, want);
        }
    }

    /// Returns a taken item, flushing a batch to `pool` when the stash is
    /// over capacity.
    ///
    /// # Safety
    /// Same contract as [`ItemPool::release`].
    #[inline]
    pub unsafe fn release(&mut self, pool: &ItemPool<T>, item: *const Item<T>) {
        // Cached items must look FREE so stale `is_live_at` checks fail.
        // SAFETY: caller owns the item exclusively (release contract).
        let it = unsafe { &*item };
        debug_assert_eq!(it.tag.load(Ordering::Relaxed), TAG_TAKEN);
        it.tag.store(TAG_FREE, Ordering::Release);
        self.stash.push(item);
        if self.stash.len() >= 2 * Self::REFILL {
            self.flush_half(pool);
        }
    }

    /// Flushes the older (front) half of the stash back to the pool with
    /// one CAS, keeping the most recently released — cache-hot — items
    /// local for the next acquires.
    fn flush_half(&mut self, pool: &ItemPool<T>) {
        let spill_count = self.stash.len() / 2;
        // Items are already tagged FREE; the pointers are Copy, so the
        // drain just shifts the kept half forward.
        pool.donate_chain(&self.stash[..spill_count]);
        self.stash.drain(..spill_count);
    }

    /// Returns every stashed item to the pool (handle shutdown).
    pub fn drain_to(&mut self, pool: &ItemPool<T>) {
        pool.donate_chain(&self.stash);
        self.stash.clear();
    }

    /// Number of stashed items (diagnostics).
    pub fn len(&self) -> usize {
        self.stash.len()
    }

    /// `true` when nothing is stashed.
    pub fn is_empty(&self) -> bool {
        self.stash.is_empty()
    }
}

impl<T: Send> Default for ItemCache<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A reference to an item held in a place-local priority queue.
///
/// Mirrors the paper's `ItemRef`: the priority (copied out at creation so
/// ordering needs no dereference), the expected position tag, and the item
/// pointer. Ordered by `(prio, tag)` — the tag tiebreak makes local pop
/// order deterministic.
pub struct ItemRef<T> {
    /// Priority key copied from the item at reference creation.
    pub prio: u64,
    /// Position tag the item carried when the reference was created.
    pub tag: u64,
    /// The referenced item (pool-owned; always safe to dereference).
    pub ptr: *const Item<T>,
}

impl<T> Clone for ItemRef<T> {
    fn clone(&self) -> Self {
        ItemRef {
            prio: self.prio,
            tag: self.tag,
            ptr: self.ptr,
        }
    }
}

impl<T> PartialEq for ItemRef<T> {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio && self.tag == other.tag
    }
}
impl<T> Eq for ItemRef<T> {}
impl<T> PartialOrd for ItemRef<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for ItemRef<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.prio, self.tag).cmp(&(other.prio, other.tag))
    }
}

// SAFETY: an ItemRef is only dereferenced by its owning place handle, and
// only into pool memory that outlives the handle (the handle holds an Arc of
// the structure that owns the pool).
unsafe impl<T: Send> Send for ItemRef<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn acquire_init_take_round_trip() {
        let pool: ItemPool<String> = ItemPool::new();
        let p = pool.acquire();
        let item = unsafe { &*p };
        unsafe { item.init(3, 8, 42, "hello".to_string()) };
        item.tag.store(17, Ordering::Release);
        assert!(item.is_live_at(17));
        assert!(!item.is_live_at(16));
        assert_eq!(item.prio.load(Ordering::Relaxed), 42);
        assert_eq!(item.place.load(Ordering::Relaxed), 3);
        assert_eq!(item.k.load(Ordering::Relaxed), 8);
        assert_eq!(item.try_take(17), Some("hello".to_string()));
        unsafe { pool.release(p) };
    }

    #[test]
    fn second_take_fails() {
        let pool: ItemPool<u32> = ItemPool::new();
        let p = pool.acquire();
        let item = unsafe { &*p };
        unsafe { item.init(0, 1, 5, 99) };
        item.tag.store(7, Ordering::Release);
        assert_eq!(item.try_take(7), Some(99));
        assert_eq!(item.try_take(7), None);
        unsafe { pool.release(p) };
    }

    #[test]
    fn wrong_tag_fails_and_leaves_item_live() {
        let pool: ItemPool<u32> = ItemPool::new();
        let p = pool.acquire();
        let item = unsafe { &*p };
        unsafe { item.init(0, 1, 5, 7) };
        item.tag.store(100, Ordering::Release);
        assert_eq!(item.try_take(99), None);
        assert!(item.is_live_at(100));
        assert_eq!(item.try_take(100), Some(7));
        unsafe { pool.release(p) };
    }

    #[test]
    fn recycled_item_rejects_stale_tag() {
        let pool: ItemPool<u32> = ItemPool::new();
        let p = pool.acquire();
        let item = unsafe { &*p };
        unsafe { item.init(0, 1, 5, 1) };
        item.tag.store(10, Ordering::Release);
        assert_eq!(item.try_take(10), Some(1));
        unsafe { pool.release(p) };
        // Recycle the same physical item under a new position. The free
        // list is LIFO, so the released item comes straight back.
        let q = pool.acquire();
        assert_eq!(q, p, "LIFO free list returns the last release");
        let item = unsafe { &*q };
        unsafe { item.init(1, 1, 6, 2) };
        item.tag.store(11, Ordering::Release);
        // A stale reference still holding tag 10 must fail:
        assert_eq!(item.try_take(10), None);
        assert_eq!(item.try_take(11), Some(2));
        unsafe { pool.release(q) };
    }

    #[test]
    fn pool_grows_beyond_one_block() {
        let pool: ItemPool<u64> = ItemPool::new();
        let mut ptrs = Vec::new();
        for i in 0..(BLOCK_LEN * 2 + 10) {
            let p = pool.acquire();
            let item = unsafe { &*p };
            unsafe { item.init(0, 1, i as u64, i as u64) };
            item.tag.store(i as u64, Ordering::Release);
            ptrs.push(p);
        }
        assert!(pool.allocated() >= (BLOCK_LEN * 2) as u64);
        // Take everything back so drop has no live payloads to reclaim.
        for (i, p) in ptrs.iter().enumerate() {
            let item = unsafe { &**p };
            assert_eq!(item.try_take(i as u64), Some(i as u64));
            unsafe { pool.release(*p) };
        }
    }

    #[test]
    fn acquire_batch_returns_distinct_free_items() {
        let pool: ItemPool<u64> = ItemPool::new();
        let mut batch = Vec::new();
        let got = pool.acquire_batch(&mut batch, 100);
        assert!((1..=100).contains(&got));
        assert_eq!(batch.len(), got);
        let mut seen = std::collections::HashSet::new();
        for &p in &batch {
            assert!(seen.insert(p as usize), "duplicate item in batch");
            assert_eq!(unsafe { &*p }.tag.load(Ordering::Relaxed), TAG_FREE);
        }
        // Round-trip through a batched release.
        for (i, &p) in batch.iter().enumerate() {
            let item = unsafe { &*p };
            unsafe { item.init(0, 1, i as u64, i as u64) };
            item.tag.store(i as u64, Ordering::Release);
            assert_eq!(item.try_take(i as u64), Some(i as u64));
        }
        unsafe { pool.release_batch(&batch) };
        // Everything is reacquirable.
        let mut batch2 = Vec::new();
        let mut total = 0;
        while total < got {
            total += pool.acquire_batch(&mut batch2, got - total);
        }
        assert_eq!(total, got);
    }

    #[test]
    fn item_cache_refills_and_drains() {
        let pool: ItemPool<u64> = ItemPool::new();
        let mut cache = ItemCache::new();
        let p = cache.acquire(&pool);
        assert!(cache.len() >= ItemCache::<u64>::REFILL - 1);
        let item = unsafe { &*p };
        unsafe { item.init(0, 1, 3, 30) };
        item.tag.store(3, Ordering::Release);
        assert_eq!(item.try_take(3), Some(30));
        unsafe { cache.release(&pool, p) };
        cache.drain_to(&pool);
        assert!(cache.is_empty());
        // The drained items flow back through the pool.
        let q = pool.acquire();
        assert_eq!(unsafe { &*q }.tag.load(Ordering::Relaxed), TAG_FREE);
    }

    #[test]
    fn item_cache_prefetch_covers_scalar_burst() {
        let pool: ItemPool<u64> = ItemPool::new();
        let mut cache = ItemCache::new();
        cache.prefetch(&pool, 200);
        assert!(cache.len() >= 200);
        let mut got = Vec::new();
        for _ in 0..200 {
            got.push(cache.acquire(&pool));
        }
        let unique: std::collections::HashSet<usize> = got.iter().map(|&p| p as usize).collect();
        assert_eq!(unique.len(), 200);
        cache.drain_to(&pool);
    }

    /// Payload type that counts drops, to verify pool-drop reclamation.
    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn dropping_pool_drops_untaken_payloads_exactly_once() {
        let drops = Arc::new(AtomicUsize::new(0));
        let pool: ItemPool<DropCounter> = ItemPool::new();
        // 3 live (never taken), 2 taken.
        for i in 0..5u64 {
            let p = pool.acquire();
            let item = unsafe { &*p };
            unsafe { item.init(0, 1, i, DropCounter(drops.clone())) };
            item.tag.store(i, Ordering::Release);
            if i >= 3 {
                let taken = item.try_take(i).unwrap();
                drop(taken);
                unsafe { pool.release(p) };
            }
        }
        assert_eq!(
            drops.load(Ordering::Relaxed),
            2,
            "only taken payloads dropped so far"
        );
        drop(pool);
        assert_eq!(
            drops.load(Ordering::Relaxed),
            5,
            "pool drop reclaims live payloads"
        );
    }

    #[test]
    fn item_ref_orders_by_priority_then_tag() {
        let a: ItemRef<u8> = ItemRef {
            prio: 1,
            tag: 9,
            ptr: std::ptr::null(),
        };
        let b: ItemRef<u8> = ItemRef {
            prio: 1,
            tag: 10,
            ptr: std::ptr::null(),
        };
        let c: ItemRef<u8> = ItemRef {
            prio: 2,
            tag: 0,
            ptr: std::ptr::null(),
        };
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn concurrent_acquire_release_stress() {
        let pool = Arc::new(ItemPool::<u64>::new());
        let threads = 8;
        let per = 5_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let pool = pool.clone();
                s.spawn(move || {
                    for i in 0..per {
                        let p = pool.acquire();
                        let item = unsafe { &*p };
                        let tag = (t as u64) * per * 2 + i; // unique positions
                        unsafe { item.init(t as u32, 1, i, i) };
                        item.tag.store(tag, Ordering::Release);
                        assert_eq!(item.try_take(tag), Some(i));
                        unsafe { pool.release(p) };
                    }
                });
            }
        });
        // Every item ended FREE; allocation stayed bounded by concurrency,
        // far below the total number of operations.
        assert!(pool.allocated() <= (threads as u64) * per);
    }

    #[test]
    fn concurrent_batched_acquire_release_stress() {
        let pool = Arc::new(ItemPool::<u64>::new());
        let threads = 8;
        let rounds = 400;
        let batch = 32usize;
        std::thread::scope(|s| {
            for t in 0..threads {
                let pool = pool.clone();
                s.spawn(move || {
                    let mut items = Vec::new();
                    for r in 0..rounds {
                        items.clear();
                        let mut got = 0;
                        while got < batch {
                            got += pool.acquire_batch(&mut items, batch - got);
                        }
                        for (i, &p) in items.iter().enumerate() {
                            let item = unsafe { &*p };
                            let tag = ((t * rounds + r) * batch + i) as u64;
                            unsafe { item.init(t as u32, 1, tag, tag) };
                            item.tag.store(tag, Ordering::Release);
                            assert_eq!(item.try_take(tag), Some(tag));
                        }
                        unsafe { pool.release_batch(&items) };
                    }
                });
            }
        });
        assert!(pool.allocated() <= (threads * rounds * batch) as u64);
    }
}
