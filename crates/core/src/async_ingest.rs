//! Async submission into a running pool: futures over the ingest lanes.
//!
//! The blocking producer path ([`IngestHandle::submit`]) parks an OS
//! thread on the shared *space* slot when every bounded lane is full. A
//! network frontend wants thousands of logical producers — one per
//! connection — without a thread (or a core) per producer. This module is
//! that adapter: [`AsyncIngestHandle`] wraps an [`IngestHandle`] from the
//! **same refcounted producer lineage** (it counts toward quiescence
//! exactly like its blocking siblings, and cloning it clones the
//! underlying handle) and exposes `submit` / `submit_batch` as futures.
//!
//! # `Full` becomes `Poll::Pending`
//!
//! The futures run the *same* register → re-check → park protocol as the
//! blocking path (see [`crate::park`]), with one substitution at the final
//! step: where a thread would sleep on the space slot's condvar, the
//! future deposits the task's [`std::task::Waker`]
//! ([`crate::park::Waiter::Waker`]) and returns [`Poll::Pending`]. The
//! drain that frees lane space fires the deposited waker through the
//! identical `wake_all` broadcast that unparks blocked threads, so the
//! lost-wakeup argument carries over verbatim; a registration that races
//! the wake observes a stale epoch token and retries instead of sleeping.
//! Poisoned lanes resolve the future to [`SubmitError::Aborted`] /
//! [`SubmitError::ShutDown`] with the payload handed back — the abort
//! broadcast wakes deposited wakers exactly like parked producers, so an
//! async submitter can never pend forever against workers that are gone.
//!
//! # Cancel safety
//!
//! Dropping a pending future revokes its deposited waker (releasing the
//! slot registration) and, for batches, hands every not-yet-submitted item
//! back to the caller's vector. What was already accepted into a lane
//! stays accepted — the same at-most-once boundary the blocking batch path
//! has across its internal chunks.
//!
//! No runtime is prescribed: the futures only need a `Waker` that is
//! `Send` (workers fire it from their drain path). The in-tree
//! `futures-executor` shim (`block_on` + `LocalPool`) is enough to drive
//! them; so is any external executor.

use crate::ingest::{IngestHandle, IngressShared, SubmitError};
use crate::park::{ParkSlot, Parked, Waiter, WakerId};
use crate::scheduler::{FailureReport, FaultCell, PoolAborted};
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

/// An async producer's capability to submit tasks into a running pool.
///
/// Obtained from [`IngestHandle::into_async`] (or
/// [`crate::service::PoolService::async_ingest_handle`]); holds the
/// wrapped handle's producer slot, so quiescence waits on async producers
/// exactly as on blocking ones. Cloning clones the underlying handle —
/// the natural "one handle per connection actor" shape.
pub struct AsyncIngestHandle<T: Send> {
    inner: IngestHandle<T>,
}

impl<T: Send> AsyncIngestHandle<T> {
    /// Wraps a producer handle for async submission.
    pub fn new(inner: IngestHandle<T>) -> Self {
        AsyncIngestHandle { inner }
    }

    /// Unwraps back into the blocking handle (same producer slot).
    pub fn into_inner(self) -> IngestHandle<T> {
        self.inner
    }

    /// Submits one task with priority `prio` (smaller = higher) and
    /// relaxation bound `k`, resolving once a lane accepted it. While
    /// every bounded lane is full the future is `Pending` with its waker
    /// deposited on the space slot (woken by the next drain). Resolves to
    /// `Err` — task handed back — only on abort/shutdown.
    pub fn submit(&mut self, prio: u64, k: usize, task: T) -> SubmitFuture<'_, T> {
        SubmitFuture {
            handle: &mut self.inner,
            prio,
            k,
            task: Some(task),
            reg: None,
        }
    }

    /// Submits a batch of `(prio, task)` pairs sharing relaxation bound
    /// `k`, draining `batch` as chunks are accepted (batches larger than
    /// the lane capacity are split, like the blocking
    /// [`IngestHandle::submit_batch`]). On `Err` — and on drop of a
    /// pending future — every not-yet-submitted item is handed back in
    /// `batch`, in unspecified order.
    pub fn submit_batch<'a>(
        &'a mut self,
        k: usize,
        batch: &'a mut Vec<(u64, T)>,
    ) -> SubmitBatchFuture<'a, T> {
        SubmitBatchFuture {
            handle: &mut self.inner,
            k,
            batch,
            chunk: Vec::new(),
            reg: None,
        }
    }

    /// Number of lanes this handle shards over.
    pub fn num_lanes(&self) -> usize {
        self.inner.num_lanes()
    }

    /// The per-lane capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.inner.capacity()
    }
}

impl<T: Send> Clone for AsyncIngestHandle<T> {
    fn clone(&self) -> Self {
        AsyncIngestHandle {
            inner: self.inner.clone(),
        }
    }
}

/// A waker deposit on one slot, revocable exactly once.
///
/// Shared helper of the futures below: `arm` runs the register → re-check
/// → park-as-waker step, `clear` revokes a still-deposited waker (re-poll
/// or drop).
struct SlotReg {
    id: WakerId,
}

impl SlotReg {
    fn clear(reg: &mut Option<SlotReg>, slot: &ParkSlot) {
        if let Some(r) = reg.take() {
            // `false` means a wake already consumed the deposit (and
            // released the registration); either way it is gone now.
            let _ = slot.revoke_waker(r.id);
        }
    }
}

/// Future of [`AsyncIngestHandle::submit`].
///
/// Resolves to `Ok(())` once a lane accepted the task, or to a
/// [`SubmitError`] handing the task back on abort/shutdown.
pub struct SubmitFuture<'a, T: Send> {
    handle: &'a mut IngestHandle<T>,
    prio: u64,
    k: usize,
    /// `Some` while unsubmitted; taken on completion.
    task: Option<T>,
    reg: Option<SlotReg>,
}

// No self-references: every field is an ordinary borrow or owned value.
impl<T: Send> Unpin for SubmitFuture<'_, T> {}

impl<T: Send> Future for SubmitFuture<'_, T> {
    type Output = Result<(), SubmitError<T>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let shared = Arc::clone(this.handle.shared());
        let space = shared.parker().space();
        // A re-poll while deposited (spurious, or woken by the drain)
        // starts from a clean registration.
        SlotReg::clear(&mut this.reg, space);
        let mut task = this
            .task
            .take()
            .expect("SubmitFuture polled after completion");
        loop {
            match this.handle.try_submit(this.prio, this.k, task) {
                Ok(()) => return Poll::Ready(Ok(())),
                Err(SubmitError::Full(t)) => {
                    // Register → re-check → park-as-waker (module docs).
                    let token = space.prepare();
                    match this.handle.try_submit(this.prio, this.k, t) {
                        Ok(()) => {
                            space.cancel();
                            return Poll::Ready(Ok(()));
                        }
                        Err(SubmitError::Full(t)) => {
                            match space.park_as(token, Waiter::Waker(cx.waker())) {
                                Parked::Woken => task = t, // stale: retry now
                                Parked::Registered(id) => {
                                    this.task = Some(t);
                                    this.reg = Some(SlotReg { id });
                                    return Poll::Pending;
                                }
                            }
                        }
                        Err(other) => {
                            space.cancel();
                            return Poll::Ready(Err(other));
                        }
                    }
                }
                Err(other) => return Poll::Ready(Err(other)),
            }
        }
    }
}

impl<T: Send> Drop for SubmitFuture<'_, T> {
    fn drop(&mut self) {
        if self.reg.is_some() {
            let shared = Arc::clone(self.handle.shared());
            SlotReg::clear(&mut self.reg, shared.parker().space());
        }
    }
}

/// Future of [`AsyncIngestHandle::submit_batch`].
///
/// Accepts the batch chunk by chunk (capacity-sized on bounded lanes);
/// resolves to `Ok(())` with the caller's vector drained, or to a
/// [`SubmitError`] with the unsubmitted remainder handed back in it.
pub struct SubmitBatchFuture<'a, T: Send> {
    handle: &'a mut IngestHandle<T>,
    k: usize,
    batch: &'a mut Vec<(u64, T)>,
    /// The chunk currently being offered (split off `batch`'s tail).
    chunk: Vec<(u64, T)>,
    reg: Option<SlotReg>,
}

impl<T: Send> Unpin for SubmitBatchFuture<'_, T> {}

impl<T: Send> Future for SubmitBatchFuture<'_, T> {
    type Output = Result<(), SubmitError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let shared = Arc::clone(this.handle.shared());
        let space = shared.parker().space();
        SlotReg::clear(&mut this.reg, space);
        let chunk_cap = this.handle.capacity().unwrap_or(usize::MAX);
        loop {
            if this.chunk.is_empty() {
                if this.batch.is_empty() {
                    return Poll::Ready(Ok(()));
                }
                let n = this.batch.len().min(chunk_cap);
                this.chunk = this.batch.split_off(this.batch.len() - n);
            }
            match this.handle.try_submit_batch(this.k, &mut this.chunk) {
                Ok(()) => continue, // next chunk (or done)
                Err(SubmitError::Full(())) => {
                    let token = space.prepare();
                    match this.handle.try_submit_batch(this.k, &mut this.chunk) {
                        Ok(()) => space.cancel(),
                        Err(SubmitError::Full(())) => {
                            match space.park_as(token, Waiter::Waker(cx.waker())) {
                                Parked::Woken => {} // stale: retry now
                                Parked::Registered(id) => {
                                    this.reg = Some(SlotReg { id });
                                    return Poll::Pending;
                                }
                            }
                        }
                        Err(other) => {
                            space.cancel();
                            this.batch.append(&mut this.chunk);
                            return Poll::Ready(Err(other));
                        }
                    }
                }
                Err(other) => {
                    this.batch.append(&mut this.chunk);
                    return Poll::Ready(Err(other));
                }
            }
        }
    }
}

impl<T: Send> Drop for SubmitBatchFuture<'_, T> {
    fn drop(&mut self) {
        if self.reg.is_some() {
            let shared = Arc::clone(self.handle.shared());
            SlotReg::clear(&mut self.reg, shared.parker().space());
        }
        // Hand unsubmitted items back on cancellation.
        self.batch.append(&mut self.chunk);
    }
}

/// Future over a drain, for services: see
/// [`crate::service::PoolService::join_async`], which constructs it.
///
/// Resolves to `Ok(())` once everything submitted so far has executed
/// (lanes empty, pending counter zero), or `Err(PoolAborted)` if the pool
/// aborted on a task panic — the same contract as the blocking
/// [`crate::service::PoolService::join`], with the control-slot park
/// replaced by a waker deposit.
pub struct JoinFuture<'a, T: Send> {
    shared: &'a IngressShared<T>,
    /// The scheduler's outstanding-task counter.
    pending: &'a crate::sync::atomic::AtomicU64,
    /// The pool's abort flag (a task panicked under `AbortRun`).
    abort: &'a crate::sync::atomic::AtomicBool,
    /// The service's failure state (source of the typed abort outcome).
    faults: &'a FaultCell,
    reg: Option<SlotReg>,
}

impl<'a, T: Send> JoinFuture<'a, T> {
    pub(crate) fn new(
        shared: &'a IngressShared<T>,
        pending: &'a crate::sync::atomic::AtomicU64,
        abort: &'a crate::sync::atomic::AtomicBool,
        faults: &'a FaultCell,
    ) -> Self {
        JoinFuture {
            shared,
            pending,
            abort,
            faults,
            reg: None,
        }
    }

    fn drained(&self) -> bool {
        use crate::sync::atomic::Ordering;
        self.shared.queued_count() == 0 && self.pending.load(Ordering::Acquire) == 0
    }

    fn aborted(&self) -> bool {
        self.abort.load(crate::sync::atomic::Ordering::Acquire)
    }

    /// The typed abort outcome; the failure record precedes the abort
    /// flag, so an observed abort implies a visible report (the fallback
    /// covers abortive teardown without a panicking task).
    fn abort_error(&self) -> PoolAborted {
        PoolAborted {
            failure: self.faults.first_failure().unwrap_or(FailureReport {
                place: 0,
                prio: 0,
                message: "pool aborted".to_string(),
            }),
        }
    }
}

impl<T: Send> Unpin for JoinFuture<'_, T> {}

impl<T: Send> Future for JoinFuture<'_, T> {
    type Output = Result<(), PoolAborted>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let control = this.shared.parker().control();
        SlotReg::clear(&mut this.reg, control);
        loop {
            if this.aborted() {
                return Poll::Ready(Err(this.abort_error()));
            }
            if this.drained() {
                // Post-drain abort re-check, as in the blocking join: a
                // panicking task records its failure and raises the flag
                // before its decrement.
                if this.aborted() {
                    return Poll::Ready(Err(this.abort_error()));
                }
                return Poll::Ready(Ok(()));
            }
            let token = control.prepare();
            if this.aborted() || this.drained() {
                control.cancel();
                continue; // loop head resolves which of the two it was
            }
            match control.park_as(token, Waiter::Waker(cx.waker())) {
                Parked::Woken => {} // stale: re-check now
                Parked::Registered(id) => {
                    this.reg = Some(SlotReg { id });
                    return Poll::Pending;
                }
            }
        }
    }
}

impl<T: Send> Drop for JoinFuture<'_, T> {
    fn drop(&mut self) {
        if self.reg.is_some() {
            SlotReg::clear(&mut self.reg, self.shared.parker().control());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::IngressLanes;
    // The facade type, so `drain_into` type-checks under `--cfg loom` too.
    use crate::sync::atomic::AtomicU64;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::task::Waker;

    struct CountWake(AtomicUsize);
    impl std::task::Wake for CountWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn test_cx() -> (Arc<CountWake>, Waker) {
        let count = Arc::new(CountWake(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&count));
        (count, waker)
    }

    fn poll_once<F: Future + Unpin>(fut: &mut F, waker: &Waker) -> Poll<F::Output> {
        Pin::new(fut).poll(&mut Context::from_waker(waker))
    }

    #[test]
    fn submit_resolves_immediately_with_room() {
        let lanes: IngressLanes<u64> = IngressLanes::new(2);
        let mut h = lanes.handle().into_async();
        let (_, waker) = test_cx();
        let mut fut = h.submit(3, 8, 42);
        assert_eq!(poll_once(&mut fut, &waker), Poll::Ready(Ok(())));
        drop(fut);
        assert_eq!(lanes.queued(), 1);
    }

    #[test]
    fn full_lanes_pend_and_drain_wakes_the_task() {
        let lanes: IngressLanes<u64> = IngressLanes::with_capacity(1, Some(1));
        let mut blocking = lanes.handle();
        blocking.submit(0, 8, 0).unwrap(); // lane now full
        let mut h = lanes.handle().into_async();
        let (count, waker) = test_cx();
        let mut fut = h.submit(1, 8, 1);
        assert_eq!(poll_once(&mut fut, &waker), Poll::Pending);
        assert_eq!(count.0.load(Ordering::SeqCst), 0, "no spurious wake");

        // A drain frees the lane: the deposited waker must fire…
        let pending = AtomicU64::new(0);
        struct Sink;
        impl crate::pool::PoolHandle<u64> for Sink {
            fn push(&mut self, _p: u64, _k: usize, _t: u64) {}
            fn pop_entry(&mut self) -> Option<(u64, u64)> {
                None
            }
            fn stats(&self) -> crate::stats::PlaceStats {
                crate::stats::PlaceStats::default()
            }
        }
        let (mut scratch, mut kbatch) = (Vec::new(), Vec::new());
        assert_eq!(
            lanes
                .shared()
                .drain_into(0, &mut Sink, &pending, &mut scratch, &mut kbatch),
            1
        );
        assert_eq!(count.0.load(Ordering::SeqCst), 1, "drain must wake");
        // …and the re-poll completes the submission.
        assert_eq!(poll_once(&mut fut, &waker), Poll::Ready(Ok(())));
        drop(fut);
        drop(blocking);
        assert_eq!(lanes.queued(), 1);
    }

    #[test]
    fn abort_resolves_pending_submit_to_aborted() {
        let lanes: IngressLanes<u64> = IngressLanes::with_capacity(1, Some(1));
        let mut blocking = lanes.handle();
        blocking.submit(0, 8, 0).unwrap();
        let mut h = lanes.handle().into_async();
        let (count, waker) = test_cx();
        let mut fut = h.submit(1, 8, 7);
        assert_eq!(poll_once(&mut fut, &waker), Poll::Pending);
        lanes.shared().abort_and_wake();
        assert_eq!(count.0.load(Ordering::SeqCst), 1, "abort must wake");
        match poll_once(&mut fut, &waker) {
            Poll::Ready(Err(SubmitError::Aborted(task))) => assert_eq!(task, 7),
            other => panic!("expected Aborted with payload, got {other:?}"),
        }
    }

    #[test]
    fn dropping_pending_submit_revokes_the_waker() {
        let lanes: IngressLanes<u64> = IngressLanes::with_capacity(1, Some(1));
        let mut blocking = lanes.handle();
        blocking.submit(0, 8, 0).unwrap();
        let mut h = lanes.handle().into_async();
        let (count, waker) = test_cx();
        let mut fut = h.submit(1, 8, 1);
        assert_eq!(poll_once(&mut fut, &waker), Poll::Pending);
        drop(fut); // cancellation: must release the slot registration
        assert_eq!(lanes.shared().parker().space().waiters(), 0);
        lanes.shared().parker().space().wake_all();
        assert_eq!(count.0.load(Ordering::SeqCst), 0, "revoked ≠ woken");
    }

    #[test]
    fn batch_future_chunks_and_hands_back_on_cancel() {
        let lanes: IngressLanes<u64> = IngressLanes::with_capacity(1, Some(2));
        let mut h = lanes.handle().into_async();
        let (_, waker) = test_cx();
        // 5 items through a capacity-2 lane: two chunks fit (after which
        // the lane is full at 2 — first chunk drains nowhere), so the
        // future pends with a remainder.
        let mut batch: Vec<(u64, u64)> = (0..5u64).map(|i| (i, i)).collect();
        {
            let mut fut = h.submit_batch(8, &mut batch);
            assert_eq!(poll_once(&mut fut, &waker), Poll::Pending);
            // Dropping the pending future: remainder handed back.
        }
        assert_eq!(
            batch.len() as u64 + lanes.queued(),
            5,
            "cancelled batch must hand back exactly the unsubmitted items"
        );
        assert_eq!(lanes.queued(), 2, "one capacity-sized chunk accepted");
        assert_eq!(lanes.shared().parker().space().waiters(), 0);
    }

    #[test]
    fn async_handle_counts_toward_producer_refcount() {
        let lanes: IngressLanes<u64> = IngressLanes::new(1);
        let h = lanes.handle().into_async();
        assert_eq!(lanes.producers(), 1);
        let h2 = h.clone();
        assert_eq!(lanes.producers(), 2);
        drop(h);
        drop(h2);
        assert_eq!(lanes.producers(), 0);
        assert!(lanes.shared().quiescent());
    }
}
