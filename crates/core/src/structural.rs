//! Structurally ρ-relaxed priority pool (§5.3 prototype).
//!
//! The paper observes that its analysis does not need the *temporal*
//! formulation of ρ-relaxation ("the last k items added may be ignored") —
//! a weaker *structural* formulation suffices: **a pop never ignores more
//! than ρ items, regardless of their age**. §5.3 and the conclusion name
//! data structures built on this weaker property as future work with
//! "promising first results".
//!
//! This module is our prototype of that direction, kept deliberately simple:
//!
//! * each place buffers up to `k` tasks privately (any age — no publication
//!   deadline, no budget bookkeeping);
//! * everything else lives in one shared priority queue;
//! * `pop` takes the better of (own buffer minimum, shared minimum).
//!
//! A pop can only ignore tasks buffered at *other* places — at most
//! `(P−1)·k` of them, so the structure is ρ-relaxed with ρ = (P−1)·k, and
//! the bound holds for arbitrarily old buffered tasks (structural, not
//! temporal). Pushes touch the shared queue only once every `k` tasks,
//! which is where the scalability comes from. The ablation bench compares
//! it against the paper's structures.
//!
//! Tasks buffered at a place are visible to idle peers through *raiding*: a
//! popper that finds both its buffer and the shared queue empty flushes a
//! victim's buffer into the shared queue (taking the victim's buffer lock),
//! so no task is ever stranded.
//!
//! # The shared queue: flat combining (default) or a plain mutex
//!
//! Every overflow push, shared pop, and raid flush crosses the shared
//! queue — one heap, all places. With `PoolParams::combine` **on** (the
//! default) those accesses are delegated through a
//! [`crate::combine::Combiner`]: the accessing place publishes a [`HeapOp`]
//! in its per-place slot and whichever place holds the combiner lock
//! executes all published ops back-to-back against the heap, so the heap's
//! cache lines stop migrating between cores under contention. With the
//! toggle **off** the pre-combining mutex path is preserved verbatim for
//! A/B measurement. Both modes execute the same [`HeapOp`] kernels against
//! the same `BinaryHeap`, which is what the combining-on ≡ combining-off
//! equivalence proptest pins.
//!
//! # Lock order
//!
//! Two lock classes exist: per-place **buffer locks** and the **shared
//! queue** (the mutex, or the combiner lock standing in for it). The rule,
//! relied on by the combiner's parking:
//!
//! > **No thread ever holds a buffer lock while acquiring — or waiting
//! > on — the shared queue.** Buffer state needed across a shared-queue
//! > operation (the local minimum used as a pop bound, a raided victim's
//! > entries) is read or drained under the buffer lock, the buffer lock is
//! > released, and only then is the shared queue entered.
//!
//! Holding a buffer lock across a combiner wait would deadlock-adjacent
//! stall raiders (a parked waiter can hold its buffer lock for an unbounded
//! time) and did, in the earlier mutex-only code, serialize every pop
//! against pushes on the same place. The price of the rule is a benign
//! race: the local minimum may be raided away between the bounded shared
//! pop and the local pop, in which case the pop retries the shared queue
//! once and may then fail spuriously — which the pool contract explicitly
//! allows, since the raider made progress with our tasks.

use crate::combine::{CombineOp, CombineStats, Combiner};
use crate::pool::{PoolHandle, TaskPool};
use crate::stats::PlaceStats;
use crate::sync::Mutex;
use crate::util::XorShift64;
use crossbeam_utils::CachePadded;
use priosched_pq::{BinaryHeap, SequentialPriorityQueue};
use std::sync::Arc;

/// Entry ordered by `(prio, seq)`.
struct Entry<T> {
    prio: u64,
    seq: u64,
    task: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.prio, self.seq).cmp(&(other.prio, other.seq))
    }
}

/// Ordering key of an entry, usable as a pop bound across lock releases.
type Key = (u64, u64);

fn key<T>(e: &Entry<T>) -> Key {
    (e.prio, e.seq)
}

/// Pops the heap minimum only if it is strictly better than `bound`
/// (`None` = unconditional). Ties keep the bound's side — the local buffer
/// wins ties, matching the historical two-lock comparison `b < s`.
fn pop_if_better<T>(heap: &mut BinaryHeap<Entry<T>>, bound: Option<Key>) -> Option<Entry<T>> {
    match (heap.peek(), bound) {
        (None, _) => None,
        (Some(e), Some(b)) if key(e) >= b => None,
        _ => heap.pop(),
    }
}

/// A shared-queue operation, executed either under the plain mutex or
/// delegated through the combiner — same kernel both ways.
enum HeapOp<T> {
    /// Overflow push of a single entry.
    Push(Entry<T>),
    /// Overflow tail of a batch push.
    PushBatch(Vec<Entry<T>>),
    /// Pop the minimum if it beats `bound` (the caller's local minimum).
    Pop { bound: Option<Key> },
    /// Pop up to `max` entries each beating `bound`; the response also
    /// reports the heap's next minimum so the caller can drain its local
    /// buffer up to that key without re-entering the shared queue.
    PopBatch { max: usize, bound: Option<Key> },
    /// Raid flush: meld a victim's drained buffer into the heap, then pop
    /// the minimum — one delegation instead of a flush plus a pop.
    DrainInto(BinaryHeap<Entry<T>>),
}

enum HeapResp<T> {
    Pushed,
    One(Option<Entry<T>>),
    Batch {
        taken: Vec<Entry<T>>,
        next: Option<Key>,
    },
}

impl<T: Send> CombineOp<BinaryHeap<Entry<T>>> for HeapOp<T> {
    type Resp = HeapResp<T>;

    fn apply(self, heap: &mut BinaryHeap<Entry<T>>) -> HeapResp<T> {
        match self {
            HeapOp::Push(e) => {
                heap.push(e);
                HeapResp::Pushed
            }
            HeapOp::PushBatch(entries) => {
                heap.extend_batch(entries);
                HeapResp::Pushed
            }
            HeapOp::Pop { bound } => HeapResp::One(pop_if_better(heap, bound)),
            HeapOp::PopBatch { max, bound } => {
                let mut taken = Vec::new();
                while taken.len() < max {
                    match pop_if_better(heap, bound) {
                        Some(e) => taken.push(e),
                        None => break,
                    }
                }
                HeapResp::Batch {
                    taken,
                    next: heap.peek().map(key),
                }
            }
            HeapOp::DrainInto(mut drained) => {
                heap.append(&mut drained);
                HeapResp::One(heap.pop())
            }
        }
    }
}

/// A lockable heap padded to its own cache line.
type PaddedHeap<T> = CachePadded<Mutex<BinaryHeap<Entry<T>>>>;

/// The shared queue behind the `PoolParams::combine` toggle.
enum SharedQueue<T: Send + 'static> {
    /// Pre-combining path: one mutex-guarded heap.
    Mutex(PaddedHeap<T>),
    /// Flat-combining path: the same heap fronted by publication slots.
    Combined(Combiner<BinaryHeap<Entry<T>>, HeapOp<T>>),
}

impl<T: Send + 'static> SharedQueue<T> {
    fn apply(&self, place: usize, op: HeapOp<T>, cstats: &mut CombineStats) -> HeapResp<T> {
        match self {
            SharedQueue::Mutex(heap) => op.apply(&mut heap.lock()),
            SharedQueue::Combined(combiner) => combiner.execute(place, op, cstats),
        }
    }
}

/// Shared component: the global heap plus every place's raidable buffer.
pub struct StructuralKPriority<T: Send + 'static> {
    k: usize,
    queue: SharedQueue<T>,
    buffers: Box<[PaddedHeap<T>]>,
}

impl<T: Send + 'static> StructuralKPriority<T> {
    /// Creates the structure for `nplaces` places with per-place buffer
    /// bound `k` (ρ = (P−1)·k) and the default shared-queue mode
    /// (flat combining on).
    ///
    /// # Panics
    /// Panics if `nplaces == 0`.
    pub fn new(nplaces: usize, k: usize) -> Self {
        Self::with_combining(nplaces, k, true)
    }

    /// As [`StructuralKPriority::new`], selecting the shared-queue mode:
    /// `combine = true` delegates shared-queue accesses through a
    /// flat-combining [`Combiner`]; `false` keeps the plain mutex
    /// (the A/B baseline).
    ///
    /// # Panics
    /// Panics if `nplaces == 0`.
    pub fn with_combining(nplaces: usize, k: usize, combine: bool) -> Self {
        assert!(nplaces > 0, "need at least one place");
        let queue = if combine {
            SharedQueue::Combined(Combiner::new(BinaryHeap::new(), nplaces))
        } else {
            SharedQueue::Mutex(CachePadded::new(Mutex::new(BinaryHeap::new())))
        };
        StructuralKPriority {
            k,
            queue,
            buffers: (0..nplaces)
                .map(|_| CachePadded::new(Mutex::new(BinaryHeap::new())))
                .collect(),
        }
    }

    /// The per-place buffer bound.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether shared-queue accesses go through the flat combiner.
    pub fn combining(&self) -> bool {
        matches!(self.queue, SharedQueue::Combined(_))
    }
}

impl<T: Send + 'static> TaskPool<T> for StructuralKPriority<T> {
    type Handle = StructuralHandle<T>;

    fn num_places(&self) -> usize {
        self.buffers.len()
    }

    fn handle(self: &Arc<Self>, place: usize) -> StructuralHandle<T> {
        assert!(place < self.buffers.len(), "place {place} out of range");
        StructuralHandle {
            place,
            seq: 0,
            rng: XorShift64::new(0x5172_0000 ^ place as u64),
            stats: PlaceStats::default(),
            cstats: CombineStats::default(),
            shared: Arc::clone(self),
        }
    }
}

/// One place's view of the structural prototype.
pub struct StructuralHandle<T: Send + 'static> {
    shared: Arc<StructuralKPriority<T>>,
    place: usize,
    seq: u64,
    rng: XorShift64,
    stats: PlaceStats,
    cstats: CombineStats,
}

impl<T: Send + 'static> StructuralHandle<T> {
    fn queue(&mut self, op: HeapOp<T>) -> HeapResp<T> {
        self.shared.queue.apply(self.place, op, &mut self.cstats)
    }

    /// Pops the shared minimum if it beats `bound`.
    fn queue_pop(&mut self, bound: Option<Key>) -> Option<Entry<T>> {
        match self.queue(HeapOp::Pop { bound }) {
            HeapResp::One(e) => e,
            _ => unreachable!("Pop answers One"),
        }
    }

    /// Drains every task of some victim's buffer into the shared queue and
    /// pops the resulting minimum. Victim buffers are scanned round-robin
    /// from a random start; the victim's buffer lock is released before the
    /// shared queue is entered (see the lock-order rule).
    fn raid_pop(&mut self) -> Option<Entry<T>> {
        let p = self.shared.buffers.len();
        if p <= 1 {
            return None;
        }
        let start = self.rng.below(p as u64) as usize;
        for i in 0..p {
            let victim = (start + i) % p;
            if victim == self.place {
                continue;
            }
            let drained = {
                let mut buf = self.shared.buffers[victim].lock();
                if buf.is_empty() {
                    continue;
                }
                std::mem::take(&mut *buf)
            };
            self.stats.steals += 1;
            // Meld + pop in one shared-queue operation: with ≥1 melded
            // entry the pop cannot come up empty.
            match self.queue(HeapOp::DrainInto(drained)) {
                HeapResp::One(Some(e)) => return Some(e),
                HeapResp::One(None) => unreachable!("non-empty meld pops an entry"),
                _ => unreachable!("DrainInto answers One"),
            }
        }
        None
    }
}

impl<T: Send + 'static> PoolHandle<T> for StructuralHandle<T> {
    /// Buffers locally; overflows (buffer already holds `k`) go to the
    /// shared queue. `k` from the call is ignored — the structural bound is
    /// a per-structure constant here (a per-task variant would track the
    /// minimum, as the hybrid does; not needed for the prototype).
    fn push(&mut self, prio: u64, _k: usize, task: T) {
        let entry = Entry {
            prio,
            seq: self.seq,
            task,
        };
        self.seq += 1;
        self.stats.pushes += 1;
        let mut buf = self.shared.buffers[self.place].lock();
        if buf.len() < self.shared.k {
            buf.push(entry);
            return;
        }
        // Buffer full: move the *worst* of buffer ∪ {entry}? The simple
        // prototype keeps the buffer as-is and forwards the new task, which
        // preserves the ρ bound (buffer size never exceeds k).
        drop(buf);
        self.stats.publishes += 1;
        self.queue(HeapOp::Push(entry));
    }

    /// Takes the better of (own buffer min, shared min), never holding the
    /// buffer lock across the shared-queue operation: the local minimum is
    /// snapshotted as a bound, the buffer lock is released, and the shared
    /// queue pops only entries beating the bound.
    fn pop_entry(&mut self) -> Option<(u64, T)> {
        let bound = self.shared.buffers[self.place].lock().peek().map(key);
        if let Some(e) = self.queue_pop(bound) {
            self.stats.pops += 1;
            return Some((e.prio, e.task));
        }
        if bound.is_some() {
            // Shared min did not beat the local one (or the heap is
            // empty): the local minimum is the pop.
            if let Some(e) = self.shared.buffers[self.place].lock().pop() {
                self.stats.pops += 1;
                return Some((e.prio, e.task));
            }
            // The buffer was raided between the peek and the pop; our
            // entries moved to the shared queue — retry it unbounded.
            if let Some(e) = self.queue_pop(None) {
                self.stats.pops += 1;
                return Some((e.prio, e.task));
            }
        }
        // Both empty: raid a victim's buffer, then pop the meld. Spurious
        // failure is allowed.
        if let Some(e) = self.raid_pop() {
            self.stats.pops += 1;
            return Some((e.prio, e.task));
        }
        self.stats.failed_pops += 1;
        None
    }

    /// Batch push: the local-buffer prefix fills under one buffer lock,
    /// and everything past the buffer bound goes to the shared queue in a
    /// single bulk insert (after the buffer lock is released).
    fn push_batch(&mut self, _k: usize, batch: &mut Vec<(u64, T)>) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len() as u64;
        let base_seq = self.seq;
        self.seq += n;
        self.stats.pushes += n;
        let mut entries = batch.drain(..).enumerate().map(|(i, (prio, task))| Entry {
            prio,
            seq: base_seq + i as u64,
            task,
        });
        let mut buf = self.shared.buffers[self.place].lock();
        let room = self.shared.k.saturating_sub(buf.len());
        buf.extend_batch(entries.by_ref().take(room));
        drop(buf);
        let overflow: Vec<Entry<T>> = entries.collect();
        if !overflow.is_empty() {
            self.stats.publishes += overflow.len() as u64;
            self.queue(HeapOp::PushBatch(overflow));
        }
    }

    /// Batch pop: one bounded shared-queue batch (everything beating the
    /// local minimum), then a local drain up to the shared queue's next
    /// minimum — each returned task is one a scalar `pop` could have
    /// returned at its point in the sequence, without ever holding the
    /// buffer lock across the shared-queue operation. Raiding (the slow
    /// path) is delegated to scalar `pop` when the batch comes up empty.
    fn try_pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let bound = self.shared.buffers[self.place].lock().peek().map(key);
        let (taken, next) = match self.queue(HeapOp::PopBatch { max, bound }) {
            HeapResp::Batch { taken, next } => (taken, next),
            _ => unreachable!("PopBatch answers Batch"),
        };
        let mut got = taken.len();
        out.extend(taken.into_iter().map(|e| e.task));
        if got < max && bound.is_some() {
            // The shared side is exhausted below `next`; local entries
            // beating `next` are exactly what consecutive scalar pops
            // would take now. (Pushes racing into the shared queue are
            // simply newer than this batch.)
            let mut buf = self.shared.buffers[self.place].lock();
            while got < max {
                let take = match (buf.peek(), next) {
                    (Some(b), Some(n)) => key(b) < n,
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                if !take {
                    break;
                }
                out.push(buf.pop().expect("peeked entry pops").task);
                got += 1;
            }
        }
        if got > 0 {
            self.stats.pops += got as u64;
            return got;
        }
        // Empty fast path: fall back to the raiding scalar pop.
        match self.pop() {
            Some(task) => {
                out.push(task);
                1
            }
            None => 0,
        }
    }

    fn stats(&self) -> PlaceStats {
        let mut s = self.stats;
        s.combine_passes = self.cstats.passes;
        s.combine_ops = self.cstats.ops;
        s.combine_pass_max = self.cstats.max_pass;
        s.combine_parks = self.cstats.parks;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize, k: usize) -> Arc<StructuralKPriority<u64>> {
        Arc::new(StructuralKPriority::new(n, k))
    }

    /// Both shared-queue modes, so every test runs the mutex path too.
    fn pools(n: usize, k: usize) -> [Arc<StructuralKPriority<u64>>; 2] {
        [
            Arc::new(StructuralKPriority::with_combining(n, k, true)),
            Arc::new(StructuralKPriority::with_combining(n, k, false)),
        ]
    }

    #[test]
    fn default_mode_is_combining() {
        assert!(pool(1, 4).combining());
        assert!(!StructuralKPriority::<u64>::with_combining(1, 4, false).combining());
    }

    #[test]
    fn single_place_priority_order() {
        for p in pools(1, 4) {
            let mut h = p.handle(0);
            for &x in &[6u64, 2, 8, 1] {
                h.push(x, 0, x);
            }
            let mut out = Vec::new();
            while let Some(t) = h.pop() {
                out.push(t);
            }
            assert_eq!(out, vec![1, 2, 6, 8]);
        }
    }

    #[test]
    fn overflow_goes_to_shared_queue() {
        for p in pools(2, 2) {
            let mut h0 = p.handle(0);
            for i in 0..5u64 {
                h0.push(i, 0, i);
            }
            // Buffer holds 2, the rest went shared: place 1 sees them
            // without raiding.
            let mut h1 = p.handle(1);
            assert!(h1.pop().is_some());
            assert_eq!(h1.stats().steals, 0);
        }
    }

    #[test]
    fn raid_recovers_buffered_tasks() {
        for p in pools(2, 64) {
            let mut h0 = p.handle(0);
            for i in 0..5u64 {
                h0.push(i, 0, i); // all buffered at place 0
            }
            let mut h1 = p.handle(1);
            let mut got = Vec::new();
            while let Some(t) = h1.pop() {
                got.push(t);
            }
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
            assert!(h1.stats().steals >= 1);
        }
    }

    /// The structural bound: a pop may ignore only tasks buffered at other
    /// places, at most (P−1)·k, regardless of age. With P = 2 the popping
    /// place can see everything except ≤ k buffered tasks — and unlike the
    /// temporal structures, an *old* task may legally stay hidden.
    #[test]
    fn old_tasks_may_stay_buffered_but_bound_holds() {
        let k = 3;
        for p in pools(2, k) {
            let mut h0 = p.handle(0);
            // k old, high-priority tasks stay in the buffer forever …
            for i in 0..k as u64 {
                h0.push(i, 0, i);
            }
            // … while newer, worse tasks overflow to the shared queue.
            for i in 0..20u64 {
                h0.push(100 + i, 0, 100 + i);
            }
            let mut h1 = p.handle(1);
            // Place 1 pops the shared tasks; the k buffered ones are
            // ignored — exactly the structural allowance, never more.
            for i in 0..20u64 {
                assert_eq!(h1.pop(), Some(100 + i));
            }
            // Raid finally liberates the buffered ones.
            let mut rest = Vec::new();
            while let Some(t) = h1.pop() {
                rest.push(t);
            }
            assert_eq!(rest, vec![0, 1, 2]);
        }
    }

    #[test]
    fn concurrent_exactly_once() {
        for p in pools(4, 16) {
            let threads = 4usize;
            let per = 2_000u64;
            let popped = Arc::new(std::sync::atomic::AtomicU64::new(0));
            let taken: Arc<Vec<std::sync::atomic::AtomicU32>> =
                Arc::new((0..threads as u64 * per).map(|_| 0.into()).collect());
            std::thread::scope(|s| {
                for t in 0..threads {
                    let p = Arc::clone(&p);
                    let taken = Arc::clone(&taken);
                    let popped = Arc::clone(&popped);
                    s.spawn(move || {
                        use std::sync::atomic::Ordering;
                        let mut h = p.handle(t);
                        let mut rng = XorShift64::new(t as u64 + 13);
                        let mut pushed = 0u64;
                        loop {
                            if pushed < per && rng.below(2) == 0 {
                                h.push(rng.below(500), 0, t as u64 * per + pushed);
                                pushed += 1;
                            } else if let Some(got) = h.pop() {
                                assert_eq!(taken[got as usize].fetch_add(1, Ordering::Relaxed), 0);
                                popped.fetch_add(1, Ordering::Relaxed);
                            } else if pushed == per
                                && popped.load(Ordering::Relaxed) == threads as u64 * per
                            {
                                break;
                            } else {
                                std::thread::yield_now();
                            }
                        }
                    });
                }
            });
            assert_eq!(
                popped.load(std::sync::atomic::Ordering::Relaxed),
                threads as u64 * per
            );
        }
    }
}
