//! Tagged task items and their recycling pool.
//!
//! Both k-priority structures store every task inside an *item* carrying the
//! task payload plus scheduling metadata (`place`, `k`, priority) and a
//! **tag** (§4.1.1, §4.1.3). The tag is initialized to the item's position
//! in the owning structure — positions are strictly increasing — and a task
//! is *taken* by atomically CASing the tag from the expected position to a
//! sentinel. Because a recycled item is always re-tagged with a fresh, never
//! previously used position, a stale reference's CAS can never succeed: this
//! is the paper's ABA protection, reproduced here unchanged.
//!
//! # Memory management substitution
//!
//! The paper allocates items through a wait-free memory manager \[18\] and
//! reuses an item "as soon as the previous task has been executed". We keep
//! the reuse scheme but back it with an [`ItemPool`]: a grow-only list of
//! item blocks (lock-free CAS push of fully initialized blocks) plus a
//! lock-free free list ([`crossbeam_queue::SegQueue`]) for recycling. Item
//! memory is released only when the pool is dropped, which makes it sound
//! for stale references to *read the tag* of a recycled item — the
//! dereference is always into live memory, and the tag comparison detects
//! the recycling.
//!
//! # Payload handoff
//!
//! One deliberate deviation from Listing 2: the paper reads the task out of
//! the item *before* the take-CAS because their items may be recycled
//! immediately after the CAS. For arbitrary `T` that read would be a data
//! race. Here the unique CAS winner reads the payload *after* winning and
//! only then releases the item for reuse ([`Item::try_take`] +
//! [`ItemPool::release`]), so the handoff is race-free without changing the
//! algorithm's structure.

use crossbeam_queue::SegQueue;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};

/// Tag of an item sitting in the free list (or never used). No payload.
pub const TAG_FREE: u64 = u64::MAX;
/// Tag of an item whose task has been taken. No payload.
pub const TAG_TAKEN: u64 = u64::MAX - 1;
/// Exclusive upper bound for position tags.
pub const MAX_POSITION: u64 = u64::MAX - 2;

/// Items per allocation block.
const BLOCK_LEN: usize = 1024;

/// A task wrapper with take-once semantics.
///
/// Field access rules (enforced by the structures, not the type system):
/// * `payload` is written exactly once per lifecycle, by the thread that
///   acquired the item from the pool, *before* the item is published;
/// * `payload` is read exactly once, by the unique winner of the take-CAS;
/// * all other fields are atomics and may be read by any thread at any time
///   (reads of recycled items yield stale metadata, which callers tolerate —
///   any decision based on it is revalidated by the tag CAS).
pub struct Item<T> {
    /// Position tag, [`TAG_TAKEN`], or [`TAG_FREE`].
    pub tag: AtomicU64,
    /// Priority key (smaller = higher priority).
    pub prio: AtomicU64,
    /// Id of the place that created the current task.
    pub place: AtomicU32,
    /// Per-task relaxation parameter `k`.
    pub k: AtomicU32,
    payload: UnsafeCell<MaybeUninit<T>>,
}

impl<T> Item<T> {
    fn empty() -> Self {
        Item {
            tag: AtomicU64::new(TAG_FREE),
            prio: AtomicU64::new(0),
            place: AtomicU32::new(0),
            k: AtomicU32::new(0),
            payload: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }

    /// Initializes a freshly acquired item with a new task.
    ///
    /// Does **not** set the tag: the caller stores the position tag with
    /// `Release` ordering as the final step before (or together with)
    /// publication, which is what makes the payload visible to the taker.
    ///
    /// # Safety
    /// The caller must have exclusive ownership of the item (freshly
    /// returned by [`ItemPool::acquire`], not yet published).
    pub unsafe fn init(&self, place: u32, k: u32, prio: u64, task: T) {
        debug_assert_eq!(self.tag.load(Ordering::Relaxed), TAG_FREE);
        (*self.payload.get()).write(task);
        self.prio.store(prio, Ordering::Relaxed);
        self.place.store(place, Ordering::Relaxed);
        self.k.store(k, Ordering::Relaxed);
    }

    /// Attempts to take the task by CASing the tag from `expected_tag` to
    /// [`TAG_TAKEN`]. On success the unique winner receives the payload.
    ///
    /// Fails (returns `None`) when the item was already taken, or recycled
    /// under a different position — the ABA case the tag exists to detect.
    pub fn try_take(&self, expected_tag: u64) -> Option<T> {
        debug_assert!(expected_tag < MAX_POSITION);
        if self
            .tag
            .compare_exchange(expected_tag, TAG_TAKEN, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: the CAS succeeded, so we are the unique winner for
            // this lifecycle; the publisher's Release store of the tag
            // happens-before our Acquire, making the payload write visible.
            // The item cannot be recycled until we put it back in the pool.
            Some(unsafe { (*self.payload.get()).assume_init_read() })
        } else {
            None
        }
    }

    /// `true` when the item currently carries the given position tag
    /// (cheap pre-check to skip CAS attempts on dead references).
    #[inline]
    pub fn is_live_at(&self, expected_tag: u64) -> bool {
        self.tag.load(Ordering::Acquire) == expected_tag
    }
}

/// Raw item pointer wrapper so pointers can travel through the free list.
struct ItemSlot<T>(*const Item<T>);
// SAFETY: the pointer is only dereferenced under the pool's ownership
// discipline; the payload it guards is `T: Send`.
unsafe impl<T: Send> Send for ItemSlot<T> {}

/// A block of items plus an intrusive link for the grow-only block list.
struct Block<T> {
    items: Box<[Item<T>]>,
    next: *mut Block<T>,
}

/// Grow-only, recycle-forever item pool.
///
/// * `acquire` pops the lock-free free list, allocating a new block only
///   when the list is empty (block publication is a CAS push onto a
///   grow-only list, so the slow path is lock-free as well);
/// * `release` re-tags the item [`TAG_FREE`] and pushes it back;
/// * memory is reclaimed only on drop, at which point payloads of still-live
///   items (pushed but never taken) are dropped in place.
pub struct ItemPool<T> {
    free: SegQueue<ItemSlot<T>>,
    blocks: AtomicPtr<Block<T>>,
    allocated: AtomicU64,
}

impl<T: Send> ItemPool<T> {
    /// Creates an empty pool; the first block is allocated lazily.
    pub fn new() -> Self {
        ItemPool {
            free: SegQueue::new(),
            blocks: AtomicPtr::new(ptr::null_mut()),
            allocated: AtomicU64::new(0),
        }
    }

    /// Fetches a free item. The returned item has tag [`TAG_FREE`] and no
    /// payload; the caller must [`Item::init`] it and set its tag before
    /// publication.
    pub fn acquire(&self) -> *const Item<T> {
        if let Some(ItemSlot(p)) = self.free.pop() {
            debug_assert_eq!(
                unsafe { &*p }.tag.load(Ordering::Relaxed),
                TAG_FREE,
                "free-list item must be tagged FREE"
            );
            return p;
        }
        self.grow()
    }

    /// Allocates a new block, keeps one item, donates the rest.
    fn grow(&self) -> *const Item<T> {
        let items: Box<[Item<T>]> = (0..BLOCK_LEN).map(|_| Item::empty()).collect();
        let kept = &items[0] as *const Item<T>;
        for item in items.iter().skip(1) {
            self.free.push(ItemSlot(item as *const Item<T>));
        }
        let block = Box::into_raw(Box::new(Block {
            items,
            next: ptr::null_mut(),
        }));
        // CAS push onto the grow-only block list; no ABA because blocks are
        // never removed while the pool is alive.
        let mut head = self.blocks.load(Ordering::Relaxed);
        loop {
            unsafe { (*block).next = head };
            match self.blocks.compare_exchange_weak(
                head,
                block,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        self.allocated
            .fetch_add(BLOCK_LEN as u64, Ordering::Relaxed);
        kept
    }

    /// Returns a taken item for reuse.
    ///
    /// # Safety
    /// `item` must have been acquired from this pool, its tag must be
    /// [`TAG_TAKEN`] (payload already moved out by [`Item::try_take`]), and
    /// the caller must not touch it afterwards.
    pub unsafe fn release(&self, item: *const Item<T>) {
        let it = &*item;
        debug_assert_eq!(it.tag.load(Ordering::Relaxed), TAG_TAKEN);
        it.tag.store(TAG_FREE, Ordering::Release);
        self.free.push(ItemSlot(item));
    }

    /// Total items ever allocated (live + free).
    pub fn allocated(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }
}

impl<T: Send> Default for ItemPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for ItemPool<T> {
    fn drop(&mut self) {
        let mut block = *self.blocks.get_mut();
        while !block.is_null() {
            let boxed = unsafe { Box::from_raw(block) };
            for item in boxed.items.iter() {
                // Items that were pushed but never taken still own a task.
                if item.tag.load(Ordering::Relaxed) < MAX_POSITION {
                    // SAFETY: live tag ⇒ payload initialized and not moved
                    // out; we have exclusive access in drop.
                    unsafe { (*item.payload.get()).assume_init_drop() };
                }
            }
            block = boxed.next;
        }
    }
}

// SAFETY: all cross-thread access to `payload` follows the write-once /
// take-once protocol documented on `Item`; every other field is atomic.
unsafe impl<T: Send> Send for ItemPool<T> {}
unsafe impl<T: Send> Sync for ItemPool<T> {}

/// A reference to an item held in a place-local priority queue.
///
/// Mirrors the paper's `ItemRef`: the priority (copied out at creation so
/// ordering needs no dereference), the expected position tag, and the item
/// pointer. Ordered by `(prio, tag)` — the tag tiebreak makes local pop
/// order deterministic.
pub struct ItemRef<T> {
    /// Priority key copied from the item at reference creation.
    pub prio: u64,
    /// Position tag the item carried when the reference was created.
    pub tag: u64,
    /// The referenced item (pool-owned; always safe to dereference).
    pub ptr: *const Item<T>,
}

impl<T> Clone for ItemRef<T> {
    fn clone(&self) -> Self {
        ItemRef {
            prio: self.prio,
            tag: self.tag,
            ptr: self.ptr,
        }
    }
}

impl<T> PartialEq for ItemRef<T> {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio && self.tag == other.tag
    }
}
impl<T> Eq for ItemRef<T> {}
impl<T> PartialOrd for ItemRef<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for ItemRef<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.prio, self.tag).cmp(&(other.prio, other.tag))
    }
}

// SAFETY: an ItemRef is only dereferenced by its owning place handle, and
// only into pool memory that outlives the handle (the handle holds an Arc of
// the structure that owns the pool).
unsafe impl<T: Send> Send for ItemRef<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn acquire_init_take_round_trip() {
        let pool: ItemPool<String> = ItemPool::new();
        let p = pool.acquire();
        let item = unsafe { &*p };
        unsafe { item.init(3, 8, 42, "hello".to_string()) };
        item.tag.store(17, Ordering::Release);
        assert!(item.is_live_at(17));
        assert!(!item.is_live_at(16));
        assert_eq!(item.prio.load(Ordering::Relaxed), 42);
        assert_eq!(item.place.load(Ordering::Relaxed), 3);
        assert_eq!(item.k.load(Ordering::Relaxed), 8);
        assert_eq!(item.try_take(17), Some("hello".to_string()));
        unsafe { pool.release(p) };
    }

    #[test]
    fn second_take_fails() {
        let pool: ItemPool<u32> = ItemPool::new();
        let p = pool.acquire();
        let item = unsafe { &*p };
        unsafe { item.init(0, 1, 5, 99) };
        item.tag.store(7, Ordering::Release);
        assert_eq!(item.try_take(7), Some(99));
        assert_eq!(item.try_take(7), None);
        unsafe { pool.release(p) };
    }

    #[test]
    fn wrong_tag_fails_and_leaves_item_live() {
        let pool: ItemPool<u32> = ItemPool::new();
        let p = pool.acquire();
        let item = unsafe { &*p };
        unsafe { item.init(0, 1, 5, 7) };
        item.tag.store(100, Ordering::Release);
        assert_eq!(item.try_take(99), None);
        assert!(item.is_live_at(100));
        assert_eq!(item.try_take(100), Some(7));
        unsafe { pool.release(p) };
    }

    #[test]
    fn recycled_item_rejects_stale_tag() {
        let pool: ItemPool<u32> = ItemPool::new();
        let p = pool.acquire();
        let item = unsafe { &*p };
        unsafe { item.init(0, 1, 5, 1) };
        item.tag.store(10, Ordering::Release);
        assert_eq!(item.try_take(10), Some(1));
        unsafe { pool.release(p) };
        // Recycle the same physical item under a new position (the pool's
        // free list is FIFO, so acquire until we get `p` back).
        let mut extras = Vec::new();
        let q = loop {
            let q = pool.acquire();
            if q == p {
                break q;
            }
            extras.push(q);
        };
        let item = unsafe { &*q };
        unsafe { item.init(1, 1, 6, 2) };
        item.tag.store(11, Ordering::Release);
        // A stale reference still holding tag 10 must fail:
        assert_eq!(item.try_take(10), None);
        assert_eq!(item.try_take(11), Some(2));
        unsafe { pool.release(q) };
        for e in extras {
            // Untouched FREE items can simply go back.
            unsafe { &*e }.tag.store(TAG_TAKEN, Ordering::Relaxed);
            unsafe { pool.release(e) };
        }
    }

    #[test]
    fn pool_grows_beyond_one_block() {
        let pool: ItemPool<u64> = ItemPool::new();
        let mut ptrs = Vec::new();
        for i in 0..(BLOCK_LEN * 2 + 10) {
            let p = pool.acquire();
            let item = unsafe { &*p };
            unsafe { item.init(0, 1, i as u64, i as u64) };
            item.tag.store(i as u64, Ordering::Release);
            ptrs.push(p);
        }
        assert!(pool.allocated() >= (BLOCK_LEN * 2) as u64);
        // Take everything back so drop has no live payloads to reclaim.
        for (i, p) in ptrs.iter().enumerate() {
            let item = unsafe { &**p };
            assert_eq!(item.try_take(i as u64), Some(i as u64));
            unsafe { pool.release(*p) };
        }
    }

    /// Payload type that counts drops, to verify pool-drop reclamation.
    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn dropping_pool_drops_untaken_payloads_exactly_once() {
        let drops = Arc::new(AtomicUsize::new(0));
        let pool: ItemPool<DropCounter> = ItemPool::new();
        // 3 live (never taken), 2 taken.
        for i in 0..5u64 {
            let p = pool.acquire();
            let item = unsafe { &*p };
            unsafe { item.init(0, 1, i, DropCounter(drops.clone())) };
            item.tag.store(i, Ordering::Release);
            if i >= 3 {
                let taken = item.try_take(i).unwrap();
                drop(taken);
                unsafe { pool.release(p) };
            }
        }
        assert_eq!(
            drops.load(Ordering::Relaxed),
            2,
            "only taken payloads dropped so far"
        );
        drop(pool);
        assert_eq!(
            drops.load(Ordering::Relaxed),
            5,
            "pool drop reclaims live payloads"
        );
    }

    #[test]
    fn item_ref_orders_by_priority_then_tag() {
        let a: ItemRef<u8> = ItemRef {
            prio: 1,
            tag: 9,
            ptr: std::ptr::null(),
        };
        let b: ItemRef<u8> = ItemRef {
            prio: 1,
            tag: 10,
            ptr: std::ptr::null(),
        };
        let c: ItemRef<u8> = ItemRef {
            prio: 2,
            tag: 0,
            ptr: std::ptr::null(),
        };
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn concurrent_acquire_release_stress() {
        let pool = Arc::new(ItemPool::<u64>::new());
        let threads = 8;
        let per = 5_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let pool = pool.clone();
                s.spawn(move || {
                    for i in 0..per {
                        let p = pool.acquire();
                        let item = unsafe { &*p };
                        let tag = (t as u64) * per * 2 + i; // unique positions
                        unsafe { item.init(t as u32, 1, i, i) };
                        item.tag.store(tag, Ordering::Release);
                        assert_eq!(item.try_take(tag), Some(i));
                        unsafe { pool.release(p) };
                    }
                });
            }
        });
        // Every item ended FREE; allocation stayed bounded by concurrency,
        // far below the total number of operations.
        assert!(pool.allocated() <= (threads as u64) * per);
    }
}
