//! k-relaxed Pareto priority queue (conclusion/future work, §6).
//!
//! The paper's conclusion announces "k-relaxed Pareto priority queues with
//! guarantees that can then be used for parallelization of a multi-objective
//! shortest path search" as planned future work. This module is a working
//! prototype of that direction, scoped as DESIGN.md §7 states (a tested
//! structure, not a paper-level evaluation).
//!
//! With vector-valued priorities there is no single minimum; the natural
//! pop contract returns a **Pareto-optimal** element: one not *dominated*
//! by any other stored element (`a` dominates `b` when `a ≤ b` component-
//! wise and `a < b` somewhere). The relaxation mirrors §2.2: each place
//! buffers up to `k` elements privately, so a pop may return an element
//! dominated only by buffered-elsewhere ones — at most `(P−1)·k` of them,
//! the ρ-relaxed analog of the scalar bound.
//!
//! The shared component is a sequential Pareto archive under a mutex; the
//! interesting (and tested) part is the dominance bookkeeping, which is what
//! a multi-objective label-setting search needs from its queue.

use crate::sync::Mutex;
use crate::util::XorShift64;
use crossbeam_utils::CachePadded;
use std::sync::Arc;

/// A bi-objective priority, e.g. (travel time, cost). Smaller is better in
/// both components.
pub type BiPriority = [u64; 2];

/// `a` dominates `b`: no worse in both objectives, strictly better in one.
#[inline]
pub fn dominates(a: BiPriority, b: BiPriority) -> bool {
    a[0] <= b[0] && a[1] <= b[1] && (a[0] < b[0] || a[1] < b[1])
}

struct Entry<T> {
    prio: BiPriority,
    task: T,
}

/// Shared store: a flat archive scanned for Pareto-optimality on pop.
struct Archive<T> {
    entries: Vec<Entry<T>>,
}

impl<T> Archive<T> {
    /// Removes and returns a Pareto-optimal entry, preferring the
    /// lexicographically smallest among the non-dominated (deterministic).
    fn pop_optimal(&mut self) -> Option<Entry<T>> {
        if self.entries.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for i in 1..self.entries.len() {
            let (a, b) = (self.entries[i].prio, self.entries[best].prio);
            if dominates(a, b) || (!dominates(b, a) && a < b) {
                best = i;
            }
        }
        // `best` is not dominated by any entry: anything dominating it
        // would have replaced it during the scan (dominance implies
        // lexicographically smaller-or-equal, and the scan prefers both
        // dominating and lexicographically smaller candidates).
        Some(self.entries.swap_remove(best))
    }
}

/// A lockable label buffer padded to its own cache line.
type PaddedBuffer<T> = CachePadded<Mutex<Vec<Entry<T>>>>;

/// k-relaxed Pareto priority queue over `P` places.
pub struct ParetoKRelaxed<T: Send> {
    k: usize,
    shared: CachePadded<Mutex<Archive<T>>>,
    buffers: Box<[PaddedBuffer<T>]>,
}

impl<T: Send> ParetoKRelaxed<T> {
    /// Creates the queue for `nplaces` places with per-place buffer bound
    /// `k` (ρ = (P−1)·k).
    pub fn new(nplaces: usize, k: usize) -> Self {
        assert!(nplaces > 0, "need at least one place");
        ParetoKRelaxed {
            k,
            shared: CachePadded::new(Mutex::new(Archive {
                entries: Vec::new(),
            })),
            buffers: (0..nplaces)
                .map(|_| CachePadded::new(Mutex::new(Vec::new())))
                .collect(),
        }
    }

    /// Creates the place-local handle.
    pub fn handle(self: &Arc<Self>, place: usize) -> ParetoHandle<T> {
        assert!(place < self.buffers.len(), "place {place} out of range");
        ParetoHandle {
            shared: Arc::clone(self),
            place,
            rng: XorShift64::new(0x9A3E_0000 ^ place as u64),
        }
    }

    /// Total stored elements (diagnostics; racy).
    pub fn len(&self) -> usize {
        self.shared.lock().entries.len()
            + self.buffers.iter().map(|b| b.lock().len()).sum::<usize>()
    }

    /// `true` when no elements are stored (diagnostics; racy).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One place's view of the Pareto queue.
pub struct ParetoHandle<T: Send> {
    shared: Arc<ParetoKRelaxed<T>>,
    place: usize,
    rng: XorShift64,
}

impl<T: Send> ParetoHandle<T> {
    /// Inserts a task with a bi-objective priority.
    pub fn push(&mut self, prio: BiPriority, task: T) {
        let entry = Entry { prio, task };
        let mut buf = self.shared.buffers[self.place].lock();
        if buf.len() < self.shared.k {
            buf.push(entry);
            return;
        }
        drop(buf);
        self.shared.shared.lock().entries.push(entry);
    }

    /// Removes and returns a task whose priority is Pareto-optimal among
    /// all elements visible to this place (shared archive + own buffer);
    /// elements buffered at other places — at most `(P−1)·k` — may be
    /// missed, which is the ρ-relaxation.
    pub fn pop(&mut self) -> Option<(BiPriority, T)> {
        // Merge own buffer into the shared archive, then pop an optimum.
        {
            let mut buf = self.shared.buffers[self.place].lock();
            if !buf.is_empty() {
                let mut drained = std::mem::take(&mut *buf);
                drop(buf);
                self.shared.shared.lock().entries.append(&mut drained);
            }
        }
        if let Some(e) = self.shared.shared.lock().pop_optimal() {
            return Some((e.prio, e.task));
        }
        // Shared empty: raid other buffers (bounded, deterministic sweep).
        let p = self.shared.buffers.len();
        let start = self.rng.below(p.max(1) as u64) as usize;
        for i in 0..p {
            let victim = (start + i) % p;
            if victim == self.place {
                continue;
            }
            let mut buf = self.shared.buffers[victim].lock();
            if !buf.is_empty() {
                let mut drained = std::mem::take(&mut *buf);
                drop(buf);
                self.shared.shared.lock().entries.append(&mut drained);
                if let Some(e) = self.shared.shared.lock().pop_optimal() {
                    return Some((e.prio, e.task));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_relation() {
        assert!(dominates([1, 1], [2, 2]));
        assert!(dominates([1, 2], [1, 3]));
        assert!(!dominates([1, 1], [1, 1]), "equal does not dominate");
        assert!(!dominates([1, 3], [2, 1]), "incomparable");
        assert!(!dominates([2, 2], [1, 1]));
    }

    #[test]
    fn pop_returns_non_dominated() {
        let q = Arc::new(ParetoKRelaxed::new(1, 0));
        let mut h = q.handle(0);
        h.push([3, 3], "dominated");
        h.push([1, 4], "frontier-a");
        h.push([4, 1], "frontier-b");
        h.push([2, 2], "frontier-c");
        let (prio, _) = h.pop().unwrap();
        // Any frontier point is acceptable; [3,3] is not.
        assert_ne!(prio, [3, 3]);
        // Drain: every pop must be non-dominated among the remaining set.
        let mut remaining = vec![[3, 3], [1, 4], [4, 1], [2, 2]]
            .into_iter()
            .filter(|&p| p != prio)
            .collect::<Vec<_>>();
        while let Some((p, _)) = h.pop() {
            assert!(
                !remaining.iter().any(|&r| dominates(r, p)),
                "popped {p:?} dominated by a stored element"
            );
            remaining.retain(|&r| r != p);
        }
        assert!(remaining.is_empty());
    }

    #[test]
    fn lexicographic_preference_is_deterministic() {
        let q = Arc::new(ParetoKRelaxed::new(1, 0));
        let mut h = q.handle(0);
        h.push([2, 5], "b");
        h.push([1, 9], "a");
        let (prio, task) = h.pop().unwrap();
        assert_eq!(prio, [1, 9]);
        assert_eq!(task, "a");
    }

    #[test]
    fn buffered_tasks_recovered_by_raid() {
        let q = Arc::new(ParetoKRelaxed::new(2, 8));
        let mut h0 = q.handle(0);
        h0.push([5, 5], 55u32);
        h0.push([1, 9], 19);
        let mut h1 = q.handle(1);
        let mut got = Vec::new();
        while let Some((_, t)) = h1.pop() {
            got.push(t);
        }
        got.sort();
        assert_eq!(got, vec![19, 55]);
    }

    #[test]
    fn exactly_once_under_concurrency() {
        let q = Arc::new(ParetoKRelaxed::new(4, 4));
        let total = 4_000u32;
        let popped = Arc::new(std::sync::atomic::AtomicU32::new(0));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let q = Arc::clone(&q);
                let popped = Arc::clone(&popped);
                s.spawn(move || {
                    use std::sync::atomic::Ordering;
                    let mut h = q.handle(t as usize);
                    let mut rng = XorShift64::new(t as u64);
                    for i in 0..total / 4 {
                        h.push([rng.below(100), rng.below(100)], t * (total / 4) + i);
                    }
                    while h.pop().is_some() {
                        popped.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        // Concurrent drains may have raced with late pushes; after the scope
        // all pushes are complete, so a final drain accounts for the rest.
        let mut h = q.handle(0);
        while h.pop().is_some() {
            popped.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        assert_eq!(popped.load(std::sync::atomic::Ordering::Relaxed), total);
        assert!(q.is_empty());
    }
}
