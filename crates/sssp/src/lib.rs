#![warn(missing_docs)]

//! Parallel single-source shortest paths on the priosched scheduler.
//!
//! The paper's evaluation application (§5.1, Listing 5): a simple
//! parallelization of Dijkstra's algorithm where **each node relaxation is a
//! task**, prioritized by the node's tentative distance ("priority, smaller
//! is better"). Instead of decrease-key, improved nodes are *reinserted*
//! with their new distance; superseded instances become **dead tasks**,
//! recognized lazily and skipped (§5.1).
//!
//! The parallelization departs from Dijkstra in one way only: nodes may be
//! relaxed before they are settled, producing *useless work* (the node must
//! be relaxed again later). The amount of useless work is exactly what the
//! choice of scheduling data structure controls, and what Figures 4–5
//! measure as "nodes relaxed" beyond the graph's `n`.
//!
//! Entry points: [`run_sssp`] over any [`priosched_core::TaskPool`], and [`run_sssp_kind`]
//! selecting a paper structure by [`priosched_core::PoolKind`].

pub mod distances;
pub mod executor;
pub mod lockstep;
pub mod runner;

pub use distances::AtomicDistances;
pub use executor::{SsspExecutor, SsspTask};
pub use lockstep::{run_sssp_lockstep, run_sssp_lockstep_kind};
pub use runner::{run_sssp, run_sssp_kind, SsspConfig, SsspResult};

#[cfg(test)]
mod integration_tests {
    use super::*;
    use priosched_core::PoolKind;
    use priosched_graph::{dijkstra, erdos_renyi, CsrGraph, ErdosRenyiConfig};

    fn check_against_dijkstra(
        graph: &CsrGraph,
        source: u32,
        kind: PoolKind,
        places: usize,
        k: usize,
    ) {
        let cfg = SsspConfig::new(places, k);
        let res = run_sssp_kind(kind, graph, source, &cfg);
        let expect = dijkstra(graph, source);
        assert_eq!(
            res.dist, expect.dist,
            "{kind} places={places} k={k}: distances diverge"
        );
        let reachable = expect.dist.iter().filter(|d| d.is_finite()).count() as u64;
        assert!(
            res.relaxed >= reachable,
            "{kind}: fewer relaxations than reachable nodes"
        );
    }

    #[test]
    fn all_structures_match_dijkstra_small_graph() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 150,
            p: 0.08,
            seed: 21,
        });
        for kind in PoolKind::ALL {
            check_against_dijkstra(&g, 0, kind, 2, 16);
        }
    }

    #[test]
    fn all_structures_match_dijkstra_various_sources() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 120,
            p: 0.1,
            seed: 33,
        });
        for source in [0u32, 7, 119] {
            for kind in PoolKind::PAPER {
                check_against_dijkstra(&g, source, kind, 3, 8);
            }
        }
    }

    #[test]
    fn single_place_performs_no_useless_work() {
        // With one place every structure degenerates to a strict sequential
        // priority queue, i.e. Dijkstra's order: relaxations == reachable.
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 200,
            p: 0.05,
            seed: 5,
        });
        let expect = dijkstra(&g, 0);
        let reachable = expect.dist.iter().filter(|d| d.is_finite()).count() as u64;
        for kind in PoolKind::PAPER {
            let cfg = SsspConfig::new(1, 512);
            let res = run_sssp_kind(kind, &g, 0, &cfg);
            assert_eq!(res.dist, expect.dist);
            assert_eq!(
                res.relaxed, reachable,
                "{kind}: single place must relax each node exactly once"
            );
        }
    }

    #[test]
    fn disconnected_graph_leaves_infinities() {
        let g = CsrGraph::from_undirected_edges(5, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let cfg = SsspConfig::new(2, 4);
        let res = run_sssp_kind(PoolKind::Hybrid, &g, 0, &cfg);
        assert_eq!(res.dist[0], 0.0);
        assert_eq!(res.dist[1], 1.0);
        assert!(res.dist[2].is_infinite());
        assert!(res.dist[3].is_infinite());
        assert!(res.dist[4].is_infinite());
    }

    #[test]
    fn k_extremes_still_correct() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 100,
            p: 0.1,
            seed: 77,
        });
        let expect = dijkstra(&g, 0).dist;
        for k in [0usize, 1, 32768] {
            for kind in PoolKind::PAPER {
                let cfg = SsspConfig::new(4, k);
                let res = run_sssp_kind(kind, &g, 0, &cfg);
                assert_eq!(res.dist, expect, "{kind} k={k}");
            }
        }
    }
}
