//! HDR-style per-operation latency histogram.
//!
//! Throughput means hide exactly the effect flat combining exists to
//! produce: a *tail* change. Delegation turns "every thread occasionally
//! eats a full lock-convoy stall" into "one combiner works while the
//! others wait a bounded hand-off" — the mean barely moves, p99/p999 do.
//! So the bench harnesses record every operation into a [`LatencyHist`]
//! and report percentiles next to the mean.
//!
//! The layout is the classic log-linear scheme (as popularized by
//! HdrHistogram): values below 2^[`SUB_BITS`] get exact unit buckets;
//! above that, each power-of-two range is split into 2^[`SUB_BITS`]
//! linear sub-buckets, bounding the relative quantization error at
//! 2^-[`SUB_BITS`] (≈ 1.6%). Recording is a shift/mask and an array
//! increment — no allocation, no floating point — cheap enough to sit on
//! the op path being measured. Percentile queries return the *upper*
//! bound of the hit bucket so a reported p99 never understates the truth.
//!
//! Histograms are thread-local by construction (each worker owns one) and
//! merged with [`LatencyHist::merge`] after the run, mirroring how
//! `PlaceStats` are aggregated.

use std::time::Duration;

/// log2 of the sub-bucket count per power-of-two range.
const SUB_BITS: u32 = 6;
/// Sub-buckets per power-of-two range (64 → ≤ 1.6% relative error).
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Largest power-of-two exponent tracked exactly: values up to
/// 2^`MAX_EXP` − 1 ns (≈ 137 s) land in a real bucket, larger ones
/// saturate into the last bucket.
const MAX_EXP: u32 = 37;
/// Total bucket count for the layout above.
const BUCKETS: usize = ((MAX_EXP - SUB_BITS + 1) << SUB_BITS) as usize;

/// A fixed-size log-linear latency histogram (nanosecond domain).
#[derive(Clone)]
pub struct LatencyHist {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHist {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a nanosecond value (saturating at the top).
    #[inline]
    fn index(ns: u64) -> usize {
        if ns < SUB_COUNT {
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros();
        let shift = msb - SUB_BITS;
        let idx = (((msb - SUB_BITS + 1) as u64) << SUB_BITS) + ((ns >> shift) & (SUB_COUNT - 1));
        (idx as usize).min(BUCKETS - 1)
    }

    /// Inclusive upper bound of the values mapping to `idx` — what
    /// percentile queries report.
    #[inline]
    fn bucket_upper(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB_COUNT {
            return idx;
        }
        let range = (idx >> SUB_BITS) - 1; // 0-based power-of-two range
        let sub = idx & (SUB_COUNT - 1);
        let low = (SUB_COUNT + sub) << range;
        low + (1u64 << range) - 1
    }

    /// Records one latency in nanoseconds.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::index(ns)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(ns);
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Records one latency as a [`Duration`] (saturating at `u64` ns).
    #[inline]
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Folds `other` into `self` (exact: bucket-wise addition).
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` ∈ [0, 1]: the upper bound of the bucket
    /// holding the ⌈q·count⌉-th smallest sample, clamped to the exact
    /// observed max so quantization never reports past it. 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`LatencyHist::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }
}

impl std::fmt::Debug for LatencyHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHist")
            .field("count", &self.count)
            .field("mean_ns", &self.mean_ns())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("p999", &self.p999())
            .field("max", &self.max_ns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHist::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHist::new();
        for v in [0u64, 1, 2, 3, 10, 63] {
            h.record(v);
        }
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 63);
        // Below SUB_COUNT every value has its own bucket: percentiles are
        // exact order statistics.
        assert_eq!(h.percentile(1.0 / 6.0), 0);
        // rank ⌈0.5·6⌉ = 3 → the third smallest sample.
        assert_eq!(h.p50(), 2);
        assert_eq!(h.percentile(1.0), 63);
    }

    #[test]
    fn large_values_stay_within_relative_error() {
        let mut h = LatencyHist::new();
        for v in [1_000u64, 10_000, 1_000_000, 123_456_789] {
            h.record(v);
            let got = h.percentile(1.0);
            // Upper bound, never past the observed max, within 1.6%.
            assert!(got <= v, "p100 {got} must not exceed exact max {v}");
            assert!(
                (v - got) as f64 <= v as f64 / SUB_COUNT as f64,
                "p100 {got} under-reports {v} by more than the error bound"
            );
            h = LatencyHist::new();
        }
    }

    #[test]
    fn percentiles_split_a_bimodal_distribution() {
        let mut h = LatencyHist::new();
        // 99 fast ops at ~100 ns, 1 slow op at ~1 ms.
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        assert!(h.p50() <= 102, "median must sit on the fast mode");
        assert!(h.p99() <= 102, "p99 rank 99 of 100 is still the fast mode");
        assert!(h.p999() > 900_000, "p999 must surface the outlier");
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn merge_is_exact_bucket_addition() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut all = LatencyHist::new();
        for v in [10u64, 500, 70_000] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 9_000, 2_000_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min_ns(), all.min_ns());
        assert_eq!(a.max_ns(), all.max_ns());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.percentile(q), all.percentile(q), "quantile {q}");
        }
    }

    #[test]
    fn saturates_instead_of_panicking_on_huge_values() {
        let mut h = LatencyHist::new();
        h.record(u64::MAX);
        h.record_duration(Duration::from_secs(10_000));
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_ns(), u64::MAX);
        // Both samples saturate into the last bucket, so the percentile
        // reports its (finite) upper bound rather than the raw extreme.
        assert_eq!(h.percentile(1.0), LatencyHist::bucket_upper(BUCKETS - 1));
    }

    #[test]
    fn bucket_upper_bounds_are_monotonic_and_cover_index() {
        let mut prev = 0u64;
        for idx in 1..BUCKETS {
            let up = LatencyHist::bucket_upper(idx);
            assert!(up > prev, "bucket {idx} upper bound must grow");
            prev = up;
        }
        // Round-trip: every value maps to a bucket whose upper bound is
        // ≥ the value (conservative percentiles).
        for v in [0u64, 1, 63, 64, 65, 1_000, 123_456, 1 << 30, (1 << 36) + 5] {
            let idx = LatencyHist::index(v);
            assert!(
                LatencyHist::bucket_upper(idx) >= v,
                "value {v} escaped its bucket's upper bound"
            );
        }
    }
}
