//! The phase-wise SSSP simulator (§5.4).
//!
//! Model recap (§5.2.1 + §5.4): the system operates on a global pool of
//! active nodes ordered by tentative distance. Execution proceeds in phases;
//! in each phase up to `P` of the *visible* active nodes with the lowest
//! tentative distances are relaxed simultaneously (updates apply at phase
//! end). ρ-relaxation is modeled temporally: the ρ most recently created
//! active nodes are held out of the sorted array — they "might be ignored" —
//! with one exception: the node with the globally lowest tentative distance
//! is always visible ("this node is guaranteed to be relaxed in the next
//! phase"). Newly created nodes within a phase are shuffled before receiving
//! sequence ids, and ties on the minimum are broken deterministically.

use priosched_graph::{dijkstra, CsrGraph};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Places — how many nodes are relaxed per phase.
    pub p: usize,
    /// ρ-relaxation: how many of the newest active nodes are invisible.
    /// `0` models the ideal priority data structure.
    pub rho: usize,
    /// Seed for the shuffle that randomizes sequence-id assignment.
    pub seed: u64,
}

/// Per-phase measurements — one row of Figure 3's panels.
#[derive(Clone, Debug)]
pub struct PhaseRecord {
    /// Nodes relaxed this phase (≤ P).
    pub relaxed: usize,
    /// Relaxed nodes whose tentative distance was already final.
    pub settled: usize,
    /// `h*_t`: difference between the largest and smallest tentative
    /// distance among relaxed nodes (0 when fewer than 2 were relaxed).
    pub h_star: f64,
    /// Smallest tentative distance relaxed this phase.
    pub min_dist: f64,
    /// Largest tentative distance relaxed this phase.
    pub max_dist: f64,
    /// Sorted tentative distances of the relaxed nodes — the `d_t(j)` values
    /// Theorem 5's exact pairwise bound needs (total memory is one f64 per
    /// relaxation, so recording is always on).
    pub dists: Vec<f64>,
}

/// Outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Phase-by-phase records.
    pub phases: Vec<PhaseRecord>,
    /// Final tentative distances (must equal Dijkstra's).
    pub dist: Vec<f64>,
    /// Total node relaxations over all phases.
    pub total_relaxed: usize,
    /// Total relaxations of non-settled nodes (useless work, §5.2.2).
    pub total_useless: usize,
}

/// Runs the phase simulator for SSSP from `source`.
///
/// # Panics
/// Panics if `cfg.p == 0` or `source` is out of range.
pub fn simulate_sssp(graph: &CsrGraph, source: u32, cfg: &SimConfig) -> SimResult {
    assert!(cfg.p > 0, "need at least one place");
    let n = graph.num_nodes();
    assert!((source as usize) < n, "source out of range");
    // Ground truth for settled-ness.
    let final_dist = dijkstra(graph, source).dist;

    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut dist = vec![f64::INFINITY; n];
    let mut seq = vec![0u64; n];
    let mut active = vec![false; n];
    let mut active_list: Vec<u32> = Vec::new();
    let mut next_seq = 1u64;

    dist[source as usize] = 0.0;
    active[source as usize] = true;
    seq[source as usize] = next_seq;
    next_seq += 1;
    active_list.push(source);

    let mut phases = Vec::new();
    let mut total_relaxed = 0usize;
    let mut total_useless = 0usize;

    while !active_list.is_empty() {
        // --- Select the relaxation set Φ_t -------------------------------
        // Deterministic global minimum (ties by node id).
        let &min_node = active_list
            .iter()
            .min_by(|&&a, &&b| {
                dist[a as usize]
                    .partial_cmp(&dist[b as usize])
                    .expect("distances are never NaN")
                    .then(a.cmp(&b))
            })
            .expect("non-empty active list");

        // Hold out the ρ newest by sequence id (except the minimum).
        let (mut visible, holdout): (Vec<u32>, Vec<u32>) = if cfg.rho == 0 {
            (active_list.clone(), Vec::new())
        } else {
            let mut by_seq = active_list.clone();
            by_seq.sort_unstable_by_key(|&v| seq[v as usize]);
            let cut = by_seq.len().saturating_sub(cfg.rho);
            let mut vis: Vec<u32> = by_seq[..cut].to_vec();
            let mut hold: Vec<u32> = by_seq[cut..].to_vec();
            if let Some(idx) = hold.iter().position(|&v| v == min_node) {
                hold.swap_remove(idx);
                vis.push(min_node);
            }
            (vis, hold)
        };

        // The P visible nodes with lowest tentative distance …
        visible.sort_unstable_by(|&a, &b| {
            dist[a as usize]
                .partial_cmp(&dist[b as usize])
                .expect("no NaN")
                .then(a.cmp(&b))
        });
        visible.truncate(cfg.p);
        // … topped up with a random selection of held-out nodes when fewer
        // than P are visible ("a random selection of all other active nodes
        // is relaxed by the other places", §5.4).
        if visible.len() < cfg.p && !holdout.is_empty() {
            let need = cfg.p - visible.len();
            let mut pool: Vec<u32> = holdout;
            pool.shuffle(&mut rng);
            visible.extend(pool.into_iter().take(need));
        }
        let phi = visible;

        // --- Measure the phase -------------------------------------------
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut settled = 0usize;
        let mut phase_dists = Vec::with_capacity(phi.len());
        for &v in &phi {
            let d = dist[v as usize];
            lo = lo.min(d);
            hi = hi.max(d);
            phase_dists.push(d);
            if d == final_dist[v as usize] {
                settled += 1;
            }
        }
        phase_dists.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        total_relaxed += phi.len();
        total_useless += phi.len() - settled;
        phases.push(PhaseRecord {
            relaxed: phi.len(),
            settled,
            h_star: if phi.len() >= 2 { hi - lo } else { 0.0 },
            min_dist: lo,
            max_dist: hi,
            dists: phase_dists,
        });

        // --- Apply relaxations simultaneously ----------------------------
        // δ_{t+1}(w) = min(δ_t(w), min_{v∈Φ} δ_t(v) + λ(v,w)).
        let mut updates: Vec<(u32, f64)> = Vec::new();
        for &v in &phi {
            let d = dist[v as usize];
            for e in graph.neighbors(v) {
                let nd = d + e.weight as f64;
                if nd < dist[e.target as usize] {
                    updates.push((e.target, nd));
                }
            }
        }
        // Relaxed nodes that were not updated become inactive.
        for &v in &phi {
            active[v as usize] = false;
        }
        // Apply updates keeping minima (duplicates possible across Φ).
        let mut touched: Vec<u32> = Vec::new();
        for (w, nd) in updates {
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                touched.push(w);
            }
        }
        // Newly activated nodes get shuffled sequence ids (§5.4).
        touched.sort_unstable();
        touched.dedup();
        touched.shuffle(&mut rng);
        for w in touched {
            active[w as usize] = true;
            seq[w as usize] = next_seq;
            next_seq += 1;
        }
        active_list = (0..n as u32).filter(|&v| active[v as usize]).collect();
    }

    SimResult {
        phases,
        dist,
        total_relaxed,
        total_useless,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priosched_graph::{erdos_renyi, ErdosRenyiConfig};

    fn graph(n: usize, p: f64, seed: u64) -> CsrGraph {
        erdos_renyi(&ErdosRenyiConfig { n, p, seed })
    }

    #[test]
    fn p1_rho0_is_exactly_dijkstra() {
        let g = graph(200, 0.05, 1);
        let res = simulate_sssp(
            &g,
            0,
            &SimConfig {
                p: 1,
                rho: 0,
                seed: 9,
            },
        );
        let exact = dijkstra(&g, 0);
        assert_eq!(res.dist, exact.dist);
        // One settled node per phase, zero useless work.
        assert_eq!(res.total_useless, 0);
        assert_eq!(res.total_relaxed, exact.relaxations);
        assert!(res
            .phases
            .iter()
            .all(|ph| ph.relaxed == 1 && ph.settled == 1));
    }

    #[test]
    fn distances_correct_for_any_p_and_rho() {
        let g = graph(150, 0.08, 2);
        let exact = dijkstra(&g, 0).dist;
        for (p, rho) in [(4, 0), (8, 16), (80, 128), (16, 1000)] {
            let res = simulate_sssp(&g, 0, &SimConfig { p, rho, seed: 4 });
            assert_eq!(res.dist, exact, "p={p} rho={rho}");
        }
    }

    #[test]
    fn useless_work_nonzero_for_large_p_on_line_graph() {
        // A long path forces premature relaxation when P > 1: distant nodes
        // relaxed early must be re-relaxed.
        let n = 64;
        let edges: Vec<(u32, u32, f32)> = (0..n - 1)
            .map(|i| (i as u32, (i + 1) as u32, 1.0))
            .collect();
        // Add shortcuts that make early tentative distances wrong.
        let mut all = edges;
        all.push((0, 32, 40.0));
        let g = CsrGraph::from_undirected_edges(n, &all);
        let res = simulate_sssp(
            &g,
            0,
            &SimConfig {
                p: 8,
                rho: 0,
                seed: 3,
            },
        );
        assert!(res.total_useless > 0, "shortcut must cause useless work");
        assert_eq!(res.dist, dijkstra(&g, 0).dist);
    }

    #[test]
    fn phases_relax_at_most_p_nodes() {
        let g = graph(120, 0.1, 5);
        let res = simulate_sssp(
            &g,
            0,
            &SimConfig {
                p: 7,
                rho: 32,
                seed: 1,
            },
        );
        assert!(res.phases.iter().all(|ph| ph.relaxed <= 7));
        assert_eq!(
            res.total_relaxed,
            res.phases.iter().map(|ph| ph.relaxed).sum::<usize>()
        );
    }

    #[test]
    fn h_star_is_nonnegative_and_zero_for_single_relaxation() {
        let g = graph(100, 0.1, 6);
        let res = simulate_sssp(
            &g,
            0,
            &SimConfig {
                p: 5,
                rho: 8,
                seed: 2,
            },
        );
        for ph in &res.phases {
            assert!(ph.h_star >= 0.0);
            if ph.relaxed < 2 {
                assert_eq!(ph.h_star, 0.0);
            }
        }
        // First phase relaxes only the source.
        assert_eq!(res.phases[0].relaxed, 1);
        assert_eq!(res.phases[0].settled, 1);
    }

    #[test]
    fn rho_increases_useless_work_on_average() {
        // Aggregate over several seeds to smooth randomness: higher ρ hides
        // good nodes, forcing more premature relaxations.
        let g = graph(300, 0.05, 7);
        let total = |rho: usize| -> usize {
            (0..5)
                .map(|s| {
                    simulate_sssp(
                        &g,
                        0,
                        &SimConfig {
                            p: 16,
                            rho,
                            seed: s,
                        },
                    )
                    .total_useless
                })
                .sum()
        };
        let low = total(0);
        let high = total(256);
        assert!(
            high >= low,
            "rho=256 useless {high} should be >= rho=0 useless {low}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = graph(100, 0.1, 8);
        let a = simulate_sssp(
            &g,
            0,
            &SimConfig {
                p: 6,
                rho: 12,
                seed: 5,
            },
        );
        let b = simulate_sssp(
            &g,
            0,
            &SimConfig {
                p: 6,
                rho: 12,
                seed: 5,
            },
        );
        assert_eq!(a.total_relaxed, b.total_relaxed);
        assert_eq!(a.phases.len(), b.phases.len());
    }

    #[test]
    fn min_node_exception_guarantees_progress() {
        // With rho ≫ active-set size everything is held out except the
        // minimum; the simulation must still terminate and be correct.
        let g = graph(80, 0.1, 9);
        let res = simulate_sssp(
            &g,
            0,
            &SimConfig {
                p: 2,
                rho: 10_000,
                seed: 1,
            },
        );
        assert_eq!(res.dist, dijkstra(&g, 0).dist);
    }
}

#[cfg(test)]
mod invariant_tests {
    use super::*;
    use priosched_graph::{erdos_renyi, ErdosRenyiConfig};

    /// With an ideal queue (ρ = 0) the relaxation frontier is monotone:
    /// the smallest tentative distance relaxed per phase never decreases
    /// (the paper's phase model settles shells outward, like Dijkstra).
    #[test]
    fn min_relaxed_distance_monotone_for_ideal_queue() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 250,
            p: 0.06,
            seed: 31,
        });
        let res = simulate_sssp(
            &g,
            0,
            &SimConfig {
                p: 8,
                rho: 0,
                seed: 2,
            },
        );
        let mut prev = f64::NEG_INFINITY;
        for ph in &res.phases {
            assert!(
                ph.min_dist >= prev - 1e-12,
                "frontier regressed: {} after {}",
                ph.min_dist,
                prev
            );
            prev = ph.min_dist;
        }
    }

    /// Every reachable node settles exactly once, for any ρ: total settled
    /// relaxations equal the reachable-node count.
    #[test]
    fn total_settled_equals_reachable_nodes() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 220,
            p: 0.07,
            seed: 32,
        });
        let reachable = priosched_graph::dijkstra(&g, 0)
            .dist
            .iter()
            .filter(|d| d.is_finite())
            .count();
        for rho in [0usize, 64, 1024] {
            let res = simulate_sssp(
                &g,
                0,
                &SimConfig {
                    p: 12,
                    rho,
                    seed: 3,
                },
            );
            let settled: usize = res.phases.iter().map(|ph| ph.settled).sum();
            assert_eq!(settled, reachable, "rho={rho}");
        }
    }

    /// Phase records are internally consistent: dists sorted, h* matches
    /// the extremes, settled ≤ relaxed.
    #[test]
    fn phase_records_internally_consistent() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 150,
            p: 0.1,
            seed: 33,
        });
        let res = simulate_sssp(
            &g,
            0,
            &SimConfig {
                p: 6,
                rho: 16,
                seed: 4,
            },
        );
        for ph in &res.phases {
            assert_eq!(ph.dists.len(), ph.relaxed);
            assert!(ph.settled <= ph.relaxed);
            assert!(ph.dists.windows(2).all(|w| w[0] <= w[1]));
            if ph.relaxed >= 2 {
                let h = ph.dists.last().unwrap() - ph.dists.first().unwrap();
                assert!((h - ph.h_star).abs() < 1e-12);
            }
        }
    }
}
