//! In-tree, loom-API-compatible deterministic interleaving explorer.
//!
//! The build environment is offline, so this workspace vendors the subset
//! of [loom](https://crates.io/crates/loom) it needs as a local shim —
//! same API shape, independent implementation. `priosched-core` routes
//! every atomic, lock, and thread operation through its `sync` facade;
//! under `--cfg loom` that facade resolves here and the concurrency
//! models in `crates/core/tests/loom_models.rs` explore *every* bounded
//! interleaving of the modeled code instead of the handful a stress test
//! happens to hit.
//!
//! # What is modeled
//!
//! - **Scheduling**: a depth-first search over thread interleavings with
//!   a bounded number of preemptions ([`Builder::max_preemptions`]).
//!   Every atomic access, fence, `UnsafeCell` access, mutex/condvar
//!   operation, spawn, join, and yield is a scheduling point.
//! - **Memory**: operational TSO (x86). Non-SeqCst stores sit in a
//!   per-thread FIFO store buffer until a flush point (SeqCst store or
//!   fence, any RMW, lock edges, spawn, thread exit) or until the
//!   scheduler chooses to drain them — so the window in which a Release
//!   store is invisible to other threads is explored, not assumed away.
//! - **Blocking**: untimed condvar waits have *no* spurious wakeups, so
//!   a lost wakeup becomes a detected deadlock. Timed waits can be woken
//!   by a scheduler-chosen timeout (bounded per thread, forced when it
//!   is the only way forward, so timeout-based recovery stays live).
//!
//! # Failure reporting and replay
//!
//! When an execution panics, deadlocks, or blows a budget, the full
//! decision schedule is printed. Set `LOOM_REPLAY="r0 r1 d0 ..."` to
//! re-run exactly that execution under a debugger or with extra logging.
//!
//! # Environment knobs
//!
//! | Variable               | Effect                                    |
//! |------------------------|-------------------------------------------|
//! | `LOOM_MAX_BRANCHES`    | cap on explored executions (then panic)   |
//! | `LOOM_MAX_PREEMPTIONS` | preemption bound per execution            |
//! | `LOOM_MAX_STEPS`       | per-execution op budget (livelock guard)  |
//! | `LOOM_TIMEOUT_WAKES`   | per-thread timed-wait wake budget         |
//! | `LOOM_REPLAY`          | run a single printed schedule             |
//! | `LOOM_LOG`             | print exploration statistics              |

#![warn(missing_docs)]

pub mod cell;
mod rt;
pub mod thread;

pub mod sync;

/// Hints that lower scheduling priority, mirroring `loom::hint`.
pub mod hint {
    /// In a spin loop the model must let other threads run; identical to
    /// [`crate::thread::yield_now`].
    pub fn spin_loop() {
        crate::rt::yield_now();
    }
}

pub use rt::Config;

/// Configure exploration bounds before running a model.
#[derive(Clone, Copy, Debug, Default)]
pub struct Builder {
    cfg: Config,
}

impl Builder {
    /// Default bounds (overridable via `LOOM_*` environment variables).
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Cap the number of explored executions; exceeding it panics.
    pub fn max_branches(mut self, n: u64) -> Builder {
        self.cfg.max_branches = n;
        self
    }

    /// Bound voluntary preemptions per execution (bounded model checking;
    /// 2–3 catches almost all real interleaving bugs at tractable cost).
    pub fn max_preemptions(mut self, n: usize) -> Builder {
        self.cfg.max_preemptions = n;
        self
    }

    /// Per-execution operation budget; a livelock backstop.
    pub fn max_steps(mut self, n: usize) -> Builder {
        self.cfg.max_steps = n;
        self
    }

    /// Per-thread budget of explored timed-wait wakeups.
    pub fn timeout_wakes(mut self, n: usize) -> Builder {
        self.cfg.timeout_wake_budget = n;
        self
    }

    /// Exhaustively run `f` under every schedule within the bounds.
    pub fn check(self, f: impl Fn() + Send + Sync + 'static) {
        rt::model_with(self.cfg, f);
    }
}

/// Explore every bounded interleaving of `f`; panics (with a printed,
/// replayable schedule) if any execution panics, deadlocks, or exceeds a
/// budget.
pub fn model(f: impl Fn() + Send + Sync + 'static) {
    Builder::new().check(f)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use super::sync::{Condvar, Mutex};
    use std::collections::HashSet;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;
    use std::sync::Mutex as StdMutex;

    /// Store-buffer litmus: with Relaxed stores both threads can read 0 —
    /// the hallmark TSO outcome a SeqCst-free model must produce.
    #[test]
    fn sb_litmus_relaxed_allows_both_zero() {
        let outcomes = Arc::new(StdMutex::new(HashSet::new()));
        let sink = Arc::clone(&outcomes);
        super::model(move || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
            let t1 = super::thread::spawn(move || {
                x1.store(1, Ordering::Release);
                y1.load(Ordering::Acquire)
            });
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t2 = super::thread::spawn(move || {
                y2.store(1, Ordering::Release);
                x2.load(Ordering::Acquire)
            });
            let r1 = t1.join().unwrap();
            let r2 = t2.join().unwrap();
            sink.lock().unwrap().insert((r1, r2));
        });
        let seen = outcomes.lock().unwrap();
        assert!(
            seen.contains(&(0, 0)),
            "store buffering must allow (0,0); saw {seen:?}"
        );
        assert!(seen.contains(&(1, 1)) || seen.contains(&(0, 1)) || seen.contains(&(1, 0)));
    }

    /// With SeqCst stores the (0,0) outcome must be impossible.
    #[test]
    fn sb_litmus_seqcst_forbids_both_zero() {
        let outcomes = Arc::new(StdMutex::new(HashSet::new()));
        let sink = Arc::clone(&outcomes);
        super::model(move || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
            let t1 = super::thread::spawn(move || {
                x1.store(1, Ordering::SeqCst);
                y1.load(Ordering::SeqCst)
            });
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t2 = super::thread::spawn(move || {
                y2.store(1, Ordering::SeqCst);
                x2.load(Ordering::SeqCst)
            });
            let r1 = t1.join().unwrap();
            let r2 = t2.join().unwrap();
            sink.lock().unwrap().insert((r1, r2));
        });
        assert!(
            !outcomes.lock().unwrap().contains(&(0, 0)),
            "SeqCst stores must forbid (0,0)"
        );
    }

    /// Message passing: a Release-published flag guarantees the payload
    /// is visible (TSO keeps store order).
    #[test]
    fn message_passing_release_acquire() {
        super::model(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            let t = super::thread::spawn(move || {
                d.store(42, Ordering::Relaxed);
                f.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join().unwrap();
        });
    }

    /// Two RMWs never lose an increment in any schedule.
    #[test]
    fn rmw_increments_never_lost() {
        super::model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c1 = Arc::clone(&c);
            let c2 = Arc::clone(&c);
            let t1 = super::thread::spawn(move || {
                c1.fetch_add(1, Ordering::AcqRel);
            });
            let t2 = super::thread::spawn(move || {
                c2.fetch_add(1, Ordering::AcqRel);
            });
            t1.join().unwrap();
            t2.join().unwrap();
            assert_eq!(c.load(Ordering::Acquire), 2);
        });
    }

    /// The classic missed-wakeup bug (check a flag, then wait, without a
    /// mutex spanning both) must be reported as a deadlock.
    #[test]
    fn lost_wakeup_detected_as_deadlock() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            super::model(|| {
                let m = Arc::new(Mutex::new(false));
                let cv = Arc::new(Condvar::new());
                let flag = Arc::new(AtomicU64::new(0));
                let (m2, cv2, f2) = (Arc::clone(&m), Arc::clone(&cv), Arc::clone(&flag));
                let t = super::thread::spawn(move || {
                    // BUG under test: the flag check happens outside the
                    // mutex, so the notify can land before the wait.
                    if f2.load(Ordering::Acquire) == 0 {
                        let g = m2.lock().unwrap();
                        let _g = cv2.wait(g).unwrap();
                    }
                });
                flag.store(1, Ordering::Release);
                cv.notify_all();
                t.join().unwrap();
            });
        }));
        assert!(result.is_err(), "lost wakeup must fail the model");
    }

    /// Mutex + condvar handoff with the check under the lock never
    /// deadlocks and always observes the flag.
    #[test]
    fn condvar_handoff_correct_pattern_passes() {
        super::model(|| {
            let m = Arc::new(Mutex::new(false));
            let cv = Arc::new(Condvar::new());
            let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
            let t = super::thread::spawn(move || {
                let mut g = m2.lock().unwrap();
                while !*g {
                    g = cv2.wait(g).unwrap();
                }
            });
            {
                let mut g = m.lock().unwrap();
                *g = true;
                cv.notify_all();
            }
            t.join().unwrap();
        });
    }

    /// Mutual exclusion: a mutex-protected counter reaches exactly 2.
    #[test]
    fn mutex_counter_exact() {
        super::model(|| {
            let c = Arc::new(Mutex::new(0u32));
            let c1 = Arc::clone(&c);
            let c2 = Arc::clone(&c);
            let t1 = super::thread::spawn(move || *c1.lock().unwrap() += 1);
            let t2 = super::thread::spawn(move || *c2.lock().unwrap() += 1);
            t1.join().unwrap();
            t2.join().unwrap();
            assert_eq!(*c.lock().unwrap(), 2);
        });
    }

    /// An assertion failure inside a model aborts cleanly with a schedule
    /// (and the runtime stays usable for the next model).
    #[test]
    fn failing_model_panics_and_cleans_up() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            super::model(|| {
                let c = Arc::new(AtomicU64::new(0));
                let c2 = Arc::clone(&c);
                let t = super::thread::spawn(move || {
                    c2.store(1, Ordering::Release);
                });
                // Wrong: claims the store is already visible.
                assert_eq!(c.load(Ordering::Acquire), 1, "deliberate model bug");
                t.join().unwrap();
            });
        }));
        assert!(result.is_err());
        // The runtime must still run a fresh model afterwards.
        super::model(|| {
            let c = AtomicU64::new(0);
            c.store(7, Ordering::SeqCst);
            assert_eq!(c.load(Ordering::Acquire), 7);
        });
    }
}
