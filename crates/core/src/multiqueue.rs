//! Relaxed MultiQueue — the modern probabilistic competitor (PAPERS.md,
//! "Multi-Queues Can Be State-of-the-Art Priority Schedulers",
//! arXiv 2109.00657).
//!
//! Where the paper's structures buy scalability with a *hard* ρ-bound on
//! how far a pop may stray from the true best task (ρ = k centralized,
//! ρ = P·k hybrid), the MultiQueue drops the bound entirely: it keeps
//! `c·P` plain sequential priority queues (`c` ≥ 1 per place, default
//! [`DEFAULT_MQ_C`]), each behind its own cache-padded try-lock, and
//!
//! * **push** picks a random queue, preferring one whose lock is free
//!   (bounded try-lock probing, then a blocking fallback — a push never
//!   fails);
//! * **pop** peeks the cached tops of **two** random queues and pops the
//!   better one, retrying with fresh queues when the lock is taken or the
//!   top was stale. The classic two-choice argument keeps the *expected*
//!   rank error O(P) — but the worst case is unbounded, which is exactly
//!   the trade this structure makes against the paper's ρ-bounded designs.
//!
//! **Stickiness** (§4 of the Multi-Queues paper, a tunable here —
//! [`PoolParams::mq_stickiness`]): after a successful pop a place keeps
//! popping the *same* queue for the next `stickiness` pops before probing
//! two fresh queues again. This trades ordering quality for locality:
//! consecutive pops hit a lock and heap already in this core's cache.
//!
//! # Top caching and the empty path
//!
//! Each queue carries an `AtomicU64` mirror of its best priority
//! (`u64::MAX` = empty), rewritten under the queue lock after every
//! mutation, so the two-choice peek is a pair of loads — no locking on
//! the compare, locking only to take. A pop that drew two apparently
//! empty queues (or lost its locks) falls back to an **exhaustive scan**
//! of all `c·P` queues before giving up. That scan is what makes the
//! scheduler's parking machinery safe on this structure: a parked worker
//! holds no queue lock, so when the last awake worker scans, every queue
//! holding a stranded task is either lockable (the scan finds the task)
//! or held by another *awake* worker (which is making progress). `None`
//! is therefore only ever returned in states where retrying can observe
//! the missing tasks — the contract [`TaskPool`] requires — and
//! quiescence itself comes from the scheduler's pending counter, never
//! from this structure's emptiness.
//!
//! # Rank-error instrument
//!
//! With [`PoolParams::rank_error`] set, the pool additionally maintains a
//! **shadow multiset** of every queued priority behind one global mutex.
//! Each pop then reports its *rank error* — how many strictly better
//! priorities were queued at the moment it committed — onto
//! [`PlaceStats`] (`rank_pops`/`rank_sum`/`rank_max` and a log₂ histogram
//! for p99). The shadow lock serializes every operation, so the
//! instrument is **off by default** and must never be enabled in a timing
//! arm; benches run each cell twice (uninstrumented for time,
//! instrumented for quality). Single-threaded the measurement is exact —
//! with `c = 1` and one place it must read zero, the self-check
//! `tests/multiqueue_quality.rs` pins — while under concurrency shadow
//! updates are ordered insert-before-push / remove-after-pop, so a
//! measured rank can transiently count an element another thread is still
//! committing: a conservative (never understating) estimate.

use crate::pool::{PoolHandle, PoolParams, TaskPool};
use crate::stats::{rank_bucket, PlaceStats};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Mutex;
use crate::util::XorShift64;
use crossbeam_utils::CachePadded;
use priosched_pq::{BinaryHeap, SequentialPriorityQueue};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default queues-per-place factor `c` (the Multi-Queues paper finds
/// small constants ≥ 2 sufficient to keep contention negligible).
pub const DEFAULT_MQ_C: usize = 2;

/// Queue entry: priority, per-place insertion sequence (deterministic
/// tiebreak within a place), task.
struct MqEntry<T> {
    prio: u64,
    seq: u64,
    task: T,
}

impl<T> PartialEq for MqEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio && self.seq == other.seq
    }
}
impl<T> Eq for MqEntry<T> {}
impl<T> PartialOrd for MqEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for MqEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.prio, self.seq).cmp(&(other.prio, other.seq))
    }
}

/// One of the `c·P` queues: the heap behind its try-lock plus the
/// lock-free mirror of its best priority (`u64::MAX` = empty), padded to
/// its own cache line so two-choice peeks never false-share.
struct MqQueue<T> {
    heap: Mutex<BinaryHeap<MqEntry<T>>>,
    top: AtomicU64,
}

impl<T> MqQueue<T> {
    fn new() -> Self {
        MqQueue {
            heap: Mutex::new(BinaryHeap::new()),
            top: AtomicU64::new(u64::MAX),
        }
    }

    /// Refreshes the top mirror from the (locked) heap. Callers must hold
    /// the heap lock — the store is only correct while the heap cannot
    /// move underneath it.
    fn refresh_top(&self, heap: &BinaryHeap<MqEntry<T>>) {
        let top = heap.peek().map_or(u64::MAX, |e| e.prio);
        self.top.store(top, Ordering::Release);
    }
}

/// Shadow multiset of all queued priorities — the rank-error oracle.
#[derive(Default)]
struct Shadow {
    counts: BTreeMap<u64, u64>,
}

impl Shadow {
    fn insert(&mut self, prio: u64) {
        *self.counts.entry(prio).or_insert(0) += 1;
    }

    fn insert_all(&mut self, prios: impl Iterator<Item = u64>) {
        for prio in prios {
            self.insert(prio);
        }
    }

    /// Removes one instance of `prio` and returns how many strictly
    /// better (smaller) priorities were present — the pop's rank error.
    fn remove_and_rank(&mut self, prio: u64) -> u64 {
        let rank = self.counts.range(..prio).map(|(_, c)| *c).sum();
        if let Some(c) = self.counts.get_mut(&prio) {
            *c -= 1;
            if *c == 0 {
                self.counts.remove(&prio);
            }
        }
        rank
    }
}

/// Shared component: `c·P` lockable sequential queues plus the optional
/// rank-error shadow.
pub struct RelaxedMultiQueue<T: Send + 'static> {
    queues: Box<[CachePadded<MqQueue<T>>]>,
    nplaces: usize,
    stickiness: usize,
    shadow: Option<Mutex<Shadow>>,
}

impl<T: Send + 'static> RelaxedMultiQueue<T> {
    /// Creates the structure for `nplaces` places with `c` queues per
    /// place, no stickiness, and the rank instrument off.
    ///
    /// # Panics
    /// Panics if `nplaces == 0` or `c == 0`.
    pub fn new(nplaces: usize, c: usize) -> Self {
        Self::with_options(nplaces, c, 0, false)
    }

    /// Creates the structure with every knob explicit: `c` queues per
    /// place, `stickiness` consecutive same-queue pops after a success
    /// (0 = classic two-choice on every pop), and optionally the shadow
    /// rank-error instrument (serializes all ops — measurement runs only).
    ///
    /// # Panics
    /// Panics if `nplaces == 0` or `c == 0`.
    pub fn with_options(nplaces: usize, c: usize, stickiness: usize, rank_error: bool) -> Self {
        assert!(nplaces > 0, "need at least one place");
        assert!(c > 0, "need at least one queue per place");
        RelaxedMultiQueue {
            queues: (0..nplaces * c)
                .map(|_| CachePadded::new(MqQueue::new()))
                .collect(),
            nplaces,
            stickiness,
            shadow: rank_error.then(|| Mutex::new(Shadow::default())),
        }
    }

    /// Builds from the facade's parameter block: `mq_c` queues per place
    /// (clamped to ≥ 1), `mq_stickiness`, `rank_error`.
    pub fn from_params(nplaces: usize, params: &PoolParams) -> Self {
        Self::with_options(
            nplaces,
            params.mq_c.max(1),
            params.mq_stickiness,
            params.rank_error,
        )
    }

    /// The configured queues-per-place factor `c`.
    pub fn c(&self) -> usize {
        self.queues.len() / self.nplaces
    }

    /// The configured stickiness (pops per queue after a success).
    pub fn stickiness(&self) -> usize {
        self.stickiness
    }

    /// Whether the rank-error shadow instrument is active.
    pub fn rank_error_enabled(&self) -> bool {
        self.shadow.is_some()
    }

    /// Total tasks currently queued across all queues (diagnostics; racy).
    pub fn queued(&self) -> usize {
        self.queues.iter().map(|q| q.heap.lock().len()).sum()
    }
}

impl<T: Send + 'static> TaskPool<T> for RelaxedMultiQueue<T> {
    type Handle = MultiQueueHandle<T>;

    fn num_places(&self) -> usize {
        self.nplaces
    }

    fn handle(self: &Arc<Self>, place: usize) -> MultiQueueHandle<T> {
        assert!(place < self.nplaces, "place {place} out of range");
        MultiQueueHandle {
            place,
            seq: 0,
            rng: XorShift64::new(0x4D51_0000 ^ place as u64),
            stats: PlaceStats::default(),
            sticky: usize::MAX,
            sticky_left: 0,
            shared: Arc::clone(self),
        }
    }
}

/// One place's view of the MultiQueue.
pub struct MultiQueueHandle<T: Send + 'static> {
    shared: Arc<RelaxedMultiQueue<T>>,
    place: usize,
    seq: u64,
    rng: XorShift64,
    stats: PlaceStats,
    /// Queue index of the last successful pop (`usize::MAX` = none).
    sticky: usize,
    /// Remaining pops allowed to reuse `sticky` before re-probing.
    sticky_left: usize,
}

impl<T: Send + 'static> MultiQueueHandle<T> {
    /// The place this handle was created for.
    pub fn place(&self) -> usize {
        self.place
    }

    /// Records a committed pop's rank error against the shadow (no-op
    /// when the instrument is off).
    fn record_rank(&mut self, prio: u64) {
        if let Some(shadow) = &self.shared.shadow {
            let rank = shadow.lock().remove_and_rank(prio);
            self.stats.rank_pops += 1;
            self.stats.rank_sum += rank;
            self.stats.rank_max = self.stats.rank_max.max(rank);
            self.stats.rank_hist[rank_bucket(rank)] += 1;
        }
    }

    /// Takes the best entry of queue `idx` if its lock is free and it is
    /// non-empty; refreshes the top mirror either way.
    fn try_pop_from(&mut self, idx: usize) -> Option<(u64, T)> {
        let q = &self.shared.queues[idx];
        let mut heap = q.heap.try_lock()?;
        let entry = heap.pop();
        q.refresh_top(&heap);
        drop(heap);
        entry.map(|e| (e.prio, e.task))
    }

    /// Bookkeeping shared by every successful pop path.
    fn commit_pop(&mut self, idx: usize, prio: u64) {
        self.sticky = idx;
        self.sticky_left = self.shared.stickiness;
        self.stats.pops += 1;
        self.record_rank(prio);
    }
}

impl<T: Send + 'static> PoolHandle<T> for MultiQueueHandle<T> {
    /// Pushes to a random queue, preferring an unlocked one; `k` is
    /// ignored — the MultiQueue has no relaxation bound to parameterize.
    fn push(&mut self, prio: u64, _k: usize, task: T) {
        if let Some(shadow) = &self.shared.shadow {
            shadow.lock().insert(prio);
        }
        let entry = MqEntry {
            prio,
            seq: self.seq,
            task,
        };
        self.seq += 1;
        let nq = self.shared.queues.len();
        // Bounded probing for a free lock, then block on a random queue —
        // a push must never fail, and with c·P queues the blocking
        // fallback is rare even under full contention.
        let attempts = 2 * nq;
        for _ in 0..attempts {
            let i = self.rng.below(nq as u64) as usize;
            let q = &self.shared.queues[i];
            if let Some(mut heap) = q.heap.try_lock() {
                heap.push(entry);
                q.refresh_top(&heap);
                self.stats.pushes += 1;
                return;
            }
        }
        let i = self.rng.below(nq as u64) as usize;
        let q = &self.shared.queues[i];
        let mut heap = q.heap.lock();
        heap.push(entry);
        q.refresh_top(&heap);
        drop(heap);
        self.stats.pushes += 1;
    }

    fn pop_entry(&mut self) -> Option<(u64, T)> {
        let nq = self.shared.queues.len();
        // Stickiness (§4): keep draining the queue that last served us.
        if self.sticky_left > 0 && self.sticky < nq {
            self.sticky_left -= 1;
            let idx = self.sticky;
            if let Some((prio, task)) = self.try_pop_from(idx) {
                self.stats.pops += 1;
                self.record_rank(prio);
                return Some((prio, task));
            }
            // Lost the lock or the queue ran dry: fall through to probing.
            self.sticky_left = 0;
        }
        // Classic two-choice: peek two random tops, take the better one.
        let attempts = 2 * nq;
        for _ in 0..attempts {
            let i = self.rng.below(nq as u64) as usize;
            let j = self.rng.below(nq as u64) as usize;
            let ti = self.shared.queues[i].top.load(Ordering::Acquire);
            let tj = self.shared.queues[j].top.load(Ordering::Acquire);
            let (idx, top) = if ti <= tj { (i, ti) } else { (j, tj) };
            if top == u64::MAX {
                // Both drawn queues look empty; draw again (the scan below
                // is the authoritative emptiness check).
                continue;
            }
            match self.try_pop_from(idx) {
                Some((prio, task)) => {
                    self.commit_pop(idx, prio);
                    return Some((prio, task));
                }
                // Lock taken or top was stale (queue drained since the
                // peek): count the stale observation and retry.
                None => self.stats.stale_refs += 1,
            }
        }
        // Exhaustive fallback: scan every queue from a random offset. This
        // is the path that keeps parking safe — see the module docs.
        let start = self.rng.below(nq as u64) as usize;
        for off in 0..nq {
            let idx = (start + off) % nq;
            if let Some((prio, task)) = self.try_pop_from(idx) {
                self.commit_pop(idx, prio);
                return Some((prio, task));
            }
        }
        self.stats.failed_pops += 1;
        None
    }

    /// Batch push: the whole batch lands on one queue under a single lock
    /// acquisition and one top refresh — coarser mixing than scalar
    /// pushes, which the MultiQueue's unbounded relaxation already admits.
    fn push_batch(&mut self, _k: usize, batch: &mut Vec<(u64, T)>) {
        if batch.is_empty() {
            return;
        }
        if let Some(shadow) = &self.shared.shadow {
            shadow
                .lock()
                .insert_all(batch.iter().map(|(prio, _)| *prio));
        }
        let n = batch.len() as u64;
        let base_seq = self.seq;
        self.seq += n;
        let nq = self.shared.queues.len();
        let attempts = 2 * nq;
        let mut locked = None;
        for _ in 0..attempts {
            let i = self.rng.below(nq as u64) as usize;
            if let Some(heap) = self.shared.queues[i].heap.try_lock() {
                locked = Some((i, heap));
                break;
            }
        }
        let (i, mut heap) = locked.unwrap_or_else(|| {
            let i = self.rng.below(nq as u64) as usize;
            (i, self.shared.queues[i].heap.lock())
        });
        heap.extend_batch(
            batch
                .drain(..)
                .enumerate()
                .map(|(o, (prio, task))| MqEntry {
                    prio,
                    seq: base_seq + o as u64,
                    task,
                }),
        );
        self.shared.queues[i].refresh_top(&heap);
        drop(heap);
        self.stats.pushes += n;
    }

    fn stats(&self) -> PlaceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(places: usize, c: usize) -> Arc<RelaxedMultiQueue<u64>> {
        Arc::new(RelaxedMultiQueue::new(places, c))
    }

    #[test]
    fn c1_single_place_pops_in_exact_priority_order() {
        let p = pool(1, 1);
        let mut h = p.handle(0);
        for &x in &[3u64, 1, 4, 1, 5, 9, 2, 6] {
            h.push(x, 0, x * 10);
        }
        let mut out = Vec::new();
        while let Some(t) = h.pop() {
            out.push(t);
        }
        assert_eq!(out, vec![10, 10, 20, 30, 40, 50, 60, 90]);
    }

    #[test]
    fn fifo_tiebreak_on_equal_priority_with_one_queue() {
        let p = pool(1, 1);
        let mut h = p.handle(0);
        h.push(7, 0, 100);
        h.push(7, 0, 200);
        h.push(7, 0, 300);
        assert_eq!(h.pop(), Some(100));
        assert_eq!(h.pop(), Some(200));
        assert_eq!(h.pop(), Some(300));
    }

    #[test]
    fn exhaustive_scan_finds_tasks_the_two_choice_probe_missed() {
        // 2 places × c=4 = 8 queues holding a single task: random pairs of
        // tops often both read MAX, so the fallback scan must find it.
        let p = pool(2, 4);
        let mut h0 = p.handle(0);
        let mut h1 = p.handle(1);
        for round in 0..50u64 {
            h0.push(round, 0, round);
            assert_eq!(h1.pop(), Some(round), "round {round} lost the task");
        }
        assert_eq!(h1.pop(), None);
    }

    #[test]
    fn exactly_once_across_places_and_queues() {
        let p = pool(3, 2);
        let mut handles: Vec<_> = (0..3).map(|i| p.handle(i)).collect();
        for i in 0..300u64 {
            handles[(i % 3) as usize].push(i, 0, i);
        }
        assert_eq!(p.queued(), 300);
        let mut got = Vec::new();
        loop {
            let mut any = false;
            for h in handles.iter_mut() {
                if let Some(t) = h.pop() {
                    got.push(t);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        got.sort();
        assert_eq!(got, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn batch_push_round_trips_and_counts() {
        let p = pool(2, 2);
        let mut h = p.handle(0);
        let mut batch: Vec<(u64, u64)> = (0..40).map(|i| (i, i)).collect();
        h.push_batch(0, &mut batch);
        assert!(batch.is_empty());
        assert_eq!(h.stats().pushes, 40);
        let mut out = Vec::new();
        let n = h.try_pop_batch(&mut out, 64);
        assert_eq!(n, 40);
        out.sort();
        assert_eq!(out, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn empty_pop_fails_and_counts() {
        let p = pool(2, 2);
        let mut h = p.handle(0);
        assert_eq!(h.pop(), None);
        assert_eq!(h.stats().failed_pops, 1);
    }

    #[test]
    fn rank_instrument_is_exact_single_threaded() {
        // c=2 on one place, pushes spread over two queues: the two-choice
        // pop sometimes takes the worse top, and the instrument must
        // price that exactly against the shadow.
        let p = Arc::new(RelaxedMultiQueue::with_options(1, 2, 0, true));
        assert!(p.rank_error_enabled());
        let mut h = p.handle(0);
        for i in 0..200u64 {
            h.push(i.wrapping_mul(0x9E37_79B9) % 1000, 0, i);
        }
        let mut popped = 0;
        while h.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 200);
        let s = h.stats();
        assert_eq!(s.rank_pops, 200);
        // Mean/max consistency: the histogram holds every measured pop.
        assert_eq!(s.rank_hist.iter().sum::<u64>(), 200);
        assert!(s.rank_max as f64 >= s.rank_mean());
    }

    #[test]
    fn c1_single_place_measures_zero_rank_error() {
        let p = Arc::new(RelaxedMultiQueue::with_options(1, 1, 0, true));
        let mut h = p.handle(0);
        for i in 0..100u64 {
            h.push((i * 7919) % 257, 0, i);
        }
        while h.pop().is_some() {}
        let s = h.stats();
        assert_eq!(s.rank_pops, 100);
        assert_eq!(s.rank_sum, 0, "one exact queue can never misorder");
        assert_eq!(s.rank_max, 0);
        assert_eq!(s.rank_mean(), 0.0);
        assert_eq!(s.rank_p99(), 0);
    }

    #[test]
    fn stickiness_reuses_the_last_queue() {
        let p = Arc::new(RelaxedMultiQueue::with_options(1, 4, 8, false));
        assert_eq!(p.stickiness(), 8);
        let mut h = p.handle(0);
        for i in 0..64u64 {
            h.push(i, 0, i);
        }
        let mut got = 0;
        while h.pop().is_some() {
            got += 1;
        }
        assert_eq!(got, 64);
    }

    #[test]
    fn from_params_routes_the_mq_knobs() {
        let params = PoolParams::default()
            .with_mq_c(3)
            .with_mq_stickiness(5)
            .with_rank_error(true);
        let p: RelaxedMultiQueue<u64> = RelaxedMultiQueue::from_params(2, &params);
        assert_eq!(p.c(), 3);
        assert_eq!(p.num_places(), 2);
        assert_eq!(p.stickiness(), 5);
        assert!(p.rank_error_enabled());
    }

    #[test]
    fn concurrent_stress_exactly_once() {
        let threads = 4usize;
        let per = 5_000u64;
        let p = Arc::new(RelaxedMultiQueue::<u64>::with_options(threads, 2, 4, false));
        let taken: Arc<Vec<std::sync::atomic::AtomicU32>> =
            Arc::new((0..threads as u64 * per).map(|_| 0.into()).collect());
        let popped = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for t in 0..threads {
                let p = Arc::clone(&p);
                let taken = Arc::clone(&taken);
                let popped = Arc::clone(&popped);
                s.spawn(move || {
                    let mut h = p.handle(t);
                    let mut rng = XorShift64::new(t as u64);
                    let mut pushed = 0u64;
                    loop {
                        if pushed < per && rng.below(2) == 0 {
                            h.push(rng.below(1000), 0, t as u64 * per + pushed);
                            pushed += 1;
                        } else if let Some(got) = h.pop() {
                            use std::sync::atomic::Ordering;
                            let prev = taken[got as usize].fetch_add(1, Ordering::Relaxed);
                            assert_eq!(prev, 0);
                            popped.fetch_add(1, Ordering::Relaxed);
                        } else if pushed == per {
                            use std::sync::atomic::Ordering;
                            if popped.load(Ordering::Relaxed) == threads as u64 * per {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        use std::sync::atomic::Ordering;
        assert_eq!(popped.load(Ordering::Relaxed), threads as u64 * per);
    }
}
