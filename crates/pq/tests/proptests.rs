//! Property-based tests for the sequential priority queues.
//!
//! Both implementations are model-checked against `std::collections::BinaryHeap`
//! (wrapped as a min-heap) over arbitrary operation sequences, and the
//! scheduler-facing extras (`split_half`, `retain`, `append`) are checked for
//! multiset preservation and invariant maintenance.

use priosched_pq::{BinaryHeap, PairingHeap, SequentialPriorityQueue};
use proptest::prelude::*;
use std::cmp::Reverse;

#[derive(Clone, Debug)]
enum Op {
    Push(i32),
    Pop,
    SplitHalf,
    RetainEven,
    AppendBatch(Vec<i32>),
    ExtendBatch(Vec<i32>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<i32>().prop_map(Op::Push),
        3 => Just(Op::Pop),
        1 => Just(Op::SplitHalf),
        1 => Just(Op::RetainEven),
        1 => proptest::collection::vec(any::<i32>(), 0..8).prop_map(Op::AppendBatch),
        2 => proptest::collection::vec(any::<i32>(), 0..40).prop_map(Op::ExtendBatch),
    ]
}

/// Reference model: a sorted multiset via std's max-heap of Reverse.
#[derive(Default)]
struct Model {
    heap: std::collections::BinaryHeap<Reverse<i32>>,
}

impl Model {
    fn push(&mut self, x: i32) {
        self.heap.push(Reverse(x));
    }
    fn pop(&mut self) -> Option<i32> {
        self.heap.pop().map(|r| r.0)
    }
    fn sorted(&self) -> Vec<i32> {
        let mut v: Vec<i32> = self.heap.iter().map(|r| r.0).collect();
        v.sort();
        v
    }
}

fn run_ops<Q: SequentialPriorityQueue<i32>>(ops: &[Op]) {
    let mut q = Q::new();
    let mut model = Model::default();
    for op in ops {
        match op {
            Op::Push(x) => {
                q.push(*x);
                model.push(*x);
            }
            Op::Pop => {
                assert_eq!(q.pop(), model.pop());
            }
            Op::SplitHalf => {
                let mut stolen = q.split_half();
                // Steal-half is a structural operation with no model analog;
                // check the size contract and put everything back.
                let total = q.len() + stolen.len();
                assert_eq!(total, model.heap.len());
                assert!(stolen.len() >= q.len());
                assert!(stolen.len() - q.len() <= 1);
                q.append(&mut stolen);
                assert!(stolen.is_empty());
            }
            Op::RetainEven => {
                q.retain(|x| x % 2 == 0);
                let kept: Vec<i32> = model.sorted().into_iter().filter(|x| x % 2 == 0).collect();
                model.heap = kept.iter().map(|&x| Reverse(x)).collect();
            }
            Op::AppendBatch(batch) => {
                let mut other = Q::new();
                for &x in batch {
                    other.push(x);
                    model.push(x);
                }
                q.append(&mut other);
            }
            Op::ExtendBatch(batch) => {
                q.extend_batch(batch.iter().copied());
                for &x in batch {
                    model.push(x);
                }
            }
        }
        assert_eq!(q.len(), model.heap.len());
        assert_eq!(q.peek().copied(), model.sorted().first().copied());
    }
    // Drain both and compare the full pop order.
    let mut q_out = Vec::new();
    while let Some(x) = q.pop() {
        q_out.push(x);
    }
    let mut m_out = Vec::new();
    while let Some(x) = model.pop() {
        m_out.push(x);
    }
    assert_eq!(q_out, m_out);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn binary_heap_matches_model(ops in proptest::collection::vec(op_strategy(), 0..120)) {
        run_ops::<BinaryHeap<i32>>(&ops);
    }

    #[test]
    fn pairing_heap_matches_model(ops in proptest::collection::vec(op_strategy(), 0..120)) {
        run_ops::<PairingHeap<i32>>(&ops);
    }

    #[test]
    fn binary_heap_invariant_holds(items in proptest::collection::vec(any::<i32>(), 0..200)) {
        let mut h = BinaryHeap::new();
        for x in &items {
            h.push(*x);
            prop_assert!(h.is_valid_heap());
        }
        let mut prev = None;
        while let Some(x) = h.pop() {
            if let Some(p) = prev {
                prop_assert!(p <= x);
            }
            prev = Some(x);
            prop_assert!(h.is_valid_heap());
        }
    }

    #[test]
    fn split_half_preserves_multiset(items in proptest::collection::vec(any::<i32>(), 0..200)) {
        let mut h: BinaryHeap<i32> = items.iter().copied().collect();
        let mut stolen = h.split_half();
        let mut all = h.drain_unordered();
        all.extend(stolen.drain_unordered());
        all.sort();
        let mut expect = items.clone();
        expect.sort();
        prop_assert_eq!(all, expect);
    }

    #[test]
    fn pairing_split_half_preserves_multiset(items in proptest::collection::vec(any::<i32>(), 0..200)) {
        let mut h: PairingHeap<i32> = items.iter().copied().collect();
        let mut stolen = h.split_half();
        let mut all = h.drain_unordered();
        all.extend(stolen.drain_unordered());
        all.sort();
        let mut expect = items.clone();
        expect.sort();
        prop_assert_eq!(all, expect);
    }

    #[test]
    fn heaps_agree_with_each_other(items in proptest::collection::vec(any::<i32>(), 0..200)) {
        let mut a: BinaryHeap<i32> = items.iter().copied().collect();
        let mut b: PairingHeap<i32> = items.iter().copied().collect();
        loop {
            let (x, y) = (a.pop(), b.pop());
            prop_assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }
}

mod batch {
    use super::*;
    use priosched_pq::DaryHeap;

    fn batch_equals_scalar<Q: SequentialPriorityQueue<i32>>(
        init: &[i32],
        batch: &[i32],
    ) -> Result<(), TestCaseError> {
        let mut batched = Q::new();
        let mut scalar = Q::new();
        for &x in init {
            batched.push(x);
            scalar.push(x);
        }
        batched.extend_batch(batch.iter().copied());
        for &x in batch {
            scalar.push(x);
        }
        prop_assert_eq!(batched.len(), scalar.len());
        prop_assert_eq!(batched.peek().copied(), scalar.peek().copied());
        loop {
            let (a, b) = (batched.pop(), scalar.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// `extend_batch` followed by a full drain is indistinguishable
        /// from the same elements pushed one at a time, in every
        /// sequential queue implementation.
        #[test]
        fn extend_batch_equals_scalar_pushes(
            init in proptest::collection::vec(any::<i32>(), 0..120),
            batch in proptest::collection::vec(any::<i32>(), 0..120),
        ) {
            batch_equals_scalar::<BinaryHeap<i32>>(&init, &batch)?;
            batch_equals_scalar::<PairingHeap<i32>>(&init, &batch)?;
            batch_equals_scalar::<DaryHeap<i32, 4>>(&init, &batch)?;
            batch_equals_scalar::<DaryHeap<i32, 8>>(&init, &batch)?;
        }

        /// The structural invariant survives `extend_batch` at every batch
        /// size, including the heapify/sift-up crossover on both sides.
        #[test]
        fn extend_batch_preserves_invariants(
            init in proptest::collection::vec(any::<i32>(), 0..80),
            batch in proptest::collection::vec(any::<i32>(), 0..80),
        ) {
            let mut bin: BinaryHeap<i32> = init.iter().copied().collect();
            bin.extend_batch(batch.iter().copied());
            prop_assert!(bin.is_valid_heap());

            let mut dary: DaryHeap<i32, 4> = init.iter().copied().collect();
            dary.extend_batch(batch.iter().copied());
            prop_assert!(dary.is_valid_heap());

            let mut pairing: PairingHeap<i32> = init.iter().copied().collect();
            pairing.extend_batch(batch.iter().copied());
            prop_assert!(pairing.is_valid_heap());
            prop_assert_eq!(pairing.len(), init.len() + batch.len());
        }
    }
}

mod dary {
    use super::*;
    use priosched_pq::DaryHeap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn dary4_matches_model(ops in proptest::collection::vec(super::op_strategy(), 0..120)) {
            run_ops::<DaryHeap<i32, 4>>(&ops);
        }

        #[test]
        fn dary8_matches_model(ops in proptest::collection::vec(super::op_strategy(), 0..120)) {
            run_ops::<DaryHeap<i32, 8>>(&ops);
        }

        #[test]
        fn dary_invariant_holds(items in proptest::collection::vec(any::<i32>(), 0..200)) {
            let mut h: DaryHeap<i32, 4> = DaryHeap::new();
            for x in &items {
                h.push(*x);
                prop_assert!(h.is_valid_heap());
            }
            let mut prev = None;
            while let Some(x) = h.pop() {
                if let Some(p) = prev {
                    prop_assert!(p <= x);
                }
                prev = Some(x);
            }
        }
    }
}
