//! Lock-free unbounded global array (linked list of segments).
//!
//! §4.1.3: "we implemented the global array as a linked list of arrays.
//! Whenever an index is requested that is outside the bounds of the existing
//! arrays, a new array is allocated and added to the end of the linked list
//! using a single compare-and-swap operation."
//!
//! Slots hold item pointers and are written at most once (null → item); they
//! are never cleared — *taking* a task flips the item's tag, not the slot.
//! Consequently every slot below the published `tail` of the centralized
//! structure is non-null forever, which §4.1's pop relies on.
//!
//! Reclamation: the paper frees exhausted segments through a GC scheme \[18\]
//! plus per-place reference counts. Here segments are owned by the array and
//! freed on drop (see DESIGN.md §4); place handles therefore may cache raw
//! segment pointers as cursor hints without any epoch protection.

use crate::item::Item;
use crate::sync::atomic::{AtomicPtr, Ordering};
use std::ptr;

/// Slots per segment. Large enough that segment hops are rare, small enough
/// that sparse tails don't waste much memory. (Tiny under the model, where
/// each slot registers with the execution.)
pub const SEGMENT_LEN: usize = if cfg!(loom) { 8 } else { 1024 };

/// One fixed-size chunk of the global array.
pub struct Segment<T> {
    /// Global index of `slots[0]`.
    base: u64,
    next: AtomicPtr<Segment<T>>,
    slots: Box<[AtomicPtr<Item<T>>]>,
}

impl<T> Segment<T> {
    fn boxed(base: u64) -> Box<Self> {
        let slots = (0..SEGMENT_LEN)
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect();
        Box::new(Segment {
            base,
            next: AtomicPtr::new(ptr::null_mut()),
            slots,
        })
    }

    #[inline]
    fn contains(&self, pos: u64) -> bool {
        pos >= self.base && pos < self.base + SEGMENT_LEN as u64
    }
}

/// The unbounded array: a grow-only linked list of [`Segment`]s starting at
/// global index 0.
pub struct GlobalArray<T> {
    head: AtomicPtr<Segment<T>>,
}

/// A per-place cursor caching the segment that served the last access, so
/// sequential scans cost O(1) amortized instead of walking from the head.
pub struct SegmentCursor<T> {
    seg: *const Segment<T>,
}

impl<T> Default for SegmentCursor<T> {
    fn default() -> Self {
        SegmentCursor { seg: ptr::null() }
    }
}

// SAFETY: cursors cache pointers into segments owned by a `GlobalArray` the
// holder also keeps alive (via Arc of the enclosing structure); segments are
// never freed before the array drops.
unsafe impl<T: Send> Send for SegmentCursor<T> {}

impl<T: Send> GlobalArray<T> {
    /// Creates the array with one preallocated segment at base index 0.
    pub fn new() -> Self {
        let first = Box::into_raw(Segment::boxed(0));
        GlobalArray {
            head: AtomicPtr::new(first),
        }
    }

    /// Returns the slot at `pos` if its segment already exists; never
    /// allocates. Used by scans and the random fallback probe.
    pub fn slot(&self, pos: u64, cursor: &mut SegmentCursor<T>) -> Option<&AtomicPtr<Item<T>>> {
        let mut seg = cursor.seg;
        // (Re)start from the head when the cursor is unset or ahead of pos.
        // SAFETY: a non-null cursor points into this array's segment list,
        // and segments are never freed while `self` is alive.
        if seg.is_null() || unsafe { (*seg).base } > pos {
            seg = self.head.load(Ordering::Acquire);
        }
        loop {
            // SAFETY: segments are never freed while `self` is alive.
            let s = unsafe { &*seg };
            if s.contains(pos) {
                cursor.seg = seg;
                return Some(&s.slots[(pos - s.base) as usize]);
            }
            let next = s.next.load(Ordering::Acquire);
            if next.is_null() {
                cursor.seg = seg; // best-known position for future calls
                return None;
            }
            seg = next;
        }
    }

    /// Returns the slot at `pos`, growing the array as needed (push path).
    pub fn slot_or_grow(&self, pos: u64, cursor: &mut SegmentCursor<T>) -> &AtomicPtr<Item<T>> {
        loop {
            if let Some(slot) = self.slot(pos, cursor) {
                return slot;
            }
            // Cursor now rests on the last existing segment; append after it.
            let last = cursor.seg;
            debug_assert!(!last.is_null());
            // SAFETY: `slot` left the cursor on a live segment; segments
            // are never freed while `self` is alive.
            let s = unsafe { &*last };
            let fresh = Box::into_raw(Segment::boxed(s.base + SEGMENT_LEN as u64));
            // Single CAS appends the new array (§4.1.3). On failure another
            // thread grew the list; retry the lookup through its segment.
            if s.next
                .compare_exchange(ptr::null_mut(), fresh, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // SAFETY: `fresh` never became visible to other threads.
                drop(unsafe { Box::from_raw(fresh) });
            }
        }
    }

    /// Number of segments currently allocated (test/diagnostic use).
    pub fn segment_count(&self) -> usize {
        let mut n = 0;
        let mut seg = self.head.load(Ordering::Acquire);
        while !seg.is_null() {
            n += 1;
            // SAFETY: non-null list node; segments are never freed while
            // `self` is alive.
            seg = unsafe { &*seg }.next.load(Ordering::Acquire);
        }
        n
    }

    /// Global index of the first retained slot (0 until a reclaim happened).
    pub fn base_index(&self) -> u64 {
        let head = self.head.load(Ordering::Acquire);
        // SAFETY: head is never null.
        unsafe { &*head }.base
    }

    /// Frees leading segments for which `segment_dead(base, slots)` returns
    /// `true`, stopping at the first survivor; at least one segment is
    /// always retained. Returns `(segments_freed, new_base_index)`.
    ///
    /// Quiescent-point reclamation (see DESIGN.md §4): the paper reclaims
    /// exhausted arrays concurrently via a GC scheme \[18\] plus per-place
    /// reference counts on the head indices; we instead reclaim at points
    /// where the *caller* guarantees exclusivity (no live place handles —
    /// e.g. between scheduler runs), which keeps every push/pop wait-free
    /// with respect to reclamation without epoch machinery.
    ///
    /// # Safety
    /// No other thread may access the array during the call, and no cursor
    /// created before the call may be used afterwards with positions below
    /// the returned base.
    pub unsafe fn reclaim_prefix(
        &self,
        mut segment_dead: impl FnMut(u64, &[AtomicPtr<Item<T>>]) -> bool,
    ) -> (usize, u64) {
        let mut freed = 0usize;
        loop {
            let head = self.head.load(Ordering::Acquire);
            // SAFETY: head is never null, and the caller guarantees
            // exclusive access for the duration of the call.
            let seg = unsafe { &*head };
            let next = seg.next.load(Ordering::Acquire);
            if next.is_null() || !segment_dead(seg.base, &seg.slots) {
                return (freed, seg.base);
            }
            self.head.store(next, Ordering::Release);
            // SAFETY: exclusivity (above) means no cursor or scan can
            // still reach the unlinked segment.
            drop(unsafe { Box::from_raw(head) });
            freed += 1;
        }
    }
}

impl<T: Send> Default for GlobalArray<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for GlobalArray<T> {
    fn drop(&mut self) {
        // Relaxed load instead of `get_mut`: `&mut self` already proves
        // exclusivity (the model's atomics have no `get_mut`).
        let mut seg = self.head.load(Ordering::Relaxed);
        while !seg.is_null() {
            // SAFETY: drop has exclusive ownership of the whole chain.
            let boxed = unsafe { Box::from_raw(seg) };
            seg = boxed.next.load(Ordering::Relaxed);
        }
    }
}

// SAFETY: all slot access is through atomics; segment links are atomics;
// item pointees are managed by the ItemPool.
unsafe impl<T: Send> Send for GlobalArray<T> {}
unsafe impl<T: Send> Sync for GlobalArray<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::ItemPool;

    #[test]
    fn slot_absent_before_growth() {
        let arr: GlobalArray<u32> = GlobalArray::new();
        let mut cur = SegmentCursor::default();
        assert!(arr.slot(0, &mut cur).is_some(), "segment 0 preallocated");
        assert!(arr.slot(SEGMENT_LEN as u64, &mut cur).is_none());
    }

    #[test]
    fn grow_allocates_contiguous_segments() {
        let arr: GlobalArray<u32> = GlobalArray::new();
        let mut cur = SegmentCursor::default();
        let far = 5 * SEGMENT_LEN as u64 + 3;
        let _ = arr.slot_or_grow(far, &mut cur);
        assert_eq!(arr.segment_count(), 6);
        // All intermediate positions now resolve.
        for pos in [0, SEGMENT_LEN as u64, 2 * SEGMENT_LEN as u64 + 7, far] {
            assert!(arr.slot(pos, &mut cur).is_some(), "pos {pos}");
        }
    }

    #[test]
    fn cursor_restarts_when_behind() {
        let arr: GlobalArray<u32> = GlobalArray::new();
        let mut cur = SegmentCursor::default();
        let _ = arr.slot_or_grow(3 * SEGMENT_LEN as u64, &mut cur);
        // Cursor now sits on segment 3; a lookup at pos 0 must restart.
        assert!(arr.slot(0, &mut cur).is_some());
        assert!(arr.slot(3 * SEGMENT_LEN as u64 + 1, &mut cur).is_some());
    }

    #[test]
    fn slots_store_and_load_items() {
        let arr: GlobalArray<u64> = GlobalArray::new();
        let pool: ItemPool<u64> = ItemPool::new();
        let mut cur = SegmentCursor::default();
        let item = pool.acquire();
        unsafe { (*item).init(0, 1, 9, 99) };
        unsafe { &*item }.tag.store(4, Ordering::Release);
        let slot = arr.slot_or_grow(4, &mut cur);
        assert!(slot
            .compare_exchange(
                ptr::null_mut(),
                item as *mut _,
                Ordering::AcqRel,
                Ordering::Relaxed
            )
            .is_ok());
        let loaded = arr.slot(4, &mut cur).unwrap().load(Ordering::Acquire);
        assert_eq!(loaded as *const _, item);
        assert_eq!(unsafe { &*loaded }.try_take(4), Some(99));
        unsafe { pool.release(item) };
    }

    #[test]
    fn concurrent_growth_yields_one_chain() {
        let arr = std::sync::Arc::new(GlobalArray::<u32>::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let arr = arr.clone();
                s.spawn(move || {
                    let mut cur = SegmentCursor::default();
                    for i in 0..20u64 {
                        let _ = arr.slot_or_grow(i * SEGMENT_LEN as u64, &mut cur);
                    }
                });
            }
        });
        // Exactly 20 segments despite racing growers (no duplicates/leaks).
        assert_eq!(arr.segment_count(), 20);
    }
}

#[cfg(test)]
mod boundary_tests {
    use super::*;

    #[test]
    fn positions_straddling_segment_boundary() {
        let arr: GlobalArray<u32> = GlobalArray::new();
        let mut cur = SegmentCursor::default();
        let boundary = SEGMENT_LEN as u64;
        // Last slot of segment 0 and first slot of segment 1.
        let _ = arr.slot_or_grow(boundary - 1, &mut cur);
        let _ = arr.slot_or_grow(boundary, &mut cur);
        assert!(arr.slot(boundary - 1, &mut cur).is_some());
        assert!(arr.slot(boundary, &mut cur).is_some());
        assert_eq!(arr.segment_count(), 2);
    }

    #[test]
    fn cursor_survives_forward_and_backward_hops() {
        let arr: GlobalArray<u32> = GlobalArray::new();
        let mut cur = SegmentCursor::default();
        let far = 4 * SEGMENT_LEN as u64;
        let _ = arr.slot_or_grow(far, &mut cur);
        // Zig-zag across segments with one cursor.
        for pos in [far, 0, far - 1, SEGMENT_LEN as u64, far, 1] {
            assert!(arr.slot(pos, &mut cur).is_some(), "pos {pos}");
        }
    }

    #[test]
    fn reclaim_prefix_keeps_last_segment() {
        let arr: GlobalArray<u32> = GlobalArray::new();
        let mut cur = SegmentCursor::default();
        let _ = arr.slot_or_grow(3 * SEGMENT_LEN as u64, &mut cur);
        assert_eq!(arr.segment_count(), 4);
        // Everything "dead": must still retain the final segment.
        let (freed, base) = unsafe { arr.reclaim_prefix(|_, _| true) };
        assert_eq!(freed, 3);
        assert_eq!(arr.segment_count(), 1);
        assert_eq!(base, 3 * SEGMENT_LEN as u64);
        assert_eq!(arr.base_index(), base);
        // The array still grows past the retained segment.
        let mut cur = SegmentCursor::default();
        let _ = arr.slot_or_grow(base + SEGMENT_LEN as u64, &mut cur);
        assert_eq!(arr.segment_count(), 2);
    }

    #[test]
    fn reclaim_prefix_stops_at_survivor() {
        let arr: GlobalArray<u32> = GlobalArray::new();
        let mut cur = SegmentCursor::default();
        let _ = arr.slot_or_grow(3 * SEGMENT_LEN as u64, &mut cur);
        // Only the first segment is dead.
        let (freed, base) = unsafe { arr.reclaim_prefix(|b, _| b == 0) };
        assert_eq!(freed, 1);
        assert_eq!(base, SEGMENT_LEN as u64);
    }
}
