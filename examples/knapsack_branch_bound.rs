//! Best-first branch-and-bound 0/1 knapsack on the priority scheduler.
//!
//! The paper motivates priority scheduling with applications whose task
//! order matters (§1). Branch-and-bound is the classic case: exploring
//! nodes with the best upper bound first finds the optimum sooner and lets
//! bound-based pruning kill most of the tree — and pruned tasks are exactly
//! the paper's *dead tasks* (§5.1), eliminated lazily at pop time.
//!
//! Priorities here are `u64::MAX − upper_bound`, so "smaller is better"
//! (the scheduler's convention) prefers the most promising subtree.
//!
//! Run with: `cargo run --release --example knapsack_branch_bound`

use priosched::core::{HybridKPriority, Scheduler, SpawnCtx, TaskExecutor};
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Clone, Copy, Debug)]
struct Item {
    weight: u64,
    value: u64,
}

/// A branch-and-bound node: the next item index to decide, plus the weight
/// and value accumulated so far.
#[derive(Clone, Copy, Debug)]
struct Node {
    idx: u32,
    weight: u64,
    value: u64,
}

struct Knapsack {
    items: Vec<Item>, // sorted by value density, for the greedy bound
    capacity: u64,
    best: AtomicU64,
    explored: AtomicU64,
    k: usize,
}

impl Knapsack {
    /// Greedy fractional upper bound from `node` onward — admissible, so
    /// pruning on it is safe.
    fn upper_bound(&self, node: &Node) -> u64 {
        let mut bound = node.value as f64;
        let mut room = (self.capacity - node.weight) as f64;
        for it in &self.items[node.idx as usize..] {
            if room <= 0.0 {
                break;
            }
            let take = (it.weight as f64).min(room);
            bound += take * it.value as f64 / it.weight as f64;
            room -= take;
        }
        bound.ceil() as u64
    }

    fn priority(&self, node: &Node) -> u64 {
        u64::MAX - self.upper_bound(node)
    }
}

impl TaskExecutor<Node> for Knapsack {
    /// A node whose bound can no longer beat the incumbent is dead.
    fn is_dead(&self, node: &Node) -> bool {
        self.upper_bound(node) <= self.best.load(Ordering::Relaxed)
    }

    fn execute(&self, node: Node, ctx: &mut SpawnCtx<'_, Node>) {
        self.explored.fetch_add(1, Ordering::Relaxed);
        // Leaf or incumbent update.
        self.best.fetch_max(node.value, Ordering::Relaxed);
        if node.idx as usize == self.items.len() {
            return;
        }
        let item = self.items[node.idx as usize];
        // Branch: include (if it fits), then exclude.
        if node.weight + item.weight <= self.capacity {
            let child = Node {
                idx: node.idx + 1,
                weight: node.weight + item.weight,
                value: node.value + item.value,
            };
            if self.upper_bound(&child) > self.best.load(Ordering::Relaxed) {
                ctx.spawn(self.priority(&child), self.k, child);
            }
        }
        let child = Node {
            idx: node.idx + 1,
            ..node
        };
        if self.upper_bound(&child) > self.best.load(Ordering::Relaxed) {
            ctx.spawn(self.priority(&child), self.k, child);
        }
    }
}

/// Reference solution by dynamic programming (exact, O(n·capacity)).
fn dp_optimum(items: &[Item], capacity: u64) -> u64 {
    let mut best = vec![0u64; capacity as usize + 1];
    for it in items {
        for w in (it.weight..=capacity).rev() {
            best[w as usize] = best[w as usize].max(best[(w - it.weight) as usize] + it.value);
        }
    }
    best[capacity as usize]
}

fn main() {
    // Deterministic pseudo-random instance.
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let n = 36;
    let capacity = 4_000u64;
    let mut items: Vec<Item> = (0..n)
        .map(|_| Item {
            weight: 100 + rand() % 400,
            value: 50 + rand() % 500,
        })
        .collect();
    // Density order makes the greedy bound tight.
    items.sort_by(|a, b| {
        (b.value * a.weight).cmp(&(a.value * b.weight)) // v/w descending
    });

    let expected = dp_optimum(&items, capacity);
    println!("0/1 knapsack: {n} items, capacity {capacity}; DP optimum = {expected}\n");

    for k in [1usize, 64, 4096] {
        let solver = Knapsack {
            items: items.clone(),
            capacity,
            best: AtomicU64::new(0),
            explored: AtomicU64::new(0),
            k,
        };
        let root = Node {
            idx: 0,
            weight: 0,
            value: 0,
        };
        let prio = solver.priority(&root);
        let scheduler = Scheduler::from_pool(HybridKPriority::new(4));
        let t0 = std::time::Instant::now();
        let stats = scheduler.run(&solver, vec![(prio, k, root)]);
        let found = solver.best.load(Ordering::Relaxed);
        assert_eq!(found, expected, "branch-and-bound must find the optimum");
        println!(
            "k = {k:<5} optimum {found} in {:>8.2?}; explored {:>7} nodes, pruned-as-dead {:>7}",
            t0.elapsed(),
            stats.executed,
            stats.dead
        );
    }
    println!("\nSmaller k = stronger best-first order = fewer explored nodes,");
    println!("at the cost of more synchronization per push (the paper's trade-off).");
}
