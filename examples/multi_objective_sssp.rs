//! Bi-objective shortest path search — thin wrapper over
//! [`priosched::workloads::MoSsspWorkload`].
//!
//! The paper's conclusion names "k-relaxed Pareto priority queues with
//! guarantees that can then be used for parallelization of a multi-objective
//! shortest path search" as planned future work, citing Sanders & Mandow's
//! parallel label-setting. The search itself (per-node Pareto fronts,
//! dead-label elimination, exhaustive sequential oracle) lives in
//! `crates/workloads` and runs on the ordinary scalar-priority scheduler —
//! label correction converges to the exact fronts under any pop order, so
//! every structure can be swept; `priosched::core::pareto` separately
//! prototypes the vector-priority queue the paper envisions.
//!
//! Run with: `cargo run --release --example multi_objective_sssp`

use priosched::core::{PoolKind, PoolParams};
use priosched::workloads::{run_workload, MoSsspWorkload};

fn main() {
    let workload = MoSsspWorkload::random(60, 0.12, 99);
    let sizes: Vec<usize> = workload.oracle().iter().map(|f| f.len()).collect();
    let total: usize = sizes.iter().sum();
    let max = sizes.iter().max().copied().unwrap_or(0);
    println!(
        "bi-objective search, exhaustive oracle: {total} Pareto labels \
         (max {max} per node) over {} nodes\n",
        sizes.len()
    );

    for kind in PoolKind::ALL {
        let report = run_workload(&workload, kind, 4, PoolParams::with_k(8));
        report.expect_verified();
        let expanded = report
            .metrics
            .iter()
            .find(|(name, _)| *name == "expanded")
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        println!(
            "{:<14} expanded {expanded:>5.0} labels ({:>3} superseded-dead) in {:>8.2?} — fronts exact",
            kind.label(),
            report.dead,
            report.elapsed,
        );
    }

    println!("\nLabel-setting with dead-label elimination converges to the exact");
    println!("fronts for any pop order — the structures differ only in how much");
    println!("superseded work they admit, the same dial as scalar SSSP.");
}
