//! Cross-crate integration: scheduler semantics the paper's model requires
//! (§2) — finish regions, per-task k coexistence, exactly-once execution
//! over irregular task graphs, and scheduler reuse.

use priosched::core::task::{FinishRegion, RegionGuard};
use priosched::core::{
    run_on_kind, HybridKPriority, PoolKind, PoolParams, Scheduler, SpawnCtx, TaskExecutor,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Finish-region test: a parent spawns children that each carry a
/// [`RegionGuard`]; the guard completes the region when the child finishes
/// (including on drop), and the parent cooperatively helps until the region
/// drains — §2's blocking finish under help-first scheduling.
enum Task {
    Parent { children: u64 },
    Child { _guard: RegionGuard },
}

struct Exec {
    children_done: AtomicU64,
    parent_observed_done: AtomicU64,
}

impl TaskExecutor<Task> for Exec {
    fn execute(&self, task: Task, ctx: &mut SpawnCtx<'_, Task>) {
        match task {
            Task::Parent { children } => {
                let region = FinishRegion::new();
                for i in 0..children {
                    ctx.spawn(
                        100 + i,
                        8,
                        Task::Child {
                            _guard: region.register(),
                        },
                    );
                }
                assert!(region.is_open());
                // Cooperative wait: execute other tasks until all children
                // transitively finished.
                let r = region.clone();
                ctx.help_while(&move || r.is_open());
                assert_eq!(region.outstanding(), 0);
                assert_eq!(
                    self.children_done.load(Ordering::Relaxed),
                    children,
                    "parent resumed before all children finished"
                );
                self.parent_observed_done.fetch_add(1, Ordering::Relaxed);
            }
            Task::Child { _guard } => {
                self.children_done.fetch_add(1, Ordering::Relaxed);
                // `_guard` drops here, completing one registration.
            }
        }
    }
}

#[test]
fn finish_region_blocks_until_children_complete() {
    for places in [1usize, 2, 4] {
        let exec = Exec {
            children_done: AtomicU64::new(0),
            parent_observed_done: AtomicU64::new(0),
        };
        let sched = Scheduler::from_pool(HybridKPriority::new(places));
        let stats = sched.run(&exec, vec![(0, 8, Task::Parent { children: 20 })]);
        assert_eq!(exec.parent_observed_done.load(Ordering::Relaxed), 1);
        assert_eq!(exec.children_done.load(Ordering::Relaxed), 20);
        assert_eq!(stats.executed, 21, "places={places}");
    }
}

/// Tasks with different k coexist (§1: "choosing the value of k per task,
/// allowing kernels with different ordering requirements to coexecute").
struct MixedK {
    executed: AtomicU64,
}

impl TaskExecutor<(u64, usize)> for MixedK {
    fn execute(&self, (depth, _k): (u64, usize), ctx: &mut SpawnCtx<'_, (u64, usize)>) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        if depth < 6 {
            // Children alternate between strict (k = 1) and relaxed
            // (k = 1024) ordering requirements.
            ctx.spawn(depth + 1, 1, (depth + 1, 1));
            ctx.spawn(depth + 1, 1024, (depth + 1, 1024));
        }
    }
}

#[test]
fn per_task_k_values_coexist() {
    for kind in PoolKind::ALL {
        let exec = MixedK {
            executed: AtomicU64::new(0),
        };
        let stats = run_on_kind(
            kind,
            3,
            PoolParams::default(),
            &exec,
            vec![(0, 1, (0u64, 1usize))],
        );
        // Binary tree of depth 6: 2^7 − 1 nodes.
        assert_eq!(stats.executed, 127, "{kind}");
        assert_eq!(exec.executed.load(Ordering::Relaxed), 127);
    }
}

/// Irregular DAG: each task spawns a data-dependent number of children;
/// every structure must execute each exactly once.
struct Irregular {
    executed: AtomicU64,
    total_spawned: AtomicU64,
}

impl TaskExecutor<u64> for Irregular {
    fn execute(&self, seed: u64, ctx: &mut SpawnCtx<'_, u64>) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        x ^= x >> 29;
        // 0–2 children, only near the root so the DAG stays finite.
        let fanout = if seed < 64 { (x % 3) as usize } else { 0 };
        for i in 0..fanout {
            self.total_spawned.fetch_add(1, Ordering::Relaxed);
            ctx.spawn(x % 1000, 16, seed + 64 * (i as u64 + 1) + x % 64);
        }
    }
}

#[test]
fn irregular_dag_exactly_once() {
    for kind in PoolKind::ALL {
        let exec = Irregular {
            executed: AtomicU64::new(0),
            total_spawned: AtomicU64::new(0),
        };
        let roots: Vec<(u64, usize, u64)> = (0..8u64).map(|i| (i, 16usize, i)).collect();
        let stats = run_on_kind(kind, 4, PoolParams::default(), &exec, roots);
        let expected = 8 + exec.total_spawned.load(Ordering::Relaxed);
        assert_eq!(
            exec.executed.load(Ordering::Relaxed),
            expected,
            "{kind}: executed != roots + spawned"
        );
        assert_eq!(stats.executed, expected);
    }
}

/// One pool, many runs: handles must recreate cleanly (incarnations) and no
/// tasks may leak between runs.
#[test]
fn pool_reuse_across_many_runs() {
    let pool = Arc::new(HybridKPriority::new(2));
    let sched = Scheduler::from_pool_arc(pool);
    for round in 0..5u64 {
        let exec = MixedK {
            executed: AtomicU64::new(0),
        };
        let stats = sched.run(&exec, vec![(round, 4, (0u64, 4usize))]);
        assert_eq!(stats.executed, 127, "round {round}");
    }
}

/// Segment reclamation composes with scheduler reuse: run, reclaim at the
/// quiescent point, run again — no tasks lost, memory actually freed.
#[test]
fn reclaim_between_scheduler_runs() {
    let pool = Arc::new(priosched::core::CentralizedKPriority::with_defaults(2));
    let sched = Scheduler::from_pool_arc(Arc::clone(&pool));
    let exec = MixedK {
        executed: AtomicU64::new(0),
    };
    // Enough work to span several global-array segments.
    for _ in 0..3 {
        let stats = sched.run(&exec, vec![(0, 64, (0u64, 64usize))]);
        assert_eq!(stats.executed, 127);
    }
    let before = pool.segments();
    let freed = pool.reclaim();
    assert!(freed > 0 || before == 1, "freed {freed} of {before}");
    // The pool keeps working after reclamation.
    let stats = sched.run(&exec, vec![(0, 64, (0u64, 64usize))]);
    assert_eq!(stats.executed, 127);
}
