//! Async ingestion equivalence: the waker-based submit path may never be
//! distinguishable from the blocking path — or from preseeding — by what
//! the pool computes.
//!
//! The satellite proptest pins **preseeded ≡ blocking-submitted ≡
//! async-submitted** on all five structures with a tiny `lane_capacity`
//! (4), so the async producers constantly hit `Full`, deposit their
//! wakers, and are re-polled by worker drains: the `Full → Poll::Pending`
//! machinery runs for real in every case, driven by the in-tree
//! `futures-executor` shim (one `LocalPool` multiplexing all producers on
//! one reactor thread — the connection-actor shape).

use futures_executor::LocalPool;
use priosched_core::{
    run_on_kind, run_stream_on_kind, IngressLanes, PoolKind, PoolParams, PoolService, SpawnCtx,
    SubmitError, TaskExecutor,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts executions and sums payloads; tasks divisible by 3 spawn a
/// half-value child, so the async path interleaves with in-pool spawning.
#[derive(Default)]
struct Accumulate {
    count: AtomicU64,
    sum: AtomicU64,
}

impl TaskExecutor<u64> for Accumulate {
    fn execute(&self, task: u64, ctx: &mut SpawnCtx<'_, u64>) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(task, Ordering::Relaxed);
        if task > 0 && task.is_multiple_of(3) {
            ctx.spawn(task / 2, 8, task / 2);
        }
    }
}

/// `(count, sum)` the executor must end at for this seed multiset.
fn expected(seeds: &[(u64, usize, u64)]) -> (u64, u64) {
    let (mut count, mut sum) = (0u64, 0u64);
    for &(_, _, mut task) in seeds {
        loop {
            count += 1;
            sum += task;
            if task > 0 && task.is_multiple_of(3) {
                task /= 2;
            } else {
                break;
            }
        }
    }
    (count, sum)
}

/// Streams `seeds` from `producers` *async* tasks multiplexed on one
/// `LocalPool` reactor thread, each submitting through its own
/// `AsyncIngestHandle` (scalars and batches alternating), while the pool
/// drains on the calling thread.
fn run_async_streamed(
    kind: PoolKind,
    places: usize,
    params: PoolParams,
    seeds: &[(u64, usize, u64)],
    producers: usize,
) -> (u64, u64) {
    let exec = Accumulate::default();
    let ingress = IngressLanes::with_capacity(places, params.lane_capacity);
    let mut shards: Vec<Vec<(u64, usize, u64)>> = (0..producers).map(|_| Vec::new()).collect();
    for (i, seed) in seeds.iter().enumerate() {
        shards[i % producers].push(*seed);
    }
    // Mint every handle before the streamed run starts (the usual
    // contract), then move them into async producer tasks.
    let handles: Vec<_> = shards
        .iter()
        .map(|_| ingress.handle().into_async())
        .collect();
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut pool = LocalPool::new();
            let spawner = pool.spawner();
            for (mut handle, shard) in handles.into_iter().zip(shards) {
                spawner.spawn_local(async move {
                    // Alternate scalar and batch submission so both future
                    // types exercise their pending/waker path.
                    let mut batch: Vec<(u64, u64)> = Vec::new();
                    for (idx, (prio, k, task)) in shard.into_iter().enumerate() {
                        if idx % 2 == 0 {
                            handle
                                .submit(prio, k, task)
                                .await
                                .expect("live run accepts");
                        } else {
                            batch.push((prio, task));
                            let res = handle.submit_batch(k, &mut batch).await;
                            res.expect("live run accepts");
                        }
                    }
                    // The handle drops here: this producer's "no more
                    // input" signal.
                });
            }
            pool.run();
        });
        run_stream_on_kind(kind, places, params, &exec, Vec::new(), &ingress)
    });
    (
        exec.count.load(Ordering::Relaxed),
        exec.sum.load(Ordering::Relaxed),
    )
}

/// Blocking-submission reference (thread per producer, parking submits).
fn run_blocking_streamed(
    kind: PoolKind,
    places: usize,
    params: PoolParams,
    seeds: &[(u64, usize, u64)],
    producers: usize,
) -> (u64, u64) {
    let exec = Accumulate::default();
    let ingress = IngressLanes::with_capacity(places, params.lane_capacity);
    std::thread::scope(|s| {
        let mut shards: Vec<Vec<(u64, usize, u64)>> = (0..producers).map(|_| Vec::new()).collect();
        for (i, seed) in seeds.iter().enumerate() {
            shards[i % producers].push(*seed);
        }
        for shard in shards {
            let mut h = ingress.handle();
            s.spawn(move || {
                for (prio, k, task) in shard {
                    h.submit(prio, k, task).expect("live run accepts");
                }
            });
        }
        run_stream_on_kind(kind, places, params, &exec, Vec::new(), &ingress)
    });
    (
        exec.count.load(Ordering::Relaxed),
        exec.sum.load(Ordering::Relaxed),
    )
}

/// `k` alternates between two values so lane draining splits batches at
/// `k`-run boundaries on the async path too.
fn to_seeds(raw: &[(u16, u8)]) -> Vec<(u64, usize, u64)> {
    raw.iter()
        .map(|&(prio, payload)| {
            let k = if payload % 2 == 0 { 8 } else { 32 };
            (prio as u64, k, payload as u64)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance-criteria proptest: async-submitted ≡
    /// blocking-submitted ≡ preseeded on all five structures with
    /// `lane_capacity = 4`.
    #[test]
    fn async_blocking_and_preseeded_agree(
        raw in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..40),
        producers in 1usize..4,
    ) {
        let seeds = to_seeds(&raw);
        let (want_count, want_sum) = expected(&seeds);
        for kind in PoolKind::ALL {
            let params = PoolParams::with_k(16).with_lane_capacity(Some(4));
            let places = 2;

            let pre = Accumulate::default();
            let stats = run_on_kind(kind, places, params, &pre, seeds.clone());
            prop_assert_eq!(stats.executed, want_count, "preseeded {}", kind);
            prop_assert_eq!(pre.sum.load(Ordering::Relaxed), want_sum);

            let blocking = run_blocking_streamed(kind, places, params, &seeds, producers);
            prop_assert_eq!(blocking, (want_count, want_sum), "blocking {}", kind);

            let async_run = run_async_streamed(kind, places, params, &seeds, producers);
            prop_assert_eq!(
                async_run,
                (want_count, want_sum),
                "async submission diverges on {}",
                kind
            );
        }
    }
}

/// The service-level async story end to end: `async_ingest_handle` +
/// `join_async` driven by `block_on`, with backpressure (capacity 2).
#[test]
fn service_async_submit_and_join() {
    struct CountDown(AtomicU64);
    impl TaskExecutor<u64> for CountDown {
        fn execute(&self, task: u64, ctx: &mut SpawnCtx<'_, u64>) {
            self.0.fetch_add(1, Ordering::Relaxed);
            if task > 0 {
                ctx.spawn(task - 1, 8, task - 1);
            }
        }
    }
    let exec = Arc::new(CountDown(AtomicU64::new(0)));
    let svc: PoolService<u64> = priosched_core::PoolBuilder::new(PoolKind::Hybrid)
        .places(2)
        .k(8)
        .lane_capacity(2)
        .service(Arc::clone(&exec));
    let mut handle = svc.async_ingest_handle();
    let drained = futures_executor::block_on(async {
        for i in 0..20u64 {
            handle.submit(i, 8, i).await.expect("live service accepts");
        }
        let mut batch: Vec<(u64, u64)> = (0..10u64).map(|i| (i, i)).collect();
        handle.submit_batch(8, &mut batch).await.expect("live");
        svc.join_async().await
    });
    drained.expect("join_async must report a clean drain");
    let want: u64 = (0..20u64).map(|i| i + 1).sum::<u64>() + (0..10u64).map(|i| i + 1).sum::<u64>();
    assert_eq!(exec.0.load(Ordering::Relaxed), want);
    drop(handle);
    let stats = svc.shutdown().expect("clean shutdown");
    assert_eq!(stats.executed, want);
}

/// `join_async` on an aborted service resolves to a typed `PoolAborted`
/// error (and does not hang), mirroring the blocking `join`.
#[test]
fn join_async_reports_abort() {
    struct PanicOn13;
    impl TaskExecutor<u64> for PanicOn13 {
        fn execute(&self, t: u64, _ctx: &mut SpawnCtx<'_, u64>) {
            if t == 13 {
                panic!("boom at 13");
            }
        }
    }
    let mut svc: PoolService<u64> = priosched_core::PoolBuilder::new(PoolKind::WorkStealing)
        .places(2)
        .service(Arc::new(PanicOn13));
    svc.submit(13, 0, 13u64).unwrap();
    let aborted =
        futures_executor::block_on(svc.join_async()).expect_err("join_async must report the abort");
    assert!(
        aborted.failure.message.contains("boom at 13"),
        "got: {aborted}"
    );
    // And async submission after the abort surfaces the typed error.
    let mut handle = svc.async_ingest_handle();
    match futures_executor::block_on(handle.submit(1, 0, 41)) {
        Err(SubmitError::Aborted(task)) => assert_eq!(task, 41),
        other => panic!("expected Aborted, got {other:?}"),
    }
    drop(handle);
    let err = svc
        .shutdown()
        .expect_err("shutdown must report the abort as a typed error");
    assert!(err.failure.message.contains("boom at 13"), "got: {err}");
}
