//! Property-based tests for the graph substrate.

use priosched_graph::{bellman_ford, dijkstra, erdos_renyi, CsrGraph, ErdosRenyiConfig};
use proptest::prelude::*;

/// Arbitrary small undirected graphs as edge lists over `n` nodes.
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f32)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.01f32..1.0f32)
            .prop_filter_map("no self loops", |(u, v, w)| (u != v).then_some((u, v, w)));
        (Just(n), proptest::collection::vec(edge, 0..120))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Dijkstra and Bellman–Ford take min over identical f64 path sums, so
    /// their outputs must be bitwise equal.
    #[test]
    fn dijkstra_equals_bellman_ford((n, edges) in graph_strategy()) {
        let g = CsrGraph::from_undirected_edges(n, &edges);
        let dj = dijkstra(&g, 0).dist;
        let bf = bellman_ford(&g, 0);
        prop_assert_eq!(dj, bf);
    }

    /// d(source) = 0 and every edge satisfies the triangle inequality.
    #[test]
    fn dijkstra_output_is_a_feasible_potential((n, edges) in graph_strategy()) {
        let g = CsrGraph::from_undirected_edges(n, &edges);
        let d = dijkstra(&g, 0).dist;
        prop_assert_eq!(d[0], 0.0);
        for (u, v, w) in g.undirected_edges() {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du.is_finite() {
                prop_assert!(dv <= du + w as f64 + 1e-12);
            }
            if dv.is_finite() {
                prop_assert!(du <= dv + w as f64 + 1e-12);
            }
        }
    }

    /// Every finite distance is witnessed by some incoming edge (except the
    /// source), i.e. distances are not under-approximated.
    #[test]
    fn finite_distances_have_witnesses((n, edges) in graph_strategy()) {
        let g = CsrGraph::from_undirected_edges(n, &edges);
        let d = dijkstra(&g, 0).dist;
        for v in 1..n as u32 {
            let dv = d[v as usize];
            if dv.is_finite() {
                let witnessed = g.neighbors(v).iter().any(|e| {
                    let du = d[e.target as usize];
                    du.is_finite() && du + e.weight as f64 == dv
                });
                prop_assert!(witnessed, "node {v} distance {dv} has no witness edge");
            }
        }
    }

    /// CSR round-trip: building from an edge list preserves the multiset of
    /// undirected edges.
    #[test]
    fn csr_round_trip((n, edges) in graph_strategy()) {
        let g = CsrGraph::from_undirected_edges(n, &edges);
        let mut input: Vec<(u32, u32)> = edges
            .iter()
            .map(|&(u, v, _)| (u.min(v), u.max(v)))
            .collect();
        input.sort();
        let mut output: Vec<(u32, u32)> = g.undirected_edges().map(|(u, v, _)| (u, v)).collect();
        output.sort();
        prop_assert_eq!(input, output);
        prop_assert_eq!(g.num_edges(), edges.len());
    }

    /// The two ER samplers produce statistically consistent edge counts.
    #[test]
    fn er_sampler_counts_consistent(seed in 0u64..1000) {
        // Same p run through both code paths (p = 0.2 sparse, p = 0.3 dense
        // straddle the 0.25 switch); both must stay within 6 sigma.
        for p in [0.2f64, 0.3] {
            let n = 120;
            let cfg = ErdosRenyiConfig { n, p, seed };
            let g = erdos_renyi(&cfg);
            let pairs = (n * (n - 1) / 2) as f64;
            let mean = pairs * p;
            let sd = (pairs * p * (1.0 - p)).sqrt();
            let m = g.num_edges() as f64;
            prop_assert!((m - mean).abs() < 6.0 * sd, "p={p} m={m} mean={mean}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Δ-stepping computes Dijkstra's distances for any positive bucket
    /// width, on arbitrary graphs.
    #[test]
    fn delta_stepping_equals_dijkstra(
        (n, edges) in graph_strategy(),
        delta in 0.01f64..5.0,
    ) {
        use priosched_graph::delta_stepping;
        let g = CsrGraph::from_undirected_edges(n, &edges);
        let expect = dijkstra(&g, 0).dist;
        let got = delta_stepping(&g, 0, delta).dist;
        prop_assert_eq!(got, expect);
    }

    /// Relaxation counts never fall below the reachable-node count, for any
    /// delta (every reachable node must be relaxed at least once).
    #[test]
    fn delta_stepping_relaxation_lower_bound(
        (n, edges) in graph_strategy(),
        delta in 0.01f64..5.0,
    ) {
        use priosched_graph::delta_stepping;
        let g = CsrGraph::from_undirected_edges(n, &edges);
        let reachable = dijkstra(&g, 0).dist.iter().filter(|d| d.is_finite()).count();
        let r = delta_stepping(&g, 0, delta);
        prop_assert!(r.relaxations >= reachable);
    }
}
