//! Blocked Cholesky factorization as a prioritized task DAG — thin wrapper
//! over [`priosched::workloads::CholeskyWorkload`].
//!
//! The paper's introduction motivates priority scheduling with "matrix
//! algorithms-by-blocks" (Quintana-Ortí et al., cited as [16]): such
//! applications "resort to their own centralized scheduling scheme, based
//! on a shared priority queue" — exactly the congestion problem the
//! k-priority structures solve. The workload implementation (tile
//! POTRF/TRSM/SYRK/GEMM kernels, per-task dependency counters,
//! critical-path priorities, dense sequential oracle) lives in
//! `crates/workloads`, where tests and `schedbench` exercise it across
//! every structure; this example just runs and narrates it.
//!
//! Run with: `cargo run --release --example cholesky_blocks`

use priosched::core::{PoolKind, PoolParams};
use priosched::workloads::{run_workload, CholeskyWorkload};

fn main() {
    let (nt, b) = (6usize, 16usize);
    let workload = CholeskyWorkload::random(nt, b, 0xFEED_FACE);
    let n = workload.dim();
    let places = 4;

    let report = run_workload(&workload, PoolKind::Hybrid, places, PoolParams::with_k(16));
    report.expect_verified();
    assert_eq!(report.executed, workload.expected_tasks());

    let max_err = report
        .metrics
        .iter()
        .find(|(name, _)| *name == "max_factor_err")
        .map(|(_, v)| *v)
        .unwrap_or(f64::NAN);
    println!(
        "tile Cholesky {n}×{n} ({nt}×{nt} tiles of {b}×{b}): \
         {} tasks on {places} places in {:.2?}",
        report.executed, report.elapsed
    );
    println!("max deviation from dense reference: {max_err:.2e}");
    println!("\nTasks were prioritized by panel (critical path): the paper's");
    println!("motivating use case [16] for priority task scheduling.");
}
