//! Breadth-first search as a [`Workload`]: unit-weight shortest paths, à
//! la the Multi-Queues evaluation (Postnikova et al., PODC'21), verified
//! against a sequential queue-based BFS.
//!
//! Every node visit is a task whose priority is its hop depth — the
//! unit-weight degenerate case of SSSP. It stresses a different regime
//! than weighted SSSP: priorities are tiny dense integers (the frontier
//! depth), so huge plateaus of equal-priority tasks coexist and ρ-relaxed
//! pops almost always stay inside the current frontier. Wrong answers are
//! still possible — a structure that reorders beyond its bound (or a
//! scheduler that drops tasks) leaves depths above the true hop distance —
//! which is exactly what the oracle comparison catches.

use crate::Workload;
use priosched_core::{PoolParams, RunStats, SpawnCtx, TaskExecutor};
use priosched_graph::{erdos_renyi, CsrGraph, ErdosRenyiConfig};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Hop depth marking an unreached node.
pub const UNREACHED: u32 = u32::MAX;

/// One pending node visit: the node and the depth it was discovered at
/// (which doubles as the task priority).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BfsTask {
    /// Node to expand.
    pub node: u32,
    /// Hop depth the task was spawned with.
    pub depth: u32,
}

/// A BFS instance (graph + source frontier) with its sequential-BFS
/// oracle. Multi-source instances (a whole starting frontier at depth 0)
/// make the seed stream wide — exactly what sharded ingestion wants to
/// chew on.
pub struct BfsWorkload {
    graph: CsrGraph,
    sources: Vec<u32>,
    oracle: Vec<u32>,
    reachable: u64,
}

impl BfsWorkload {
    /// Wraps an existing graph; computes the sequential-BFS depths once.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn new(graph: CsrGraph, source: u32) -> Self {
        Self::multi_source(graph, vec![source])
    }

    /// BFS from a whole frontier: every source starts at depth 0 and the
    /// result is the hop distance to the *nearest* source.
    ///
    /// # Panics
    /// Panics if `sources` is empty or any source is out of range.
    pub fn multi_source(graph: CsrGraph, sources: Vec<u32>) -> Self {
        assert!(!sources.is_empty(), "BFS needs at least one source");
        assert!(
            sources.iter().all(|&s| (s as usize) < graph.num_nodes()),
            "source out of range"
        );
        let oracle = sequential_bfs_multi(&graph, &sources);
        let reachable = oracle.iter().filter(|&&d| d != UNREACHED).count() as u64;
        BfsWorkload {
            graph,
            sources,
            oracle,
            reachable,
        }
    }

    /// Seeded Erdős–Rényi instance with source 0 (weights ignored — BFS
    /// sees only the adjacency structure).
    pub fn random(n: usize, p: f64, seed: u64) -> Self {
        Self::new(erdos_renyi(&ErdosRenyiConfig { n, p, seed }), 0)
    }

    /// Seeded Erdős–Rényi instance with `nsources` evenly spread sources —
    /// the wide-frontier shape used by the `--ingest` sweep.
    ///
    /// # Panics
    /// Panics if `nsources` is zero or exceeds `n`.
    pub fn random_multi(n: usize, p: f64, seed: u64, nsources: usize) -> Self {
        assert!(nsources > 0 && nsources <= n, "bad source count");
        let sources = (0..nsources).map(|i| (i * n / nsources) as u32).collect();
        Self::multi_source(erdos_renyi(&ErdosRenyiConfig { n, p, seed }), sources)
    }

    /// The hop depths this workload verifies against.
    pub fn oracle(&self) -> &[u32] {
        &self.oracle
    }
}

/// Reference solution: textbook queue-based BFS from one source.
pub fn sequential_bfs(graph: &CsrGraph, source: u32) -> Vec<u32> {
    sequential_bfs_multi(graph, &[source])
}

/// Reference solution for a whole starting frontier (all sources at
/// depth 0).
pub fn sequential_bfs_multi(graph: &CsrGraph, sources: &[u32]) -> Vec<u32> {
    let mut depth = vec![UNREACHED; graph.num_nodes()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if depth[s as usize] == UNREACHED {
            depth[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let d = depth[u as usize];
        for e in graph.neighbors(u) {
            if depth[e.target as usize] == UNREACHED {
                depth[e.target as usize] = d + 1;
                queue.push_back(e.target);
            }
        }
    }
    depth
}

/// Per-run state: the atomic depth array.
pub struct BfsExec<'w> {
    graph: &'w CsrGraph,
    depth: Vec<AtomicU32>,
    k: usize,
    /// Nodes actually expanded (adjacency lists scanned).
    expanded: AtomicU64,
}

impl BfsExec<'_> {
    /// Nodes expanded so far; exceeds the reachable count exactly when
    /// useless work happened (a node re-expanded at a stale depth).
    pub fn expanded(&self) -> u64 {
        self.expanded.load(Ordering::Relaxed)
    }

    /// Snapshot of the depth array.
    pub fn depths(&self) -> Vec<u32> {
        self.depth
            .iter()
            .map(|d| d.load(Ordering::Relaxed))
            .collect()
    }

    /// Lowers `node`'s depth to `new` if it improves it (CAS loop).
    fn try_decrease(&self, node: u32, new: u32) -> bool {
        let cell = &self.depth[node as usize];
        let mut cur = cell.load(Ordering::Relaxed);
        while new < cur {
            match cell.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
        false
    }
}

impl TaskExecutor<BfsTask> for BfsExec<'_> {
    /// A task whose node has since been discovered shallower is dead.
    fn is_dead(&self, task: &BfsTask) -> bool {
        self.depth[task.node as usize].load(Ordering::Relaxed) < task.depth
    }

    fn execute(&self, task: BfsTask, ctx: &mut SpawnCtx<'_, BfsTask>) {
        // Re-check now; the pop-time dead check may be stale.
        if self.depth[task.node as usize].load(Ordering::Relaxed) < task.depth {
            return;
        }
        self.expanded.fetch_add(1, Ordering::Relaxed);
        let next = task.depth + 1;
        let mut batch = ctx.take_batch_buf();
        for e in self.graph.neighbors(task.node) {
            if self.try_decrease(e.target, next) {
                batch.push((
                    next as u64, // priority = hop depth, smaller is better
                    BfsTask {
                        node: e.target,
                        depth: next,
                    },
                ));
            }
        }
        ctx.spawn_batch(self.k, &mut batch);
        ctx.put_batch_buf(batch);
    }
}

impl Workload for BfsWorkload {
    type Task = BfsTask;
    type Exec<'w>
        = BfsExec<'w>
    where
        Self: 'w;

    fn name(&self) -> &'static str {
        "bfs"
    }

    fn executor(&self, params: &PoolParams) -> BfsExec<'_> {
        let depth: Vec<AtomicU32> = (0..self.graph.num_nodes())
            .map(|_| AtomicU32::new(UNREACHED))
            .collect();
        for &s in &self.sources {
            depth[s as usize].store(0, Ordering::Relaxed);
        }
        BfsExec {
            graph: &self.graph,
            depth,
            k: params.k,
            expanded: AtomicU64::new(0),
        }
    }

    fn seed(&self, _exec: &BfsExec<'_>, params: &PoolParams) -> Vec<(u64, usize, BfsTask)> {
        self.sources
            .iter()
            .map(|&node| (0, params.k, BfsTask { node, depth: 0 }))
            .collect()
    }

    fn verify(&self, exec: &BfsExec<'_>, _run: &RunStats) -> Result<(), String> {
        let depths = exec.depths();
        if depths != self.oracle {
            let diverging = depths
                .iter()
                .zip(&self.oracle)
                .filter(|(a, b)| a != b)
                .count();
            return Err(format!(
                "{diverging} of {} depths diverge from sequential BFS",
                depths.len()
            ));
        }
        if exec.expanded() < self.reachable {
            return Err(format!(
                "only {} expansions for {} reachable nodes",
                exec.expanded(),
                self.reachable
            ));
        }
        Ok(())
    }

    fn metrics(&self, exec: &BfsExec<'_>, _run: &RunStats) -> Vec<(&'static str, f64)> {
        vec![
            ("expanded", exec.expanded() as f64),
            (
                "useless",
                exec.expanded().saturating_sub(self.reachable) as f64,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use priosched_core::PoolKind;
    use priosched_graph::dijkstra;

    #[test]
    fn sequential_bfs_on_path_graph() {
        // 0 - 1 - 2 - 3 chain plus isolated node 4.
        let g = CsrGraph::from_undirected_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        assert_eq!(sequential_bfs(&g, 0), vec![0, 1, 2, 3, UNREACHED]);
    }

    #[test]
    fn oracle_matches_unit_weight_dijkstra() {
        // On a unit-weight copy of the graph, hop depth == Dijkstra
        // distance; cross-check the two independent oracles.
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 90,
            p: 0.08,
            seed: 5,
        });
        let unit: Vec<(u32, u32, f32)> = g
            .undirected_edges()
            .map(|(u, v, _)| (u, v, 1.0f32))
            .collect();
        let unit_graph = CsrGraph::from_undirected_edges(g.num_nodes(), &unit);
        let w = BfsWorkload::new(g.clone(), 0);
        let dij = dijkstra(&unit_graph, 0).dist;
        for (b, d) in w.oracle().iter().zip(&dij) {
            if *b == UNREACHED {
                assert!(d.is_infinite());
            } else {
                assert_eq!(*b as f64, *d);
            }
        }
    }

    #[test]
    fn bfs_workload_verifies_on_hybrid() {
        let w = BfsWorkload::random(150, 0.05, 42);
        let report = run_workload(&w, PoolKind::Hybrid, 2, PoolParams::with_k(16));
        report.expect_verified();
        assert!(report.executed >= 1);
    }

    #[test]
    fn multi_source_frontier_verifies_and_matches_min_of_singles() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 120,
            p: 0.05,
            seed: 9,
        });
        let sources = vec![0u32, 40, 80];
        let w = BfsWorkload::multi_source(g.clone(), sources.clone());
        // The frontier oracle is the pointwise min over single-source runs.
        for (node, &d) in w.oracle().iter().enumerate() {
            let min_single = sources
                .iter()
                .map(|&s| sequential_bfs(&g, s)[node])
                .min()
                .unwrap();
            assert_eq!(d, min_single, "node {node}");
        }
        run_workload(&w, PoolKind::Centralized, 4, PoolParams::with_k(32)).expect_verified();
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_frontier_rejected() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 10,
            p: 0.3,
            seed: 1,
        });
        BfsWorkload::multi_source(g, Vec::new());
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bad_source_rejected_at_construction() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 10,
            p: 0.3,
            seed: 1,
        });
        BfsWorkload::new(g, 10);
    }
}
