//! The scheduling-system ↔ data-structure interface.
//!
//! §2.1: "The scheduling system interacts with the data structure using two
//! functions, push and pop. Both functions are executed in the context of a
//! specific place, therefore giving access to the local component of the
//! priority data structure for the given place."
//!
//! A [`TaskPool`] is the shared, global component; a [`PoolHandle`] is one
//! place's view, combining access to the global component with exclusive
//! ownership of the place-local component (local priority queue, cursors,
//! RNG). Handles are created per worker thread and are `Send` but not
//! `Sync` — the asymmetric access scheme of §2.1 realized through Rust
//! ownership.

use crate::stats::PlaceStats;
use std::sync::Arc;

/// Contract of every priority scheduling data structure in this crate.
///
/// Guarantees required by the scheduler (§2.1):
/// * every pushed task is returned by exactly one successful `pop`;
/// * `pop` may fail spuriously (return `None` while tasks exist) only in
///   states where some other thread is making progress or where retrying
///   can observe the missing tasks (the scheduler retries until the global
///   pending-task count reaches zero);
/// * the priority ordering of returned tasks is structure-specific — see
///   each implementation for its ρ-relaxation bound.
pub trait TaskPool<T: Send + 'static>: Send + Sync + 'static {
    /// The place-local view.
    type Handle: PoolHandle<T>;

    /// Number of places this pool was configured for.
    fn num_places(&self) -> usize;

    /// Creates the handle for `place`.
    ///
    /// # Panics
    /// Panics if `place >= num_places()` or if a live handle for this place
    /// already exists (place-local components are single-owner).
    fn handle(self: &Arc<Self>, place: usize) -> Self::Handle;
}

/// One place's view of a [`TaskPool`].
pub trait PoolHandle<T: Send>: Send {
    /// Stores a task for later execution (§2.1 `push`).
    ///
    /// `prio`: priority key, smaller = higher priority.
    /// `k`: per-task relaxation bound (§2.2); how it is interpreted is
    /// structure-specific (window size for centralized, publication budget
    /// for hybrid, ignored by work-stealing).
    fn push(&mut self, prio: u64, k: usize, task: T);

    /// Retrieves some task together with its priority key and removes it
    /// from the pool (§2.1 `pop`).
    ///
    /// `None` means "nothing found right now" — possibly spuriously. The
    /// priority is the key the task was pushed with; the scheduler threads
    /// it into failure reports so a quarantined task can be identified.
    fn pop_entry(&mut self) -> Option<(u64, T)>;

    /// Retrieves some task and removes it from the pool, discarding the
    /// priority key. Convenience wrapper over [`PoolHandle::pop_entry`].
    fn pop(&mut self) -> Option<T> {
        self.pop_entry().map(|(_, task)| task)
    }

    /// Stores a batch of `(prio, task)` pairs sharing one relaxation bound
    /// `k`, draining `batch`.
    ///
    /// Semantically equivalent to pushing the pairs in order with scalar
    /// [`PoolHandle::push`] — same exactly-once guarantee, same per-task
    /// relaxation accounting (each batch element counts individually
    /// against `k`/ρ budgets; batching amortizes *synchronization*, never
    /// *ordering slack*). Implementations amortize the shared-state work:
    /// one lock acquisition, one item-pool refill, one publication CAS,
    /// and one local-queue repair per batch instead of per task.
    ///
    /// The default implementation loops over scalar `push`.
    fn push_batch(&mut self, k: usize, batch: &mut Vec<(u64, T)>) {
        for (prio, task) in batch.drain(..) {
            self.push(prio, k, task);
        }
    }

    /// Pops up to `max` tasks into `out`, returning how many were
    /// appended. `0` means "nothing found right now" — possibly spuriously,
    /// exactly like a `None` from [`PoolHandle::pop`].
    ///
    /// The tasks returned are those `max` consecutive scalar `pop`s could
    /// have returned (each individually honouring the structure's ρ
    /// bound); implementations amortize ingest/lock work across the batch.
    ///
    /// The default implementation loops over scalar `pop`.
    fn try_pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut got = 0;
        while got < max {
            match self.pop() {
                Some(task) => {
                    out.push(task);
                    got += 1;
                }
                None => break,
            }
        }
        got
    }

    /// Snapshot of this place's operation counters.
    fn stats(&self) -> PlaceStats;
}

/// Structure-tuning parameters shared by every pool-construction site.
///
/// Collects the knobs that used to be threaded separately through each
/// harness config (`kmax` for the centralized structure, construction-time
/// `k` for the structural prototype), so a runtime-selected build — see
/// [`PoolKind::build`] — cannot silently drop one of them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PoolParams {
    /// Relaxation parameter `k` (§2.2): the per-task bound spawners pass
    /// with every push, and the per-place buffer bound the structural
    /// prototype fixes at construction.
    pub k: usize,
    /// `kmax` for the centralized structure (paper: 512); per-task `k`
    /// values are clamped to it.
    pub kmax: u32,
    /// Per-lane capacity of the ingress lanes in streamed runs and
    /// services (`None` = unbounded). With a bound set, `try_submit`
    /// sheds when every lane is full and blocking `submit` parks until a
    /// drain frees room — see `priosched_core::ingest`. Ignored by
    /// closed-world (preseeded) runs, which have no lanes.
    pub lane_capacity: Option<usize>,
    /// What happens when a task panics — see [`FaultPolicy`]. Defaults to
    /// [`FaultPolicy::AbortRun`], the historical behavior.
    pub fault_policy: FaultPolicy,
    /// Whether the structural pool delegates its shared-queue accesses
    /// through the flat combiner (`priosched_core::combine`). Defaults to
    /// `true`; `false` preserves the plain-mutex path for A/B comparison.
    /// Ignored by the other structures (until they grow combining too).
    pub combine: bool,
    /// Queues-per-place factor `c` of the relaxed MultiQueue (the pool
    /// keeps `c·P` queues). Defaults to [`DEFAULT_MQ_C`]; values below 1
    /// are clamped to 1 at construction. Ignored by the exact structures.
    pub mq_c: usize,
    /// MultiQueue stickiness (§4 of the Multi-Queues paper): after a
    /// successful pop a place keeps popping the same queue for this many
    /// further pops before probing two fresh random queues. 0 (the
    /// default) is the classic two-choice pop. Ignored by the exact
    /// structures.
    pub mq_stickiness: usize,
    /// Enables the MultiQueue's rank-error instrument: a shadow exact
    /// multiset records, for every pop, how many strictly better
    /// priorities were queued ([`crate::stats::PlaceStats::rank_pops`]
    /// and friends). The shadow serializes every operation — keep this
    /// off (the default) in any timing measurement. Ignored by the exact
    /// structures, whose rank behaviour is ρ-bounded by construction.
    pub rank_error: bool,
}

/// The paper's default relaxation parameter (k = 512, found to be a good
/// compromise on the 80-core testbed).
pub const DEFAULT_K: usize = 512;

/// The paper's `kmax` for the centralized structure.
pub const DEFAULT_KMAX: u32 = 512;

/// Default MultiQueue queues-per-place factor (re-exported from
/// [`crate::multiqueue`] for parameter-block callers).
pub use crate::multiqueue::DEFAULT_MQ_C;

impl Default for PoolParams {
    fn default() -> Self {
        PoolParams {
            k: DEFAULT_K,
            kmax: DEFAULT_KMAX,
            lane_capacity: None,
            fault_policy: FaultPolicy::AbortRun,
            combine: true,
            mq_c: DEFAULT_MQ_C,
            mq_stickiness: 0,
            rank_error: false,
        }
    }
}

impl PoolParams {
    /// Parameters for relaxation bound `k`, with `kmax` widened so the
    /// centralized structure admits the requested `k` (Figure 5 sweeps `k`
    /// beyond the paper's fixed `kmax = 512`, which would otherwise clamp).
    pub fn with_k(k: usize) -> Self {
        PoolParams {
            k,
            kmax: (k.min(u32::MAX as usize) as u32).max(DEFAULT_KMAX),
            ..PoolParams::default()
        }
    }

    /// The same parameters with a per-lane ingress capacity (see
    /// [`PoolParams::lane_capacity`]).
    pub fn with_lane_capacity(mut self, capacity: Option<usize>) -> Self {
        self.lane_capacity = capacity;
        self
    }

    /// The same parameters with flat combining toggled (see
    /// [`PoolParams::combine`]).
    pub fn with_combining(mut self, combine: bool) -> Self {
        self.combine = combine;
        self
    }

    /// The same parameters with a fault policy (see [`FaultPolicy`]).
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }

    /// The same parameters with the MultiQueue's queues-per-place factor
    /// (see [`PoolParams::mq_c`]).
    pub fn with_mq_c(mut self, c: usize) -> Self {
        self.mq_c = c;
        self
    }

    /// The same parameters with the MultiQueue's stickiness (see
    /// [`PoolParams::mq_stickiness`]).
    pub fn with_mq_stickiness(mut self, stickiness: usize) -> Self {
        self.mq_stickiness = stickiness;
        self
    }

    /// The same parameters with the rank-error instrument toggled (see
    /// [`PoolParams::rank_error`]).
    pub fn with_rank_error(mut self, enabled: bool) -> Self {
        self.rank_error = enabled;
        self
    }
}

/// What a worker does when a task's `execute` panics.
///
/// Either way the panic never crosses a worker thread boundary
/// uncontrolled: the worker catches it, records a
/// `FailureReport` (place, priority, panic message), and decrements the
/// pending count *after* recording — so the quiescence/read-order argument
/// (see `priosched_core::ingest`) holds in the presence of failures.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FaultPolicy {
    /// A single panicking task aborts the whole run: the abort flag is
    /// raised before the panicked task's pending decrement, sibling
    /// workers stop at the next loop head, blocked and future producers
    /// get `SubmitError::Aborted`, and the panic payload is re-surfaced —
    /// `Scheduler::run`/`run_stream` resume the panic on the caller,
    /// while `PoolService::join`/`shutdown` report it as a typed error.
    #[default]
    AbortRun,
    /// A panicking task is quarantined: its failure is recorded on the run
    /// stats (`RunStats::failures`), the pending count is decremented
    /// exactly as a successful completion would, and sibling workers (and
    /// producers) continue unaffected. The run still reaches quiescence
    /// with exact accounting: `executed + dead + failed` covers every task
    /// that entered the pool.
    Isolate,
}

/// Runtime-selectable structure kind, used by the figure harness and
/// examples to sweep over data structures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// §3.1 — per-place priority queues with steal-half; no global ordering.
    WorkStealing,
    /// §3.2/§4.1 — global array with ρ = k relaxation.
    Centralized,
    /// §3.3/§4.2 — local lists + global list + spying; ρ = P·k.
    Hybrid,
    /// §5.3 prototype — structural (non-temporal) ρ-relaxation.
    Structural,
    /// Relaxed MultiQueue (arXiv 2109.00657) — c·P sequential queues with
    /// two-choice pop; probabilistic relaxation, **no** ρ bound.
    MultiQueue,
}

impl PoolKind {
    /// All kinds evaluated in the paper's figures (the structural prototype
    /// is an extension and not part of the paper's evaluation).
    pub const PAPER: [PoolKind; 3] = [
        PoolKind::WorkStealing,
        PoolKind::Centralized,
        PoolKind::Hybrid,
    ];

    /// Every structure in the crate, including the structural prototype
    /// and the relaxed MultiQueue — the sweep set for correctness
    /// matrices and the workload harness. Use [`PoolKind::PAPER`] where
    /// figure parity matters.
    pub const ALL: [PoolKind; 5] = [
        PoolKind::WorkStealing,
        PoolKind::Centralized,
        PoolKind::Hybrid,
        PoolKind::Structural,
        PoolKind::MultiQueue,
    ];

    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            PoolKind::WorkStealing => "Work-Stealing",
            PoolKind::Centralized => "Centralized",
            PoolKind::Hybrid => "Hybrid",
            PoolKind::Structural => "Structural",
            PoolKind::MultiQueue => "MultiQueue",
        }
    }

    /// Snake-case identifier for machine-readable output (bench JSON ids,
    /// CLI arguments).
    pub fn id(self) -> &'static str {
        match self {
            PoolKind::WorkStealing => "work_stealing",
            PoolKind::Centralized => "centralized",
            PoolKind::Hybrid => "hybrid",
            PoolKind::Structural => "structural",
            PoolKind::MultiQueue => "multiqueue",
        }
    }
}

impl std::str::FromStr for PoolKind {
    type Err = String;

    /// Accepts the snake-case [`PoolKind::id`], the figure-legend
    /// [`PoolKind::label`] (case-insensitive), or the short aliases `ws`
    /// and `mq`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "work_stealing" | "work-stealing" | "ws" => Ok(PoolKind::WorkStealing),
            "centralized" => Ok(PoolKind::Centralized),
            "hybrid" => Ok(PoolKind::Hybrid),
            "structural" => Ok(PoolKind::Structural),
            "multiqueue" | "multi_queue" | "multi-queue" | "mq" => Ok(PoolKind::MultiQueue),
            _ => Err(format!(
                "unknown pool kind {s:?} (expected one of: work_stealing, \
                 centralized, hybrid, structural, multiqueue)"
            )),
        }
    }
}

impl std::fmt::Display for PoolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(PoolKind::WorkStealing.label(), "Work-Stealing");
        assert_eq!(PoolKind::Centralized.label(), "Centralized");
        assert_eq!(PoolKind::Hybrid.label(), "Hybrid");
        assert_eq!(PoolKind::PAPER.len(), 3);
    }

    #[test]
    fn all_extends_paper_with_extensions() {
        assert_eq!(PoolKind::ALL.len(), 5);
        for kind in PoolKind::PAPER {
            assert!(PoolKind::ALL.contains(&kind));
        }
        for extension in [PoolKind::Structural, PoolKind::MultiQueue] {
            assert!(PoolKind::ALL.contains(&extension));
            assert!(!PoolKind::PAPER.contains(&extension));
        }
    }

    #[test]
    fn kind_ids_round_trip_through_from_str() {
        for kind in PoolKind::ALL {
            assert_eq!(kind.id().parse::<PoolKind>().unwrap(), kind);
            assert_eq!(kind.label().parse::<PoolKind>().unwrap(), kind);
        }
        assert_eq!("ws".parse::<PoolKind>().unwrap(), PoolKind::WorkStealing);
        assert_eq!("mq".parse::<PoolKind>().unwrap(), PoolKind::MultiQueue);
        assert_eq!(
            "multi_queue".parse::<PoolKind>().unwrap(),
            PoolKind::MultiQueue
        );
        assert!("bogus".parse::<PoolKind>().is_err());
    }

    #[test]
    fn pool_params_defaults_match_paper() {
        let p = PoolParams::default();
        assert_eq!(p.k, 512);
        assert_eq!(p.kmax, 512);
        // Flat combining is the default shared-queue mode; the mutex path
        // stays reachable for A/B.
        assert!(p.combine);
        assert!(!p.with_combining(false).combine);
        // with_k keeps kmax wide enough to admit the requested k.
        assert_eq!(PoolParams::with_k(8).kmax, 512);
        assert_eq!(PoolParams::with_k(8192).kmax, 8192);
        assert_eq!(PoolParams::with_k(8192).k, 8192);
        // MultiQueue knobs: c = 2, no stickiness, instrument off.
        assert_eq!(p.mq_c, DEFAULT_MQ_C);
        assert_eq!(p.mq_stickiness, 0);
        assert!(!p.rank_error);
        let q = p.with_mq_c(4).with_mq_stickiness(8).with_rank_error(true);
        assert_eq!((q.mq_c, q.mq_stickiness, q.rank_error), (4, 8, true));
    }
}
