//! The paper's evaluation workload end-to-end (§5): parallel SSSP on an
//! Erdős–Rényi random graph, comparing all three data structures against
//! sequential Dijkstra — correctness *and* useless work.
//!
//! Run with: `cargo run --release --example sssp_random_graph [n] [p]`

use priosched::core::PoolKind;
use priosched::graph::{dijkstra, erdos_renyi, ErdosRenyiConfig};
use priosched::sssp::{run_sssp_kind, run_sssp_lockstep_kind, SsspConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(1500);
    let p: f64 = args.next().map(|a| a.parse().unwrap()).unwrap_or(0.5);
    let places = 8;
    let k = 512;

    println!("generating G(n = {n}, p = {p}) with U(0,1] weights …");
    let graph = erdos_renyi(&ErdosRenyiConfig { n, p, seed: 42 });
    println!(
        "{} nodes, {} edges ({:.1} MiB CSR), connected: {}\n",
        graph.num_nodes(),
        graph.num_edges(),
        graph.memory_bytes() as f64 / (1024.0 * 1024.0),
        graph.is_connected()
    );

    let t0 = std::time::Instant::now();
    let seq = dijkstra(&graph, 0);
    let seq_time = t0.elapsed();
    let reachable = seq.dist.iter().filter(|d| d.is_finite()).count();
    println!(
        "{:<14} {:>10.2?}  relaxed {:>7}  (every reachable node exactly once)",
        "Sequential", seq_time, seq.relaxations
    );

    let cfg = SsspConfig::new(places, k);
    for kind in PoolKind::PAPER {
        // Threaded run: correctness + wall time on this host.
        let res = run_sssp_kind(kind, &graph, 0, &cfg);
        assert_eq!(res.dist, seq.dist, "{kind}: wrong distances!");
        // Lockstep run: deterministic interleaving, the useless-work signal.
        let ordered = run_sssp_lockstep_kind(kind, &graph, 0, &cfg);
        let useless = ordered.relaxed as i64 - reachable as i64;
        println!(
            "{:<14} {:>10.2?}  relaxed {:>7}  (+{useless} useless under {places}-way interleaving, dead {})",
            kind.label(),
            res.elapsed,
            ordered.relaxed,
            ordered.dead,
        );
    }

    println!("\nAll parallel runs produced bit-identical distances to Dijkstra.");
    println!("Work-stealing pays for its missing global order in useless work;");
    println!("the k-priority structures bound it (ρ = k and ρ = P·k).");
}
