//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. randomized vs linear slot placement in the centralized push
//!    (Listing 1 line 9 — "Randomization is used to improve scalability");
//! 2. dead-task elimination on vs off (§5.1 lazy removal);
//! 3. hybrid (temporal ρ-relaxation, lock-free) vs the structural
//!    prototype (§5.3);
//! 4. binary heap vs pairing heap as the place-local priority queue
//!    (§4.1: "any sequential implementation … can be used").

use criterion::{criterion_group, criterion_main, Criterion};
use priosched_core::centralized::{CentralizedKPriority, Placement};
use priosched_core::{PoolHandle, PoolKind, TaskPool};
use priosched_graph::{erdos_renyi, ErdosRenyiConfig};
use priosched_pq::{BinaryHeap, PairingHeap, QuaternaryHeap, SequentialPriorityQueue};
use priosched_sssp::{run_sssp_kind, SsspConfig};
use std::sync::Arc;
use std::time::Duration;

fn placement_cycle(placement: Placement, threads: usize) {
    let pool = Arc::new(CentralizedKPriority::<u64>::with_placement(
        threads, 256, placement,
    ));
    let per = 5_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                let mut h = pool.handle(t);
                for i in 0..per {
                    h.push(i ^ 0x5555, 256, i);
                }
                let mut n = 0;
                while h.pop().is_some() {
                    n += 1;
                }
                criterion::black_box(n);
            });
        }
    });
}

fn bench_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_placement");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("random_offset", |b| {
        b.iter(|| placement_cycle(Placement::Random, 2))
    });
    g.bench_function("linear_probe", |b| {
        b.iter(|| placement_cycle(Placement::Linear, 2))
    });
    g.finish();
}

fn bench_dead_elimination(c: &mut Criterion) {
    let graph = erdos_renyi(&ErdosRenyiConfig {
        n: 600,
        p: 0.3,
        seed: 1000,
    });
    let mut g = c.benchmark_group("ablation_dead_task_elimination");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    for (name, eliminate) in [("eliminate_on", true), ("eliminate_off", false)] {
        g.bench_function(name, |b| {
            let cfg = SsspConfig {
                eliminate_dead: eliminate,
                ..SsspConfig::new(4, 512)
            };
            b.iter(|| criterion::black_box(run_sssp_kind(PoolKind::Hybrid, &graph, 0, &cfg)))
        });
    }
    g.finish();
}

fn bench_structural_vs_hybrid(c: &mut Criterion) {
    let graph = erdos_renyi(&ErdosRenyiConfig {
        n: 600,
        p: 0.3,
        seed: 1000,
    });
    let mut g = c.benchmark_group("ablation_structural_vs_hybrid");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    for kind in [PoolKind::Hybrid, PoolKind::Structural] {
        g.bench_function(kind.label(), |b| {
            let cfg = SsspConfig::new(4, 64);
            b.iter(|| criterion::black_box(run_sssp_kind(kind, &graph, 0, &cfg)))
        });
    }
    g.finish();
}

fn heap_cycle<Q: SequentialPriorityQueue<u64>>() {
    let mut q = Q::new();
    for i in 0..10_000u64 {
        q.push(i.wrapping_mul(0x9E3779B97F4A7C15) >> 32);
    }
    while q.pop().is_some() {}
}

fn bench_local_pq(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_local_pq");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("binary_heap", |b| b.iter(heap_cycle::<BinaryHeap<u64>>));
    g.bench_function("pairing_heap", |b| b.iter(heap_cycle::<PairingHeap<u64>>));
    g.bench_function("quaternary_heap", |b| {
        b.iter(heap_cycle::<QuaternaryHeap<u64>>)
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_placement,
    bench_dead_elimination,
    bench_structural_vs_hybrid,
    bench_local_pq
);
criterion_main!(benches);
