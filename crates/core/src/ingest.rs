//! Sharded, bounded ingestion lanes: feeding tasks into a *running* pool.
//!
//! The paper's runtime (§2) is closed-world — every root is known at
//! [`crate::scheduler::Scheduler::run`] time and termination is a single
//! outstanding-task counter hitting zero. A pool that serves external
//! traffic needs the opposite: producers that are **not** workers must be
//! able to submit prioritized tasks while the pool is draining, without
//! funnelling through one contended entry point — and without a fast
//! producer being able to queue unboundedly ahead of the consumers.
//!
//! This module supplies the open-world half:
//!
//! * [`IngressLanes`] — one MPSC lane per place, each with an optional
//!   **capacity** ([`IngressLanes::with_capacity`]). Producers append under
//!   a short per-lane lock; the place's worker moves whole lane contents
//!   into its pool handle at the *pop boundary* (between task executions),
//!   so the scheduler-module ordering argument is untouched: no task batch
//!   is ever popped ahead of execution, and a freshly spawned
//!   better-priority task can never get stuck behind pre-popped ingested
//!   work. The paper's k-priority structures assume bounded ρ-relaxed
//!   buffering at every place; a bounded lane extends that stance to the
//!   producer/consumer boundary.
//! * [`IngestHandle`] — a cloneable producer handle. Submissions are
//!   round-robined across lanes so ingestion itself shards; batch
//!   submissions ride one lane (one lock) and are charged element-wise
//!   against the `k`/ρ bounds when drained, exactly like
//!   [`crate::scheduler::SpawnCtx::spawn_batch`].
//!
//! # Backpressure
//!
//! With a capacity set, every submission path is total — nothing is ever
//! silently dropped:
//!
//! * [`IngestHandle::try_submit`] / [`IngestHandle::try_submit_batch`]
//!   *shed*: when every lane is full (or the pool aborted / shut down)
//!   they return a typed [`SubmitError`] **handing the rejected items
//!   back** to the caller, who may retry, reroute, or drop deliberately.
//! * [`IngestHandle::submit`] / [`IngestHandle::submit_batch`] *block*:
//!   they park the producer on the shared space slot until a worker's
//!   lane drain frees room (or the pool aborts). Blocking batch submits
//!   larger than the lane capacity are split into capacity-sized chunks
//!   internally.
//!
//! Capacity bounds *lane occupancy*: a lane whose contents were just
//! swapped out by a drain has room again even while the drained tasks are
//! still being pushed into the pool (they are accounted by the pending
//! counter at that point, not the lane).
//!
//! # Quiescence
//!
//! With external producers, "counter is zero" is no longer termination —
//! a producer might be about to submit. Termination generalizes to
//! **quiescence**: the pending counter is zero **and** every lane is empty
//! **and** every [`IngestHandle`] has been dropped (a producer refcount).
//! The refcount makes the open world closable: dropping the last handle is
//! the producers' collective "no more input" signal, after which the usual
//! drain argument applies.
//!
//! The check order matters and is fixed in [`IngressShared::quiescent`]:
//! producers first, then the queued count, then (in the scheduler) the
//! pending counter. Under the usage contract — every producer handle is
//! minted **before** the streamed run starts, and new handles come only
//! from cloning live ones while the run is in flight — a producer count
//! that reads zero can never rise again, so all queued increments have
//! happened (the `queued` increment sits *inside* the lane critical
//! section of the submitting handle, which the producer refcount keeps
//! live); a lane→pool transfer increments `pending` *before* decrementing
//! `queued`, so a task is always visible to at least one of the two
//! counters; reading `queued == 0` after `producers == 0` and
//! `pending == 0` last therefore proves nothing is left anywhere. The
//! `counters_never_hide_a_task_mid_transfer` test races all three roles
//! and asserts exactly this invariant.
//!
//! # Parking and wake events
//!
//! Idle workers, join waiters, and blocked producers *park* (see
//! [`crate::park`]) instead of polling, so every state transition that
//! could unblock someone must produce a wake. The complete event set:
//!
//! | event                                  | wakes |
//! |----------------------------------------|-------|
//! | submission into lane `l`               | worker `l` (targeted) |
//! | lane drain transferred `n > 0` tasks   | blocked producers (space freed) + idle workers (tasks became stealable/spyable) |
//! | in-pool spawn (streamed runs)          | idle workers (gated broadcast) |
//! | pending counter reaches zero           | control slot (join waiters); all workers if also quiescent |
//! | producer refcount reaches zero         | everything (workers re-check quiescence) |
//! | abort / shutdown                       | everything |
//!
//! Every waiter follows the register → re-check → park protocol of
//! [`crate::park::ParkSlot`], so none of these can be lost to the
//! check-then-sleep race.
//!
//! [`IngressLanes::handle`] *can* re-arm a drained set of lanes (the count
//! goes 0 → 1 again); that is how the same lanes feed a *subsequent*
//! streamed run. What the contract rules out is racing such a mint against
//! a run that is already terminating — see [`IngressLanes::handle`]. A
//! run that **aborts** (task panic, service drop) instead poisons the
//! lanes: further submissions fail with [`SubmitError::Aborted`] and
//! blocked producers are woken into that error, so no producer can park
//! forever against workers that no longer exist.

use crate::park::Parker;
use crate::pool::PoolHandle;
use crate::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use crate::sync::Mutex;
use crossbeam_utils::CachePadded;
use std::sync::Arc;

/// One queued submission: priority, relaxation bound, payload.
type Entry<T> = (u64, usize, T);

/// One MPSC lane: producer-locked, cache-line-padded against its
/// neighbours.
type Lane<T> = CachePadded<Mutex<Vec<Entry<T>>>>;

/// A rejected submission. The payload is always handed back — `T` is the
/// task for scalar [`IngestHandle::try_submit`], `()` for batch variants
/// (whose items stay in the caller's vector).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError<T = ()> {
    /// Every lane is at capacity; a later drain will free room (retry, or
    /// use the blocking [`IngestHandle::submit`]).
    Full(T),
    /// The pool aborted — a task panicked or the service was dropped
    /// without shutdown. The lanes are permanently poisoned; queued tasks
    /// are discarded when the lanes drop.
    Aborted(T),
    /// The service shut down; no worker will ever drain these lanes again.
    ShutDown(T),
}

impl<T> SubmitError<T> {
    /// The rejected payload, handed back to the caller.
    pub fn into_task(self) -> T {
        match self {
            SubmitError::Full(t) | SubmitError::Aborted(t) | SubmitError::ShutDown(t) => t,
        }
    }

    /// This error without its payload (for uniform matching/printing).
    pub fn kind(&self) -> SubmitError {
        match self {
            SubmitError::Full(_) => SubmitError::Full(()),
            SubmitError::Aborted(_) => SubmitError::Aborted(()),
            SubmitError::ShutDown(_) => SubmitError::ShutDown(()),
        }
    }

    /// `true` for [`SubmitError::Full`] — the only retryable rejection.
    pub fn is_full(&self) -> bool {
        matches!(self, SubmitError::Full(_))
    }
}

impl<T> std::fmt::Display for SubmitError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SubmitError::Full(_) => "ingress lanes full (capacity reached; task handed back)",
            SubmitError::Aborted(_) => "pool aborted (task handed back)",
            SubmitError::ShutDown(_) => "pool shut down (task handed back)",
        })
    }
}

impl<T: std::fmt::Debug> std::error::Error for SubmitError<T> {}

/// Lifecycle gate values (see [`IngressShared::gate`]).
const GATE_OPEN: u8 = 0;
const GATE_ABORTED: u8 = 1;
const GATE_SHUT_DOWN: u8 = 2;

/// Shared state behind [`IngressLanes`] and every [`IngestHandle`].
pub(crate) struct IngressShared<T: Send> {
    /// One MPSC lane per place; workers drain their own index.
    lanes: Box<[Lane<T>]>,
    /// Per-lane occupancy bound; `None` = unbounded.
    capacity: Option<usize>,
    /// Tasks submitted but not yet transferred into the pool. Updated
    /// *inside* the submitting handle's lane critical section; decremented
    /// only after the pool push (the transfer increments the scheduler's
    /// pending counter first, so no task is ever invisible to both
    /// counters).
    queued: AtomicU64,
    /// Live [`IngestHandle`] count. While a streamed run is in flight,
    /// zero is absorbing *by contract*: clones need a live handle, and
    /// minting fresh handles mid-run is ruled out (see
    /// [`IngressLanes::handle`]); the lanes object itself is not a
    /// producer.
    producers: AtomicUsize,
    /// Round-robin seed so successive handles start on different lanes.
    next_lane: AtomicUsize,
    /// Lifecycle gate: open / aborted / shut down. Monotonic — once
    /// raised it never clears; submissions check it first.
    gate: AtomicU8,
    /// The parking fabric shared by workers, join waiters, and blocked
    /// producers (see the module-docs event table).
    parker: Parker,
}

impl<T: Send> IngressShared<T> {
    /// `true` when no producer can ever submit again and every lane has
    /// been transferred into the pool. Combined with `pending == 0` (read
    /// *after* this, see module docs) this is the streamed termination
    /// condition.
    pub(crate) fn quiescent(&self) -> bool {
        self.producers.load(Ordering::Acquire) == 0 && self.queued.load(Ordering::Acquire) == 0
    }

    /// Cheap "is there anything to drain anywhere" hint.
    pub(crate) fn queued_hint(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Tasks submitted but not yet transferred into the pool (acquire
    /// read; the drain-side counterpart of [`IngressLanes::queued`]).
    pub(crate) fn queued_count(&self) -> u64 {
        self.queued.load(Ordering::Acquire)
    }

    /// The parking fabric (scheduler and service side).
    pub(crate) fn parker(&self) -> &Parker {
        &self.parker
    }

    /// Poisons the lanes (abort) and wakes everything: parked workers
    /// observe the abort flag, join waiters return `false`, blocked
    /// producers fail with [`SubmitError::Aborted`] instead of parking
    /// against workers that are gone.
    pub(crate) fn abort_and_wake(&self) {
        // Never downgrade a shutdown; both states end the lanes' life.
        let _ = self.gate.compare_exchange(
            GATE_OPEN,
            GATE_ABORTED,
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
        self.parker.wake_all();
    }

    /// Marks the lanes shut down (after the service's workers exited
    /// cleanly) and wakes any straggler.
    pub(crate) fn shut_down_and_wake(&self) {
        self.gate.store(GATE_SHUT_DOWN, Ordering::Release);
        self.parker.wake_all();
    }

    fn gate(&self) -> u8 {
        self.gate.load(Ordering::Acquire)
    }

    /// Moves the contents of lane `place` into `handle`, charging the
    /// scheduler's `pending` counter before any task becomes poppable.
    ///
    /// Tasks are pushed through [`PoolHandle::push_batch`] in maximal
    /// consecutive same-`k` runs, so a drained batch is charged
    /// element-wise against the `k`/ρ bounds exactly as the equivalent
    /// sequence of spawns would be. Uses `try_lock`: if a producer holds
    /// the lane, the worker retries on its next pop boundary instead of
    /// blocking (the queued count keeps termination honest meanwhile).
    ///
    /// A transfer of `n > 0` tasks is a wake event twice over: the lane
    /// has room again (blocked producers) and the pool gained tasks that
    /// other places may steal or spy (idle workers).
    ///
    /// `scratch` and `kbatch` are caller-owned reusable buffers; both are
    /// left empty. Returns the number of tasks transferred.
    pub(crate) fn drain_into(
        &self,
        place: usize,
        handle: &mut dyn PoolHandle<T>,
        pending: &AtomicU64,
        scratch: &mut Vec<Entry<T>>,
        kbatch: &mut Vec<(u64, T)>,
    ) -> u64 {
        debug_assert!(scratch.is_empty() && kbatch.is_empty());
        {
            let Some(mut lane) = self.lanes[place].try_lock() else {
                return 0;
            };
            if lane.is_empty() {
                return 0;
            }
            std::mem::swap(&mut *lane, scratch);
        }
        let n = scratch.len() as u64;
        // Pending rises before the tasks are poppable *and* before queued
        // falls — the task stays visible to the termination check
        // throughout the transfer.
        pending.fetch_add(n, Ordering::AcqRel);
        let mut run_k: Option<usize> = None;
        for (prio, k, task) in scratch.drain(..) {
            if run_k != Some(k) {
                if let Some(prev_k) = run_k.take() {
                    handle.push_batch(prev_k, kbatch);
                }
                run_k = Some(k);
            }
            kbatch.push((prio, task));
        }
        if let Some(prev_k) = run_k {
            handle.push_batch(prev_k, kbatch);
        }
        self.queued.fetch_sub(n, Ordering::AcqRel);
        // The lane has room again (only bounded lanes can have producers
        // parked on the space slot) and the pool has new (possibly
        // stealable) tasks.
        if self.capacity.is_some() {
            self.parker.space().wake_if_waiting();
        }
        self.parker.wake_workers_if_idle();
        n
    }
}

/// The per-place ingress lanes of one pool run (or service).
///
/// Create one with as many lanes as the pool has places, mint
/// [`IngestHandle`]s for every producer **before** starting the streamed
/// run (a run that observes zero producers and empty lanes terminates),
/// then hand it to [`crate::Scheduler::run_stream`] /
/// [`crate::facade::run_stream_on_kind`].
///
/// Tasks still sitting in lanes when the lanes (and all handles) are
/// dropped are dropped exactly once, like any owned value — lanes store
/// tasks by value and never hand out raw pointers.
pub struct IngressLanes<T: Send> {
    shared: Arc<IngressShared<T>>,
}

impl<T: Send> IngressLanes<T> {
    /// Creates `lanes` empty, **unbounded** ingress lanes (one per place
    /// of the pool this will feed).
    ///
    /// # Panics
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize) -> Self {
        Self::with_capacity(lanes, None)
    }

    /// Creates `lanes` empty ingress lanes holding at most `capacity`
    /// tasks **each** (`None` = unbounded). With a capacity set,
    /// [`IngestHandle::try_submit`] sheds when every lane is full and
    /// [`IngestHandle::submit`] blocks until a drain frees room.
    ///
    /// # Panics
    /// Panics if `lanes` is zero or `capacity` is `Some(0)` (nothing could
    /// ever be submitted).
    pub fn with_capacity(lanes: usize, capacity: Option<usize>) -> Self {
        assert!(lanes > 0, "IngressLanes needs at least one lane");
        assert!(
            capacity != Some(0),
            "lane capacity must be at least 1 (use None for unbounded)"
        );
        let lane_vec = (0..lanes)
            .map(|_| CachePadded::new(Mutex::new(Vec::new())))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        IngressLanes {
            shared: Arc::new(IngressShared {
                lanes: lane_vec,
                capacity,
                queued: AtomicU64::new(0),
                producers: AtomicUsize::new(0),
                next_lane: AtomicUsize::new(0),
                gate: AtomicU8::new(GATE_OPEN),
                parker: Parker::new(lanes),
            }),
        }
    }

    /// Number of lanes (== places of the pool this feeds).
    pub fn num_lanes(&self) -> usize {
        self.shared.lanes.len()
    }

    /// The per-lane capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity
    }

    /// Mints a new producer handle, raising the producer refcount. The
    /// handle starts on a different lane than the previous one so
    /// producers spread across lanes even if each submits little.
    ///
    /// **Contract:** mint every producer's handle *before* the streamed
    /// run it feeds starts (mid-run producers clone a live handle
    /// instead). A run terminates the moment it observes zero producers
    /// and nothing queued; a handle minted concurrently with that
    /// observation re-arms the lanes for a *subsequent* run — its
    /// submissions stay queued (visible via [`IngressLanes::queued`]) and
    /// are only drained by the next `run_stream` over these lanes, or
    /// dropped with them.
    pub fn handle(&self) -> IngestHandle<T> {
        self.shared.producers.fetch_add(1, Ordering::AcqRel);
        let lane = self.shared.next_lane.fetch_add(1, Ordering::Relaxed) % self.num_lanes();
        IngestHandle {
            shared: Arc::clone(&self.shared),
            lane,
        }
    }

    /// Tasks submitted but not yet transferred into a pool.
    pub fn queued(&self) -> u64 {
        self.shared.queued.load(Ordering::Acquire)
    }

    /// Live producer handles.
    pub fn producers(&self) -> usize {
        self.shared.producers.load(Ordering::Acquire)
    }

    /// The shared state, for the scheduler/service side.
    pub(crate) fn shared(&self) -> &Arc<IngressShared<T>> {
        &self.shared
    }
}

/// A producer's capability to submit tasks into a running pool.
///
/// Cloneable; each clone counts toward the producer refcount that gates
/// streamed termination (see module docs). Drop every handle when the
/// producer side is done — a retained handle keeps
/// [`crate::Scheduler::run_stream`] (deliberately) waiting for more input.
///
/// Submission comes in shedding ([`IngestHandle::try_submit`] /
/// [`IngestHandle::try_submit_batch`]) and blocking
/// ([`IngestHandle::submit`] / [`IngestHandle::submit_batch`]) flavors;
/// on unbounded lanes the two coincide (only abort/shutdown can fail).
pub struct IngestHandle<T: Send> {
    shared: Arc<IngressShared<T>>,
    /// Lane cursor, advanced round-robin per submission.
    lane: usize,
}

impl<T: Send> IngestHandle<T> {
    /// Attempts to submit one task with priority `prio` (smaller =
    /// higher) and relaxation bound `k` (§2.2). Tries the next
    /// round-robin lane first, then every other lane; if all are at
    /// capacity (or the pool aborted / shut down) the task is handed
    /// back in the error.
    pub fn try_submit(&mut self, prio: u64, k: usize, task: T) -> Result<(), SubmitError<T>> {
        match self.shared.gate() {
            GATE_ABORTED => return Err(SubmitError::Aborted(task)),
            GATE_SHUT_DOWN => return Err(SubmitError::ShutDown(task)),
            _ => {}
        }
        let n_lanes = self.shared.lanes.len();
        let start = self.advance();
        for i in 0..n_lanes {
            let idx = (start + i) % n_lanes;
            let mut lane = self.shared.lanes[idx].lock();
            if self.shared.capacity.is_some_and(|cap| lane.len() >= cap) {
                continue;
            }
            lane.push((prio, k, task));
            // Inside the lane critical section: a quiescence check can
            // never observe the queued count and the lane contents out of
            // step by more than the producer refcount already covers.
            self.shared.queued.fetch_add(1, Ordering::AcqRel);
            drop(lane);
            self.shared.parker.wake_worker(idx);
            return Ok(());
        }
        Err(SubmitError::Full(task))
    }

    /// Submits one task, **blocking** (parking, not spinning) while every
    /// lane is at capacity until a worker's drain frees room. Returns the
    /// task back in `Err` only if the pool aborted or shut down — a live
    /// pool always accepts eventually.
    pub fn submit(&mut self, prio: u64, k: usize, mut task: T) -> Result<(), SubmitError<T>> {
        loop {
            match self.try_submit(prio, k, task) {
                Ok(()) => return Ok(()),
                Err(SubmitError::Full(t)) => {
                    // Register → re-check → park: a drain between the
                    // failed attempt and the registration would otherwise
                    // be a lost wakeup. (The Arc clone decouples the slot
                    // borrow from `self` for the re-check.)
                    let shared = Arc::clone(&self.shared);
                    let space = shared.parker.space();
                    let token = space.prepare();
                    match self.try_submit(prio, k, t) {
                        Ok(()) => {
                            space.cancel();
                            return Ok(());
                        }
                        Err(SubmitError::Full(t)) => {
                            space.park(token);
                            task = t;
                        }
                        Err(other) => {
                            space.cancel();
                            return Err(other);
                        }
                    }
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Attempts to submit a batch of `(prio, task)` pairs sharing the
    /// relaxation bound `k`. The whole batch rides one lane — one lock
    /// acquisition — and is later transferred into the pool with one
    /// [`PoolHandle::push_batch`], each element charged individually
    /// against the `k`/ρ bounds.
    ///
    /// All-or-nothing: on success `batch` is drained; on error it is
    /// untouched (every rejected item handed back). A batch larger than
    /// the lane capacity can never fit and always returns
    /// [`SubmitError::Full`] — chunk it, or use the blocking
    /// [`IngestHandle::submit_batch`], which chunks internally.
    pub fn try_submit_batch(
        &mut self,
        k: usize,
        batch: &mut Vec<(u64, T)>,
    ) -> Result<(), SubmitError> {
        if batch.is_empty() {
            return Ok(());
        }
        match self.shared.gate() {
            GATE_ABORTED => return Err(SubmitError::Aborted(())),
            GATE_SHUT_DOWN => return Err(SubmitError::ShutDown(())),
            _ => {}
        }
        let n_lanes = self.shared.lanes.len();
        let start = self.advance();
        for i in 0..n_lanes {
            let idx = (start + i) % n_lanes;
            let mut lane = self.shared.lanes[idx].lock();
            if self
                .shared
                .capacity
                .is_some_and(|cap| cap - lane.len().min(cap) < batch.len())
            {
                continue;
            }
            self.shared
                .queued
                .fetch_add(batch.len() as u64, Ordering::AcqRel);
            lane.extend(batch.drain(..).map(|(prio, task)| (prio, k, task)));
            drop(lane);
            self.shared.parker.wake_worker(idx);
            return Ok(());
        }
        Err(SubmitError::Full(()))
    }

    /// Submits a batch, **blocking** while the lanes are full. Batches
    /// larger than the lane capacity are split into capacity-sized chunks
    /// (chunks are taken from the back of `batch`; the submitted multiset
    /// is exactly `batch`'s contents). On `Err` (abort/shutdown) every
    /// not-yet-submitted item is handed back in `batch`, in unspecified
    /// order.
    pub fn submit_batch(&mut self, k: usize, batch: &mut Vec<(u64, T)>) -> Result<(), SubmitError> {
        let chunk_cap = self.shared.capacity.unwrap_or(usize::MAX);
        while !batch.is_empty() {
            let n = batch.len().min(chunk_cap);
            let mut chunk = batch.split_off(batch.len() - n);
            loop {
                match self.try_submit_batch(k, &mut chunk) {
                    Ok(()) => break,
                    Err(SubmitError::Full(())) => {
                        let shared = Arc::clone(&self.shared);
                        let space = shared.parker.space();
                        let token = space.prepare();
                        match self.try_submit_batch(k, &mut chunk) {
                            Ok(()) => {
                                space.cancel();
                                break;
                            }
                            Err(SubmitError::Full(())) => space.park(token),
                            Err(other) => {
                                space.cancel();
                                batch.append(&mut chunk);
                                return Err(other);
                            }
                        }
                    }
                    Err(other) => {
                        batch.append(&mut chunk);
                        return Err(other);
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of lanes this handle shards over.
    pub fn num_lanes(&self) -> usize {
        self.shared.lanes.len()
    }

    /// Wraps this handle for async submission: the same producer slot,
    /// with `Full` mapped to `Poll::Pending` instead of a parked thread.
    /// See [`crate::async_ingest::AsyncIngestHandle`].
    pub fn into_async(self) -> crate::async_ingest::AsyncIngestHandle<T> {
        crate::async_ingest::AsyncIngestHandle::new(self)
    }

    /// The shared ingress state (async futures park their wakers on its
    /// parking fabric).
    pub(crate) fn shared(&self) -> &Arc<IngressShared<T>> {
        &self.shared
    }

    /// The per-lane capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity
    }

    fn advance(&mut self) -> usize {
        let lane = self.lane;
        self.lane = (self.lane + 1) % self.shared.lanes.len();
        lane
    }
}

impl<T: Send> Clone for IngestHandle<T> {
    fn clone(&self) -> Self {
        self.shared.producers.fetch_add(1, Ordering::AcqRel);
        let lane = self.shared.next_lane.fetch_add(1, Ordering::Relaxed) % self.shared.lanes.len();
        IngestHandle {
            shared: Arc::clone(&self.shared),
            lane,
        }
    }
}

impl<T: Send> Drop for IngestHandle<T> {
    fn drop(&mut self) {
        if self.shared.producers.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Producer count hit zero — a quiescence ingredient flipped;
            // parked workers and join waiters must re-check.
            self.shared.parker.wake_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::PlaceStats;

    /// Minimal recording handle: pushes append, pops unsupported.
    #[derive(Default)]
    struct RecordingHandle {
        pushed: Vec<(u64, usize, u64)>,
        batches: Vec<usize>,
    }

    impl PoolHandle<u64> for RecordingHandle {
        fn push(&mut self, prio: u64, k: usize, task: u64) {
            self.pushed.push((prio, k, task));
        }
        fn pop_entry(&mut self) -> Option<(u64, u64)> {
            None
        }
        fn push_batch(&mut self, k: usize, batch: &mut Vec<(u64, u64)>) {
            self.batches.push(batch.len());
            for (prio, task) in batch.drain(..) {
                self.pushed.push((prio, k, task));
            }
        }
        fn stats(&self) -> PlaceStats {
            PlaceStats::default()
        }
    }

    #[test]
    fn producer_refcount_tracks_handles() {
        let lanes: IngressLanes<u64> = IngressLanes::new(2);
        assert_eq!(lanes.producers(), 0);
        let h1 = lanes.handle();
        let h2 = h1.clone();
        assert_eq!(lanes.producers(), 2);
        drop(h1);
        assert_eq!(lanes.producers(), 1);
        drop(h2);
        assert_eq!(lanes.producers(), 0);
        assert!(lanes.shared().quiescent());
    }

    #[test]
    fn submissions_round_robin_across_lanes() {
        let lanes: IngressLanes<u64> = IngressLanes::new(4);
        let mut h = lanes.handle();
        for i in 0..8u64 {
            h.submit(i, 4, i).unwrap();
        }
        assert_eq!(lanes.queued(), 8);
        // Every lane received exactly two scalar submissions.
        for lane in 0..4 {
            assert_eq!(lanes.shared().lanes[lane].lock().len(), 2, "lane {lane}");
        }
    }

    #[test]
    fn batch_rides_one_lane_and_drains_grouped_by_k() {
        let lanes: IngressLanes<u64> = IngressLanes::new(2);
        let mut h = lanes.handle();
        let mut batch = vec![(1u64, 10u64), (2, 20)];
        h.submit_batch(8, &mut batch).unwrap();
        assert!(batch.is_empty());
        // A second batch with a different k lands on the other lane; put it
        // on the same lane by submitting twice (round-robin wraps).
        let mut batch = vec![(3u64, 30u64)];
        h.submit_batch(16, &mut batch).unwrap();
        let mut b2 = vec![(4u64, 40u64)];
        h.submit_batch(16, &mut b2).unwrap();
        assert_eq!(lanes.queued(), 4);

        let pending = AtomicU64::new(0);
        let mut rec = RecordingHandle::default();
        let (mut scratch, mut kbatch) = (Vec::new(), Vec::new());
        let n0 = lanes
            .shared()
            .drain_into(0, &mut rec, &pending, &mut scratch, &mut kbatch);
        let n1 = lanes
            .shared()
            .drain_into(1, &mut rec, &pending, &mut scratch, &mut kbatch);
        assert_eq!((n0, n1), (3, 1), "round-robin: lanes 0, 1, 0");
        assert_eq!(pending.load(Ordering::Relaxed), 4);
        assert_eq!(lanes.queued(), 0);
        let mut tasks: Vec<(u64, usize, u64)> = rec.pushed.clone();
        tasks.sort();
        assert_eq!(
            tasks,
            vec![(1, 8, 10), (2, 8, 20), (3, 16, 30), (4, 16, 40)]
        );
        // Lane 0 held the k=8 pair then the second k=16 single; the k-run
        // grouping must split exactly at the k change, never merge across
        // it: lane 0 drains as batches [2, 1], lane 1 as [1].
        assert_eq!(rec.batches, vec![2, 1, 1]);
    }

    #[test]
    fn drain_reports_empty_lane_as_zero() {
        let lanes: IngressLanes<u64> = IngressLanes::new(1);
        let pending = AtomicU64::new(0);
        let mut rec = RecordingHandle::default();
        let (mut scratch, mut kbatch) = (Vec::new(), Vec::new());
        assert_eq!(
            lanes
                .shared()
                .drain_into(0, &mut rec, &pending, &mut scratch, &mut kbatch),
            0
        );
        assert_eq!(pending.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn quiescent_requires_both_empty_lanes_and_no_producers() {
        let lanes: IngressLanes<u64> = IngressLanes::new(1);
        assert!(lanes.shared().quiescent());
        let mut h = lanes.handle();
        assert!(
            !lanes.shared().quiescent(),
            "live producer blocks quiescence"
        );
        h.submit(1, 4, 1).unwrap();
        drop(h);
        assert!(
            !lanes.shared().quiescent(),
            "queued task blocks quiescence even with no producers"
        );
        let pending = AtomicU64::new(0);
        let mut rec = RecordingHandle::default();
        let (mut scratch, mut kbatch) = (Vec::new(), Vec::new());
        lanes
            .shared()
            .drain_into(0, &mut rec, &pending, &mut scratch, &mut kbatch);
        assert!(lanes.shared().quiescent());
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = IngressLanes::<u64>::new(0);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        let _ = IngressLanes::<u64>::with_capacity(2, Some(0));
    }

    #[test]
    fn try_submit_sheds_at_capacity_and_hands_the_task_back() {
        let lanes: IngressLanes<u64> = IngressLanes::with_capacity(2, Some(2));
        let mut h = lanes.handle();
        for i in 0..4u64 {
            h.try_submit(i, 4, 100 + i).unwrap();
        }
        // Both lanes now hold 2 tasks each: every further scalar submit
        // must shed, handing back exactly the rejected payload.
        match h.try_submit(9, 4, 999) {
            Err(SubmitError::Full(task)) => assert_eq!(task, 999),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(lanes.queued(), 4, "a shed submission must not count");
        // A batch that cannot fit any lane is handed back untouched.
        let mut batch = vec![(1u64, 7u64), (2, 8)];
        assert_eq!(
            h.try_submit_batch(4, &mut batch),
            Err(SubmitError::Full(()))
        );
        assert_eq!(batch, vec![(1, 7), (2, 8)], "batch handed back intact");
        // Draining one lane frees room for exactly the lane capacity.
        let pending = AtomicU64::new(0);
        let mut rec = RecordingHandle::default();
        let (mut scratch, mut kbatch) = (Vec::new(), Vec::new());
        assert_eq!(
            lanes
                .shared()
                .drain_into(0, &mut rec, &pending, &mut scratch, &mut kbatch),
            2
        );
        assert_eq!(h.try_submit_batch(4, &mut batch), Ok(()));
        assert!(batch.is_empty());
        // Accepted multiset is exactly {100..104} ∪ {7, 8}: nothing lost,
        // the shed 999 never entered.
        while lanes
            .shared()
            .drain_into(0, &mut rec, &pending, &mut scratch, &mut kbatch)
            + lanes
                .shared()
                .drain_into(1, &mut rec, &pending, &mut scratch, &mut kbatch)
            > 0
        {}
        let mut got: Vec<u64> = rec.pushed.iter().map(|&(_, _, t)| t).collect();
        got.sort_unstable();
        assert_eq!(got, vec![7, 8, 100, 101, 102, 103]);
    }

    #[test]
    fn oversized_batch_is_full_even_on_empty_lanes() {
        let lanes: IngressLanes<u64> = IngressLanes::with_capacity(2, Some(2));
        let mut h = lanes.handle();
        let mut batch = vec![(1u64, 1u64), (2, 2), (3, 3)];
        assert_eq!(
            h.try_submit_batch(4, &mut batch),
            Err(SubmitError::Full(()))
        );
        assert_eq!(batch.len(), 3);
        // The blocking variant chunks it instead (2 lanes × cap 2 ≥ 3).
        h.submit_batch(4, &mut batch).unwrap();
        assert!(batch.is_empty());
        assert_eq!(lanes.queued(), 3);
    }

    #[test]
    fn aborted_lanes_reject_with_the_task_handed_back() {
        let lanes: IngressLanes<String> = IngressLanes::new(1);
        let mut h = lanes.handle();
        h.submit(1, 4, "before".into()).unwrap();
        lanes.shared().abort_and_wake();
        match h.try_submit(2, 4, "after".into()) {
            Err(SubmitError::Aborted(task)) => assert_eq!(task, "after"),
            other => panic!("expected Aborted, got {other:?}"),
        }
        assert!(h.submit(2, 4, "after".into()).is_err());
        let mut batch = vec![(1u64, "x".to_string())];
        assert_eq!(
            h.try_submit_batch(4, &mut batch),
            Err(SubmitError::Aborted(()))
        );
        assert_eq!(batch.len(), 1, "batch handed back");
        assert_eq!(h.submit_batch(4, &mut batch), Err(SubmitError::Aborted(())));
        assert_eq!(batch.len(), 1, "blocking batch handed back on abort");
        // Shutdown wins over abort in reporting once raised.
        lanes.shared().shut_down_and_wake();
        assert_eq!(
            h.try_submit(3, 4, "z".into()).unwrap_err().kind(),
            SubmitError::ShutDown(())
        );
    }

    #[test]
    fn blocking_submit_parks_until_a_drain_frees_space() {
        let lanes: IngressLanes<u64> = IngressLanes::with_capacity(1, Some(1));
        let mut h = lanes.handle();
        h.submit(0, 4, 0).unwrap(); // lane now full
        let shared = Arc::clone(lanes.shared());
        let producer = std::thread::spawn(move || {
            let mut h = h;
            // Blocks until the drainer below frees the lane.
            h.submit(1, 4, 1).unwrap();
            drop(h);
        });
        // Drain until both tasks came through (the producer may need a
        // couple of free-ups depending on interleaving).
        let pending = AtomicU64::new(0);
        let mut rec = RecordingHandle::default();
        let (mut scratch, mut kbatch) = (Vec::new(), Vec::new());
        while rec.pushed.len() < 2 {
            shared.drain_into(0, &mut rec, &pending, &mut scratch, &mut kbatch);
            std::thread::yield_now();
        }
        producer.join().unwrap();
        let mut got: Vec<u64> = rec.pushed.iter().map(|&(_, _, t)| t).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn blocked_producer_is_woken_into_abort_error() {
        let lanes: IngressLanes<u64> = IngressLanes::with_capacity(1, Some(1));
        let mut h = lanes.handle();
        h.submit(0, 4, 0).unwrap();
        let started = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let producer = {
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                let mut h = h;
                started.store(true, Ordering::Release);
                // Parks (lane full, nobody drains) until the abort below.
                let err = h.submit(1, 4, 1).unwrap_err();
                assert!(matches!(err, SubmitError::Aborted(1)));
            })
        };
        while !started.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        lanes.shared().abort_and_wake();
        producer.join().unwrap();
    }

    /// The read-order argument, raced: producer, drainer, and a checker
    /// interleave freely; whenever the checker observes quiescence, every
    /// submitted task must already be charged to the pending counter —
    /// i.e. at no instant is a task invisible to both counters.
    #[test]
    fn counters_never_hide_a_task_mid_transfer() {
        const N: u64 = 2_000;
        let lanes: IngressLanes<u64> = IngressLanes::new(1);
        let pending = Arc::new(AtomicU64::new(0));
        let shared = Arc::clone(lanes.shared());
        std::thread::scope(|s| {
            let mut h = lanes.handle();
            s.spawn(move || {
                for i in 0..N {
                    h.submit(i, 4, i).unwrap();
                    if i % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
                // Dropping `h` here is the producers' "no more input".
            });
            let drain_shared = Arc::clone(&shared);
            let drain_pending = Arc::clone(&pending);
            s.spawn(move || {
                let mut rec = RecordingHandle::default();
                let (mut scratch, mut kbatch) = (Vec::new(), Vec::new());
                let mut got = 0;
                while got < N {
                    got += drain_shared.drain_into(
                        0,
                        &mut rec,
                        &drain_pending,
                        &mut scratch,
                        &mut kbatch,
                    );
                }
                assert_eq!(rec.pushed.len() as u64, N);
            });
            let check_shared = Arc::clone(&shared);
            let check_pending = Arc::clone(&pending);
            s.spawn(move || loop {
                // Module-docs read order: producers, then queued (inside
                // `quiescent`), then pending last.
                if check_shared.quiescent() {
                    assert_eq!(
                        check_pending.load(Ordering::Acquire),
                        N,
                        "quiescence observed before every task was charged \
                         to the pending counter"
                    );
                    break;
                }
                std::hint::spin_loop();
            });
        });
    }
}
