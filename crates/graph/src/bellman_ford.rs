//! Bellman–Ford reference implementation.
//!
//! Structurally unrelated to Dijkstra (no priority queue, fixed-point edge
//! sweeps), so it serves as an independent oracle for differential testing
//! of both the sequential baseline and the parallel SSSP application.

use crate::csr::CsrGraph;
use crate::INFINITY;

/// Single-source shortest paths by repeated full edge relaxation.
///
/// O(n·m); only used in tests and small examples.
///
/// # Panics
/// Panics if `source` is not a node of `graph`.
pub fn bellman_ford(graph: &CsrGraph, source: u32) -> Vec<f64> {
    let n = graph.num_nodes();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![INFINITY; n];
    dist[source as usize] = 0.0;
    // Positive weights: at most n-1 sweeps are needed; stop early on a
    // fixed point.
    for _ in 0..n {
        let mut changed = false;
        for u in 0..n as u32 {
            let du = dist[u as usize];
            if !du.is_finite() {
                continue;
            }
            for e in graph.neighbors(u) {
                let nd = du + e.weight as f64;
                if nd < dist[e.target as usize] {
                    dist[e.target as usize] = nd;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use crate::gen::{erdos_renyi, ErdosRenyiConfig};

    #[test]
    fn simple_path() {
        let g = CsrGraph::from_undirected_edges(3, &[(0, 1, 1.5), (1, 2, 2.5)]);
        assert_eq!(bellman_ford(&g, 0), vec![0.0, 1.5, 4.0]);
    }

    #[test]
    fn agrees_with_dijkstra_on_random_graphs() {
        for seed in 0..5 {
            let g = erdos_renyi(&ErdosRenyiConfig {
                n: 150,
                p: 0.08,
                seed,
            });
            let bf = bellman_ford(&g, 0);
            let dj = dijkstra(&g, 0).dist;
            // Both take min over identical f64 path sums; must match exactly.
            assert_eq!(bf, dj, "seed {seed}");
        }
    }

    #[test]
    fn disconnected_component_unreached() {
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let d = bellman_ford(&g, 3);
        assert!(d[0].is_infinite());
        assert_eq!(d[2], 1.0);
        assert_eq!(d[3], 0.0);
    }
}
