#![warn(missing_docs)]

//! First-class workloads for the priority scheduler.
//!
//! The paper evaluates its ρ-relaxed structures on one application (SSSP,
//! §5); related work judges relaxed schedulers on scenario *breadth* —
//! Multi-Queues across SSSP/BFS/MST-style kernels, INSPIRIT per-workload
//! priority policies in task-based runtimes. This crate makes every
//! scenario in the repo a verifiable, benchmarkable citizen instead of a
//! one-off example:
//!
//! * [`SsspWorkload`] — the paper's evaluation application (§5.1);
//! * [`BfsWorkload`] — unit-weight BFS à la the Multi-Queues evaluation:
//!   dense equal-priority frontiers, verified against sequential BFS;
//! * [`CholeskyWorkload`] — tile Cholesky as a prioritized task DAG, the
//!   introduction's motivating "algorithms-by-blocks" use case \[16\];
//! * [`KnapsackWorkload`] — best-first branch-and-bound, where pruned
//!   subtrees are exactly the paper's dead tasks (§5.1);
//! * [`MoSsspWorkload`] — bi-objective label-correcting shortest paths,
//!   the conclusion's multi-objective future-work direction;
//! * [`MstWorkload`] — minimum spanning tree à la the Multi-Queues
//!   evaluation: order-insensitive component merging (cut property), so
//!   the unique-MSF oracle check stays exact under ρ-relaxed pops.
//!
//! # The `Workload` contract
//!
//! A [`Workload`] is a fixed problem instance plus its sequential oracle:
//! it builds a fresh [`TaskExecutor`] per run, seeds root tasks, and — after
//! the scheduler drains — checks the executor's final state against the
//! oracle. [`run_workload`] drives one `(kind, places, params)` cell
//! through [`priosched_core::run_on_kind`] and folds everything into a
//! [`WorkloadReport`]; [`run_workload_streamed`] drives the same cell
//! open-world — the seeds travel through sharded ingestion lanes from N
//! producer threads while the pool is already draining — and the *same*
//! oracle verifies the result, so the streamed path earns the identical
//! correctness guarantee for free. The oracle is computed once at
//! construction, so a sweep re-verifies every run at the cost of a
//! comparison, not a re-solve.
//!
//! Verification is not optional decoration: a relaxed structure that drops
//! or reorders beyond its ρ bound produces *wrong answers* here (missing
//! distances, a non-optimal knapsack value, an incomplete Pareto front),
//! not just slower runs. The `oracle_matrix` integration test pins every
//! workload × every [`PoolKind`] × {1, 4} places to its oracle.
//!
//! Sweeping is the job of the `schedbench` binary in `priosched-bench`,
//! which iterates [`DynWorkload`] trait objects over workload × kind ×
//! places × k × spawn-chunk and emits `BENCH_*.json`-format records.

pub mod bfs;
pub mod cholesky;
pub mod knapsack;
pub mod mo_sssp;
pub mod mst;
pub mod sssp;

pub use bfs::BfsWorkload;
pub use cholesky::CholeskyWorkload;
pub use knapsack::KnapsackWorkload;
pub use mo_sssp::MoSsspWorkload;
pub use mst::MstWorkload;
pub use sssp::SsspWorkload;

use priosched_core::stats::PlaceStats;
use priosched_core::{
    run_on_kind, run_stream_on_kind, IngressLanes, PoolKind, PoolParams, RunStats, TaskExecutor,
};
use std::time::Duration;

/// A schedulable, verifiable benchmark scenario.
///
/// Implementations hold the *instance* (input data) and its precomputed
/// sequential oracle; per-run mutable state lives in the executor so one
/// workload value can be swept across structures and place counts.
pub trait Workload {
    /// Task type flowing through the pool.
    type Task: Send + 'static;
    /// Per-run executor (application state); may borrow the instance.
    type Exec<'w>: TaskExecutor<Self::Task> + Sync
    where
        Self: 'w;

    /// Stable identifier (snake case; used in report ids and CLI flags).
    fn name(&self) -> &'static str;

    /// Builds a fresh executor for one run. `params.k` is the relaxation
    /// bound the executor should pass with its spawns — the same value
    /// [`run_workload`] routes into pool construction, so the two can
    /// never diverge.
    fn executor(&self, params: &PoolParams) -> Self::Exec<'_>;

    /// Root tasks as `(priority, k, task)` triples.
    fn seed(&self, exec: &Self::Exec<'_>, params: &PoolParams) -> Vec<(u64, usize, Self::Task)>;

    /// Checks the executor's final state against the sequential oracle.
    fn verify(&self, exec: &Self::Exec<'_>, run: &RunStats) -> Result<(), String>;

    /// Workload-specific scalar metrics for the report (e.g. nodes
    /// relaxed, max factorization error).
    fn metrics(&self, _exec: &Self::Exec<'_>, _run: &RunStats) -> Vec<(&'static str, f64)> {
        Vec::new()
    }
}

/// Outcome of one verified workload run.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// [`Workload::name`] of the workload that ran.
    pub workload: &'static str,
    /// Structure the run used.
    pub kind: PoolKind,
    /// Place count of the run.
    pub places: usize,
    /// Structure parameters of the run.
    pub params: PoolParams,
    /// Tasks executed (dead tasks excluded).
    pub executed: u64,
    /// Tasks eliminated as dead at pop time (§5.1).
    pub dead: u64,
    /// Wall-clock time of the scheduled run.
    pub elapsed: Duration,
    /// Summed data-structure counters over all places.
    pub pool: PlaceStats,
    /// Oracle verdict: `Err` carries a description of the mismatch.
    pub verify: Result<(), String>,
    /// Workload-specific metrics.
    pub metrics: Vec<(&'static str, f64)>,
}

impl WorkloadReport {
    /// `true` when the run matched its sequential oracle.
    pub fn verified(&self) -> bool {
        self.verify.is_ok()
    }

    /// Panics with full context when the run failed verification.
    pub fn expect_verified(&self) -> &Self {
        if let Err(e) = &self.verify {
            panic!(
                "{} on {} (P={}, k={}): oracle mismatch: {e}",
                self.workload, self.kind, self.places, self.params.k
            );
        }
        self
    }

    /// One record in the committed `BENCH_*.json` format (`group`/`id`/
    /// `mean_ns`/`min_ns`/`max_ns`/`elements`); a single run reports its
    /// elapsed time as mean = min = max.
    pub fn json_record(&self) -> String {
        bench_record(std::slice::from_ref(self), "")
    }
}

/// Aggregates repeated runs of one sweep cell into a single record in the
/// committed `BENCH_*.json` format (`group`/`id`/`mean_ns`/`min_ns`/
/// `max_ns`/`elements`). All reports must come from the same cell;
/// `id_suffix` extends the id with extra axes (e.g. `"_c8"` for a
/// spawn-chunk tag). This is the **only** definition of the record shape —
/// `schedbench` and single-run callers both go through it.
///
/// # Panics
/// Panics on an empty slice.
pub fn bench_record(reports: &[WorkloadReport], id_suffix: &str) -> String {
    let first = reports
        .first()
        .expect("bench_record needs at least one run");
    let ns: Vec<f64> = reports
        .iter()
        .map(|r| r.elapsed.as_nanos() as f64)
        .collect();
    let mean = ns.iter().sum::<f64>() / ns.len() as f64;
    let min = ns.iter().copied().fold(f64::INFINITY, f64::min);
    let max = ns.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    format!(
        "{{\"group\": \"schedbench_{}\", \"id\": \"{}/p{}_k{}{id_suffix}\", \
         \"mean_ns\": {mean:.1}, \"min_ns\": {min:.1}, \"max_ns\": {max:.1}, \
         \"elements\": {}}}",
        first.workload,
        first.kind.id(),
        first.places,
        first.params.k,
        first.executed
    )
}

/// Runs `workload` once on a fresh pool of `kind` and verifies the result.
///
/// The same `params` value configures the pool (structural `k`,
/// centralized `kmax`) *and* the executor's per-task `k` — the
/// anti-knob-drop guarantee the workload layer is built on.
pub fn run_workload<W: Workload + ?Sized>(
    workload: &W,
    kind: PoolKind,
    places: usize,
    params: PoolParams,
) -> WorkloadReport {
    let exec = workload.executor(&params);
    let roots = workload.seed(&exec, &params);
    let run = run_on_kind(kind, places, params, &exec, roots);
    let verify = workload.verify(&exec, &run);
    let metrics = workload.metrics(&exec, &run);
    WorkloadReport {
        workload: workload.name(),
        kind,
        places,
        params,
        executed: run.executed,
        dead: run.dead,
        elapsed: run.elapsed,
        pool: run.pool,
        verify,
        metrics,
    }
}

/// Streamed variant of [`run_workload`]: the instance's seeds reach the
/// pool through sharded ingestion instead of being preseeded as roots.
///
/// The seeds are split round-robin over `producers` external threads; each
/// producer submits its share through its own
/// [`priosched_core::IngestHandle`] in chunks of `chunk` tasks (one lane
/// lock per chunk; `0` means one chunk per producer), concurrently with
/// the pool draining. With `params.lane_capacity` set the lanes are
/// bounded and producers use the *blocking* submit path — they park under
/// backpressure until the workers drain room — so a small capacity
/// exercises the full shed/park/wake machinery without changing the
/// semantics. The run returns at quiescence and is verified against the
/// same sequential oracle as a preseeded run — which is the point: the
/// oracle must not be able to tell the sharded (or backpressured) path
/// apart.
pub fn run_workload_streamed<W: Workload + ?Sized>(
    workload: &W,
    kind: PoolKind,
    places: usize,
    params: PoolParams,
    producers: usize,
    chunk: usize,
) -> WorkloadReport {
    assert!(producers > 0, "streamed runs need at least one producer");
    let exec = workload.executor(&params);
    let seeds = workload.seed(&exec, &params);
    let mut shards: Vec<Vec<(u64, usize, W::Task)>> = (0..producers).map(|_| Vec::new()).collect();
    for (i, seed) in seeds.into_iter().enumerate() {
        shards[i % producers].push(seed);
    }
    let ingress = IngressLanes::with_capacity(places, params.lane_capacity);
    let run = std::thread::scope(|s| {
        // Handles are minted before the streamed run starts (a run that
        // observes zero producers terminates); each producer thread owns
        // one and drops it when its shard is fully submitted. Blocking
        // submits park under backpressure; `Err` only means the run
        // aborted (a task panicked), in which case the producer stops —
        // the unwind is re-raised by `run_stream_on_kind` itself.
        for shard in shards {
            let mut handle = ingress.handle();
            s.spawn(move || {
                let mut batch: Vec<(u64, W::Task)> = Vec::new();
                let mut batch_k: Option<usize> = None;
                for (prio, k, task) in shard {
                    if batch_k != Some(k) || (chunk > 0 && batch.len() >= chunk) {
                        if let Some(prev_k) = batch_k {
                            if handle.submit_batch(prev_k, &mut batch).is_err() {
                                return;
                            }
                        }
                        batch_k = Some(k);
                    }
                    batch.push((prio, task));
                }
                if let Some(prev_k) = batch_k {
                    let _ = handle.submit_batch(prev_k, &mut batch);
                }
            });
        }
        run_stream_on_kind(kind, places, params, &exec, Vec::new(), &ingress)
    });
    let verify = workload.verify(&exec, &run);
    let metrics = workload.metrics(&exec, &run);
    WorkloadReport {
        workload: workload.name(),
        kind,
        places,
        params,
        executed: run.executed,
        dead: run.dead,
        elapsed: run.elapsed,
        pool: run.pool,
        verify,
        metrics,
    }
}

/// Object-safe view over [`Workload`], so heterogeneous workloads (whose
/// task types differ) can share one sweep loop.
pub trait DynWorkload {
    /// [`Workload::name`] of the underlying workload.
    fn name(&self) -> &'static str;
    /// Runs one `(kind, places, params)` cell (see [`run_workload`]).
    fn run(&self, kind: PoolKind, places: usize, params: PoolParams) -> WorkloadReport;
    /// Runs one streamed cell: seeds fed through `producers` ingestion
    /// threads in chunks of `chunk` (see [`run_workload_streamed`]).
    fn run_streamed(
        &self,
        kind: PoolKind,
        places: usize,
        params: PoolParams,
        producers: usize,
        chunk: usize,
    ) -> WorkloadReport;
}

impl<W: Workload> DynWorkload for W {
    fn name(&self) -> &'static str {
        Workload::name(self)
    }

    fn run(&self, kind: PoolKind, places: usize, params: PoolParams) -> WorkloadReport {
        run_workload(self, kind, places, params)
    }

    fn run_streamed(
        &self,
        kind: PoolKind,
        places: usize,
        params: PoolParams,
        producers: usize,
        chunk: usize,
    ) -> WorkloadReport {
        run_workload_streamed(self, kind, places, params, producers, chunk)
    }
}

/// Deterministic xorshift64 used by the instance generators (kept local so
/// instances are reproducible bit-for-bit across sessions).
#[derive(Clone, Copy, Debug)]
pub(crate) struct SplitRng(pub u64);

impl SplitRng {
    pub fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform float in `(-0.5, 0.5)`.
    pub fn next_centered(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_record_matches_bench_format() {
        let report = WorkloadReport {
            workload: "sssp",
            kind: PoolKind::Hybrid,
            places: 4,
            params: PoolParams::with_k(64),
            executed: 123,
            dead: 1,
            elapsed: Duration::from_micros(1500),
            pool: PlaceStats::default(),
            verify: Ok(()),
            metrics: Vec::new(),
        };
        let rec = report.json_record();
        assert!(rec.contains("\"group\": \"schedbench_sssp\""), "{rec}");
        assert!(rec.contains("\"id\": \"hybrid/p4_k64\""), "{rec}");
        assert!(rec.contains("\"mean_ns\": 1500000.0"), "{rec}");
        assert!(rec.contains("\"elements\": 123"), "{rec}");
    }

    #[test]
    #[should_panic(expected = "oracle mismatch")]
    fn expect_verified_panics_on_mismatch() {
        let report = WorkloadReport {
            workload: "sssp",
            kind: PoolKind::Hybrid,
            places: 4,
            params: PoolParams::default(),
            executed: 0,
            dead: 0,
            elapsed: Duration::ZERO,
            pool: PlaceStats::default(),
            verify: Err("distances diverge".into()),
            metrics: Vec::new(),
        };
        report.expect_verified();
    }
}
