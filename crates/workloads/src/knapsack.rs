//! Best-first branch-and-bound 0/1 knapsack as a [`Workload`].
//!
//! The paper motivates priority scheduling with applications whose task
//! order matters (§1). Branch-and-bound is the classic case: exploring
//! nodes with the best upper bound first finds the optimum sooner and lets
//! bound-based pruning kill most of the tree — and pruned tasks are exactly
//! the paper's *dead tasks* (§5.1), eliminated lazily at pop time.
//!
//! Priorities are `u64::MAX − upper_bound`, so "smaller is better" (the
//! scheduler's convention) prefers the most promising subtree. The oracle
//! is an exact dynamic program over the same instance.

use crate::{SplitRng, Workload};
use priosched_core::{PoolParams, RunStats, SpawnCtx, TaskExecutor};
use std::sync::atomic::{AtomicU64, Ordering};

/// One knapsack item.
#[derive(Clone, Copy, Debug)]
pub struct Item {
    /// Item weight.
    pub weight: u64,
    /// Item value.
    pub value: u64,
}

/// A branch-and-bound node: the next item index to decide, plus the weight
/// and value accumulated so far.
#[derive(Clone, Copy, Debug)]
pub struct Node {
    /// Next item index to decide.
    pub idx: u32,
    /// Weight accumulated so far.
    pub weight: u64,
    /// Value accumulated so far.
    pub value: u64,
}

/// A knapsack instance (density-sorted items + capacity) with its DP
/// optimum as oracle.
pub struct KnapsackWorkload {
    items: Vec<Item>,
    capacity: u64,
    oracle: u64,
}

impl KnapsackWorkload {
    /// Wraps an explicit instance; items are re-sorted by value density
    /// (descending) so the greedy fractional bound is tight, and the exact
    /// DP optimum is computed once as the oracle.
    pub fn new(mut items: Vec<Item>, capacity: u64) -> Self {
        assert!(items.iter().all(|it| it.weight > 0), "zero-weight item");
        items.sort_by(|a, b| (b.value * a.weight).cmp(&(a.value * b.weight)));
        let oracle = dp_optimum(&items, capacity);
        KnapsackWorkload {
            items,
            capacity,
            oracle,
        }
    }

    /// Deterministic pseudo-random instance of `n` items.
    pub fn random(n: usize, capacity: u64, seed: u64) -> Self {
        let mut rng = SplitRng(seed | 1);
        let items = (0..n)
            .map(|_| Item {
                weight: 100 + rng.next() % 400,
                value: 50 + rng.next() % 500,
            })
            .collect();
        Self::new(items, capacity)
    }

    /// The exact optimum this workload verifies against.
    pub fn oracle(&self) -> u64 {
        self.oracle
    }
}

/// Per-run solver state: the incumbent bound.
pub struct KnapsackExec<'w> {
    items: &'w [Item],
    capacity: u64,
    best: AtomicU64,
    k: usize,
}

impl KnapsackExec<'_> {
    /// Greedy fractional upper bound from `node` onward — admissible, so
    /// pruning on it is safe.
    pub fn upper_bound(&self, node: &Node) -> u64 {
        let mut bound = node.value as f64;
        let mut room = (self.capacity - node.weight) as f64;
        for it in &self.items[node.idx as usize..] {
            if room <= 0.0 {
                break;
            }
            let take = (it.weight as f64).min(room);
            bound += take * it.value as f64 / it.weight as f64;
            room -= take;
        }
        bound.ceil() as u64
    }

    /// Scheduler priority of `node` (best bound first).
    pub fn priority(&self, node: &Node) -> u64 {
        u64::MAX - self.upper_bound(node)
    }

    /// The best value found so far.
    pub fn best(&self) -> u64 {
        self.best.load(Ordering::Relaxed)
    }
}

impl TaskExecutor<Node> for KnapsackExec<'_> {
    /// A node whose bound can no longer beat the incumbent is dead.
    fn is_dead(&self, node: &Node) -> bool {
        self.upper_bound(node) <= self.best.load(Ordering::Relaxed)
    }

    fn execute(&self, node: Node, ctx: &mut SpawnCtx<'_, Node>) {
        // Leaf or incumbent update.
        self.best.fetch_max(node.value, Ordering::Relaxed);
        if node.idx as usize == self.items.len() {
            return;
        }
        let item = self.items[node.idx as usize];
        // Branch: include (if it fits), then exclude.
        if node.weight + item.weight <= self.capacity {
            let child = Node {
                idx: node.idx + 1,
                weight: node.weight + item.weight,
                value: node.value + item.value,
            };
            if self.upper_bound(&child) > self.best.load(Ordering::Relaxed) {
                ctx.spawn(self.priority(&child), self.k, child);
            }
        }
        let child = Node {
            idx: node.idx + 1,
            ..node
        };
        if self.upper_bound(&child) > self.best.load(Ordering::Relaxed) {
            ctx.spawn(self.priority(&child), self.k, child);
        }
    }
}

/// Reference solution by dynamic programming (exact, O(n·capacity)).
pub fn dp_optimum(items: &[Item], capacity: u64) -> u64 {
    let mut best = vec![0u64; capacity as usize + 1];
    for it in items {
        for w in (it.weight..=capacity).rev() {
            best[w as usize] = best[w as usize].max(best[(w - it.weight) as usize] + it.value);
        }
    }
    best[capacity as usize]
}

impl Workload for KnapsackWorkload {
    type Task = Node;
    type Exec<'w>
        = KnapsackExec<'w>
    where
        Self: 'w;

    fn name(&self) -> &'static str {
        "knapsack"
    }

    fn executor(&self, params: &PoolParams) -> KnapsackExec<'_> {
        KnapsackExec {
            items: &self.items,
            capacity: self.capacity,
            best: AtomicU64::new(0),
            k: params.k,
        }
    }

    fn seed(&self, exec: &KnapsackExec<'_>, params: &PoolParams) -> Vec<(u64, usize, Node)> {
        let root = Node {
            idx: 0,
            weight: 0,
            value: 0,
        };
        vec![(exec.priority(&root), params.k, root)]
    }

    fn verify(&self, exec: &KnapsackExec<'_>, _run: &RunStats) -> Result<(), String> {
        let found = exec.best();
        if found != self.oracle {
            return Err(format!(
                "branch-and-bound found {found}, DP optimum is {}",
                self.oracle
            ));
        }
        Ok(())
    }

    fn metrics(&self, exec: &KnapsackExec<'_>, run: &RunStats) -> Vec<(&'static str, f64)> {
        // Explored nodes == tasks executed; the scheduler already counts
        // them, so no second per-task counter is kept.
        vec![
            ("explored", run.executed as f64),
            ("pruned_dead", run.dead as f64),
            ("optimum", exec.best() as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use priosched_core::PoolKind;

    #[test]
    fn knapsack_workload_finds_dp_optimum() {
        let w = KnapsackWorkload::random(24, 2_000, 0x1234_5678);
        for k in [1usize, 64] {
            let report = run_workload(&w, PoolKind::Hybrid, 2, PoolParams::with_k(k));
            report.expect_verified();
        }
    }

    #[test]
    fn dp_matches_exhaustive_on_tiny_instance() {
        let items = vec![
            Item {
                weight: 3,
                value: 4,
            },
            Item {
                weight: 2,
                value: 3,
            },
            Item {
                weight: 4,
                value: 5,
            },
        ];
        // Exhaustive check over the 8 subsets: best under capacity 6 is
        // items 1+2 (weight 6, value 8).
        assert_eq!(dp_optimum(&items, 6), 8);
        let w = KnapsackWorkload::new(items, 6);
        assert_eq!(w.oracle(), 8);
        run_workload(&w, PoolKind::WorkStealing, 1, PoolParams::with_k(4)).expect_verified();
    }
}
