//! Network round-trip acceptance: the TCP frontend must deliver exactly
//! the countdown oracle's executions, stay parked while idle, survive
//! protocol abuse, and shut down without aborting in-flight client work.
//!
//! These tests drive a real `Server` over loopback sockets — the same
//! code path as the `priosched-serve` binary, minus the CLI.

use priosched_core::PoolKind;
use priosched_net::{
    load_value, run_load, CountdownExec, LoadSpec, ServeSummary, Server, ServerConfig,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn server(kind: PoolKind, places: usize, lane_capacity: Option<usize>) -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            kind,
            places,
            k: 32,
            lane_capacity,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback")
}

/// One client connection with line-by-line request/reply helpers.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        Client {
            writer: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn request(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("send");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply");
        reply.trim_end().to_string()
    }
}

/// The headline round trip: N connections submit deterministic countdown
/// jobs (scalar and batched), JOIN reports exactly the oracle's execution
/// count, and the shutdown summary agrees — on every structure.
#[test]
fn load_round_trip_matches_oracle_on_all_structures() {
    for kind in PoolKind::ALL {
        for batch in [0usize, 5] {
            let server = server(kind, 2, Some(16));
            let spec = LoadSpec {
                conns: 3,
                per_conn: 25,
                k: 32,
                batch,
            };
            let report = run_load(server.local_addr(), &spec).expect("load run");
            assert_eq!(report.submitted, 75, "{kind} batch={batch}");
            assert!(
                report.verified(),
                "{kind} batch={batch}: DONE reported {} executions, oracle {}",
                report.executed,
                report.expected_executions
            );
            let summary = server.shutdown();
            assert_eq!(summary.accepted(), 75, "{kind} batch={batch}");
            assert_eq!(
                summary.run.executed, report.expected_executions,
                "{kind} batch={batch}: shutdown stats diverge from oracle"
            );
        }
    }
}

/// The acceptance bar from the issue: a quiescent server with idle
/// connections spins **zero** idle-loop iterations — workers parked,
/// actors blocked in `read`, nothing advancing the idle meter.
#[test]
fn quiescent_server_with_idle_connections_makes_no_idle_iterations() {
    let server = server(PoolKind::Hybrid, 3, Some(64));
    let mut clients: Vec<Client> = (0..4).map(|_| Client::connect(&server)).collect();
    for (i, c) in clients.iter_mut().enumerate() {
        assert_eq!(c.request(&format!("SUBMIT {i} 32 {i}")), "OK");
    }
    assert!(clients[0].request("JOIN").starts_with("DONE "));
    // The pool has drained; give the workers time to run down their
    // backoff and park, then the meter must freeze despite 4 open
    // connections.
    std::thread::sleep(Duration::from_millis(80));
    let parked_at = server.idle_iters();
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(
        server.idle_iters(),
        parked_at,
        "idle connections must not keep the pool spinning"
    );
    // And the parked fleet must wake for the next submission.
    assert_eq!(clients[1].request("SUBMIT 2 32 2"), "OK");
    assert!(clients[1].request("JOIN").starts_with("DONE "));
    drop(clients);
    server.shutdown();
}

/// Protocol errors are per-request: a malformed line gets `ERR …` and the
/// connection keeps serving; stats and ping/quit behave as documented.
#[test]
fn protocol_errors_keep_the_connection_alive() {
    let server = server(PoolKind::WorkStealing, 2, None);
    let mut c = Client::connect(&server);
    assert_eq!(c.request("PING"), "PONG");
    assert!(c.request("FROBNICATE").starts_with("ERR "));
    assert!(c.request("SUBMIT 1 2").starts_with("ERR "));
    assert!(c.request("BATCH 8").starts_with("ERR "));
    assert_eq!(c.request("SUBMIT 1 32 4"), "OK", "still serving after ERR");
    assert_eq!(c.request("BATCH 32 1:1 2:2"), "OK 2");
    assert_eq!(
        c.request("STATS"),
        "STATS accepted=3 batch_items=2 joins=0 errors=3"
    );
    assert_eq!(c.request("QUIT"), "BYE");
    let summary = server.shutdown();
    assert_eq!(summary.accepted(), 3);
    assert_eq!(summary.connections[0].errors, 3);
}

/// A newline-less flood must not buffer unboundedly: past the line cap
/// the server replies `ERR` and closes the connection — other
/// connections are unaffected.
#[test]
fn oversized_request_line_is_rejected_and_closed() {
    let server = server(PoolKind::Hybrid, 2, Some(16));
    let mut well_behaved = Client::connect(&server);
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    // 80 KiB without a newline — beyond the 64 KiB cap.
    let flood = vec![b'A'; 80 * 1024];
    writer
        .write_all(&flood)
        .expect("flood accepted up to the cap");
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("ERR reply");
    assert!(
        reply.starts_with("ERR request line exceeds"),
        "got {reply:?}"
    );
    reply.clear();
    // Closing with unread flood bytes may surface as EOF or as a reset
    // (RST) on the client side; both mean the connection is gone.
    match reader.read_line(&mut reply) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("server must close the flooding connection, read {n} more bytes"),
    }
    // The flood never disturbed a normal connection.
    assert_eq!(well_behaved.request("SUBMIT 1 32 1"), "OK");
    assert_eq!(well_behaved.request("QUIT"), "BYE");
    server.shutdown();
}

/// The shutdown satellite: work a client submitted (and got `OK` for) is
/// **never** aborted by shutdown — even when the client never sends JOIN
/// or QUIT and its connection is still open at shutdown time.
#[test]
fn shutdown_drains_in_flight_work_instead_of_aborting() {
    let server = server(PoolKind::Centralized, 2, Some(8));
    let mut expected = 0u64;
    let mut clients: Vec<Client> = (0..3).map(|_| Client::connect(&server)).collect();
    for (ci, c) in clients.iter_mut().enumerate() {
        for i in 0..10 {
            let v = load_value(ci, i);
            expected += CountdownExec::expected_executions(v);
            assert_eq!(c.request(&format!("SUBMIT {v} 32 {v}")), "OK");
        }
    }
    // No JOIN, no QUIT: shutdown with live connections and queued chains.
    let ServeSummary {
        run,
        connections,
        failures,
    } = server.shutdown();
    assert_eq!(connections.len(), 3);
    assert!(failures.is_empty(), "healthy run: {failures:?}");
    assert_eq!(
        run.executed, expected,
        "graceful shutdown must drain accepted work to quiescence"
    );
    drop(clients);
}

/// Dropping the server takes the same graceful path as `shutdown()` —
/// the Drop-never-aborts fix, observable through the executor count
/// (which outlives the server).
#[test]
fn server_drop_is_graceful_too() {
    let server = server(PoolKind::Hybrid, 2, Some(8));
    let exec = server.executor();
    let mut c = Client::connect(&server);
    // 40 + 1 executions once drained; drop the server immediately after
    // acceptance — the whole chain must still run.
    assert_eq!(c.request("SUBMIT 40 32 40"), "OK");
    drop(server);
    assert_eq!(
        exec.executed(),
        41,
        "drop must drain the accepted chain, not abort it"
    );
}

/// Idle reaping: with `idle_timeout` set, a connection that goes silent
/// between requests is closed by the server on its own — no client
/// action, no shutdown — and the reap is housekeeping, not a failure.
#[test]
fn idle_connections_are_reaped_after_the_deadline() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            kind: PoolKind::Hybrid,
            places: 2,
            idle_timeout: Some(Duration::from_millis(60)),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut c = Client::connect(&server);
    assert_eq!(c.request("SUBMIT 3 32 3"), "OK"); // activity, then silence
                                                  // The reaper closes the idle socket; the actor exits and announces
                                                  // the close — observable without polling.
    server.wait_connections_closed(1);
    let mut reply = String::new();
    match c.reader.read_line(&mut reply) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("expected reaped connection, read {n} bytes: {reply:?}"),
    }
    let summary = server.shutdown();
    assert!(summary.healthy(), "idle reap is not a failure: {summary:?}");
    assert_eq!(summary.run.executed, 4, "accepted work still drained");
    assert_eq!(summary.connections[0].errors, 0);
}

/// Read deadline: a half-open peer that sends part of a request and
/// stalls gets `ERR read deadline exceeded` and a disconnect — it cannot
/// pin an actor (and its producer handle) forever. A well-behaved
/// connection on the same server is untouched.
#[test]
fn half_open_request_hits_the_read_deadline() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            kind: PoolKind::WorkStealing,
            places: 2,
            read_timeout: Some(Duration::from_millis(60)),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut ok = Client::connect(&server);
    assert_eq!(ok.request("PING"), "PONG");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    write!(writer, "SUBMIT 1 32").expect("partial line"); // no newline, then stall
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("deadline reply");
    assert_eq!(reply.trim_end(), "ERR read deadline exceeded");
    reply.clear();
    match reader.read_line(&mut reply) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("server must close the stalled connection, read {n} more bytes"),
    }
    // The stalled peer never disturbed the healthy connection.
    assert_eq!(ok.request("SUBMIT 1 32 1"), "OK");
    assert_eq!(ok.request("QUIT"), "BYE");
    let summary = server.shutdown();
    assert!(summary.failures.is_empty(), "{summary:?}");
    let errors: u64 = summary.connections.iter().map(|c| c.errors).sum();
    assert_eq!(errors, 1, "exactly the deadline error: {summary:?}");
}

/// The malformed-CLI satellite: the `priosched-serve` binary mirrors
/// schedbench's usage-error convention — diagnostic on stderr, exit code
/// 2, no panic.
#[test]
fn serve_binary_rejects_malformed_flags_with_exit_2() {
    let bin = env!("CARGO_BIN_EXE_priosched-serve");
    for bad in [
        vec!["--kind", "quantum"],
        vec!["--places", "0"],
        vec!["--lane-cap", "-3"],
        vec!["--max-conns", "0"],
        vec!["--frobnicate"],
    ] {
        let out = std::process::Command::new(bin)
            .args(&bad)
            .output()
            .expect("run priosched-serve");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{bad:?}: expected usage-error exit 2, got {:?}\nstderr: {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "{bad:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "{bad:?}: {stderr}");
    }
}

/// End-to-end through the real binary: spawn `priosched-serve` on an
/// ephemeral port with `--max-conns`, drive it with the load client,
/// verify the oracle, and let it exit by itself.
#[test]
fn serve_binary_round_trip_with_max_conns() {
    let bin = env!("CARGO_BIN_EXE_priosched-serve");
    let mut child = std::process::Command::new(bin)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--places",
            "2",
            "--k",
            "32",
            "--lane-cap",
            "16",
            // 2 load connections + 1 JOIN control connection.
            "--max-conns",
            "3",
        ])
        .stdout(std::process::Stdio::piped())
        .stdin(std::process::Stdio::piped())
        .spawn()
        .expect("spawn priosched-serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout);
    let mut first = String::new();
    lines.read_line(&mut first).expect("listening line");
    let addr: std::net::SocketAddr = first
        .trim_end()
        .strip_prefix("listening on ")
        .expect("listening prefix")
        .parse()
        .expect("printed address parses");
    let report = run_load(
        addr,
        &LoadSpec {
            conns: 2,
            per_conn: 20,
            k: 32,
            batch: 4,
        },
    )
    .expect("load against the binary");
    assert!(
        report.verified(),
        "binary round trip: {} executed vs oracle {}",
        report.executed,
        report.expected_executions
    );
    let status = child.wait().expect("serve exits after --max-conns");
    assert!(status.success(), "clean exit, got {status:?}");
}
