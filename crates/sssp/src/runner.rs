//! Convenience runners tying graph + executor + scheduler together.

use crate::executor::{SsspExecutor, SsspTask};
use priosched_core::stats::PlaceStats;
use priosched_core::{run_on_kind, PoolKind, PoolParams, RunStats, Scheduler, TaskPool};
use priosched_graph::CsrGraph;
use std::sync::Arc;
use std::time::Duration;

/// Parameters of a parallel SSSP run.
#[derive(Clone, Copy, Debug)]
pub struct SsspConfig {
    /// Number of places (worker threads), the paper's `P`.
    pub places: usize,
    /// Structure parameters: the relaxation bound `k` passed with every
    /// task (§2.2) plus the centralized structure's `kmax` — shared with
    /// every other pool-construction site via
    /// [`priosched_core::PoolParams`], so a runtime-selected structure
    /// cannot silently drop either knob.
    pub pool: PoolParams,
    /// Scheduler-side dead-task elimination (§5.1); `false` only for
    /// ablation runs.
    pub eliminate_dead: bool,
    /// Spawn-batch chunk bound forwarded to the executor (`0` = one batch
    /// per node expansion; see [`SsspExecutor::spawn_chunk`]).
    pub spawn_chunk: usize,
}

impl Default for SsspConfig {
    fn default() -> Self {
        SsspConfig {
            places: 4,
            pool: PoolParams::default(),
            eliminate_dead: true,
            spawn_chunk: 0,
        }
    }
}

impl SsspConfig {
    /// Config for `places` places and relaxation bound `k`, with `kmax`
    /// widened to admit `k` (see [`PoolParams::with_k`]); dead-task
    /// elimination on.
    pub fn new(places: usize, k: usize) -> Self {
        SsspConfig {
            places,
            pool: PoolParams::with_k(k),
            ..SsspConfig::default()
        }
    }

    /// Overrides the centralized structure's `kmax`.
    pub fn kmax(mut self, kmax: u32) -> Self {
        self.pool.kmax = kmax;
        self
    }

    /// The per-task relaxation bound `k`.
    pub fn k(&self) -> usize {
        self.pool.k
    }
}

/// Outcome of a parallel SSSP run.
#[derive(Clone, Debug)]
pub struct SsspResult {
    /// Final distances (exactly Dijkstra's values; see crate docs).
    pub dist: Vec<f64>,
    /// Nodes relaxed — the paper's Figures 4–5 metric. Equals the number of
    /// reachable nodes iff no useless work was performed.
    pub relaxed: u64,
    /// Tasks eliminated as dead (scheduler check + in-task re-check).
    pub dead: u64,
    /// Wall-clock time of the scheduled run.
    pub elapsed: Duration,
    /// Aggregated data-structure counters.
    pub pool_stats: PlaceStats,
}

/// Builds the executor for `cfg` (shared by the generic and kind-selected
/// entry points).
fn executor_for<'g>(graph: &'g CsrGraph, source: u32, cfg: &SsspConfig) -> SsspExecutor<'g> {
    assert!((source as usize) < graph.num_nodes(), "source out of range");
    SsspExecutor::with_elimination(graph, source, cfg.pool.k, cfg.eliminate_dead)
        .spawn_chunk(cfg.spawn_chunk)
}

/// Folds scheduler stats and executor counters into an [`SsspResult`].
fn collect(exec: &SsspExecutor<'_>, run: RunStats) -> SsspResult {
    SsspResult {
        dist: exec.distances().snapshot(),
        relaxed: exec.relaxed(),
        dead: run.dead + exec.late_dead(),
        elapsed: run.elapsed,
        pool_stats: run.pool,
    }
}

/// Runs parallel SSSP over an explicit task pool.
pub fn run_sssp<P>(pool: Arc<P>, graph: &CsrGraph, source: u32, cfg: &SsspConfig) -> SsspResult
where
    P: TaskPool<SsspTask>,
{
    let exec = executor_for(graph, source, cfg);
    let sched = Scheduler::from_pool_arc(pool);
    let run = sched.run(&exec, vec![exec.root(source)]);
    collect(&exec, run)
}

/// Runs parallel SSSP with one of the paper's structures selected at
/// runtime (used by the figure harness to sweep structures).
///
/// Pool construction goes through [`priosched_core::run_on_kind`]: one
/// dispatch before the run, a scheduling loop monomorphized per structure,
/// and `cfg.pool` routed to whichever construction knobs the kind consumes.
pub fn run_sssp_kind(
    kind: PoolKind,
    graph: &CsrGraph,
    source: u32,
    cfg: &SsspConfig,
) -> SsspResult {
    let exec = executor_for(graph, source, cfg);
    let run = run_on_kind(kind, cfg.places, cfg.pool, &exec, vec![exec.root(source)]);
    collect(&exec, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use priosched_core::HybridKPriority;
    use priosched_graph::{dijkstra, erdos_renyi, ErdosRenyiConfig};

    #[test]
    fn runner_produces_dijkstra_distances() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 80,
            p: 0.15,
            seed: 3,
        });
        let cfg = SsspConfig::new(2, 8).kmax(64);
        let res = run_sssp(Arc::new(HybridKPriority::new(cfg.places)), &g, 0, &cfg);
        assert_eq!(res.dist, dijkstra(&g, 0).dist);
        assert!(res.relaxed >= 80);
        assert!(res.pool_stats.pushes >= res.relaxed.saturating_sub(1));
    }

    #[test]
    fn kind_runner_matches_for_every_structure() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 90,
            p: 0.12,
            seed: 9,
        });
        let expect = dijkstra(&g, 0).dist;
        for kind in PoolKind::ALL {
            let res = run_sssp_kind(kind, &g, 0, &SsspConfig::new(2, 16));
            assert_eq!(res.dist, expect, "{kind}");
        }
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bad_source_panics() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 10,
            p: 0.5,
            seed: 1,
        });
        let cfg = SsspConfig::default();
        run_sssp_kind(PoolKind::Hybrid, &g, 99, &cfg);
    }
}
