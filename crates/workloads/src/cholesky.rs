//! Blocked Cholesky factorization as a prioritized task DAG.
//!
//! The paper's introduction motivates priority scheduling with "matrix
//! algorithms-by-blocks" (Quintana-Ortí et al., cited as \[16\]): such
//! applications "resort to their own centralized scheduling scheme, based
//! on a shared priority queue" — exactly the congestion problem the
//! k-priority structures solve. This workload implements tile Cholesky
//! (POTRF/TRSM/SYRK/GEMM over a blocked SPD matrix):
//!
//! * dependencies are tracked with per-task atomic counters; a task is
//!   spawned when its last input retires (help-first, §2);
//! * priorities follow the critical path: tasks on earlier panels run
//!   first, keeping the factorization front narrow — the classic priority
//!   function for tile Cholesky;
//! * the oracle is a dense sequential Cholesky of the same matrix,
//!   compared elementwise.

use crate::{SplitRng, Workload};
use parking_lot::Mutex;
use priosched_core::{PoolParams, RunStats};
use std::sync::atomic::{AtomicU32, Ordering};

type Tile = Vec<f64>; // b*b, row-major

/// The four tile kernels of right-looking Cholesky.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Factorize diagonal tile (k, k).
    Potrf {
        /// Panel index.
        k: usize,
    },
    /// Solve L(i,k) = A(i,k) · L(k,k)^-T for i > k.
    Trsm {
        /// Panel index.
        k: usize,
        /// Row tile.
        i: usize,
    },
    /// Update diagonal: A(i,i) -= L(i,k)·L(i,k)ᵀ.
    Syrk {
        /// Panel index.
        k: usize,
        /// Row tile.
        i: usize,
    },
    /// Update off-diagonal: A(i,j) -= L(i,k)·L(j,k)ᵀ for k < j < i.
    Gemm {
        /// Panel index.
        k: usize,
        /// Row tile.
        i: usize,
        /// Column tile.
        j: usize,
    },
}

impl Kernel {
    /// Critical-path priority: panel index dominates (earlier panels
    /// unblock everything downstream), then kernel class.
    pub fn priority(self) -> u64 {
        match self {
            Kernel::Potrf { k } => (k as u64) << 8,
            Kernel::Trsm { k, .. } => ((k as u64) << 8) + 1,
            Kernel::Syrk { k, .. } => ((k as u64) << 8) + 2,
            Kernel::Gemm { k, .. } => ((k as u64) << 8) + 3,
        }
    }
}

/// A tile-Cholesky instance: the dense SPD input and its factor oracle.
pub struct CholeskyWorkload {
    /// Tiles per dimension.
    nt: usize,
    /// Tile edge length.
    b: usize,
    /// Dense input matrix, row-major `n×n` with `n = nt·b`.
    a: Vec<f64>,
    /// Dense sequential Cholesky factor of `a` (lower triangle).
    oracle: Vec<f64>,
    /// Comparison tolerance for [`Workload::verify`].
    tolerance: f64,
}

impl CholeskyWorkload {
    /// Deterministic SPD instance: `A = M·Mᵀ + n·I` with `M` seeded
    /// pseudo-random, tiled as `nt × nt` tiles of edge `b`.
    pub fn random(nt: usize, b: usize, seed: u64) -> Self {
        assert!(nt > 0 && b > 0, "need at least one tile of positive size");
        let n = nt * b;
        let mut rng = SplitRng(seed | 1);
        let m: Vec<f64> = (0..n * n).map(|_| rng.next_centered()).collect();
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for t in 0..n {
                    s += m[i * n + t] * m[j * n + t];
                }
                a[i * n + j] = s + if i == j { n as f64 } else { 0.0 };
            }
        }
        let oracle = dense_cholesky(&a, n);
        CholeskyWorkload {
            nt,
            b,
            a,
            oracle,
            tolerance: 1e-9,
        }
    }

    /// Matrix dimension `n = nt·b`.
    pub fn dim(&self) -> usize {
        self.nt * self.b
    }

    /// Tiles per dimension.
    pub fn tiles(&self) -> usize {
        self.nt
    }

    /// Elementwise max deviation of the factorized tiles from the dense
    /// sequential oracle (lower triangle only).
    fn max_factor_err(&self, exec: &CholeskyExec) -> f64 {
        let (b, n) = (self.b, self.dim());
        let mut max_err = 0.0f64;
        for i in 0..self.nt {
            for j in 0..=i {
                let t = exec.tiles[tile_index(i, j)].lock();
                for r in 0..b {
                    for c in 0..b {
                        let (gi, gj) = (i * b + r, j * b + c);
                        if gj <= gi {
                            max_err = max_err.max((t[r * b + c] - self.oracle[gi * n + gj]).abs());
                        }
                    }
                }
            }
        }
        max_err
    }

    /// Total kernel-task count of the DAG: per panel `k`, one POTRF plus
    /// `r` TRSMs, `r` SYRKs and `C(r, 2)` GEMMs where `r = nt − 1 − k`.
    pub fn expected_tasks(&self) -> u64 {
        (0..self.nt)
            .map(|k| {
                let r = (self.nt - 1 - k) as u64;
                1 + 2 * r + r * r.saturating_sub(1) / 2
            })
            .sum()
    }
}

/// Per-run state: the tiled matrix being factorized in place plus the
/// dependency counters.
pub struct CholeskyExec {
    nt: usize,
    b: usize,
    /// Lower-triangular tiles, each behind its own lock (tasks touching the
    /// same tile are serialized by the dependency structure, but Rust wants
    /// the proof).
    tiles: Vec<Mutex<Tile>>,
    /// Remaining input count per kernel, indexed by [`CholeskyExec::kernel_index`].
    remaining: Vec<AtomicU32>,
    k_relax: usize,
}

fn tile_index(i: usize, j: usize) -> usize {
    debug_assert!(j <= i);
    i * (i + 1) / 2 + j
}

impl CholeskyExec {
    /// Dense kernel id for the `remaining` table. Layout per panel `k`:
    /// potrf, then trsm(i), syrk(i), gemm(i, j).
    fn kernel_index(&self, kr: Kernel) -> usize {
        let nt = self.nt;
        let stride = 1 + 3 * nt * nt;
        match kr {
            Kernel::Potrf { k } => k * stride,
            Kernel::Trsm { k, i } => k * stride + 1 + i,
            Kernel::Syrk { k, i } => k * stride + 1 + nt + i,
            Kernel::Gemm { k, i, j } => k * stride + 1 + 2 * nt + i * nt + j,
        }
    }

    /// Number of inputs each kernel waits for.
    fn input_count(kr: Kernel) -> u32 {
        match kr {
            // potrf(k) waits for all syrk(k', k) with k' < k.
            Kernel::Potrf { k } => k as u32,
            // trsm(k,i) waits for potrf(k) + gemm(k', i, k) for k' < k.
            Kernel::Trsm { k, .. } => 1 + k as u32,
            // syrk(k,i) waits for trsm(k,i).
            Kernel::Syrk { .. } => 1,
            // gemm(k,i,j) waits for trsm(k,i) and trsm(k,j).
            Kernel::Gemm { .. } => 2,
        }
    }

    /// Signals that `kr`'s input retired; spawns it once all inputs are in.
    fn retire_input(&self, kr: Kernel, ctx: &mut priosched_core::SpawnCtx<'_, Kernel>) {
        let idx = self.kernel_index(kr);
        if self.remaining[idx].fetch_sub(1, Ordering::AcqRel) == 1 {
            ctx.spawn(kr.priority(), self.k_relax, kr);
        }
    }

    fn with_tile<R>(&self, i: usize, j: usize, f: impl FnOnce(&mut Tile) -> R) -> R {
        let mut t = self.tiles[tile_index(i, j)].lock();
        f(&mut t)
    }

    fn with_two_tiles<R>(
        &self,
        a: (usize, usize),
        b: (usize, usize),
        f: impl FnOnce(&Tile, &mut Tile) -> R,
    ) -> R {
        let ta = self.tiles[tile_index(a.0, a.1)].lock();
        let mut tb = self.tiles[tile_index(b.0, b.1)].lock();
        f(&ta, &mut tb)
    }
}

// ---- dense micro-kernels (b×b tiles, row-major) ---------------------------

/// In-place unblocked Cholesky of a tile; returns false on non-SPD input.
fn potrf(a: &mut Tile, b: usize) -> bool {
    for j in 0..b {
        let mut d = a[j * b + j];
        for t in 0..j {
            d -= a[j * b + t] * a[j * b + t];
        }
        if d <= 0.0 {
            return false;
        }
        let d = d.sqrt();
        a[j * b + j] = d;
        for i in (j + 1)..b {
            let mut s = a[i * b + j];
            for t in 0..j {
                s -= a[i * b + t] * a[j * b + t];
            }
            a[i * b + j] = s / d;
        }
        for t in (j + 1)..b {
            a[j * b + t] = 0.0; // zero the upper triangle
        }
    }
    true
}

/// B := B · A^{-T} with A lower triangular (right solve).
fn trsm(a: &Tile, x: &mut Tile, b: usize) {
    for r in 0..b {
        for c in 0..b {
            let mut s = x[r * b + c];
            for t in 0..c {
                s -= x[r * b + t] * a[c * b + t];
            }
            x[r * b + c] = s / a[c * b + c];
        }
    }
}

/// C := C − A·Aᵀ (only the lower triangle matters downstream).
fn syrk(a: &Tile, c: &mut Tile, b: usize) {
    for r in 0..b {
        for cc in 0..b {
            let mut s = 0.0;
            for t in 0..b {
                s += a[r * b + t] * a[cc * b + t];
            }
            c[r * b + cc] -= s;
        }
    }
}

/// C := C − A·Bᵀ.
fn gemm(a: &Tile, x: &Tile, c: &mut Tile, b: usize) {
    for r in 0..b {
        for cc in 0..b {
            let mut s = 0.0;
            for t in 0..b {
                s += a[r * b + t] * x[cc * b + t];
            }
            c[r * b + cc] -= s;
        }
    }
}

impl priosched_core::TaskExecutor<Kernel> for CholeskyExec {
    fn execute(&self, kr: Kernel, ctx: &mut priosched_core::SpawnCtx<'_, Kernel>) {
        let (nt, b) = (self.nt, self.b);
        match kr {
            Kernel::Potrf { k } => {
                let ok = self.with_tile(k, k, |t| potrf(t, b));
                assert!(ok, "matrix is not SPD at panel {k}");
                for i in (k + 1)..nt {
                    self.retire_input(Kernel::Trsm { k, i }, ctx);
                }
            }
            Kernel::Trsm { k, i } => {
                self.with_two_tiles((k, k), (i, k), |a, x| trsm(a, x, b));
                self.retire_input(Kernel::Syrk { k, i }, ctx);
                for j in (k + 1)..nt {
                    if j < i {
                        self.retire_input(Kernel::Gemm { k, i, j }, ctx);
                    } else if j > i {
                        self.retire_input(Kernel::Gemm { k, i: j, j: i }, ctx);
                    }
                }
            }
            Kernel::Syrk { k, i } => {
                self.with_two_tiles((i, k), (i, i), |a, c| syrk(a, c, b));
                // Each panel contributes one rank-b update to A(i,i);
                // potrf(i) waits for all i of them via its counter.
                self.retire_input(Kernel::Potrf { k: i }, ctx);
            }
            Kernel::Gemm { k, i, j } => {
                // A(i,j) -= L(i,k) · L(j,k)ᵀ, i > j > k.
                let la = self.tiles[tile_index(i, k)].lock().clone();
                self.with_two_tiles((j, k), (i, j), |lb, c| gemm(&la, lb, c, b));
                self.retire_input(Kernel::Trsm { k: j, i }, ctx);
            }
        }
    }
}

/// Dense sequential Cholesky of an n×n matrix (row-major, lower output) —
/// the oracle.
pub fn dense_cholesky(a: &[f64], n: usize) -> Vec<f64> {
    let mut l = vec![0.0; n * n];
    for j in 0..n {
        let mut d = a[j * n + j];
        for t in 0..j {
            d -= l[j * n + t] * l[j * n + t];
        }
        assert!(d > 0.0, "not SPD");
        let d = d.sqrt();
        l[j * n + j] = d;
        for i in (j + 1)..n {
            let mut s = a[i * n + j];
            for t in 0..j {
                s -= l[i * n + t] * l[j * n + t];
            }
            l[i * n + j] = s / d;
        }
    }
    l
}

impl Workload for CholeskyWorkload {
    type Task = Kernel;
    type Exec<'w>
        = CholeskyExec
    where
        Self: 'w;

    fn name(&self) -> &'static str {
        "cholesky"
    }

    fn executor(&self, params: &PoolParams) -> CholeskyExec {
        let (nt, b, n) = (self.nt, self.b, self.dim());
        // Tile the lower triangle of the dense input.
        let mut tiles = Vec::with_capacity(nt * (nt + 1) / 2);
        for i in 0..nt {
            for j in 0..=i {
                let mut t = vec![0.0; b * b];
                for r in 0..b {
                    for c in 0..b {
                        t[r * b + c] = self.a[(i * b + r) * n + (j * b + c)];
                    }
                }
                tiles.push(Mutex::new(t));
            }
        }
        // Dependency counters; potrf(0) has no real inputs — its counter of
        // 1 is never decremented because the root task spawns it directly.
        let mut remaining = Vec::new();
        remaining.resize_with(nt * (1 + 3 * nt * nt), || AtomicU32::new(0));
        let exec = CholeskyExec {
            nt,
            b,
            tiles,
            remaining,
            k_relax: params.k,
        };
        for k in 0..nt {
            exec.remaining[exec.kernel_index(Kernel::Potrf { k })].store(
                CholeskyExec::input_count(Kernel::Potrf { k }).max(1),
                Ordering::Relaxed,
            );
            for i in (k + 1)..nt {
                exec.remaining[exec.kernel_index(Kernel::Trsm { k, i })].store(
                    CholeskyExec::input_count(Kernel::Trsm { k, i }),
                    Ordering::Relaxed,
                );
                exec.remaining[exec.kernel_index(Kernel::Syrk { k, i })].store(
                    CholeskyExec::input_count(Kernel::Syrk { k, i }),
                    Ordering::Relaxed,
                );
                for j in (k + 1)..i {
                    exec.remaining[exec.kernel_index(Kernel::Gemm { k, i, j })].store(
                        CholeskyExec::input_count(Kernel::Gemm { k, i, j }),
                        Ordering::Relaxed,
                    );
                }
            }
        }
        exec
    }

    fn seed(&self, _exec: &CholeskyExec, params: &PoolParams) -> Vec<(u64, usize, Kernel)> {
        let root = Kernel::Potrf { k: 0 };
        vec![(root.priority(), params.k, root)]
    }

    fn verify(&self, exec: &CholeskyExec, run: &RunStats) -> Result<(), String> {
        if run.executed != self.expected_tasks() {
            return Err(format!(
                "task DAG incomplete: executed {} of {} kernels",
                run.executed,
                self.expected_tasks()
            ));
        }
        let max_err = self.max_factor_err(exec);
        if max_err >= self.tolerance {
            return Err(format!(
                "max |L - L_ref| = {max_err:.3e} exceeds tolerance {:.1e}",
                self.tolerance
            ));
        }
        Ok(())
    }

    fn metrics(&self, exec: &CholeskyExec, _run: &RunStats) -> Vec<(&'static str, f64)> {
        vec![("max_factor_err", self.max_factor_err(exec))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_workload;
    use priosched_core::PoolKind;

    #[test]
    fn cholesky_workload_verifies_on_hybrid() {
        let w = CholeskyWorkload::random(4, 8, 0xFEED_FACE);
        let report = run_workload(&w, PoolKind::Hybrid, 2, PoolParams::with_k(16));
        report.expect_verified();
        assert_eq!(report.executed, w.expected_tasks());
    }

    #[test]
    fn expected_task_count_matches_example_shape() {
        // nt = 6 (the historical example): 21 + 15 + 10 + 6 + 3 + 1 = 56.
        let w = CholeskyWorkload::random(6, 2, 1);
        assert_eq!(w.expected_tasks(), 56);
    }

    #[test]
    fn priorities_follow_panels() {
        assert!(Kernel::Potrf { k: 0 }.priority() < Kernel::Gemm { k: 0, i: 2, j: 1 }.priority());
        assert!(Kernel::Gemm { k: 0, i: 2, j: 1 }.priority() < Kernel::Potrf { k: 1 }.priority());
    }
}
