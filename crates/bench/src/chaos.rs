//! Deterministic chaos-injection harness (`schedbench --chaos`).
//!
//! Every fault the scheduler claims to tolerate is injected here on
//! purpose, from a seed, and checked against an exact failure-aware
//! oracle — across all five [`PoolKind`]s:
//!
//! 1. **Task panics** ([`scenario_isolate`], [`scenario_abort`]): the
//!    chaos executor panics on seeded "bomb" values *before* spawning
//!    children, so the survivor set is a pure function of the submitted
//!    values — no matter how the places interleave. Under
//!    `FaultPolicy::Isolate` the run must finish with
//!    `executed == oracle` and `failed == bombed chains`, exactly; under
//!    `AbortRun` the join must report the (single) bomb as a typed error.
//! 2. **Mid-run producer aborts** ([`scenario_producer_aborts`]):
//!    producers die at seeded cutoffs (their handles drop early); the
//!    pool must still reach quiescence having executed exactly the
//!    chains submitted before each death.
//! 3. **Oversized / garbage protocol lines and killed sockets**
//!    ([`scenario_net`]): clients interleave seeded garbage with valid
//!    submissions, flood a newline-less line past the cap, stall
//!    half-open requests into the read deadline, and disconnect without
//!    `QUIT`; the server must answer every garbage line with `ERR`,
//!    close the abusers, keep every accepted job, and shut down with an
//!    empty failure list.
//!
//! Each scenario also asserts the quiescence meter: once drained,
//! `idle_iters` must freeze (workers parked, nothing spinning).
//!
//! Determinism is the harness's backbone: [`run_cell`] with the same
//! seed produces identical [`ChaosCounters`], and [`chaos_sweep`] runs
//! every cell **twice** to prove it. Nondeterministic quantities (how
//! far an aborting run got, how many submits raced the abort flag) are
//! deliberately not counted.

use priosched_core::{FaultPolicy, PoolBuilder, PoolKind, PoolService, SpawnCtx, TaskExecutor};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// SplitMix64: tiny, seedable, and good enough to scatter bombs —
/// the harness needs reproducibility, not statistical quality.
pub struct ChaosRng(u64);

impl ChaosRng {
    /// Creates a generator for `seed` (any value, including 0).
    pub fn new(seed: u64) -> Self {
        ChaosRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Failure-mode counters of one chaos cell (or a whole sweep, summed).
/// Every field is deterministic in the seed — [`chaos_sweep`] asserts
/// bit-identical counters on a same-seed repeat.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosCounters {
    /// Countdown chains submitted into pools (scenarios 1–2).
    pub submitted: u64,
    /// Tasks executed to completion in the Isolate and producer-abort
    /// scenarios (abort-run progress is nondeterministic and excluded).
    pub completed: u64,
    /// Tasks quarantined by `FaultPolicy::Isolate` (bombed chains).
    pub quarantined: u64,
    /// Runs aborted by a bomb under `FaultPolicy::AbortRun` (each must
    /// report its failure exactly once through `join` and `shutdown`).
    pub aborted_runs: u64,
    /// Producers killed mid-run at a seeded cutoff.
    pub producer_aborts: u64,
    /// Submissions those dead producers never made (planned − sent).
    pub unsent: u64,
    /// Garbage protocol lines answered with `ERR`.
    pub garbage_rejected: u64,
    /// Connections closed for flooding a newline-less oversized line.
    pub oversized_closed: u64,
    /// Connections closed for stalling a started request past the read
    /// deadline.
    pub deadline_reaped: u64,
    /// Sockets killed without `QUIT` (abrupt client death).
    pub killed_sockets: u64,
    /// Jobs the net scenario's clients got `OK` for.
    pub net_accepted: u64,
    /// Executions the server reported at `DONE` (must equal the
    /// countdown oracle over `net_accepted`).
    pub net_executed: u64,
}

impl ChaosCounters {
    /// Sums another cell's counters into this one.
    pub fn absorb(&mut self, other: &ChaosCounters) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.quarantined += other.quarantined;
        self.aborted_runs += other.aborted_runs;
        self.producer_aborts += other.producer_aborts;
        self.unsent += other.unsent;
        self.garbage_rejected += other.garbage_rejected;
        self.oversized_closed += other.oversized_closed;
        self.deadline_reaped += other.deadline_reaped;
        self.killed_sockets += other.killed_sockets;
        self.net_accepted += other.net_accepted;
        self.net_executed += other.net_executed;
    }
}

/// One chaos cell's outcome: its counters plus wall-clock time.
#[derive(Clone, Copy, Debug)]
pub struct ChaosReport {
    /// Scheduling structure the cell ran on.
    pub kind: PoolKind,
    /// Worker places.
    pub places: usize,
    /// The deterministic failure-mode counters.
    pub counters: ChaosCounters,
    /// Wall-clock time of the cell (both determinism runs).
    pub elapsed: Duration,
}

/// The chaos executor: a countdown chain (value `v` spawns `v - 1`)
/// that panics on bomb values **before** counting or spawning — so a
/// chain from `v` deterministically executes down to just above the
/// largest bomb `≤ v`, then dies, regardless of scheduling.
struct BombExec {
    k: usize,
    executed: AtomicU64,
    /// Sorted ascending.
    bombs: Vec<u64>,
}

impl BombExec {
    fn new(k: usize, mut bombs: Vec<u64>) -> Self {
        bombs.sort_unstable();
        bombs.dedup();
        BombExec {
            k,
            executed: AtomicU64::new(0),
            bombs,
        }
    }

    /// The failure-aware oracle: `(completed, failed)` contributed by a
    /// chain submitted with `value`.
    fn oracle(bombs: &[u64], value: u64) -> (u64, u64) {
        match bombs.iter().rev().find(|&&b| b <= value) {
            // The chain runs value, value-1, …, b+1 (that's value - b
            // tasks), then the bomb task dies unexecuted.
            Some(&b) => (value - b, 1),
            None => (value + 1, 0),
        }
    }
}

impl TaskExecutor<u64> for BombExec {
    fn execute(&self, value: u64, ctx: &mut SpawnCtx<'_, u64>) {
        if self.bombs.binary_search(&value).is_ok() {
            panic!("chaos bomb {value}");
        }
        self.executed.fetch_add(1, Ordering::AcqRel);
        if value > 0 {
            ctx.spawn(value - 1, self.k, value - 1);
        }
    }
}

/// Asserts the quiescence meter: a drained service must freeze
/// `idle_iters` (workers parked, no busy-wait). Workers run down a
/// short idle backoff before parking, so let them settle first.
fn assert_idle_frozen(svc: &PoolService<u64>, what: &str) {
    std::thread::sleep(Duration::from_millis(80));
    let parked_at = svc.idle_iters();
    std::thread::sleep(Duration::from_millis(40));
    assert_eq!(
        svc.idle_iters(),
        parked_at,
        "{what}: quiescent pool must not spin its idle loop"
    );
}

/// Scenario 1a: seeded bombs under `FaultPolicy::Isolate`. The run must
/// *finish* — quiescence with exact, failure-aware accounting — while
/// sibling chains keep executing past every quarantined panic.
fn scenario_isolate(
    rng: &mut ChaosRng,
    kind: PoolKind,
    places: usize,
    smoke: bool,
) -> ChaosCounters {
    let (producers, per_producer, max_value) = if smoke { (2, 8, 24) } else { (3, 24, 48) };
    let bombs: Vec<u64> = (0..2).map(|_| 1 + rng.below(max_value - 1)).collect();
    let values: Vec<Vec<u64>> = (0..producers)
        .map(|_| (0..per_producer).map(|_| rng.below(max_value)).collect())
        .collect();
    let exec = Arc::new(BombExec::new(8, bombs.clone()));
    let svc: PoolService<u64> = PoolBuilder::new(kind)
        .places(places)
        .k(8)
        .lane_capacity(16)
        .fault_policy(FaultPolicy::Isolate)
        .service(Arc::clone(&exec));
    std::thread::scope(|s| {
        for vals in &values {
            let mut handle = svc.ingest_handle();
            s.spawn(move || {
                for &v in vals {
                    handle
                        .submit(v, 8, v)
                        .expect("Isolate never aborts the lanes");
                }
            });
        }
    });
    svc.join().expect("Isolate must quarantine, not abort");
    assert_idle_frozen(&svc, "isolate scenario");
    let (mut want_completed, mut want_failed) = (0u64, 0u64);
    for v in values.iter().flatten() {
        let (c, f) = BombExec::oracle(&exec.bombs, *v);
        want_completed += c;
        want_failed += f;
    }
    let stats = svc.shutdown().expect("Isolate shutdown is clean");
    assert_eq!(
        stats.executed, want_completed,
        "{kind}/p{places}: isolate survivors diverge from the oracle"
    );
    assert_eq!(
        stats.failed, want_failed,
        "{kind}/p{places}: quarantine count diverges from the oracle"
    );
    assert_eq!(
        stats.failures.len() as u64,
        want_failed,
        "one report per bomb"
    );
    for failure in &stats.failures {
        assert!(
            exec.bombs.binary_search(&failure.prio).is_ok(),
            "{kind}/p{places}: failure at non-bomb prio {}",
            failure.prio
        );
        assert_eq!(failure.message, format!("chaos bomb {}", failure.prio));
    }
    ChaosCounters {
        submitted: (producers * per_producer) as u64,
        completed: stats.executed,
        quarantined: stats.failed,
        ..ChaosCounters::default()
    }
}

/// Scenario 1b: one bomb under `FaultPolicy::AbortRun` (the default).
/// The bomb value is strictly larger than every innocent chain, and
/// submitted exactly once — so exactly one task can fail, and the typed
/// error out of `join` and `shutdown` is deterministic.
fn scenario_abort(rng: &mut ChaosRng, kind: PoolKind, places: usize, smoke: bool) -> ChaosCounters {
    let innocents = if smoke { 12 } else { 32 };
    let bomb = 40 + rng.below(24);
    let exec = Arc::new(BombExec::new(8, vec![bomb]));
    let svc: PoolService<u64> = PoolBuilder::new(kind)
        .places(places)
        .k(8)
        .lane_capacity(16)
        .service(Arc::clone(&exec));
    {
        let mut handle = svc.ingest_handle();
        handle
            .submit(bomb, 8, bomb)
            .expect("first submission lands");
        for _ in 0..innocents {
            // Innocent chains start below the bomb, so no chain but the
            // bomb's own ever reaches the bomb value. Submissions racing
            // the abort flag may bounce — that's the fault model.
            let v = rng.below(bomb);
            let _ = handle.submit(v, 8, v);
        }
    }
    let aborted = svc.join().expect_err("the bomb must abort the run");
    assert_eq!(
        aborted.failure.prio, bomb,
        "{kind}/p{places}: abort blamed the wrong task"
    );
    assert_eq!(aborted.failure.message, format!("chaos bomb {bomb}"));
    let err = svc
        .shutdown()
        .expect_err("aborted service must shut down with the typed error");
    assert_eq!(err.failure.prio, bomb);
    assert_eq!(
        err.stats.failed, 1,
        "{kind}/p{places}: exactly one task can hit the single bomb"
    );
    ChaosCounters {
        aborted_runs: 1,
        ..ChaosCounters::default()
    }
}

/// Scenario 2: producers die mid-run at seeded cutoffs (dropping their
/// handles early). The pool must reach quiescence having executed
/// exactly what was submitted before each death — nothing lost, nothing
/// double-counted.
fn scenario_producer_aborts(
    rng: &mut ChaosRng,
    kind: PoolKind,
    places: usize,
    smoke: bool,
) -> ChaosCounters {
    let (producers, planned, max_value) = if smoke { (3, 10, 20) } else { (4, 30, 40) };
    let plans: Vec<(usize, Vec<u64>)> = (0..producers)
        .map(|_| {
            let cutoff = rng.below(planned as u64 + 1) as usize;
            let vals = (0..planned).map(|_| rng.below(max_value)).collect();
            (cutoff, vals)
        })
        .collect();
    let exec = Arc::new(BombExec::new(8, Vec::new()));
    let svc: PoolService<u64> = PoolBuilder::new(kind)
        .places(places)
        .k(8)
        .lane_capacity(8)
        .service(Arc::clone(&exec));
    std::thread::scope(|s| {
        for (cutoff, vals) in &plans {
            let mut handle = svc.ingest_handle();
            s.spawn(move || {
                for &v in &vals[..*cutoff] {
                    handle.submit(v, 8, v).expect("no bombs, no aborts");
                }
                // The producer "dies" here: the handle drops with
                // `planned - cutoff` submissions never made.
            });
        }
    });
    svc.join().expect("clean run");
    assert_idle_frozen(&svc, "producer-abort scenario");
    let want: u64 = plans
        .iter()
        .flat_map(|(cutoff, vals)| vals[..*cutoff].iter())
        .map(|&v| v + 1)
        .sum();
    let stats = svc.shutdown().expect("clean shutdown");
    assert_eq!(
        stats.executed, want,
        "{kind}/p{places}: dead producers lost or duplicated work"
    );
    assert_eq!(stats.failed, 0);
    let submitted: u64 = plans.iter().map(|(c, _)| *c as u64).sum();
    ChaosCounters {
        submitted,
        completed: stats.executed,
        producer_aborts: plans.iter().filter(|(c, _)| *c < planned).count() as u64,
        unsent: (producers * planned) as u64 - submitted,
        ..ChaosCounters::default()
    }
}

/// Scenario 3: protocol abuse over real loopback TCP — seeded garbage
/// lines, an oversized newline-less flood, a half-open request stalled
/// into the read deadline, and sockets killed without `QUIT` — while
/// honest submissions keep flowing. The server must reject every abuse,
/// keep every accepted job, and shut down with no contained failures.
fn scenario_net(rng: &mut ChaosRng, kind: PoolKind, places: usize, smoke: bool) -> ChaosCounters {
    use priosched_net::{Server, ServerConfig};
    const GARBAGE: [&str; 6] = [
        "FROBNICATE",
        "SUBMIT 1 2",
        "SUBMIT x y z",
        "BATCH 8 a:b",
        "BATCH 8",
        "JOINT 3",
    ];
    let (conns, per_conn, max_value) = if smoke { (3, 6, 16) } else { (4, 16, 24) };
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            kind,
            places,
            k: 16,
            lane_capacity: Some(32),
            read_timeout: Some(Duration::from_millis(50)),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback chaos server");
    let addr = server.local_addr();
    let mut counters = ChaosCounters::default();
    let mut accepted_values: Vec<u64> = Vec::new();
    // Honest-but-messy clients: valid SUBMITs interleaved with garbage;
    // some die without QUIT.
    for conn in 0..conns {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        let mut request =
            |writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str| -> String {
                writeln!(writer, "{line}").expect("send");
                reply.clear();
                reader.read_line(&mut reply).expect("reply");
                reply.trim_end().to_string()
            };
        for _ in 0..per_conn {
            if rng.below(3) == 0 {
                let g = GARBAGE[rng.below(GARBAGE.len() as u64) as usize];
                let got = request(&mut writer, &mut reader, g);
                assert!(
                    got.starts_with("ERR "),
                    "{kind}/p{places}: garbage {g:?} got {got:?}"
                );
                counters.garbage_rejected += 1;
            } else {
                let v = rng.below(max_value);
                let got = request(&mut writer, &mut reader, &format!("SUBMIT {v} 16 {v}"));
                assert_eq!(got, "OK", "{kind}/p{places}: honest submit rejected");
                accepted_values.push(v);
                counters.net_accepted += 1;
            }
        }
        if conn % 2 == 0 {
            // Killed socket: drop without QUIT. Accepted work must
            // survive the abrupt death.
            counters.killed_sockets += 1;
            drop(writer); // reader drop closes the socket
        } else {
            let got = request(&mut writer, &mut reader, "QUIT");
            assert_eq!(got, "BYE");
        }
    }
    // Oversized flood: no newline, past the 64 KiB cap.
    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        writer
            .write_all(&vec![b'A'; 80 * 1024])
            .expect("flood accepted up to the cap");
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("flood reply");
        assert!(
            reply.starts_with("ERR request line exceeds"),
            "{kind}/p{places}: flood got {reply:?}"
        );
        counters.oversized_closed += 1;
    }
    // Half-open stall: a started line with no newline, held past the
    // read deadline.
    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        write!(writer, "SUBMIT 3 16").expect("partial line");
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("deadline reply");
        assert_eq!(
            reply.trim_end(),
            "ERR read deadline exceeded",
            "{kind}/p{places}"
        );
        counters.deadline_reaped += 1;
    }
    // Control connection: JOIN must report exactly the oracle over the
    // accepted jobs — abuse cost the server nothing.
    {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        writeln!(writer, "JOIN").expect("send JOIN");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("DONE reply");
        let done: u64 = reply
            .trim_end()
            .strip_prefix("DONE ")
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("{kind}/p{places}: expected DONE, got {reply:?}"));
        let want: u64 = accepted_values.iter().map(|&v| v + 1).sum();
        assert_eq!(
            done, want,
            "{kind}/p{places}: accepted jobs lost or duplicated under abuse"
        );
        counters.net_executed = done;
        // Quiescent despite the open control connection: the idle meter
        // must freeze (after the workers run down their park backoff).
        std::thread::sleep(Duration::from_millis(80));
        let parked_at = server.idle_iters();
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(
            server.idle_iters(),
            parked_at,
            "{kind}/p{places}: quiescent server must not spin"
        );
        writeln!(writer, "QUIT").expect("send QUIT");
    }
    let summary = server.shutdown();
    assert!(
        summary.failures.is_empty(),
        "{kind}/p{places}: chaos must be contained, not crash actors: {:?}",
        summary.failures
    );
    assert_eq!(
        summary.run.failed, 0,
        "{kind}/p{places}: no task bombs here"
    );
    assert_eq!(
        summary.accepted(),
        counters.net_accepted,
        "{kind}/p{places}: per-connection accounting diverged"
    );
    counters
}

/// Runs every scenario once for one (kind × places) cell. Panics with a
/// diagnostic on any invariant violation; returns the cell's
/// deterministic failure-mode counters.
pub fn run_cell(seed: u64, kind: PoolKind, places: usize, smoke: bool) -> ChaosCounters {
    // Sub-seed per cell so kinds/places don't share fault schedules.
    let cell_seed = seed
        .wrapping_mul(0x0100_0000_01B3)
        .wrapping_add(kind as u64 * 131 + places as u64);
    let mut counters = ChaosCounters::default();
    let mut rng = ChaosRng::new(cell_seed);
    counters.absorb(&scenario_isolate(&mut rng, kind, places, smoke));
    counters.absorb(&scenario_abort(&mut rng, kind, places, smoke));
    counters.absorb(&scenario_producer_aborts(&mut rng, kind, places, smoke));
    counters.absorb(&scenario_net(&mut rng, kind, places, smoke));
    counters
}

/// Runs the full chaos sweep: every `kind × places` cell, **twice**,
/// asserting the same-seed repeat produces identical counters. Returns
/// one report per cell (elapsed covers both runs).
pub fn chaos_sweep(
    seed: u64,
    kinds: &[PoolKind],
    places_list: &[usize],
    smoke: bool,
) -> Vec<ChaosReport> {
    let mut reports = Vec::new();
    for &kind in kinds {
        for &places in places_list {
            let start = Instant::now();
            let counters = run_cell(seed, kind, places, smoke);
            let repeat = run_cell(seed, kind, places, smoke);
            assert_eq!(
                counters, repeat,
                "{kind}/p{places}: same seed {seed} must reproduce identical failure counters"
            );
            reports.push(ChaosReport {
                kind,
                places,
                counters,
                elapsed: start.elapsed(),
            });
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_bounded() {
        let mut a = ChaosRng::new(7);
        let mut b = ChaosRng::new(7);
        for _ in 0..100 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
        }
        let mut c = ChaosRng::new(9);
        for _ in 0..100 {
            assert!(c.below(23) < 23);
        }
    }

    #[test]
    fn bomb_oracle_counts_partial_chains() {
        let bombs = vec![3, 10];
        // No bomb at or below 2: the full chain 2,1,0 runs.
        assert_eq!(BombExec::oracle(&bombs, 2), (3, 0));
        // Chain from 5 runs 5, 4, then dies at 3.
        assert_eq!(BombExec::oracle(&bombs, 5), (2, 1));
        // Chain from 10 dies instantly.
        assert_eq!(BombExec::oracle(&bombs, 10), (0, 1));
        // Chain from 12 runs 12, 11, dies at 10 (the *largest* bomb ≤ v).
        assert_eq!(BombExec::oracle(&bombs, 12), (2, 1));
    }

    /// One full cell on one structure: the in-repo smoke for the chaos
    /// path (CI runs the full sweep via `schedbench --chaos`).
    #[test]
    fn chaos_cell_is_deterministic_on_hybrid() {
        let first = run_cell(7, PoolKind::Hybrid, 2, true);
        let second = run_cell(7, PoolKind::Hybrid, 2, true);
        assert_eq!(first, second);
        assert!(first.submitted > 0);
        assert_eq!(first.aborted_runs, 1);
        assert!(first.oversized_closed == 1 && first.deadline_reaped == 1);
    }
}
