//! Priority work-stealing (§3.1).
//!
//! Work-stealing adapted to priorities: every place keeps its own priority
//! queue; `push` and `pop` operate on it locally, and an empty place picks a
//! random victim and steals **half** of its queue (steal-half spreads tasks
//! generated at one place quickly through the system — §3.1, citing Hendler
//! & Shavit). Prioritization is purely local: "no guarantee can be given on
//! the priority of tasks that are being executed".
//!
//! The paper omits the implementation details of this structure (§4: "we
//! omit the details of the work-stealing data structure"); its internals
//! live in the authors' earlier Pheet papers. This realization guards each
//! place's queue with a `parking_lot::Mutex`: owner operations take an
//! uncontended lock (a single CAS in the fast path), and thieves use
//! `try_lock` so they skip busy victims instead of blocking — a documented
//! substitution (DESIGN.md §4) that preserves the scheduling policy the
//! evaluation measures (local priority order + random steal-half).

use crate::pool::{PoolHandle, TaskPool};
use crate::stats::PlaceStats;
use crate::sync::Mutex;
use crate::util::XorShift64;
use crossbeam_utils::CachePadded;
use priosched_pq::{BinaryHeap, SequentialPriorityQueue};
use std::sync::Arc;

/// Queue entry: priority, per-place insertion sequence (deterministic
/// tiebreak), task.
struct WsEntry<T> {
    prio: u64,
    seq: u64,
    task: T,
}

impl<T> PartialEq for WsEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio && self.seq == other.seq
    }
}
impl<T> Eq for WsEntry<T> {}
impl<T> PartialOrd for WsEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for WsEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.prio, self.seq).cmp(&(other.prio, other.seq))
    }
}

/// One place's lockable queue, padded to its own cache line.
type PlaceQueue<T> = CachePadded<Mutex<BinaryHeap<WsEntry<T>>>>;

/// Shared component: one lockable priority queue per place.
pub struct PriorityWorkStealing<T: Send + 'static> {
    queues: Box<[PlaceQueue<T>]>,
}

impl<T: Send + 'static> PriorityWorkStealing<T> {
    /// Creates the structure for `nplaces` places.
    ///
    /// # Panics
    /// Panics if `nplaces == 0`.
    pub fn new(nplaces: usize) -> Self {
        assert!(nplaces > 0, "need at least one place");
        PriorityWorkStealing {
            queues: (0..nplaces)
                .map(|_| CachePadded::new(Mutex::new(BinaryHeap::new())))
                .collect(),
        }
    }

    /// Total tasks currently queued across all places (diagnostics; racy).
    pub fn queued(&self) -> usize {
        self.queues.iter().map(|q| q.lock().len()).sum()
    }
}

impl<T: Send + 'static> TaskPool<T> for PriorityWorkStealing<T> {
    type Handle = WorkStealingHandle<T>;

    fn num_places(&self) -> usize {
        self.queues.len()
    }

    fn handle(self: &Arc<Self>, place: usize) -> WorkStealingHandle<T> {
        assert!(place < self.queues.len(), "place {place} out of range");
        WorkStealingHandle {
            place,
            seq: 0,
            rng: XorShift64::new(0x57EA_0000 ^ place as u64),
            stats: PlaceStats::default(),
            shared: Arc::clone(self),
        }
    }
}

/// One place's view of the work-stealing structure.
pub struct WorkStealingHandle<T: Send + 'static> {
    shared: Arc<PriorityWorkStealing<T>>,
    place: usize,
    seq: u64,
    rng: XorShift64,
    stats: PlaceStats,
}

impl<T: Send + 'static> PoolHandle<T> for WorkStealingHandle<T> {
    /// Local push; `k` is ignored — work-stealing offers no relaxation
    /// bound to parameterize (§3.1).
    fn push(&mut self, prio: u64, _k: usize, task: T) {
        let entry = WsEntry {
            prio,
            seq: self.seq,
            task,
        };
        self.seq += 1;
        self.shared.queues[self.place].lock().push(entry);
        self.stats.pushes += 1;
    }

    fn pop_entry(&mut self) -> Option<(u64, T)> {
        if let Some(e) = self.shared.queues[self.place].lock().pop() {
            self.stats.pops += 1;
            return Some((e.prio, e.task));
        }
        // Local queue empty: steal half from a random victim (§3.1).
        let p = self.shared.queues.len();
        if p > 1 {
            let attempts = 2 * p;
            for _ in 0..attempts {
                let victim = self.rng.below(p as u64) as usize;
                if victim == self.place {
                    continue;
                }
                // try_lock: skip victims that are busy rather than blocking.
                let Some(mut vq) = self.shared.queues[victim].try_lock() else {
                    continue;
                };
                if vq.is_empty() {
                    continue;
                }
                let mut stolen = vq.split_half();
                drop(vq);
                self.stats.steals += 1;
                let first = stolen.pop();
                if !stolen.is_empty() {
                    self.shared.queues[self.place].lock().append(&mut stolen);
                }
                if first.is_some() {
                    self.stats.pops += 1;
                    return first.map(|e| (e.prio, e.task));
                }
            }
        }
        self.stats.failed_pops += 1;
        None
    }

    /// Batch push: one lock acquisition and one heap repair for the whole
    /// batch (vs. one of each per task), preserving per-place FIFO
    /// tiebreak order via the sequence counter.
    fn push_batch(&mut self, _k: usize, batch: &mut Vec<(u64, T)>) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len() as u64;
        let base_seq = self.seq;
        self.seq += n;
        let mut q = self.shared.queues[self.place].lock();
        q.extend_batch(
            batch
                .drain(..)
                .enumerate()
                .map(|(i, (prio, task))| WsEntry {
                    prio,
                    seq: base_seq + i as u64,
                    task,
                }),
        );
        drop(q);
        self.stats.pushes += n;
    }

    /// Batch pop: drains up to `max` tasks under a single lock
    /// acquisition; falls back to steal-half when the local queue is
    /// empty, serving the batch straight out of the stolen half.
    fn try_pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut got = 0;
        {
            let mut q = self.shared.queues[self.place].lock();
            while got < max {
                match q.pop() {
                    Some(e) => {
                        out.push(e.task);
                        got += 1;
                    }
                    None => break,
                }
            }
        }
        if got > 0 {
            self.stats.pops += got as u64;
            return got;
        }
        // Local queue empty: steal half from a random victim (§3.1) and
        // serve the batch from the stolen half before banking the rest.
        let p = self.shared.queues.len();
        if p > 1 {
            let attempts = 2 * p;
            for _ in 0..attempts {
                let victim = self.rng.below(p as u64) as usize;
                if victim == self.place {
                    continue;
                }
                let Some(mut vq) = self.shared.queues[victim].try_lock() else {
                    continue;
                };
                if vq.is_empty() {
                    continue;
                }
                let mut stolen = vq.split_half();
                drop(vq);
                self.stats.steals += 1;
                while got < max {
                    match stolen.pop() {
                        Some(e) => {
                            out.push(e.task);
                            got += 1;
                        }
                        None => break,
                    }
                }
                if !stolen.is_empty() {
                    self.shared.queues[self.place].lock().append(&mut stolen);
                }
                if got > 0 {
                    self.stats.pops += got as u64;
                    return got;
                }
            }
        }
        self.stats.failed_pops += 1;
        0
    }

    fn stats(&self) -> PlaceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> Arc<PriorityWorkStealing<u64>> {
        Arc::new(PriorityWorkStealing::new(n))
    }

    #[test]
    fn local_pop_is_priority_ordered() {
        let p = pool(1);
        let mut h = p.handle(0);
        for &x in &[3u64, 1, 4, 1, 5] {
            h.push(x, 0, x * 10);
        }
        let mut out = Vec::new();
        while let Some(t) = h.pop() {
            out.push(t);
        }
        assert_eq!(out, vec![10, 10, 30, 40, 50]);
    }

    #[test]
    fn fifo_tiebreak_on_equal_priority() {
        let p = pool(1);
        let mut h = p.handle(0);
        h.push(7, 0, 100);
        h.push(7, 0, 200);
        h.push(7, 0, 300);
        assert_eq!(h.pop(), Some(100));
        assert_eq!(h.pop(), Some(200));
        assert_eq!(h.pop(), Some(300));
    }

    #[test]
    fn steal_moves_roughly_half() {
        let p = pool(2);
        let mut h0 = p.handle(0);
        let mut h1 = p.handle(1);
        for i in 0..100u64 {
            h0.push(i, 0, i);
        }
        // First pop by the idle place steals half of place 0's queue: 50
        // move to place 1, one of which is returned, so 99 remain overall.
        let got = h1.pop();
        assert!(got.is_some());
        assert_eq!(h1.stats().steals, 1);
        assert_eq!(p.queued(), 99);
        // The next pops by place 1 are purely local (no further steals).
        for _ in 0..49 {
            assert!(h1.pop().is_some());
        }
        assert_eq!(h1.stats().steals, 1);
        assert_eq!(p.queued(), 50);
    }

    #[test]
    fn exactly_once_across_places() {
        let p = pool(3);
        let mut handles: Vec<_> = (0..3).map(|i| p.handle(i)).collect();
        for i in 0..60u64 {
            handles[(i % 3) as usize].push(i, 0, i);
        }
        let mut got = Vec::new();
        loop {
            let mut any = false;
            for h in handles.iter_mut() {
                if let Some(t) = h.pop() {
                    got.push(t);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        got.sort();
        assert_eq!(got, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn empty_pop_fails() {
        let p = pool(2);
        let mut h = p.handle(0);
        assert_eq!(h.pop(), None);
        assert_eq!(h.stats().failed_pops, 1);
    }

    #[test]
    fn concurrent_stress_exactly_once() {
        let threads = 4usize;
        let per = 5_000u64;
        let p = pool(threads);
        let taken: Arc<Vec<std::sync::atomic::AtomicU32>> =
            Arc::new((0..threads as u64 * per).map(|_| 0.into()).collect());
        let popped = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for t in 0..threads {
                let p = Arc::clone(&p);
                let taken = Arc::clone(&taken);
                let popped = Arc::clone(&popped);
                s.spawn(move || {
                    let mut h = p.handle(t);
                    let mut rng = XorShift64::new(t as u64);
                    let mut pushed = 0u64;
                    loop {
                        if pushed < per && rng.below(2) == 0 {
                            h.push(rng.below(1000), 0, t as u64 * per + pushed);
                            pushed += 1;
                        } else if let Some(got) = h.pop() {
                            use std::sync::atomic::Ordering;
                            let prev = taken[got as usize].fetch_add(1, Ordering::Relaxed);
                            assert_eq!(prev, 0);
                            popped.fetch_add(1, Ordering::Relaxed);
                        } else if pushed == per {
                            use std::sync::atomic::Ordering;
                            if popped.load(Ordering::Relaxed) == threads as u64 * per {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        use std::sync::atomic::Ordering;
        assert_eq!(popped.load(Ordering::Relaxed), threads as u64 * per);
    }
}
