#![warn(missing_docs)]

//! Graph substrate for the priosched evaluation.
//!
//! The evaluation of Wimmer et al. (PPoPP 2014, §5) runs the single-source
//! shortest path (SSSP) problem on undirected Erdős–Rényi random graphs
//! `G(n, p)` with edge weights drawn uniformly from `(0, 1]`. This crate
//! provides:
//!
//! * [`CsrGraph`] — compressed-sparse-row storage of undirected weighted
//!   graphs (each undirected edge stored in both adjacency lists);
//! * [`erdos_renyi`] — seeded `G(n, p)` samplers (a geometric-skip sampler
//!   for any `p`, with a fast path for dense graphs);
//! * [`dijkstra()`] — the sequential Dijkstra baseline the paper compares
//!   against (Figure 4, "Sequential"), with lazy deletion instead of
//!   decrease-key, matching the paper's reinsertion scheme (§5.1);
//! * [`bellman_ford()`] — an independent oracle used only by tests.
//!
//! Weights are stored as `f32` (halving memory for the paper-scale
//! `n = 10000, p = 0.5` graphs, which have ~25M edges) and all distance
//! arithmetic is done in `f64`. Every algorithm in this workspace sums the
//! same `f64` values along the same paths, so cross-implementation distance
//! comparisons are exact.

pub mod bellman_ford;
pub mod csr;
pub mod delta_stepping;
pub mod dijkstra;
pub mod gen;

pub use bellman_ford::bellman_ford;
pub use csr::{CsrGraph, Edge};
pub use delta_stepping::{delta_stepping, DeltaSteppingResult};
pub use dijkstra::{dijkstra, DijkstraResult};
pub use gen::{erdos_renyi, ErdosRenyiConfig};

/// Distance value for unreached nodes.
pub const INFINITY: f64 = f64::INFINITY;
