//! Flat combining must be invisible to everything but the profiler.
//!
//! Three properties pin the combiner (`priosched_core::combine`) under the
//! structural pool:
//!
//! 1. **Equivalence** (proptest): the same op tape driven through a
//!    combining-on pool, a combining-off (mutex) pool, and — for one
//!    place, where the structural pool is exact — a sequential
//!    `BinaryHeap` oracle produces identical pop streams, and no task is
//!    lost or invented in either mode.
//! 2. **Handoff stress**: with `k = 0` every push and pop crosses the
//!    shared queue, and a tenure bound of 1 pass forces constant combiner
//!    handoffs; no request may be lost or double-executed across them.
//! 3. **Parked loser wake**: a loser that parked while the combiner was
//!    busy is woken when (and only because) its response was written.

use priosched_core::combine::{CombineOp, CombineStats, Combiner};
use priosched_core::{PoolHandle, StructuralKPriority, TaskPool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// One step of a single-threaded op tape over `places` handles.
#[derive(Clone, Debug)]
enum Step {
    Push { place: u8, prio: u16 },
    PushBatch { place: u8, prios: Vec<u16> },
    Pop { place: u8 },
    PopBatch { place: u8, max: u8 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(place, prio)| Step::Push { place, prio }),
        (any::<u8>(), proptest::collection::vec(any::<u16>(), 0..6))
            .prop_map(|(place, prios)| Step::PushBatch { place, prios }),
        any::<u8>().prop_map(|place| Step::Pop { place }),
        (any::<u8>(), 0u8..5).prop_map(|(place, max)| Step::PopBatch { place, max }),
    ]
}

/// What one tape run observed: per pop-step results (one entry for each
/// `Pop` / `PopBatch` in tape order — a batch that came back short is a
/// legal spurious shortfall and is recorded as-is), then the final drain.
#[derive(Debug, PartialEq, Eq)]
struct TapeRun {
    events: Vec<Vec<u64>>,
    drained: Vec<u64>,
}

impl TapeRun {
    fn all_popped(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self.events.iter().flatten().copied().collect();
        all.extend(&self.drained);
        all
    }
}

/// Runs the tape single-threaded. Single-threaded, so the outcome is
/// deterministic per mode — and must be identical across modes.
fn run_tape(combine: bool, places: usize, k: usize, tape: &[Step]) -> TapeRun {
    let pool = Arc::new(StructuralKPriority::<u64>::with_combining(
        places, k, combine,
    ));
    let mut handles: Vec<_> = (0..places).map(|p| pool.handle(p)).collect();
    let mut events = Vec::new();
    for step in tape {
        match step {
            Step::Push { place, prio } => {
                let h = &mut handles[*place as usize % places];
                h.push(*prio as u64, 0, *prio as u64);
            }
            Step::PushBatch { place, prios } => {
                let h = &mut handles[*place as usize % places];
                let mut batch: Vec<(u64, u64)> =
                    prios.iter().map(|&p| (p as u64, p as u64)).collect();
                h.push_batch(0, &mut batch);
            }
            Step::Pop { place } => {
                let got = handles[*place as usize % places].pop();
                events.push(got.into_iter().collect());
            }
            Step::PopBatch { place, max } => {
                let mut out = Vec::new();
                handles[*place as usize % places].try_pop_batch(&mut out, *max as usize);
                events.push(out);
            }
        }
    }
    // Drain everything that is left, raids included.
    let mut drained = Vec::new();
    loop {
        let mut any = false;
        for h in handles.iter_mut() {
            while let Some(t) = h.pop() {
                drained.push(t);
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    TapeRun { events, drained }
}

/// Every priority the tape pushes, in tape order.
fn pushed(tape: &[Step]) -> Vec<u64> {
    let mut all = Vec::new();
    for step in tape {
        match step {
            Step::Push { prio, .. } => all.push(*prio as u64),
            Step::PushBatch { prios, .. } => all.extend(prios.iter().map(|&p| p as u64)),
            _ => {}
        }
    }
    all
}

/// Checks a single-place run against the exact sequential oracle: every
/// value the pool returned must be the global minimum of everything pushed
/// so far and not yet popped, scalar pops and drains must not miss work,
/// and a batch pop must return at least one task when the pool is
/// non-empty (it may legally come back short of `max`, because the local
/// drain stops at the shared queue's next-min key — the remainder is
/// observable by the next pop).
fn check_single_place_against_oracle(tape: &[Step], run: &TapeRun) -> Result<(), TestCaseError> {
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<u64>> =
        std::collections::BinaryHeap::new();
    let mut events = run.events.iter();
    for step in tape {
        match step {
            Step::Push { prio, .. } => heap.push(std::cmp::Reverse(*prio as u64)),
            Step::PushBatch { prios, .. } => {
                for &p in prios {
                    heap.push(std::cmp::Reverse(p as u64));
                }
            }
            Step::Pop { .. } => {
                let got = events.next().expect("one event per pop step");
                let want: Vec<u64> = heap
                    .pop()
                    .map(|std::cmp::Reverse(p)| p)
                    .into_iter()
                    .collect();
                prop_assert_eq!(got, &want, "scalar pop must return the exact minimum");
            }
            Step::PopBatch { max, .. } => {
                let got = events.next().expect("one event per pop step");
                prop_assert!(got.len() <= *max as usize, "batch overshot max");
                prop_assert!(
                    !heap.is_empty() || got.is_empty(),
                    "batch invented tasks from an empty pool"
                );
                if *max > 0 && !heap.is_empty() {
                    prop_assert!(!got.is_empty(), "non-empty pool must yield ≥ 1 batch task");
                }
                for &v in got {
                    let std::cmp::Reverse(want) = heap.pop().expect("oracle ran dry");
                    prop_assert_eq!(v, want, "batch element must be the exact minimum");
                }
            }
        }
    }
    let mut rest: Vec<u64> = Vec::new();
    while let Some(std::cmp::Reverse(p)) = heap.pop() {
        rest.push(p);
    }
    prop_assert_eq!(
        &run.drained,
        &rest,
        "final drain must empty the pool in exact order"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Combining on ≡ combining off, on 1–3 places with a tiny buffer
    /// bound (k = 2 keeps the shared queue hot), and neither mode loses or
    /// invents a task.
    #[test]
    fn combining_on_off_equivalence(
        tape in proptest::collection::vec(step_strategy(), 0..64),
        places in 1usize..4,
    ) {
        let on = run_tape(true, places, 2, &tape);
        let off = run_tape(false, places, 2, &tape);
        prop_assert_eq!(&on, &off, "pop streams diverge between modes");
        let mut multiset = on.all_popped();
        multiset.sort_unstable();
        let mut want = pushed(&tape);
        want.sort_unstable();
        prop_assert_eq!(multiset, want, "popped multiset != pushed multiset");
    }

    /// With one place the structural pool is exact — both modes must match
    /// the sequential heap oracle pop for pop.
    #[test]
    fn combining_single_place_matches_sequential_oracle(
        tape in proptest::collection::vec(step_strategy(), 0..64),
    ) {
        check_single_place_against_oracle(&tape, &run_tape(true, 1, 2, &tape))?;
        check_single_place_against_oracle(&tape, &run_tape(false, 1, 2, &tape))?;
    }
}

/// Multi-producer handoff stress: `k = 0` forces *every* push and pop
/// through the shared queue (the buffers never hold anything), so with 4
/// threads hammering it, combiner tenure expires constantly and the lock
/// hands off mid-traffic. Exactly-once accounting must survive.
#[test]
fn stress_handoff_no_request_lost_or_double_executed() {
    let threads = 4usize;
    let per = 4_000u64;
    let pool = Arc::new(StructuralKPriority::<u64>::with_combining(threads, 0, true));
    let popped = Arc::new(AtomicU64::new(0));
    let taken: Arc<Vec<AtomicU32>> =
        Arc::new((0..threads as u64 * per).map(|_| 0.into()).collect());
    let total_parks = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = Arc::clone(&pool);
            let taken = Arc::clone(&taken);
            let popped = Arc::clone(&popped);
            let total_parks = Arc::clone(&total_parks);
            s.spawn(move || {
                let mut h = pool.handle(t);
                let mut pushed = 0u64;
                loop {
                    if pushed < per
                        && pushed <= popped.load(Ordering::Relaxed) / threads as u64 + 64
                    {
                        h.push(pushed % 97, 0, t as u64 * per + pushed);
                        pushed += 1;
                    } else if let Some(got) = h.pop() {
                        assert_eq!(
                            taken[got as usize].fetch_add(1, Ordering::Relaxed),
                            0,
                            "task popped twice"
                        );
                        popped.fetch_add(1, Ordering::Relaxed);
                    } else if pushed == per
                        && popped.load(Ordering::Relaxed) == threads as u64 * per
                    {
                        break;
                    } else {
                        std::thread::yield_now();
                    }
                }
                total_parks.fetch_add(h.stats().combine_parks, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(popped.load(Ordering::Relaxed), threads as u64 * per);
    for slot in taken.iter() {
        assert_eq!(slot.load(Ordering::Relaxed), 1, "task lost");
    }
}

/// Op for driving a raw `Combiner` over a `u64` accumulator: `Add` sums,
/// `Block` holds the combiner inside an `apply` until the gate opens —
/// long enough that any concurrent loser exhausts its spin budget and
/// parks.
enum GateOp {
    Add(u64),
    Block(Arc<AtomicBool>),
}

impl CombineOp<u64> for GateOp {
    type Resp = u64;
    fn apply(self, shared: &mut u64) -> u64 {
        match self {
            GateOp::Add(v) => {
                *shared += v;
                *shared
            }
            GateOp::Block(gate) => {
                while !gate.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                *shared
            }
        }
    }
}

/// A loser that parked while the combiner was busy is woken by the
/// response write: place 0 occupies the combiner inside a gated op for
/// ~100 ms (far beyond the spin budget), place 1 publishes, parks, and
/// must come back with the correct response and ≥ 1 recorded park.
#[test]
fn parked_loser_is_woken_when_response_is_written() {
    let combiner: Arc<Combiner<u64, GateOp>> = Arc::new(Combiner::new(0, 2));
    let gate = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let c = Arc::clone(&combiner);
        let g = Arc::clone(&gate);
        let blocker = s.spawn(move || {
            let mut stats = CombineStats::default();
            c.execute(0, GateOp::Block(g), &mut stats)
        });
        let c = Arc::clone(&combiner);
        let loser = s.spawn(move || {
            // Give the blocker time to take the lock first.
            std::thread::sleep(std::time::Duration::from_millis(10));
            let mut stats = CombineStats::default();
            let resp = c.execute(1, GateOp::Add(42), &mut stats);
            (resp, stats.parks)
        });
        // Both threads are now committed: the blocker inside apply(), the
        // loser published and (after its spin budget) parked.
        std::thread::sleep(std::time::Duration::from_millis(100));
        gate.store(true, Ordering::Release);
        let (resp, parks) = loser.join().expect("loser thread");
        assert_eq!(resp, 42, "loser's Add must be applied exactly once");
        assert!(
            parks >= 1,
            "loser should have parked while the combiner was gated (parks = {parks})"
        );
        assert_eq!(blocker.join().expect("blocker thread"), 0);
    });
}
