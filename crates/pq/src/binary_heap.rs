//! Array-backed binary min-heap.
//!
//! This is the default place-local priority queue. It differs from
//! `std::collections::BinaryHeap` in three ways that matter here: it is a
//! *min*-heap (matching the paper's "smaller is better" convention), it
//! supports [`BinaryHeap::split_half`] for the steal-half work-stealing
//! policy, and it supports [`BinaryHeap::retain`] for lazy dead-task
//! elimination.

use crate::SequentialPriorityQueue;

/// Array-backed binary min-heap.
///
/// `data[0]` is the minimum; children of `i` are `2i + 1` and `2i + 2`.
#[derive(Clone, Debug)]
pub struct BinaryHeap<T> {
    data: Vec<T>,
}

impl<T> Default for BinaryHeap<T> {
    fn default() -> Self {
        BinaryHeap { data: Vec::new() }
    }
}

impl<T: Ord> BinaryHeap<T> {
    /// Creates an empty heap with at least `cap` preallocated slots.
    ///
    /// The scheduler preallocates place-local queues to keep the hot
    /// push/pop path free of reallocation (cf. the Rust Performance Book's
    /// advice on `Vec` growth).
    pub fn with_capacity(cap: usize) -> Self {
        BinaryHeap {
            data: Vec::with_capacity(cap),
        }
    }

    /// Builds a heap from an arbitrary vector in O(n) (Floyd's heapify).
    pub fn from_vec(data: Vec<T>) -> Self {
        let mut h = BinaryHeap { data };
        h.heapify();
        h
    }

    fn heapify(&mut self) {
        let n = self.data.len();
        for i in (0..n / 2).rev() {
            self.sift_down(i);
        }
    }

    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if self.data[idx] < self.data[parent] {
                self.data.swap(idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut idx: usize) {
        let n = self.data.len();
        loop {
            let l = 2 * idx + 1;
            let r = l + 1;
            let mut smallest = idx;
            if l < n && self.data[l] < self.data[smallest] {
                smallest = l;
            }
            if r < n && self.data[r] < self.data[smallest] {
                smallest = r;
            }
            if smallest == idx {
                return;
            }
            self.data.swap(idx, smallest);
            idx = smallest;
        }
    }

    /// Checks the heap invariant; used by tests and `debug_assert!`s.
    pub fn is_valid_heap(&self) -> bool {
        (1..self.data.len()).all(|i| self.data[(i - 1) / 2] <= self.data[i])
    }

    /// Read-only view of the backing array (arbitrary order).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl<T: Ord> SequentialPriorityQueue<T> for BinaryHeap<T> {
    fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, item: T) {
        self.data.push(item);
        self.sift_up(self.data.len() - 1);
    }

    fn pop(&mut self) -> Option<T> {
        let n = self.data.len();
        match n {
            0 => None,
            1 => self.data.pop(),
            _ => {
                self.data.swap(0, n - 1);
                let min = self.data.pop();
                self.sift_down(0);
                min
            }
        }
    }

    fn peek(&self) -> Option<&T> {
        self.data.first()
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn clear(&mut self) {
        self.data.clear();
    }

    /// Removes ⌈len/2⌉ elements and returns them as a new heap.
    ///
    /// Elements at odd positions of the backing array are taken; because a
    /// binary heap's array interleaves "good" and "bad" elements at every
    /// level, this yields two halves of comparable priority mix, which is
    /// what the steal-half policy wants (the thief should get useful work,
    /// not just the victim's worst tasks). Both halves are re-heapified in
    /// O(n).
    fn split_half(&mut self) -> Self {
        let n = self.data.len();
        if n <= 1 {
            // Stealing from a queue with one element takes that element:
            // ⌈1/2⌉ = 1. The victim keeps nothing.
            return BinaryHeap {
                data: std::mem::take(&mut self.data),
            };
        }
        let mut stolen = Vec::with_capacity(n / 2 + 1);
        let mut kept = Vec::with_capacity(n - n / 2);
        for (i, x) in std::mem::take(&mut self.data).into_iter().enumerate() {
            if i % 2 == 0 {
                stolen.push(x);
            } else {
                kept.push(x);
            }
        }
        self.data = kept;
        self.heapify();
        BinaryHeap::from_vec(stolen)
    }

    fn retain<F: FnMut(&T) -> bool>(&mut self, keep: F) {
        self.data.retain(keep);
        self.heapify();
    }

    fn append(&mut self, other: &mut Self) {
        if other.data.len() > self.data.len() {
            std::mem::swap(&mut self.data, &mut other.data);
        }
        self.data.append(&mut other.data);
        self.heapify();
    }

    fn drain_unordered(&mut self) -> Vec<T> {
        std::mem::take(&mut self.data)
    }

    /// Bulk insertion with a single invariant repair.
    ///
    /// Appends the batch to the backing array, then chooses the cheaper
    /// repair: per-element sift-up costs O(m log n) and touches only the
    /// insertion paths, Floyd's heapify costs O(n) regardless of m (the
    /// crossover lives in [`crate::bulk_repair_prefers_heapify`]); both
    /// repairs produce a valid heap over the same multiset.
    fn extend_batch<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        let old = self.data.len();
        self.data.extend(iter);
        let n = self.data.len();
        if n == old {
            return;
        }
        if crate::bulk_repair_prefers_heapify(old, n - old, n) {
            self.heapify();
        } else {
            for i in old..n {
                self.sift_up(i);
            }
        }
    }
}

impl<T: Ord> FromIterator<T> for BinaryHeap<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn popped(mut h: BinaryHeap<i64>) -> Vec<i64> {
        let mut out = Vec::new();
        while let Some(x) = h.pop() {
            out.push(x);
        }
        out
    }

    #[test]
    fn pops_in_sorted_order() {
        let h: BinaryHeap<i64> = [9, 4, 7, 1, -3, 7, 0].into_iter().collect();
        assert_eq!(popped(h), vec![-3, 0, 1, 4, 7, 7, 9]);
    }

    #[test]
    fn duplicates_are_kept() {
        let h: BinaryHeap<i64> = [5, 5, 5].into_iter().collect();
        assert_eq!(popped(h), vec![5, 5, 5]);
    }

    #[test]
    fn from_vec_heapifies() {
        let h = BinaryHeap::from_vec(vec![10, 9, 8, 7, 6, 5, 4, 3, 2, 1]);
        assert!(h.is_valid_heap());
    }

    #[test]
    fn peek_matches_pop() {
        let mut h: BinaryHeap<i64> = [3, 1, 2].into_iter().collect();
        assert_eq!(h.peek().copied(), Some(1));
        assert_eq!(h.pop(), Some(1));
        assert_eq!(h.peek().copied(), Some(2));
    }

    #[test]
    fn split_half_sizes() {
        for n in 0..40usize {
            let mut h: BinaryHeap<usize> = (0..n).collect();
            let stolen = h.split_half();
            assert_eq!(stolen.len(), n.div_ceil(2), "n={n}");
            assert_eq!(h.len(), n / 2, "n={n}");
            assert!(h.is_valid_heap());
            assert!(stolen.is_valid_heap());
        }
    }

    #[test]
    fn split_half_preserves_multiset() {
        let mut h: BinaryHeap<i64> = [4, 4, 8, 1, 0, 0, 9, -2].into_iter().collect();
        let stolen = h.split_half();
        let mut all = popped(h);
        all.extend(popped(stolen));
        all.sort();
        assert_eq!(all, vec![-2, 0, 0, 1, 4, 4, 8, 9]);
    }

    #[test]
    fn split_of_singleton_takes_the_element() {
        let mut h: BinaryHeap<i64> = [42].into_iter().collect();
        let stolen = h.split_half();
        assert!(h.is_empty());
        assert_eq!(popped(stolen), vec![42]);
    }

    #[test]
    fn split_of_empty_is_empty() {
        let mut h: BinaryHeap<i64> = BinaryHeap::new();
        let stolen = h.split_half();
        assert!(h.is_empty() && stolen.is_empty());
    }

    #[test]
    fn retain_drops_and_reheapifies() {
        let mut h: BinaryHeap<i64> = (0..20).collect();
        h.retain(|x| x % 3 == 0);
        assert!(h.is_valid_heap());
        assert_eq!(popped(h), vec![0, 3, 6, 9, 12, 15, 18]);
    }

    #[test]
    fn append_merges_and_empties_other() {
        let mut a: BinaryHeap<i64> = [5, 1].into_iter().collect();
        let mut b: BinaryHeap<i64> = [4, 2, 0].into_iter().collect();
        a.append(&mut b);
        assert!(b.is_empty());
        assert_eq!(popped(a), vec![0, 1, 2, 4, 5]);
    }

    #[test]
    fn clear_empties() {
        let mut h: BinaryHeap<i64> = (0..10).collect();
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut h = BinaryHeap::new();
        let mut reference = std::collections::BinaryHeap::new(); // max-heap
        let ops: Vec<i64> = vec![5, -1, 3, 3, 9, -7, 2, 8, 8, 0];
        for (i, &x) in ops.iter().enumerate() {
            h.push(x);
            reference.push(std::cmp::Reverse(x));
            if i % 3 == 2 {
                assert_eq!(h.pop(), reference.pop().map(|r| r.0));
            }
        }
        while let Some(x) = h.pop() {
            assert_eq!(Some(x), reference.pop().map(|r| r.0));
        }
        assert!(reference.is_empty());
    }
}
